//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access, so the real `serde` cannot
//! be fetched; the workspace patches `crates-io` to this implementation
//! (see `[patch.crates-io]` in the root `Cargo.toml`). It keeps serde's
//! *generic trait shape* — `Serialize`/`Serializer`,
//! `Deserialize`/`Deserializer` with an error-trait bound — so the
//! workspace's manual impls (`tempo-math`'s exact-rational encodings)
//! compile unchanged, but replaces the visitor machinery with a small
//! self-describing [`Value`] tree that the `serde_json` stand-in renders
//! and parses. The `derive` feature re-exports a `Serialize` derive for
//! plain named-field structs from the `serde_derive` stand-in.

use std::fmt;
use std::marker::PhantomData;

// Bring the error trait's associated function (`custom`) into scope for
// the `D::Error::custom(..)` calls in the Deserialize impls below.
use crate::de::Error as _;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// The self-describing data tree every (de)serialization passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` / a missing option.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (all widths normalize to `i128`).
    Int(i128),
    /// A string.
    Str(String),
    /// A sequence (arrays, tuples).
    Seq(Vec<Value>),
    /// An ordered string-keyed map (structs).
    Map(Vec<(String, Value)>),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) => "an integer",
            Value::Str(_) => "a string",
            Value::Seq(_) => "a sequence",
            Value::Map(_) => "a map",
        }
    }
}

/// Serialization support.
pub mod ser {
    use std::fmt;

    /// Errors producible while serializing.
    pub trait Error: Sized + std::error::Error {
        /// Creates an error from a display-able message.
        fn custom<T: fmt::Display>(msg: T) -> Self;
    }
}

/// Deserialization support.
pub mod de {
    use std::fmt;

    /// What a deserializer actually found (diagnostic payloads).
    #[derive(Clone, Copy, Debug)]
    pub enum Unexpected<'a> {
        /// An unexpected boolean.
        Bool(bool),
        /// An unexpected integer.
        Signed(i64),
        /// An unexpected string.
        Str(&'a str),
        /// Some other unexpected shape.
        Other(&'a str),
    }

    impl fmt::Display for Unexpected<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Unexpected::Bool(b) => write!(f, "boolean `{b}`"),
                Unexpected::Signed(i) => write!(f, "integer `{i}`"),
                Unexpected::Str(s) => write!(f, "string {s:?}"),
                Unexpected::Other(o) => write!(f, "{o}"),
            }
        }
    }

    /// A description of what was expected (used by
    /// [`Error::invalid_value`]); implemented for string literals.
    pub trait Expected {
        /// Formats the expectation.
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result;
    }

    impl Expected for &str {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{self}")
        }
    }

    impl fmt::Display for dyn Expected + '_ {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            Expected::fmt(self, f)
        }
    }

    /// Errors producible while deserializing.
    pub trait Error: Sized + std::error::Error {
        /// Creates an error from a display-able message.
        fn custom<T: fmt::Display>(msg: T) -> Self;

        /// An error for a value of the right shape but invalid content.
        fn invalid_value(unexp: Unexpected, exp: &dyn Expected) -> Self {
            Self::custom(format!("invalid value: {unexp}, expected {exp}"))
        }
    }
}

/// A data format (or value sink) that can consume a [`Value`] tree.
///
/// Unlike real serde there is one required method; the per-type
/// `serialize_*` helpers are provided in terms of it.
pub trait Serializer: Sized {
    /// Output of successful serialization.
    type Ok;
    /// Error type.
    type Error: ser::Error;

    /// Consumes a complete value tree.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string.
    fn serialize_str(self, s: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(s.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, b: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Bool(b))
    }

    /// Serializes an integer.
    fn serialize_i128(self, i: i128) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Int(i))
    }

    /// Serializes a unit/none marker.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Null)
    }
}

/// Types that can be serialized through any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i128(*self as i128)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = self
            .iter()
            .map(to_value)
            .collect::<Result<Vec<Value>, ValueError>>()
            .map_err(ser::Error::custom)?;
        serializer.serialize_value(Value::Seq(items))
    }
}

macro_rules! impl_serialize_tuple {
    ($($name:ident . $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_value(&self.$idx).map_err(ser::Error::custom)?,)+
                ];
                serializer.serialize_value(Value::Seq(items))
            }
        }
    };
}

impl_serialize_tuple!(A.0);
impl_serialize_tuple!(A.0, B.1);
impl_serialize_tuple!(A.0, B.1, C.2);
impl_serialize_tuple!(A.0, B.1, C.2, D.3);

/// The error of [`to_value`] (a plain message).
#[derive(Clone, Debug)]
pub struct ValueError(String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ValueError {}

impl ser::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> ValueError {
        ValueError(msg.to_string())
    }
}

impl de::Error for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> ValueError {
        ValueError(msg.to_string())
    }
}

struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;
    fn serialize_value(self, v: Value) -> Result<Value, ValueError> {
        Ok(v)
    }
}

/// Serializes any value into the [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(t: &T) -> Result<Value, ValueError> {
    t.serialize(ValueSerializer)
}

/// A data format (or value source) that can produce a [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: de::Error;

    /// Produces the complete value tree.
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// Types that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A [`Deserializer`] over an in-memory [`Value`], generic in the error
/// type so nested fields surface the caller's error.
pub struct ValueDeserializer<E> {
    value: Value,
    marker: PhantomData<E>,
}

impl<E> ValueDeserializer<E> {
    /// Wraps a value tree.
    pub fn new(value: Value) -> ValueDeserializer<E> {
        ValueDeserializer {
            value,
            marker: PhantomData,
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
    type Error = E;
    fn deserialize_value(self) -> Result<Value, E> {
        Ok(self.value)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<String, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Str(s) => Ok(s),
            v => Err(D::Error::custom(format!(
                "expected a string, found {}",
                v.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<bool, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            v => Err(D::Error::custom(format!(
                "expected a boolean, found {}",
                v.kind()
            ))),
        }
    }
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<$t, D::Error> {
                match deserializer.deserialize_value()? {
                    Value::Int(i) => <$t>::try_from(i).map_err(|_| {
                        D::Error::custom(format!("integer {i} out of range"))
                    }),
                    v => Err(D::Error::custom(format!(
                        "expected an integer, found {}", v.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_deserialize_int!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Vec<T>, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| T::deserialize(ValueDeserializer::<D::Error>::new(v)))
                .collect(),
            v => Err(D::Error::custom(format!(
                "expected a sequence, found {}",
                v.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Option<T>, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Null => Ok(None),
            v => T::deserialize(ValueDeserializer::<D::Error>::new(v)).map(Some),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($n:literal; $($name:ident),+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            // `__D` rather than `D`: the 4-tuple instantiation names an
            // element `D`, which would collide with the deserializer param.
            fn deserialize<__D: Deserializer<'de>>(
                deserializer: __D,
            ) -> Result<Self, __D::Error> {
                match deserializer.deserialize_value()? {
                    Value::Seq(items) if items.len() == $n => {
                        let mut it = items.into_iter();
                        Ok(($(
                            $name::deserialize(ValueDeserializer::<__D::Error>::new(
                                it.next().expect("length checked"),
                            ))?,
                        )+))
                    }
                    Value::Seq(items) => Err(__D::Error::custom(format!(
                        "expected a sequence of length {}, found length {}",
                        $n,
                        items.len()
                    ))),
                    v => Err(__D::Error::custom(format!(
                        "expected a sequence, found {}", v.kind()
                    ))),
                }
            }
        }
    };
}

impl_deserialize_tuple!(1; A);
impl_deserialize_tuple!(2; A, B);
impl_deserialize_tuple!(3; A, B, C);
impl_deserialize_tuple!(4; A, B, C, D);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_through_value() {
        let v = to_value(&(String::from("hi"), 3usize, true)).unwrap();
        assert_eq!(
            v,
            Value::Seq(vec![
                Value::Str("hi".into()),
                Value::Int(3),
                Value::Bool(true)
            ])
        );
        let back: (String, usize, bool) =
            Deserialize::deserialize(ValueDeserializer::<ValueError>::new(v)).unwrap();
        assert_eq!(back, ("hi".to_string(), 3, true));
    }

    #[test]
    fn options_use_null() {
        assert_eq!(to_value(&None::<u8>).unwrap(), Value::Null);
        assert_eq!(to_value(&Some(7u8)).unwrap(), Value::Int(7));
        let none: Option<u8> =
            Deserialize::deserialize(ValueDeserializer::<ValueError>::new(Value::Null)).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn shape_errors_are_reported() {
        let r: Result<bool, ValueError> =
            Deserialize::deserialize(ValueDeserializer::new(Value::Int(3)));
        assert!(r.unwrap_err().to_string().contains("expected a boolean"));
        let r: Result<u8, ValueError> =
            Deserialize::deserialize(ValueDeserializer::new(Value::Int(300)));
        assert!(r.unwrap_err().to_string().contains("out of range"));
    }
}
