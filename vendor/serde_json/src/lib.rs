//! Offline stand-in for the `serde_json` crate.
//!
//! The build container has no network access, so the real `serde_json`
//! cannot be fetched; the workspace patches `crates-io` to this
//! implementation (see `[patch.crates-io]` in the root `Cargo.toml`).
//! It renders and parses JSON through the `serde` stand-in's
//! [`serde::Value`] tree: [`to_string`], [`to_string_pretty`] and
//! [`from_str`] — the three entry points the workspace uses. Numbers are
//! integers only (the workspace encodes rationals as exact strings, never
//! as floats).

use std::fmt;

use serde::{de, ser, Deserialize, Serialize, Value, ValueDeserializer};

/// Any serialization/deserialization failure, as a message.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns any error surfaced by the value's `Serialize` impl.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value).map_err(|e| Error { msg: e.to_string() })?;
    let mut out = String::new();
    write_value(&mut out, &v, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
///
/// # Errors
///
/// Returns any error surfaced by the value's `Serialize` impl.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = serde::to_value(value).map_err(|e| Error { msg: e.to_string() })?;
    let mut out = String::new();
    write_value(&mut out, &v, Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns a parse error, an error about trailing input, or any error
/// surfaced by the target's `Deserialize` impl.
pub fn from_str<'a, T: Deserialize<'a>>(s: &'a str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error {
            msg: format!("trailing characters at offset {}", p.i),
        });
    }
    T::deserialize(ValueDeserializer::<Error>::new(v))
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_container(out, indent, depth, '[', ']', items.len(), |out, i| {
                write_value(out, &items[i], indent, depth + 1);
            })
        }
        Value::Map(entries) => {
            write_container(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            });
        }
    }
}

fn write_container(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && matches!(self.s[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error {
            msg: format!("{msg} at offset {}", self.i),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), Error> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => self.eat("null").map(|()| Value::Null),
            b't' => self.eat("true").map(|()| Value::Bool(true)),
            b'f' => self.eat("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(":")?;
                    self.skip_ws();
                    let v = self.value()?;
                    entries.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected `\"`"));
        }
        self.i += 1;
        let mut out = String::new();
        loop {
            let rest = &self.s[self.i..];
            let c = *rest
                .first()
                .ok_or_else(|| self.err("unterminated string"))?;
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let e = *rest.get(1).ok_or_else(|| self.err("bad escape"))?;
                    self.i += 2;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = text.chars().next().expect("nonempty");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.i += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("float literals are not supported by this stand-in"));
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("digits are ASCII");
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_rendering() {
        let v = (String::from("a\"b"), vec![1i64, 2], Some(true), None::<u8>);
        assert_eq!(to_string(&v).unwrap(), "[\"a\\\"b\",[1,2],true,null]");
        let pretty = to_string_pretty(&vec![1i64]).unwrap();
        assert_eq!(pretty, "[\n  1\n]");
    }

    #[test]
    fn parse_round_trip() {
        let back: (String, Vec<i64>, bool) = from_str("[\"x\", [3, -4], false]").unwrap();
        assert_eq!(back, ("x".to_string(), vec![3, -4], false));
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<bool>("true false").is_err());
        assert!(from_str::<Vec<i64>>("[1,]").is_err());
        assert!(from_str::<i64>("1.5").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let s: String = from_str("\"line\\nbreak \\u0041\"").unwrap();
        assert_eq!(s, "line\nbreak A");
    }
}
