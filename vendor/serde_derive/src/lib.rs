//! Offline stand-in for `serde_derive`.
//!
//! Provides `#[derive(Serialize)]` for *plain named-field structs* — the
//! only shape the workspace derives on (`GapStats`, `FirstTimeStats`,
//! `ZoneStats`, `CondVerdict`, and the report rows). Implemented directly
//! on `proc_macro` (no `syn`/`quote`, which the offline container cannot
//! fetch): the struct's field names are read off the token stream and the
//! impl is assembled as source text. Generics, enums, and tuple structs
//! are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a plain named-field struct by
/// serializing it as an ordered string-keyed map of its fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(ts) => ts,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including expanded doc comments).
    while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2; // '#' + bracketed group
    }
    // Skip a visibility qualifier.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    match &tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        _ => return Err("Serialize can only be derived for structs here".to_string()),
    }

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected a struct name".to_string()),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "cannot derive Serialize for generic struct `{name}`"
        ));
    }

    let body = match &tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "can only derive Serialize for named-field structs, `{name}` has none"
            ))
        }
    };

    let fields = field_names(body)?;
    if fields.is_empty() {
        return Err(format!("struct `{name}` has no fields to serialize"));
    }

    let mut pushes = String::new();
    for f in &fields {
        pushes.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{f}\"), \
             ::serde::to_value(&self.{f}).map_err(\
             <__S::Error as ::serde::ser::Error>::custom)?));\n"
        ));
    }

    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
           fn serialize<__S: ::serde::Serializer>(\n\
               &self,\n\
               serializer: __S,\n\
           ) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
               let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                   ::std::vec::Vec::with_capacity({len});\n\
               {pushes}\
               ::serde::Serializer::serialize_value(serializer, ::serde::Value::Map(__fields))\n\
           }}\n\
         }}",
        len = fields.len(),
    );
    out.parse()
        .map_err(|e| format!("serde_derive stand-in produced invalid code: {e:?}"))
}

/// Extracts field names from the brace body of a named-field struct:
/// per field, skip attributes and visibility, take the ident before `:`,
/// then skip to the next top-level comma.
fn field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            Some(t) => return Err(format!("unsupported struct field syntax at `{t}`")),
        }
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err("expected `:` after field name (named fields only)".to_string()),
        }
        // Skip the type up to the next top-level comma. `<` `>` nesting
        // does not produce groups, but commas inside angle brackets (e.g.
        // `Vec<(A, B)>`) sit inside parenthesis/bracket groups or between
        // angle tokens; track angle depth to stay at the top level.
        let mut angle: i32 = 0;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}
