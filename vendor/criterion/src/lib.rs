//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the real `criterion`
//! cannot be fetched; the workspace patches `crates-io` to this
//! implementation (see `[patch.crates-io]` in the root `Cargo.toml`). It
//! implements the API subset the `tempo-bench` targets use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `sample_size`,
//! and the [`criterion_group!`]/[`criterion_main!`] macros — measuring
//! wall-clock medians without criterion's statistical machinery. Numbers
//! are indicative, not rigorous; they exist so `cargo bench` produces the
//! throughput comparisons recorded in `EXPERIMENTS.md`.
//!
//! Binary flags honoured: a positional substring filter, `--bench`
//! (ignored), and `--test` (one iteration per benchmark, as under
//! `cargo test --benches`).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Iterations to run per sample (calibrated by the harness).
    iters: u64,
    /// Elapsed time of the measured loop.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy, Debug)]
struct Mode {
    /// Samples per benchmark (median reported).
    sample_size: usize,
    /// Run everything exactly once, ignoring timing (test mode).
    test_only: bool,
}

/// The benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut filter = None;
        let mut test_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_only = true,
                // Harness flags forwarded by cargo that take no value and
                // that we can safely ignore.
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            filter,
            mode: Mode {
                sample_size: 10,
                test_only,
            },
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            mode: self.mode,
            filter: self.filter.clone(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let mode = self.mode;
        let filter = self.filter.clone();
        run_benchmark(name, mode, &filter, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    mode: Mode,
    filter: Option<String>,
    // Tie to the parent so the group cannot outlive the harness.
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.mode.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.mode,
            &self.filter,
            f,
        );
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.mode,
            &self.filter,
            |b| f(b, input),
        );
    }

    /// Ends the group (provided for API compatibility; no-op).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    mode: Mode,
    filter: &Option<String>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    if mode.test_only {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{name}: test passed");
        return;
    }

    // Calibrate: aim for samples of at least ~20ms, capped at 1e6 iters.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(mode.sample_size);
    for _ in 0..mode.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name}: median {} per iter (min {}, max {}, {} iters x {} samples)",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi),
        iters,
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("g1", 4).id, "g1/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 17);
        assert!(b.elapsed > Duration::ZERO || count == 17);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
