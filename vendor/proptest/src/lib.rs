//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the real `proptest`
//! cannot be fetched; the workspace patches `crates-io` to this
//! implementation (see `[patch.crates-io]` in the root `Cargo.toml`). It
//! supports the subset the workspace's property tests use:
//!
//! - the [`proptest!`] macro with `name in strategy` arguments and an
//!   optional `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! - [`prop_assert!`] / [`prop_assert_eq!`],
//! - integer range strategies (`0..10`, `0..=10`), tuple strategies up to
//!   arity 6, [`Strategy::prop_map`], `any::<bool>()`, `Just`, and
//!   [`collection::vec`].
//!
//! Failing cases are reported with their generated inputs but are **not
//! shrunk** — acceptable for a CI gate, where the debug loop happens on the
//! reported seed case directly.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator driving case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded).
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (((self.next_u64() as u128) << 64) | self.next_u64() as u128) % span
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree:
/// a strategy simply produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-shaped strategies can be
    /// mixed (see [`prop_oneof!`]). Clones share the erased strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps a strategy for depth `d` into one for depth
    /// `d + 1`. At each level the generator picks a leaf one time in
    /// three, so nesting terminates. The `_desired_size` and
    /// `_expected_branch_size` hints of real proptest are accepted and
    /// ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = one_of(vec![(1, leaf.clone()), (2, recurse(strat).boxed())]).boxed();
        }
        strat
    }
}

/// A type-erased, cheaply clonable strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// A weighted choice among type-erased strategies (see [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: fmt::Debug> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof of zero total weight");
        let mut pick = rng.below(total as u128) as u64;
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick within total")
    }
}

/// Builds the weighted union behind [`prop_oneof!`].
pub fn one_of<T: fmt::Debug>(options: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
    assert!(!options.is_empty(), "prop_oneof of no strategies");
    OneOf { options }
}

/// Picks among strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::one_of(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Strategies over `Option`.
pub mod option {
    use super::{fmt, Strategy, TestRng};

    /// The strategy returned by [`of`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some three times in four: present-but-optional is the
            // interesting case.
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, `Some(value)` otherwise.
    pub fn of<S: Strategy>(strat: S) -> OptionStrategy<S> {
        OptionStrategy(strat)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                ((self.start as i128) + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                ((start as i128) + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy (only the primitives the
/// workspace asks for).
pub trait Arbitrary: Sized + fmt::Debug {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy over all values of an [`Arbitrary`] primitive.
#[derive(Clone, Debug)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

impl Strategy for AnyOf<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;
    fn arbitrary() -> AnyOf<bool> {
        AnyOf(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec`]: a fixed length or a length range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u128;
            let n = self.size.lo + (rng.next_u64() as u128 % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// A property-test case failure (carried by `prop_assert!`-style macros).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, collection, option, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests: `proptest! { #[test] fn f(x in strat) {..} }`.
///
/// Each declared function becomes a `#[test]` that runs the body over
/// `cases` generated inputs (per the optional
/// `#![proptest_config(...)]` header) and panics, printing the inputs, on
/// the first failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Stable per-test seed: same inputs every run.
                let mut rng = $crate::TestRng::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            case + 1, config.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Derives a stable seed from a test's fully qualified name (FNV-1a).
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (with
/// the generated inputs) rather than panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            )));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "left = {:?}, right = {:?}", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "left = {:?}, right = {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "both = {:?}", l);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 0i64..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(a in 0u8..=100, b in -5i128..5) {
            prop_assert!(a <= 100);
            prop_assert!((-5..5).contains(&b));
        }

        #[test]
        fn mapped_pairs_are_ordered(p in pair(), flag in any::<bool>()) {
            prop_assert!(p.0 <= p.1, "flag={flag}");
            prop_assert_eq!(p.0.min(p.1), p.0);
        }

        #[test]
        fn vecs_respect_size(v in collection::vec(0i64..3, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.iter().all(|x| (0..3).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_header_parses(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    proptest! {
        #[allow(dead_code)]
        fn failing_case(x in 5u32..6) {
            prop_assert_eq!(x, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_inputs() {
        failing_case();
    }
}
