//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no network access, so the real `rand` cannot be
//! fetched; the workspace patches `crates-io` to this implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It provides exactly the
//! surface the workspace uses — `Rng::{gen_range, gen_bool}`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, `rngs::mock::StepRng` —
//! with a deterministic xoshiro256** generator. It is *not* a
//! cryptographically secure or statistically rigorous RNG; it only needs to
//! drive reproducible simulation schedules and samplers.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value in the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let k = (rng.next_u64() as u128) % span;
                ((self.start as i128) + k as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128).wrapping_sub(start as i128) as u128 + 1;
                let k = (rng.next_u64() as u128) % span;
                ((start as i128) + k as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// i128 spans can exceed u128 half-range only for pathological ranges the
// workspace never uses; a direct modular draw over the (positive) span is
// exact for every range appearing here.
impl SampleRange<i128> for core::ops::Range<i128> {
    fn sample(self, rng: &mut dyn RngCore) -> i128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u128;
        let k = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
        self.start + k as i128
    }
}

impl SampleRange<i128> for core::ops::RangeInclusive<i128> {
    fn sample(self, rng: &mut dyn RngCore) -> i128 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = end.wrapping_sub(start) as u128 + 1;
        let k = (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
        start + k as i128
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 high bits → uniform in [0, 1).
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<T: RngCore> Rng for T {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Streams differ from the real `StdRng` but are stable
    /// per seed, which is all reproducible simulation requires.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut x: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Mock generators.
    pub mod mock {
        use super::super::RngCore;

        /// An arithmetic-progression "generator" for tests: yields
        /// `initial`, `initial + increment`, … (wrapping).
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a mock generator from its start value and increment.
            pub fn new(initial: u64, increment: u64) -> StepRng {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{mock::StepRng, StdRng};
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_land_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let a = rng.gen_range(0..5usize);
            assert!(a < 5);
            let b = rng.gen_range(-3i128..=9);
            assert!((-3..=9).contains(&b));
            let c = rng.gen_range(0..=0u64);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0..=u64::MAX)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0..=u64::MAX)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0..=u64::MAX)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "hits={hits}");
        assert_eq!((0..100).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..100).filter(|_| rng.gen_bool(1.0)).count(), 100);
    }

    #[test]
    fn step_rng_is_an_arithmetic_progression() {
        let mut rng = StepRng::new(10, 3);
        let mut take = || rng.gen_range(0..=u64::MAX);
        assert_eq!([take(), take(), take()], [10, 13, 16]);
    }
}
