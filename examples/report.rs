//! Machine-readable experiment report: regenerates the EXPERIMENTS.md
//! tables as a JSON document (exact rationals as strings).
//!
//! Run with: `cargo run --example report > results.json`

use serde::Serialize;
use tempo_math::Interval;
use tempo_sim::GapStats;
use tempo_systems::peterson::{self, PetersonParams};
use tempo_systems::resource_manager::{self, Params};
use tempo_systems::signal_relay::{self, RelayParams};
use tempo_zones::CondVerdict;

#[derive(Serialize)]
struct Report {
    paper: &'static str,
    e1_resource_manager: Vec<E1Row>,
    e2_signal_relay: Vec<E2Row>,
    e7d_peterson_entry: Vec<PetersonRow>,
}

#[derive(Serialize)]
struct E1Row {
    params: String,
    g1_paper: Interval,
    g1_zone: CondVerdict,
    g1_sim: GapStats,
    g2_paper: Interval,
    g2_zone: CondVerdict,
    g2_sim: GapStats,
    mapping_passed: bool,
    lemma_4_1: bool,
    all_passed: bool,
}

#[derive(Serialize)]
struct E2Row {
    params: String,
    paper: Interval,
    zone: CondVerdict,
    sim: GapStats,
    chain_levels: usize,
    chain_passed: bool,
    all_passed: bool,
}

#[derive(Serialize)]
struct PetersonRow {
    params: String,
    entry: CondVerdict,
}

fn main() {
    let mut report = Report {
        paper: "Lynch & Attiya, Using Mappings to Prove Timing Properties (PODC 1990)",
        e1_resource_manager: Vec::new(),
        e2_signal_relay: Vec::new(),
        e7d_peterson_entry: Vec::new(),
    };

    for params in [
        Params::ints(1, 2, 3, 1).unwrap(),
        Params::ints(2, 2, 3, 1).unwrap(),
        Params::ints(3, 2, 5, 1).unwrap(),
    ] {
        let v = resource_manager::verify(&params);
        report.e1_resource_manager.push(E1Row {
            params: format!(
                "k={} c=[{},{}] l={}",
                params.k, params.c1, params.c2, params.l
            ),
            g1_paper: params.g1_bounds(),
            g1_zone: v.zone_g1.clone(),
            g1_sim: v.sim_first.clone(),
            g2_paper: params.g2_bounds(),
            g2_zone: v.zone_g2.clone(),
            g2_sim: v.sim_gap.clone(),
            mapping_passed: v.mapping_report.passed(),
            lemma_4_1: v.lemma_4_1,
            all_passed: v.all_passed(),
        });
    }

    for (n, d1, d2) in [(2, 1, 2), (3, 1, 2), (4, 1, 3)] {
        let params = RelayParams::ints(n, d1, d2).unwrap();
        let v = signal_relay::verify(&params);
        report.e2_signal_relay.push(E2Row {
            params: format!("n={n} d=[{d1},{d2}]"),
            paper: params.u0n_bounds(),
            zone: v.zone_u0n.clone(),
            sim: v.sim_delay.clone(),
            chain_levels: v.chain_reports.len(),
            chain_passed: v.chain_reports.iter().all(|r| r.passed()),
            all_passed: v.all_passed(),
        });
    }

    for (e, a) in [(0, 1), (0, 2), (1, 3)] {
        report.e7d_peterson_entry.push(PetersonRow {
            params: format!("e={e} a={a}"),
            entry: peterson::entry_verdict(&PetersonParams::ints(e, a), 0),
        });
    }

    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
}
