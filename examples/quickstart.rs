//! Quickstart: model a tiny timed system, state a timing requirement, and
//! verify it three ways — by trace checking, by the zone-based model
//! checker, and by the paper's mapping method (using the canonical mapping
//! of the completeness theorem, so no hand-written inequalities needed).
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use tempo_core::completeness::{CanonicalMapping, ExhaustiveOracle};
use tempo_core::mapping::{MappingChecker, RunPlan};
use tempo_core::{
    project, satisfies, time_ab, Boundmap, EarliestScheduler, LatestScheduler, RandomScheduler,
    TimeIoa, Timed, TimingCondition,
};
use tempo_ioa::{Ioa, Partition, Signature};
use tempo_math::{Interval, Rat};
use tempo_zones::ZoneChecker;

/// Step 1 — an I/O automaton: a pedestrian button and a traffic light.
/// `press` is always possible; after a press, `walk` turns the light.
#[derive(Debug)]
struct Crossing {
    sig: Signature<&'static str>,
    part: Partition<&'static str>,
}

impl Crossing {
    fn new() -> Crossing {
        let sig = Signature::new(vec![], vec!["press", "walk"], vec![]).unwrap();
        let part = Partition::new(
            &sig,
            vec![("BUTTON", vec!["press"]), ("LIGHT", vec!["walk"])],
        )
        .unwrap();
        Crossing { sig, part }
    }
}

impl Ioa for Crossing {
    type State = bool; // requested?
    type Action = &'static str;

    fn signature(&self) -> &Signature<&'static str> {
        &self.sig
    }
    fn partition(&self) -> &Partition<&'static str> {
        &self.part
    }
    fn initial_states(&self) -> Vec<bool> {
        vec![false]
    }
    fn post(&self, requested: &bool, a: &&'static str) -> Vec<bool> {
        match (*a, *requested) {
            ("press", false) => vec![true],
            ("walk", true) => vec![false],
            _ => vec![],
        }
    }
}

fn main() {
    // Step 2 — timing assumptions, as a boundmap: a press comes within
    // [0, 10] of being possible; the light reacts within [1, 3].
    let aut = Arc::new(Crossing::new());
    let boundmap = Boundmap::by_name(
        aut.as_ref(),
        vec![
            (
                "BUTTON",
                Interval::closed(Rat::ZERO, Rat::from(10)).unwrap(),
            ),
            ("LIGHT", Interval::closed(Rat::ONE, Rat::from(3)).unwrap()),
        ],
    )
    .unwrap();
    let timed = Timed::new(aut, boundmap).unwrap();
    println!("System: pedestrian crossing (press ∈ [0,10], walk ∈ [1,3] after press)\n");

    // Step 3 — a timing requirement: every press is answered by a walk
    // within [1, 3].
    let requirement: TimingCondition<bool, &str> = TimingCondition::new(
        "RESPONSE",
        Interval::closed(Rat::ONE, Rat::from(3)).unwrap(),
    )
    .triggered_by_step(|_, a, _| *a == "press")
    .on_actions(|a| *a == "walk");

    // Verification 1 — trace checking: simulate and check Definition 2.2.
    let impl_aut: TimeIoa<Crossing> = time_ab(&timed);
    let mut all_ok = true;
    for seed in 0..10u64 {
        let (run, _) = impl_aut.generate(&mut RandomScheduler::new(seed), 40);
        let seq = project(&run);
        if satisfies(&seq, &requirement).is_err() {
            all_ok = false;
        }
    }
    let (run, _) = impl_aut.generate(&mut EarliestScheduler::new(), 40);
    all_ok &= satisfies(&project(&run), &requirement).is_ok();
    let (run, _) = impl_aut.generate(&mut LatestScheduler::new(), 40);
    all_ok &= satisfies(&project(&run), &requirement).is_ok();
    println!(
        "1. trace checking   : 12 runs, all satisfy RESPONSE … {}",
        verdict(all_ok)
    );

    // Verification 2 — symbolic: the zone checker proves the bound exactly.
    let zone = ZoneChecker::new(&timed)
        .verify_condition(&requirement)
        .expect("non-overlapping triggers");
    println!(
        "2. zone checker     : response time ∈ [{}, {}] exactly … {}",
        zone.earliest_pi,
        zone.latest_armed,
        verdict(zone.satisfies(requirement.bounds()))
    );

    // Verification 3 — the paper's method: a strong possibilities mapping
    // from time(A, b) to time(A, {RESPONSE}). We let the completeness
    // theorem construct it: the canonical sup/inf first-occurrence bounds.
    let spec_aut = TimeIoa::new(Arc::clone(timed.automaton()), vec![requirement.clone()]);
    let spec_conds = [requirement];
    let oracle = ExhaustiveOracle::new(&impl_aut, 6);
    let mapping = CanonicalMapping::new(oracle, &spec_conds);
    let report = MappingChecker::new().check(
        &impl_aut,
        &spec_aut,
        &mapping,
        &RunPlan {
            random_runs: 8,
            steps: 30,
            seed: 7,
        },
    );
    println!(
        "3. mapping method   : canonical mapping, {} steps × {} spec states … {}",
        report.steps_checked,
        report.spec_states_checked,
        verdict(report.passed())
    );

    // A sanity check in the other direction: a false claim is refuted.
    let too_fast: TimingCondition<bool, &str> = TimingCondition::new(
        "TOO-FAST",
        Interval::closed(Rat::from(2), Rat::from(3)).unwrap(),
    )
    .triggered_by_step(|_, a, _| *a == "press")
    .on_actions(|a| *a == "walk");
    let refuted = ZoneChecker::new(&timed)
        .verify_condition(&too_fast)
        .unwrap();
    println!(
        "\ncounter-check: claiming response ≥ 2 is refuted (walk can come at {})",
        refuted.earliest_pi
    );
    assert!(!refuted.satisfies(too_fast.bounds()));
    assert!(all_ok && report.passed());
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}
