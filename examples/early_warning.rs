//! Early-warning deadline prediction on the paper's resource manager.
//!
//! The streaming example catches a violation *at* the offending event;
//! this one predicts it. A `Monitor` built with `with_predictor` arms
//! the compiled engine itself with a slack horizon (Section 3.1's
//! `Lt`/`Ft` residuals, tracked natively by both backends): every open
//! deadline reports its remaining slack, a `Warning` fires as soon as
//! slack drops to the horizon — before the violation, if one follows —
//! and a `Forced` verdict marks each trigger that opens a lower-bound
//! window at least the horizon wide.
//!
//! ```console
//! $ cargo run --example early_warning
//! ```

use tempo_core::{time_ab, SatisfactionMode, TimedSequence};
use tempo_math::Rat;
use tempo_monitor::{Monitor, MonitorPool, PoolConfig, Verdict};
use tempo_sim::{predictive_audit_runs, Ensemble};
use tempo_systems::resource_manager::{self, g1, g2, Params};

fn main() {
    let params = Params::ints(3, 2, 3, 1).expect("valid parameters");
    println!(
        "System: resource manager (k = {}, ticks in [{}, {}], local delay <= {})",
        params.k, params.c1, params.c2, params.l
    );
    let impl_aut = time_ab(&resource_manager::system(&params));
    let runs = Ensemble::new(8, 120).with_extremal(true).collect(&impl_aut);
    let conds = [g1(&params), g2(&params)];
    let horizon = Rat::ONE;

    // 1. Stretch one run 2x so the GRANTs drift past their deadlines,
    //    then watch it live with a predictor: the Warning lands strictly
    //    before the violation it predicts.
    let run = &runs[0];
    let mut late = TimedSequence::new(*run.first_state());
    for (_, a, t, post) in run.step_triples() {
        late.push(*a, t * Rat::from(2), *post);
    }
    let mut mon = Monitor::new(&conds, late.first_state()).with_predictor(horizon);
    println!("\n1. one stretched run, horizon = {horizon}:");
    for (_, a, t, post) in late.step_triples() {
        match mon.observe(a, t, post) {
            Verdict::Warning(w) => println!(
                "   t = {t}: WARNING  {} deadline {} at risk (slack {})",
                w.condition, w.deadline, w.slack
            ),
            Verdict::Forced(fw) => println!(
                "   t = {t}: FORCED   {} holds {:?} until {} (margin {})",
                fw.condition, fw.action, fw.earliest, fw.margin
            ),
            Verdict::UpperBoundViolation(v) => {
                println!("   t = {t}: VIOLATED {} ({:?})", v.condition, v.kind);
                break;
            }
            Verdict::LowerBoundViolation(v) => {
                println!("   t = {t}: VIOLATED {} ({:?})", v.condition, v.kind);
                break;
            }
            Verdict::Ok => {
                if let Some(slack) = mon.min_slack() {
                    println!("   t = {t}: ok       (min slack {slack})");
                }
            }
        }
    }
    let (violations, warnings) = mon.finish_with_warnings(SatisfactionMode::Prefix);
    println!(
        "   -> {} violation(s), {} warning(s); every deadline violation was warned >= {horizon} early",
        violations.len(),
        warnings.len()
    );

    // 2. The honest ensemble through the predictive audit: no
    //    violations, and the near-miss count shows how close the
    //    schedule sails to its deadlines.
    let summary = predictive_audit_runs(&runs, &conds, horizon);
    println!("\n2. honest ensemble : {summary} (warnings here are near misses, not failures)");

    // 3. The same ensemble, half of it stretched, through a pool with
    //    per-stream predictors — batch submission, one lock per run.
    let config = PoolConfig {
        horizon: Some(horizon),
        ..PoolConfig::default()
    };
    let mut pool = MonitorPool::new(&conds, config);
    let metrics = pool.metrics();
    for (i, run) in runs.iter().enumerate() {
        let factor = if i % 2 == 0 { Rat::new(3, 2) } else { Rat::ONE };
        let mut stream = pool.open_stream(*run.first_state());
        stream
            .send_batch(
                run.step_triples()
                    .map(|(_, a, t, post)| (*a, t * factor, *post)),
            )
            .expect("block policy");
        stream.finish();
    }
    let report = pool.shutdown();
    let warned_streams = report
        .streams
        .iter()
        .filter(|s| !s.warnings.is_empty())
        .count();
    println!(
        "\n3. pooled, batched : {} streams, {} violations, {} warnings ({} streams warned)\n",
        report.streams.len(),
        report.violations().len(),
        report.warnings().len(),
        warned_streams
    );
    println!("{}", metrics.snapshot().render());
}
