//! Experiment E2 — the paper's §6 signal relay, end to end.
//!
//! Prints the hierarchical proof structure (one strong possibilities
//! mapping per level, §6.4), the exact `U_{0,n}` bounds from the zone
//! checker, and simulated delays, for lines of increasing length.
//!
//! Run with: `cargo run --example signal_relay`

use tempo_math::TimeVal;
use tempo_systems::signal_relay::{self, RelayParams};

fn main() {
    println!("E2 — signal relay (paper §6): SIGNAL_n within [n·d1, n·d2] of SIGNAL_0\n");
    println!(
        "{:<16} {:<14} {:<14} {:<16} {:<16} verdict",
        "params (n,d1,d2)", "paper bound", "zone bound", "sim [min,max]", "chain levels"
    );

    let mut failures = 0;
    for (n, d1, d2) in [
        (1, 1, 2),
        (2, 1, 2),
        (3, 1, 2),
        (4, 1, 3),
        (5, 2, 5),
        (6, 1, 4),
    ] {
        let params = RelayParams::ints(n, d1, d2).unwrap();
        let v = signal_relay::verify(&params);
        let bounds = params.u0n_bounds();
        let zone = format!("[{}, {}]", v.zone_u0n.earliest_pi, v.zone_u0n.latest_armed);
        let sim = match (v.sim_delay.min, v.sim_delay.max) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            _ => "(no delivery observed)".to_string(),
        };
        let chain_ok = v.chain_reports.iter().all(|r| r.passed());
        let exact = v.zone_u0n.earliest_pi == TimeVal::from(bounds.lo())
            && v.zone_u0n.latest_armed == bounds.hi();
        let ok = v.all_passed() && exact;
        if !ok {
            failures += 1;
        }
        println!(
            "{:<16} {:<14} {:<14} {:<16} {:<16} {}",
            format!("({n},{d1},{d2})"),
            bounds.to_string(),
            zone,
            sim,
            format!(
                "{} maps {}",
                v.chain_reports.len(),
                if chain_ok { "PASS" } else { "FAIL" }
            ),
            if ok { "OK" } else { "MISMATCH" },
        );
    }

    // Show the anatomy of one hierarchy in detail.
    let params = RelayParams::ints(4, 1, 3).unwrap();
    let v = signal_relay::verify(&params);
    println!("\nhierarchy anatomy for n = 4 (top → bottom):");
    let names: Vec<String> = std::iter::once("time(Ã,b̃) → B_3 (rename SIGNAL_4 ↦ U_{3,4})".into())
        .chain((1..4).rev().map(|k| format!("f_{k} : B_{k} → B_{}", k - 1)))
        .chain(std::iter::once(
            "B_0 → B (forget boundmap conditions)".into(),
        ))
        .collect();
    for (name, report) in names.iter().zip(&v.chain_reports) {
        println!(
            "  {:<44} {} steps, {} spec states … {}",
            name,
            report.steps_checked,
            report.spec_states_checked,
            if report.passed() { "PASS" } else { "FAIL" }
        );
    }

    assert_eq!(failures, 0);
    println!("\nall line lengths reproduce [n·d1, n·d2] exactly");
}
