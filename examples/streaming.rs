//! Streaming runtime verification of the paper's resource manager.
//!
//! Simulates a batch of manager executions, then watches them *live*
//! through `tempo-monitor`: first a single `Monitor` on one run (with a
//! time-compressed variant to show a violation being caught at the
//! offending event), then a `MonitorPool` auditing the whole batch
//! across worker threads, with its metrics snapshot.
//!
//! ```console
//! $ cargo run --example streaming
//! ```

use tempo_core::{time_ab, SatisfactionMode, TimedSequence};
use tempo_math::Rat;
use tempo_monitor::{Monitor, MonitorPool, PoolConfig, Verdict};
use tempo_sim::Ensemble;
use tempo_systems::resource_manager::{self, g1, g2, Params};

fn main() {
    let params = Params::ints(3, 2, 3, 1).expect("valid parameters");
    println!(
        "System: resource manager (k = {}, ticks in [{}, {}], local delay <= {})",
        params.k, params.c1, params.c2, params.l
    );
    let impl_aut = time_ab(&resource_manager::system(&params));
    let runs = Ensemble::new(8, 120).with_extremal(true).collect(&impl_aut);
    let conds = [g1(&params), g2(&params)];

    // 1. One live monitor on one honest run: every event is Ok.
    let run = &runs[0];
    let mut mon = Monitor::new(&conds, run.first_state());
    let mut peak = 0;
    for (_, a, t, post) in run.step_triples() {
        assert_eq!(mon.observe(a, t, post), Verdict::Ok);
        peak = peak.max(mon.open_obligations());
    }
    assert!(mon.finish(SatisfactionMode::Prefix).is_empty());
    println!(
        "\n1. live monitor    : {} events, no alarms, <= {} obligations open at once",
        run.len(),
        peak
    );

    // 2. Compress time 4x: the first GRANT now lands before k*c1, and
    //    the monitor flags it at the exact event where it happens.
    let factor = Rat::new(1, 4);
    let mut hurried = TimedSequence::new(*run.first_state());
    for (_, a, t, post) in run.step_triples() {
        hurried.push(*a, t * factor, *post);
    }
    let mut mon = Monitor::new(&conds, hurried.first_state());
    let caught = hurried
        .step_triples()
        .map(|(_, a, t, post)| (mon.observe(a, t, post), t))
        .find(|(v, _)| !v.is_ok());
    match caught {
        Some((verdict, t)) => {
            let v = verdict.violation().expect("violating verdict");
            println!(
                "2. hurried variant : {} violated at t = {} ({:?}) -- caught online",
                v.condition, t, v.kind
            );
        }
        None => println!("2. hurried variant : no violation (unexpectedly slow run)"),
    }

    // 3. The whole batch through a pool of workers, one stream per run.
    let mut pool = MonitorPool::new(&conds, PoolConfig::default());
    for run in &runs {
        let mut stream = pool.open_stream(*run.first_state());
        for (_, a, t, post) in run.step_triples() {
            stream.send(*a, t, *post).expect("block policy");
        }
        stream.finish();
    }
    let report = pool.shutdown();
    println!(
        "3. pooled audit    : {} streams, {} violations\n",
        report.streams.len(),
        report.violations().len()
    );
    println!("{}", report.metrics.render());
}
