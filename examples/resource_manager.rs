//! Experiment E1 — the paper's §4 resource manager, end to end.
//!
//! For each parameter set this prints the paper's claimed bounds for `G1`
//! (time to the first GRANT) and `G2` (between GRANTs), the exact bounds
//! recovered by the zone-based model checker, the min/max observed by
//! simulation, the verdict of the §4.3 inequality-mapping check (Lemma
//! 4.3), and the Lemma 4.1 invariant audit.
//!
//! Run with: `cargo run --example resource_manager`

use tempo_math::TimeVal;
use tempo_systems::resource_manager::{self, Params};

fn main() {
    let parameter_sets = [
        Params::ints(1, 2, 3, 1).unwrap(),
        Params::ints(2, 2, 3, 1).unwrap(),
        Params::ints(3, 2, 5, 1).unwrap(),
        Params::ints(5, 4, 6, 3).unwrap(),
        Params::new(
            4,
            "3/2".parse().unwrap(),
            "5/2".parse().unwrap(),
            "1/2".parse().unwrap(),
        )
        .unwrap(),
    ];

    println!("E1 — resource manager (paper §4): GRANT every k ticks");
    println!("boundmap: TICK ∈ [c1, c2], LOCAL ∈ [0, l], assumption c1 > l\n");
    println!(
        "{:<22} {:<18} {:<18} {:<18} {:<10} {:<9} verdict",
        "params (k,c1,c2,l)", "G1 paper", "G1 zone", "G1 sim [min,max]", "mapping", "lemma4.1"
    );

    let mut failures = 0;
    for params in &parameter_sets {
        let v = resource_manager::verify(params);
        let g1 = params.g1_bounds();
        let zone = format!("[{}, {}]", v.zone_g1.earliest_pi, v.zone_g1.latest_armed);
        let sim = match (v.sim_first.min, v.sim_first.max) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            _ => "-".to_string(),
        };
        let ok = v.all_passed()
            && v.zone_g1.earliest_pi == TimeVal::from(g1.lo())
            && v.zone_g1.latest_armed == g1.hi();
        if !ok {
            failures += 1;
        }
        println!(
            "{:<22} {:<18} {:<18} {:<18} {:<10} {:<9} {}",
            format!("({},{},{},{})", params.k, params.c1, params.c2, params.l),
            g1.to_string(),
            zone,
            sim,
            if v.mapping_report.passed() {
                "PASS"
            } else {
                "FAIL"
            },
            if v.lemma_4_1 { "PASS" } else { "FAIL" },
            if ok { "OK" } else { "MISMATCH" },
        );
    }

    println!("\nG2 (between consecutive GRANTs), same sweep:");
    println!(
        "{:<22} {:<18} {:<18} {:<18}",
        "params", "G2 paper", "G2 zone", "G2 sim [min,max]"
    );
    for params in &parameter_sets {
        let v = resource_manager::verify(params);
        let g2 = params.g2_bounds();
        let zone = format!("[{}, {}]", v.zone_g2.earliest_pi, v.zone_g2.latest_armed);
        let sim = match (v.sim_gap.min, v.sim_gap.max) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            _ => "-".to_string(),
        };
        if v.zone_g2.earliest_pi != TimeVal::from(g2.lo()) || v.zone_g2.latest_armed != g2.hi() {
            failures += 1;
        }
        println!(
            "{:<22} {:<18} {:<18} {:<18}",
            format!("({},{},{},{})", params.k, params.c1, params.c2, params.l),
            g2.to_string(),
            zone,
            sim
        );
    }

    // The role of the assumption c1 > l (Lemma 4.1): without it, the
    // manager can miss ticks and TIMER dips below zero.
    println!("\nLemma 4.1 ablation: TIMER ≥ 0 requires c1 > l — see");
    println!("`resource_manager::invariant` tests for the violating run when c1 ≤ l.");

    assert_eq!(
        failures, 0,
        "all parameter sets must reproduce the paper bounds"
    );
    println!("\nall parameter sets reproduce the paper's bounds exactly");
}
