//! Hot spec reload: tightening a `.tspec` bound in the middle of live
//! monitored streams, without dropping a single event.
//!
//! The shipped `request_manager.tspec` requires every `REQUEST` to be
//! answered by a `GRANT` within `[4, 10]`. Mid-stream the bound is
//! tightened (textually!) to `[4, 6]` and hot-swapped into a running
//! `MonitorPool`:
//!
//! * every event sent before, during, and after the swap is processed —
//!   the final per-stream event counts equal the send counts;
//! * obligations open at the swap carry forward with their **absolute**
//!   deadlines (revising a spec does not revise history);
//! * triggers that fire after the swap are held to the tighter bound,
//!   so slow schedules that were legal under `[4, 10]` now violate.
//!
//! ```console
//! $ cargo run --example spec_reload
//! ```

use std::sync::Arc;

use tempo_core::time_ab;
use tempo_monitor::{MonitorPool, PoolConfig};
use tempo_sim::Ensemble;
use tempo_spec::SpecRevision;
use tempo_systems::{request_manager, resource_manager};

fn main() {
    // 1. Compile the shipped spec, exactly as the differential tests do.
    let src = request_manager::tspec_source();
    let rev = SpecRevision::compile(src, &request_manager::tspec_binder())
        .expect("shipped spec compiles");
    println!(
        "loaded spec '{}': {} condition(s), {} warning(s)",
        rev.name(),
        rev.len(),
        rev.warnings().len()
    );
    for line in src.lines().filter(|l| l.trim_start().starts_with("bounds")) {
        println!("    {}", line.trim());
    }

    // 2. Simulate the manager and stream the runs through a pool built
    //    directly from the compiled revision.
    let params = resource_manager::Params::ints(3, 2, 3, 1).expect("valid parameters");
    let runs = Ensemble::new(6, 160).collect(&time_ab(&request_manager::rq_system(&params)));
    let mut pool = MonitorPool::from_compiled(
        Arc::clone(rev.compiled()),
        PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        },
    );

    // First half of every run now; hold the rest back for after the swap.
    let mut sent = 0u64;
    let mut pending = Vec::new();
    for run in &runs {
        let steps: Vec<_> = run
            .step_triples()
            .map(|(_, a, t, post)| (*a, t, *post))
            .collect();
        let mut h = pool.open_stream(*run.first_state());
        let half = steps.len() / 2;
        for (a, t, post) in &steps[..half] {
            h.send(*a, *t, *post).expect("block policy");
            sent += 1;
        }
        pending.push((h, steps[half..].to_vec()));
    }
    // Let the workers catch up so the swap finds the obligations open.
    while pool.metrics().snapshot().events < sent {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // 3. Tighten the bound in the *source text* and hot-swap.
    let tightened_src = src.replace("bounds [4, 10];", "bounds [4, 6];");
    assert_ne!(tightened_src, src, "the canonical bounds line moved");
    let tightened = SpecRevision::compile(&tightened_src, &request_manager::tspec_binder())
        .expect("tightened spec compiles");
    let report = pool.reload_spec(&tightened);
    println!("\nhot reload: RESPONSE bounds [4, 10] -> [4, 6] mid-stream");
    println!(
        "    {} worker(s) acknowledged, {} stream(s) swapped, {} obligation(s) carried, {} dropped",
        report.workers,
        report.streams,
        report.carried,
        report.dropped.len()
    );

    // 4. Second halves under the tightened revision.
    for (mut h, rest) in pending {
        for (a, t, post) in rest {
            h.send(a, t, post).expect("block policy");
            sent += 1;
        }
        h.finish();
    }
    let report = pool.shutdown();
    let processed: u64 = report.streams.iter().map(|s| s.events as u64).sum();
    println!("\nevents sent {sent}, processed {processed} -- none dropped across the swap");
    assert_eq!(processed, sent, "hot reload must not drop events");
    for s in &report.streams {
        print!(
            "    stream {}: {} events, {} violation(s)",
            s.stream,
            s.events,
            s.violations.len()
        );
        match s.violations.first() {
            Some(v) => println!(" -- first: {} {:?}", v.condition, v.kind),
            None => println!(),
        }
    }
    println!(
        "\nCarried obligations kept their absolute [4, 10] deadlines; only\n\
         triggers after the swap answer to [4, 6] -- slow streams violate now."
    );
}
