//! Experiment E4 — the completeness theorem (paper §7) in action.
//!
//! Theorem 7.1 says: whenever the timing requirements actually hold, the
//! *canonical* mapping — built from the `sup`/`inf` of first-occurrence
//! times over all extensions of each state — is a strong possibilities
//! mapping. This example constructs that mapping for the resource manager
//! with an exhaustive corner-schedule oracle, shows that it coincides with
//! the hand-written §4.3 mapping at the start state, and runs it through
//! the mapping checker.
//!
//! Run with: `cargo run --example completeness`

use tempo_core::completeness::{CanonicalMapping, ExhaustiveOracle, FirstOracle, SampledOracle};
use tempo_core::mapping::{MappingChecker, PossibilitiesMapping, RunPlan};
use tempo_core::{time_ab, TimeIoa};
use tempo_systems::resource_manager::{self, g1, g2, Params, RmMapping};

fn main() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let timed = resource_manager::system(&params);
    let impl_aut: TimeIoa<_> = time_ab(&timed);
    let spec_aut = resource_manager::requirements_automaton(&timed, &params);
    let spec_conds = [g1(&params), g2(&params)];

    println!("E4 — completeness (paper §7), resource manager k=2, c=[2,3], l=1\n");

    // The canonical bounds at the start state.
    let s0 = impl_aut.initial_states().pop().unwrap();
    let oracle = ExhaustiveOracle::new(&impl_aut, 14);
    let b_g1 = oracle.first_bounds(&s0, &spec_conds[0]);
    println!("canonical bounds at the start state (exhaustive corner search):");
    println!(
        "  sup first_G1 = {}   (paper: k·c2 + l = 7)",
        b_g1.sup_first
    );
    println!("  inf first_ΠG1 = {}  (paper: k·c1 = 4)", b_g1.inf_first_pi);

    // Compare with the hand-written mapping's region at the start state.
    let hand = RmMapping::new(params.clone());
    println!("\nregion at the start state:");
    println!(
        "  hand-written §4.3 : {:?}",
        hand.region(&s0).constraints()[0]
    );
    let canonical = CanonicalMapping::new(ExhaustiveOracle::new(&impl_aut, 14), &spec_conds);
    println!(
        "  canonical (§7)    : {:?}",
        canonical.region(&s0).constraints()[0]
    );

    // A Monte-Carlo oracle brackets the exhaustive one from inside.
    let sampled = SampledOracle::new(&impl_aut, 200, 40, 42).first_bounds(&s0, &spec_conds[0]);
    println!(
        "\nMonte-Carlo estimate (200 runs): sup ≈ {}, inf ≈ {}",
        sampled.sup_first, sampled.inf_first_pi
    );
    assert!(sampled.sup_first <= b_g1.sup_first);
    assert!(sampled.inf_first_pi >= b_g1.inf_first_pi);

    // The canonical mapping passes the checker (Theorem 7.1).
    let report = MappingChecker::new().check(
        &impl_aut,
        &spec_aut,
        &canonical,
        &RunPlan {
            random_runs: 4,
            steps: 16, // the oracle re-searches per state; keep runs short
            seed: 99,
        },
    );
    println!(
        "\nmapping checker on the canonical mapping: {} steps × {} spec states … {}",
        report.steps_checked,
        report.spec_states_checked,
        if report.passed() { "PASS" } else { "FAIL" }
    );
    if let Some(v) = report.violations.first() {
        println!("  first violation: {v}");
    }
    assert!(
        report.passed(),
        "Theorem 7.1: the canonical mapping must verify"
    );
    println!("\nTheorem 7.1 confirmed on this instance.");
}
