//! Experiment E7c — Fischer-style timed mutual exclusion (an instance of
//! the "timing-dependent algorithms" the paper's conclusions call for).
//!
//! Sweeps the write bound `a` against the check delay `b` and shows the
//! safety frontier `a < b`, found exactly by the zone checker; then proves
//! the solo entry-time bound `[b, 2a + B]` by both the mapping method and
//! zones.
//!
//! Run with: `cargo run --example fischer`

use tempo_systems::fischer::{self, FischerParams};

fn main() {
    println!("E7c — Fischer mutual exclusion: write within a, check after [b, B]\n");

    println!("safety frontier (n = 2, B = b + 2): mutual exclusion holds iff a < b");
    println!("{:<8} {:<8} {:<12} zone checker", "a", "b", "prediction");
    let mut agreement = true;
    for a in 1..=4i64 {
        for b in 1..=4i64 {
            let params = FischerParams::ints(2, a, b, b + 2);
            let violation = fischer::check_mutual_exclusion(&params).unwrap();
            let safe = violation.is_none();
            let predicted = params.safe();
            if safe != predicted {
                agreement = false;
            }
            println!(
                "{:<8} {:<8} {:<12} {}",
                a,
                b,
                if predicted { "safe" } else { "unsafe" },
                if safe { "safe" } else { "VIOLATION found" },
            );
        }
    }
    assert!(
        agreement,
        "the zone checker must agree with the a < b frontier"
    );

    println!("\nsolo entry time (n = 1): first CHECK within [b, 2a + B] of the start");
    println!(
        "{:<14} {:<14} {:<14} {:<10} verdict",
        "(a, b, B)", "paper-style", "zone exact", "mapping"
    );
    for (a, b, big_b) in [(1, 2, 4), (2, 3, 5), (1, 5, 9)] {
        let params = FischerParams::ints(1, a, b, big_b);
        let v = fischer::verify(&params);
        let bounds = params.solo_entry_bounds();
        println!(
            "{:<14} {:<14} {:<14} {:<10} {}",
            format!("({a},{b},{big_b})"),
            bounds.to_string(),
            format!(
                "[{}, {}]",
                v.solo_entry.earliest_pi, v.solo_entry.latest_armed
            ),
            if v.solo_mapping.passed() {
                "PASS"
            } else {
                "FAIL"
            },
            if v.all_passed() { "OK" } else { "MISMATCH" },
        );
        assert!(v.all_passed());
    }

    println!("\nzone checker and the a < b frontier agree on all 16 grid points");
}
