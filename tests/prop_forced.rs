//! Property tests for forced windows — the `Ft(U)` half of prediction.
//!
//! On random condition sets and random traces: (1) **soundness** — a
//! `Π`-event inside a reported forced window is never legally observed;
//! the first `Π`-event strictly before the window's `earliest` is
//! exactly the lower-bound violation the offline checker reports for
//! that trigger; (2) every reported window is at least the horizon wide
//! and internally consistent (`earliest = at + margin`, no duplicate
//! identity); (3) **horizon-0 silence** — with a zero horizon no forced
//! window is ever reported, on any trace.

use proptest::prelude::*;
use tempo_core::{ActionSet, SatisfactionMode, TimedSequence, TimingCondition, ViolationKind};
use tempo_math::{Interval, Rat};
use tempo_monitor::replay_predictive_full;

const UNIVERSE: u32 = 6;
const START: u32 = 999;

/// A generated condition: integral bounds, action-set trigger and `Π`,
/// **no disabling** — so the legality of a `Π`-event inside a window is
/// decided by timing alone.
#[derive(Clone, Debug)]
struct CondSpec {
    lo: i64,
    hi: i64,
    start_trigger: bool,
    trigger: Vec<u32>,
    pi: Vec<u32>,
}

impl CondSpec {
    fn build(&self, name: &str) -> TimingCondition<u32, u32> {
        let bounds = Interval::closed(Rat::from(self.lo), Rat::from(self.hi)).unwrap();
        let mut c = TimingCondition::new(name, bounds)
            .triggered_by_actions(ActionSet::of(self.trigger.iter().copied()))
            .on_action_set(ActionSet::of(self.pi.iter().copied()));
        if self.start_trigger {
            c = c.triggered_at_start(|s| *s == START);
        }
        c
    }
}

fn subset() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..UNIVERSE, 0..3)
}

fn cond_spec() -> impl Strategy<Value = CondSpec> {
    (0i64..=5, 1i64..=5, any::<bool>(), subset(), subset()).prop_map(
        |(lo, spread, start_trigger, trigger, pi)| CondSpec {
            lo,
            hi: (lo + spread).max(1),
            start_trigger,
            trigger,
            pi,
        },
    )
}

/// Traces step in quarter units, so times mix on- and off-grid and the
/// int backend spills mid-stream under random schedules.
fn trace() -> impl Strategy<Value = Vec<(u32, i64)>> {
    proptest::collection::vec(((0..UNIVERSE + 2), 0i64..=9), 0..24)
}

fn to_sequence(events: &[(u32, i64)]) -> TimedSequence<u32, u32> {
    let mut s = TimedSequence::new(START);
    let mut t = 0i64;
    for &(a, dt) in events {
        t += dt;
        s.push(a, Rat::new(t.into(), 4), a);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: no `Π`-event is legally observed inside a reported
    /// forced window. The first `Π`-event of the window's condition
    /// after its trigger, if it lands strictly before `earliest`, is
    /// reported as exactly that trigger's lower-bound violation.
    #[test]
    fn no_event_is_legal_inside_a_forced_window(
        specs in proptest::collection::vec(cond_spec(), 1..4),
        events in trace(),
        h in 0i64..=3,
    ) {
        let conds: Vec<TimingCondition<u32, u32>> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.build(&format!("c{i}")))
            .collect();
        let seq = to_sequence(&events);
        let horizon = Rat::from(h);
        let (violations, _warnings, forced) =
            replay_predictive_full(&seq, &conds, SatisfactionMode::Prefix, horizon);
        for fw in &forced {
            // Internal consistency of the report.
            prop_assert!(fw.margin >= horizon, "margin below horizon: {fw:?}");
            prop_assert_eq!(fw.at + fw.margin, fw.earliest, "earliest != at + margin");
            prop_assert_eq!(fw.horizon, horizon);
            // The first Π-event after the trigger resolves the window's
            // obligation: strictly inside the window it must be the
            // lower-bound violation the checker reports for this trigger.
            let spec = &specs[fw.condition_index];
            let first_pi = seq
                .step_triples()
                .enumerate()
                .map(|(i, (_, a, t, _))| (i + 1, *a, t))
                .find(|(i, a, _)| *i > fw.trigger_index && spec.pi.contains(a));
            if let Some((event_index, _, t)) = first_pi {
                if t < fw.earliest {
                    let hit = violations.iter().any(|v| {
                        *v.condition == *format!("c{}", fw.condition_index)
                            && matches!(
                                v.kind,
                                ViolationKind::LowerBound {
                                    trigger_index,
                                    event_index: ei,
                                    earliest,
                                } if trigger_index == fw.trigger_index
                                    && ei == event_index
                                    && earliest == fw.earliest
                            )
                    });
                    prop_assert!(
                        hit,
                        "Π-event {event_index} at t = {t} sits inside forced window {fw:?} \
                         but no matching lower-bound violation was reported: {violations:?}"
                    );
                }
            }
        }
        // A forced window is reported at most once per obligation.
        for (i, fw) in forced.iter().enumerate() {
            prop_assert!(!forced[..i].contains(fw), "duplicate forced window {fw:?}");
        }
    }

    /// Horizon-0 silence: with a zero horizon, no trace — violating or
    /// not — ever produces a forced window (or a warning on clean
    /// streams, which `prop_predictor` already pins down).
    #[test]
    fn horizon_zero_reports_no_forced_windows(
        specs in proptest::collection::vec(cond_spec(), 1..4),
        events in trace(),
    ) {
        let conds: Vec<TimingCondition<u32, u32>> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.build(&format!("c{i}")))
            .collect();
        let seq = to_sequence(&events);
        for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
            let (_, _, forced) = replay_predictive_full(&seq, &conds, mode, Rat::ZERO);
            prop_assert!(forced.is_empty(), "horizon 0 forced: {forced:?}");
        }
    }
}
