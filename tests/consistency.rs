//! Cross-method consistency: for every system and bound in this
//! repository, the three verification paths must brace one another —
//! `zone.earliest ≤ sim.min ≤ sim.max ≤ zone.latest`, mapping verdicts
//! agree with zone verdicts, and the general `time(A, U)` construction
//! agrees with the §3.2 special case along real runs.

use tempo_core::{project, time_ab, update_time_ab, RandomScheduler};
use tempo_math::TimeVal;
use tempo_sim::GapStats;
use tempo_systems::resource_manager::{self, Params, RmAction};
use tempo_systems::signal_relay::{self, RelayParams};
use tempo_systems::two_event_chain::{self, ChainParams};

/// Zone extremes bracket simulated extremes on the resource manager.
#[test]
fn zone_brackets_simulation_rm() {
    let params = Params::ints(3, 2, 4, 1).unwrap();
    let v = resource_manager::verify(&params);
    let lo = v.zone_g1.earliest_pi;
    let hi = v.zone_g1.latest_armed;
    assert!(TimeVal::from(v.sim_first.min.unwrap()) >= lo);
    assert!(TimeVal::from(v.sim_first.max.unwrap()) <= hi);
    let lo2 = v.zone_g2.earliest_pi;
    let hi2 = v.zone_g2.latest_armed;
    assert!(TimeVal::from(v.sim_gap.min.unwrap()) >= lo2);
    assert!(TimeVal::from(v.sim_gap.max.unwrap()) <= hi2);
}

/// Same bracketing on the relay and the chain.
#[test]
fn zone_brackets_simulation_relay_and_chain() {
    let params = RelayParams::ints(3, 1, 3).unwrap();
    let v = signal_relay::verify(&params);
    if let (Some(lo), Some(hi)) = (v.sim_delay.min, v.sim_delay.max) {
        assert!(TimeVal::from(lo) >= v.zone_u0n.earliest_pi);
        assert!(TimeVal::from(hi) <= v.zone_u0n.latest_armed);
    }
    let params = ChainParams::ints((0, 2), (1, 3), (2, 4));
    let v = two_event_chain::verify(&params);
    if let (Some(lo), Some(hi)) = (v.sim_delay.min, v.sim_delay.max) {
        assert!(TimeVal::from(lo) >= v.zone.earliest_pi);
        assert!(TimeVal::from(hi) <= v.zone.latest_armed);
    }
}

/// The zone-exact latest time is *attained* by the completion events too
/// (`latest_pi == latest_armed` for these deadline-driven systems).
#[test]
fn latest_completion_attains_supremum() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let v = resource_manager::verify(&params);
    assert_eq!(v.zone_g1.latest_pi, v.zone_g1.latest_armed);
    assert_eq!(v.zone_g2.latest_pi, v.zone_g2.latest_armed);
}

/// The general `time(A, U_b)` update and the §3.2 specialized rules agree
/// on every step of real system runs (both examples).
#[test]
fn general_vs_special_update_on_real_systems() {
    // Resource manager.
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let timed = resource_manager::system(&params);
    let aut = time_ab(&timed);
    for seed in 0..6 {
        let (run, _) = aut.generate(&mut RandomScheduler::new(seed), 50);
        for (pre, a, t, post) in run.step_triples() {
            let special = update_time_ab(
                timed.automaton().as_ref(),
                timed.boundmap(),
                pre,
                a,
                t,
                &post.base,
            );
            assert_eq!(post, &special, "divergence at ({a:?}, {t})");
        }
    }
    // Relay.
    let params = RelayParams::ints(3, 1, 2).unwrap();
    let timed = signal_relay::relay_line(&params);
    let aut = time_ab(&timed);
    for seed in 0..6 {
        let (run, _) = aut.generate(&mut RandomScheduler::new(seed), 12);
        for (pre, a, t, post) in run.step_triples() {
            let special = update_time_ab(
                timed.automaton().as_ref(),
                timed.boundmap(),
                pre,
                a,
                t,
                &post.base,
            );
            assert_eq!(post, &special);
        }
    }
}

/// Determinized measurement: two ensembles with the same seed produce
/// identical statistics (full reproducibility of the experiment tables).
#[test]
fn experiments_are_reproducible() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let a = resource_manager::verify(&params);
    let b = resource_manager::verify(&params);
    assert_eq!(a.sim_first, b.sim_first);
    assert_eq!(a.sim_gap, b.sim_gap);
    assert_eq!(a.zone_g1.earliest_pi, b.zone_g1.earliest_pi);
    assert_eq!(
        a.mapping_report.steps_checked,
        b.mapping_report.steps_checked
    );
}

/// The sim statistics derive from projections faithfully: recomputing
/// first-GRANT stats from raw runs matches the harness's numbers.
#[test]
fn stats_match_raw_projection() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let timed = resource_manager::system(&params);
    let impl_aut = time_ab(&timed);
    let runs = tempo_sim::Ensemble::new(24, 100).collect(&impl_aut);
    let expected = GapStats::first(&runs, |a| *a == RmAction::Grant);
    let v = resource_manager::verify(&params);
    assert_eq!(v.sim_first, expected);
    // Spot check: first-grant of the earliest run equals k·c1.
    let first_run = &runs[0];
    let first = first_run
        .timed_schedule()
        .into_iter()
        .find(|(a, _)| *a == RmAction::Grant)
        .map(|(_, t)| t)
        .unwrap();
    assert_eq!(first, params.c1.scale(params.k as i128));
    let _ = project(&impl_aut.generate(&mut RandomScheduler::new(0), 5).0);
}

/// Lemma 4.2, executable: the resource manager's timed executions are all
/// infinite (symbolic progress check passes); the relay's are not (it
/// deadlocks after delivery), which is exactly why §6 dummifies before
/// applying the mapping theorem — and the dummified relay is live.
#[test]
fn lemma_4_2_progress() {
    use tempo_math::Interval;
    use tempo_zones::{Progress, ZoneChecker};

    let params = Params::ints(2, 2, 3, 1).unwrap();
    let manager = resource_manager::system(&params);
    let verdict = ZoneChecker::new(&manager).check_progress().unwrap();
    assert!(verdict.is_live(), "{verdict:?}");

    let relay = signal_relay::relay_line(&RelayParams::ints(2, 1, 2).unwrap());
    let verdict = ZoneChecker::new(&relay).check_progress().unwrap();
    match verdict {
        Progress::Deadlock { state } => {
            assert!(state.iter().all(|f| !f), "halts after delivery");
        }
        other => panic!("the relay must deadlock, got {other:?}"),
    }

    let dummified = tempo_core::dummify(
        &relay,
        Interval::closed(tempo_math::Rat::ONE, tempo_math::Rat::from(2)).unwrap(),
    )
    .unwrap();
    let verdict = ZoneChecker::new(&dummified).check_progress().unwrap();
    assert!(verdict.is_live(), "dummification restores liveness");
}

/// MMT equivalence of viewpoints (paper §2.2, footnote 2): building the
/// resource manager as a *composition of timed automata* yields exactly
/// the same verified bounds as the monolithic `(A, b)` of §4.
#[test]
fn composed_timed_viewpoint_agrees() {
    use tempo_core::{compose_timed, Boundmap};
    use tempo_math::Interval;
    use tempo_systems::resource_manager::{g1, g2, Clock, Manager};
    use tempo_zones::ZoneChecker;

    let params = Params::ints(2, 2, 3, 1).unwrap();
    let clock_bounds =
        Boundmap::from_intervals(vec![Interval::new(params.c1, params.c2.into()).unwrap()]);
    let manager_bounds =
        Boundmap::from_intervals(vec![
            Interval::new(tempo_math::Rat::ZERO, params.l.into()).unwrap()
        ]);
    let composed = compose_timed(
        Clock::new(),
        &clock_bounds,
        Manager::new(params.k),
        &manager_bounds,
    )
    .unwrap();
    let via_composition = ZoneChecker::new(&composed)
        .verify_condition(&g1(&params))
        .unwrap();
    let monolithic = resource_manager::system(&params);
    let via_monolith = ZoneChecker::new(&monolithic)
        .verify_condition(&g1(&params))
        .unwrap();
    assert_eq!(via_composition.earliest_pi, via_monolith.earliest_pi);
    assert_eq!(via_composition.latest_armed, via_monolith.latest_armed);
    let g2c = ZoneChecker::new(&composed)
        .verify_condition(&g2(&params))
        .unwrap();
    let g2m = ZoneChecker::new(&monolithic)
        .verify_condition(&g2(&params))
        .unwrap();
    assert_eq!(g2c.earliest_pi, g2m.earliest_pi);
    assert_eq!(g2c.latest_armed, g2m.latest_armed);
}
