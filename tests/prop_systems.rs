//! Property tests over randomly drawn system parameters: the paper's
//! bound formulas hold for *every* valid parameterization, simulated runs
//! never escape the proved intervals, and the trace-checking machinery is
//! internally consistent.

use proptest::prelude::*;
use tempo_core::{project, time_ab, u_b, RandomScheduler, SatisfactionMode};
use tempo_math::{Rat, TimeVal};
use tempo_sim::{audit_runs, Ensemble, GapStats};
use tempo_systems::resource_manager::{self, g1, g2, Params, RmAction};
use tempo_systems::signal_relay::{self, u_kn, RelayParams, Sig};
use tempo_zones::ZoneChecker;

fn rm_params() -> impl Strategy<Value = Params> {
    // k ∈ [1, 4]; c1 = l + δ with l ∈ [1, 4], δ ∈ [1, 3]; c2 = c1 + [0, 4].
    (1u32..=4, 1i64..=4, 1i64..=3, 0i64..=4).prop_map(|(k, l, delta, spread)| {
        let c1 = l + delta;
        Params::ints(k, c1, c1 + spread, l).expect("constructed to be valid")
    })
}

fn relay_params() -> impl Strategy<Value = RelayParams> {
    (1usize..=4, 0i64..=3, 1i64..=3)
        .prop_map(|(n, d1, spread)| RelayParams::ints(n, d1, d1 + spread).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// E1 for arbitrary valid parameters: zone == paper formulas.
    #[test]
    fn rm_zone_bounds_equal_formulas(params in rm_params()) {
        let timed = resource_manager::system(&params);
        let zone = ZoneChecker::new(&timed);
        let v1 = zone.verify_condition(&g1(&params)).unwrap();
        prop_assert_eq!(v1.earliest_pi, TimeVal::from(params.g1_bounds().lo()));
        prop_assert_eq!(v1.latest_armed, params.g1_bounds().hi());
        let v2 = zone.verify_condition(&g2(&params)).unwrap();
        prop_assert_eq!(v2.earliest_pi, TimeVal::from(params.g2_bounds().lo()));
        prop_assert_eq!(v2.latest_armed, params.g2_bounds().hi());
    }

    /// Simulated manager runs always stay inside the proved intervals.
    #[test]
    fn rm_simulation_inside_bounds(params in rm_params(), seed in 0u64..1000) {
        let timed = resource_manager::system(&params);
        let impl_aut = time_ab(&timed);
        let runs = Ensemble::new(4, 80).with_seed(seed).collect(&impl_aut);
        let audit = audit_runs(&runs, &[g1(&params), g2(&params)]);
        prop_assert!(audit.passed(), "{}", audit);
        let first = GapStats::first(&runs, |a| *a == RmAction::Grant);
        if let (Some(lo), Some(hi)) = (first.min, first.max) {
            prop_assert!(params.g1_bounds().contains(lo));
            prop_assert!(params.g1_bounds().contains(hi));
        }
    }

    /// Lemma 4.1 along random runs, for arbitrary parameters.
    #[test]
    fn rm_lemma_4_1(params in rm_params(), seed in 0u64..1000) {
        let impl_aut = time_ab(&resource_manager::system(&params));
        let mut sched = RandomScheduler::new(seed);
        let (run, _) = impl_aut.generate(&mut sched, 60);
        for s in run.states() {
            prop_assert!(resource_manager::lemma_4_1(&params, s), "{s:?}");
        }
    }

    /// E2 for arbitrary valid parameters: zone == n·[d1, d2].
    #[test]
    fn relay_zone_bounds_equal_formulas(params in relay_params()) {
        let timed = signal_relay::relay_line(&params);
        let v = ZoneChecker::new(&timed)
            .verify_condition(&u_kn(0, &params))
            .unwrap();
        prop_assert_eq!(v.earliest_pi, TimeVal::from(params.u0n_bounds().lo()));
        prop_assert_eq!(v.latest_armed, params.u0n_bounds().hi());
    }

    /// Relay deliveries observed in simulation respect n·[d1, d2].
    #[test]
    fn relay_simulation_inside_bounds(params in relay_params(), seed in 0u64..1000) {
        let timed = signal_relay::relay_line(&params);
        let dummified = tempo_core::dummify(
            &timed,
            tempo_math::Interval::closed(Rat::ONE, Rat::from(2)).unwrap(),
        ).unwrap();
        let impl_aut = time_ab(&dummified);
        let mut sched = RandomScheduler::new(seed);
        let (run, _) = impl_aut.generate(&mut sched, 30 + 10 * params.n);
        let seq = tempo_core::undum(&project(&run));
        let sched_events = seq.timed_schedule();
        let t0 = sched_events.iter().find(|(a, _)| a.0 == 0).map(|(_, t)| *t);
        let tn = sched_events
            .iter()
            .find(|(a, _)| a.0 == params.n)
            .map(|(_, t)| *t);
        if let (Some(t0), Some(tn)) = (t0, tn) {
            prop_assert!(params.u0n_bounds().contains(tn - t0), "delay {}", tn - t0);
        }
        // And the run is a timed execution (Definition 2.1).
        prop_assert!(tempo_core::check_timed_execution(
            &seq, &timed, SatisfactionMode::Prefix
        ).is_ok());
    }

    /// Lemma 2.1 equivalence on random manager runs with random
    /// time-compression: the direct Definition 2.1 check and the U_b
    /// condition check agree.
    #[test]
    fn lemma_2_1_agreement_under_compression(
        params in rm_params(),
        seed in 0u64..1000,
        num in 1i128..=8,
    ) {
        let timed = resource_manager::system(&params);
        let conds = u_b(timed.automaton(), timed.boundmap());
        let impl_aut = time_ab(&timed);
        let mut sched = RandomScheduler::new(seed);
        let (run, _) = impl_aut.generate(&mut sched, 40);
        let seq = project(&run);
        // Compress times by num/8 (possibly the identity).
        let factor = Rat::new(num, 8);
        let mut warped = tempo_core::TimedSequence::new(*seq.first_state());
        for (_, a, t, post) in seq.step_triples() {
            warped.push(*a, t * factor, *post);
        }
        let direct = tempo_core::check_timed_execution(
            &warped, &timed, SatisfactionMode::Prefix
        ).is_ok();
        let via = conds.iter().all(|c| tempo_core::semi_satisfies(&warped, c).is_ok());
        prop_assert_eq!(direct, via);
    }

    /// Relay hierarchies of random shape verify at every level.
    #[test]
    fn relay_chain_verifies(params in relay_params()) {
        let timed = signal_relay::relay_line(&params);
        let reports = signal_relay::check_chain(&params, &timed);
        for (i, r) in reports.iter().enumerate() {
            prop_assert!(r.passed(), "level {i}: {:?}", r.violations.first());
        }
    }
}

/// Non-proptest sanity companion: Sig ordering is by index (used by the
/// stats filters above).
#[test]
fn sig_is_ordered_by_index() {
    assert!(Sig(0) < Sig(1));
    assert_eq!(Sig(3), Sig(3));
}
