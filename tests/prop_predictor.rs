//! Property tests for the zone-based early-warning predictor: on random
//! simulated runs — valid and time-warped — (1) attaching a predictor
//! never changes the violation verdicts, (2) every upper-bound violation
//! is preceded by a warning whose lead time is at least the horizon, and
//! (3) a violation-free stream at horizon 0 emits no warnings at all.

use std::sync::Arc;

use proptest::prelude::*;
use tempo_core::engine::{BackendChoice, CompiledConditionSet};
use tempo_core::{time_ab, SatisfactionMode, TimedSequence, TimingCondition, ViolationKind};
use tempo_math::Rat;
use tempo_monitor::{replay, replay_predictive, Monitor};
use tempo_sim::{predictive_audit_runs, Ensemble};
use tempo_systems::resource_manager::{self, g1, g2, Params};

fn rm_params() -> impl Strategy<Value = Params> {
    (1u32..=4, 1i64..=4, 1i64..=3, 0i64..=4).prop_map(|(k, l, delta, spread)| {
        let c1 = l + delta;
        Params::ints(k, c1, c1 + spread, l).expect("constructed to be valid")
    })
}

/// Scales every event time by `factor` (> 0 keeps times nondecreasing):
/// stretching above 1 manufactures upper-bound violations, compression
/// below 1 lower-bound violations.
fn warp<S, A>(seq: &TimedSequence<S, A>, factor: Rat) -> TimedSequence<S, A>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut out = TimedSequence::new(seq.first_state().clone());
    for (_, a, t, post) in seq.step_triples() {
        out.push(a.clone(), t * factor, post.clone());
    }
    out
}

/// Asserts the two predictive guarantees on one sequence:
/// unchanged violations, and a warning with lead ≥ `horizon` before
/// every upper-bound violation. Requires `horizon ≤ b_u` for every
/// condition (otherwise the lead is clamped to `b_u`).
fn assert_predictive_guarantees<S, A>(
    seq: &TimedSequence<S, A>,
    conds: &[TimingCondition<S, A>],
    horizon: Rat,
) -> Result<(), TestCaseError>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
        let plain = replay(seq, conds, mode);
        let (violations, warnings) = replay_predictive(seq, conds, mode, horizon);
        prop_assert_eq!(&plain, &violations, "mode {:?}", mode);
        for v in &violations {
            if let ViolationKind::UpperBound {
                trigger_index,
                deadline,
            } = v.kind
            {
                let w = warnings
                    .iter()
                    .find(|w| {
                        *w.condition == *v.condition
                            && w.trigger_index == trigger_index
                            && w.deadline == deadline
                    })
                    .unwrap_or_else(|| {
                        panic!("upper-bound violation without a preceding warning: {v:?}")
                    });
                prop_assert!(
                    w.deadline - w.at >= horizon,
                    "lead {} below horizon {horizon} for {v:?}",
                    w.deadline - w.at
                );
            }
        }
        // Warnings are per-obligation and at most one each: no warning
        // may repeat its (condition, trigger, deadline) identity.
        for (i, w) in warnings.iter().enumerate() {
            prop_assert!(!warnings[..i].contains(w), "duplicate warning {w:?}");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On resource-manager traces — valid and warped both ways — the
    /// predictor adds warnings without changing verdicts, and every
    /// upper-bound violation was warned at least `horizon` early.
    #[test]
    fn predictor_guarantees_on_rm_traces(
        params in rm_params(),
        seed in 0u64..1000,
        num in 1i128..=16,
    ) {
        let impl_aut = time_ab(&resource_manager::system(&params));
        let runs = Ensemble::new(2, 60).with_seed(seed).collect(&impl_aut);
        let conds = [g1(&params), g2(&params)];
        // Every G1/G2 upper bound is ≥ c1 ≥ 2, so horizon 1/2 is below
        // every b_u and the lead-time guarantee is unclamped.
        let horizon = Rat::new(1, 2);
        let factor = Rat::new(num, 8);
        for run in &runs {
            assert_predictive_guarantees(run, &conds, horizon)?;
            assert_predictive_guarantees(&warp(run, factor), &conds, horizon)?;
        }
    }

    /// Valid simulated runs never violate, and at horizon 0 they never
    /// warn either — the predictor is silent exactly when the stream is
    /// clean.
    #[test]
    fn horizon_zero_is_silent_on_valid_runs(params in rm_params(), seed in 0u64..1000) {
        let impl_aut = time_ab(&resource_manager::system(&params));
        let runs = Ensemble::new(3, 60).with_seed(seed).collect(&impl_aut);
        let conds = [g1(&params), g2(&params)];
        let summary = predictive_audit_runs(&runs, &conds, Rat::ZERO);
        prop_assert!(summary.passed(), "{}", summary);
        prop_assert!(
            summary.warnings.is_empty(),
            "horizon 0 warned on a violation-free stream: {:?}",
            summary.warnings
        );
    }

    /// Predictive differential: with the engine armed, the integer-tick
    /// backend and the pinned exact backend agree *pointwise* — same
    /// per-event verdict stream (warnings and forced windows included),
    /// same final violation/warning/forced lists — on traces that mix
    /// on-grid and off-grid times, so the mid-stream int→exact spill
    /// carries warning state across the boundary.
    #[test]
    fn int_and_exact_prediction_agree(
        params in rm_params(),
        seed in 0u64..1000,
        num in 1i128..=16,
    ) {
        let impl_aut = time_ab(&resource_manager::system(&params));
        let runs = Ensemble::new(2, 60).with_seed(seed).collect(&impl_aut);
        let conds = [g1(&params), g2(&params)];
        let set = Arc::new(CompiledConditionSet::new(&conds));
        let horizon = Rat::ONE; // on the unit tick grid of the int backend
        for run in &runs {
            // `num = 8` keeps the run on grid; everything else warps
            // times to quarters/eighths and spills mid-stream.
            for seq in [run.clone(), warp(run, Rat::new(num, 8))] {
                let mut int_mon = Monitor::from_compiled_with(
                    Arc::clone(&set),
                    seq.first_state(),
                    BackendChoice::Auto,
                )
                .with_predictor(horizon);
                let mut exact_mon = Monitor::from_compiled_with(
                    Arc::clone(&set),
                    seq.first_state(),
                    BackendChoice::Exact,
                )
                .with_predictor(horizon);
                for (_, a, t, post) in seq.step_triples() {
                    let vi = int_mon.observe(a, t, post);
                    let ve = exact_mon.observe(a, t, post);
                    prop_assert_eq!(format!("{vi:?}"), format!("{ve:?}"), "verdict at t = {}", t);
                }
                prop_assert_eq!(int_mon.min_slack(), exact_mon.min_slack());
                let (iv, iw, ifc) = int_mon.finish_full(SatisfactionMode::Complete);
                let (ev, ew, efc) = exact_mon.finish_full(SatisfactionMode::Complete);
                prop_assert_eq!(format!("{iv:?}"), format!("{ev:?}"), "violations");
                prop_assert_eq!(format!("{iw:?}"), format!("{ew:?}"), "warnings");
                prop_assert_eq!(format!("{ifc:?}"), format!("{efc:?}"), "forced windows");
            }
        }
    }

    /// The predictive audit's violation set matches the plain streaming
    /// audit's at any horizon.
    #[test]
    fn predictive_audit_never_changes_violations(
        params in rm_params(),
        seed in 0u64..1000,
        num in 1i128..=16,
    ) {
        let impl_aut = time_ab(&resource_manager::system(&params));
        let runs: Vec<_> = Ensemble::new(2, 50)
            .with_seed(seed)
            .collect(&impl_aut)
            .iter()
            .map(|r| warp(r, Rat::new(num, 8)))
            .collect();
        let conds = [g1(&params), g2(&params)];
        let plain = tempo_sim::stream_audit_runs(&runs, &conds);
        let predictive = predictive_audit_runs(&runs, &conds, Rat::from(2));
        prop_assert_eq!(
            plain.violations,
            predictive.without_warnings().violations
        );
    }
}
