//! E6 — dummification (paper §5), executable forms of Lemmas 5.1–5.3:
//! dummified systems never halt, `undum` recovers base timed executions,
//! and lifted conditions are satisfied exactly when the originals are.

use tempo_core::{
    check_timed_execution, dummify, lift_condition, project, semi_satisfies, time_ab, undum,
    DummyAction, EarliestScheduler, RandomScheduler, RunError, SatisfactionMode,
};
use tempo_math::{Interval, Rat};
use tempo_systems::signal_relay::{self, RelayParams};
use tempo_systems::two_event_chain::{self, ChainAction, ChainParams};

fn null_iv() -> Interval {
    Interval::closed(Rat::ONE, Rat::from(2)).unwrap()
}

/// Lemma 5.1: the dummified relay never deadlocks, for any scheduler.
#[test]
fn dummified_runs_are_unbounded() {
    let params = RelayParams::ints(3, 1, 2).unwrap();
    let timed = signal_relay::relay_line(&params);
    // The plain relay halts.
    let plain = time_ab(&timed);
    let (_, reason) = plain.generate(&mut EarliestScheduler::new(), 100);
    assert_eq!(reason, RunError::Deadlock);
    // The dummified relay runs forever (to any budget) and time diverges.
    let dummified = dummify(&timed, null_iv()).unwrap();
    let aut = time_ab(&dummified);
    for seed in 0..8 {
        let (run, reason) = aut.generate(&mut RandomScheduler::new(seed), 120);
        assert_eq!(reason, RunError::MaxSteps, "seed {seed}");
        assert!(
            run.t_end() > Rat::from(30),
            "time diverges, got {}",
            run.t_end()
        );
    }
}

/// Lemma 5.2: `undum` of a dummified timed execution is a timed execution
/// of the original `(A, b)`.
#[test]
fn undum_recovers_base_executions() {
    let params = RelayParams::ints(2, 1, 3).unwrap();
    let timed = signal_relay::relay_line(&params);
    let dummified = dummify(&timed, null_iv()).unwrap();
    let aut = time_ab(&dummified);
    for seed in 0..12 {
        let (run, _) = aut.generate(&mut RandomScheduler::new(seed), 80);
        let dummy_seq = project(&run);
        // The dummified sequence is a timed execution of (Ã, b̃)…
        assert!(
            check_timed_execution(&dummy_seq, &dummified, SatisfactionMode::Prefix).is_ok(),
            "seed {seed}"
        );
        // …and its undum is one of (A, b).
        let base_seq = undum(&dummy_seq);
        assert!(
            check_timed_execution(&base_seq, &timed, SatisfactionMode::Prefix).is_ok(),
            "seed {seed}"
        );
        // undum removes exactly the NULL events.
        let nulls = dummy_seq
            .timed_schedule()
            .iter()
            .filter(|(a, _)| matches!(a, DummyAction::Null))
            .count();
        assert_eq!(base_seq.len() + nulls, dummy_seq.len());
    }
}

/// Lemma 5.3: a dummified execution satisfies `Ũ` iff its undum satisfies
/// `U` (semi-satisfaction on prefixes).
#[test]
fn lifted_condition_satisfaction_agrees() {
    let params = ChainParams::ints((0, 4), (1, 3), (2, 4));
    let timed = two_event_chain::chain_system(&params);
    let cond = two_event_chain::chain_condition(&params);
    let lifted = lift_condition(&cond);
    let dummified = dummify(&timed, null_iv()).unwrap();
    let aut = time_ab(&dummified);
    for seed in 0..16 {
        let (run, _) = aut.generate(&mut RandomScheduler::new(seed), 60);
        let dummy_seq = project(&run);
        let base_seq = undum(&dummy_seq);
        assert_eq!(
            semi_satisfies(&dummy_seq, &lifted).is_ok(),
            semi_satisfies(&base_seq, &cond).is_ok(),
            "seed {seed}"
        );
        // On honest runs both are in fact satisfied.
        assert!(semi_satisfies(&base_seq, &cond).is_ok());
    }
}

/// Dummification leaves the base behavior alone: the non-NULL projection
/// of a dummified run is a plain chain run event-for-event.
#[test]
fn base_events_undisturbed() {
    let params = ChainParams::ints((0, 2), (1, 2), (1, 2));
    let timed = two_event_chain::chain_system(&params);
    let dummified = dummify(&timed, null_iv()).unwrap();
    let aut = time_ab(&dummified);
    let (run, _) = aut.generate(&mut RandomScheduler::new(5), 60);
    let base_seq = undum(&project(&run));
    let actions: Vec<ChainAction> = base_seq.timed_schedule().iter().map(|(a, _)| *a).collect();
    // The chain fires in order, each at most once.
    let expected = [ChainAction::Pi, ChainAction::Phi, ChainAction::Psi];
    assert!(actions.len() <= 3);
    assert_eq!(&expected[..actions.len()], &actions[..]);
}

/// The NULL interval is arbitrary: different choices leave base timed
/// executions valid.
#[test]
fn null_interval_is_immaterial() {
    let params = RelayParams::ints(2, 1, 2).unwrap();
    let timed = signal_relay::relay_line(&params);
    for (n1, n2) in [(1i64, 1i64), (1, 5), (3, 4)] {
        let iv = Interval::closed(Rat::from(n1), Rat::from(n2)).unwrap();
        let dummified = dummify(&timed, iv).unwrap();
        let aut = time_ab(&dummified);
        let (run, _) = aut.generate(&mut RandomScheduler::new(9), 60);
        let base_seq = undum(&project(&run));
        assert!(check_timed_execution(&base_seq, &timed, SatisfactionMode::Prefix).is_ok());
    }
}
