//! Snapshot/resume round-trips for the engine state (`serde` feature):
//! a monitor interrupted mid-stream, serialized with `serde_json`,
//! restored, and resumed must emit exactly the verdicts the
//! uninterrupted monitor emits on the remaining suffix — violations,
//! warnings, and per-event verdicts alike.

use proptest::prelude::*;
use tempo_core::engine::EngineState;
use tempo_core::{time_ab, SatisfactionMode, TimedSequence, TimingCondition, ViolationKind};
use tempo_math::{Interval, Rat};
use tempo_monitor::Monitor;
use tempo_sim::Ensemble;
use tempo_systems::resource_manager::{self, g1, g2, Params};

fn rm_params() -> impl Strategy<Value = Params> {
    (1u32..=4, 1i64..=4, 1i64..=3, 0i64..=4).prop_map(|(k, l, delta, spread)| {
        let c1 = l + delta;
        Params::ints(k, c1, c1 + spread, l).expect("constructed to be valid")
    })
}

/// Scales every event time by `factor` to manufacture violations (and
/// with them mid-stream warnings) on otherwise-valid runs.
fn warp<S, A>(seq: &TimedSequence<S, A>, factor: Rat) -> TimedSequence<S, A>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut out = TimedSequence::new(seq.first_state().clone());
    for (_, a, t, post) in seq.step_triples() {
        out.push(a.clone(), t * factor, post.clone());
    }
    out
}

/// Runs `seq` straight through and, in parallel, with a serialize /
/// deserialize / resume round-trip after `split` events, asserting the
/// two monitors emit identical per-event verdicts on the suffix and
/// identical violation and warning totals overall.
fn assert_roundtrip<S, A>(
    seq: &TimedSequence<S, A>,
    conds: &[TimingCondition<S, A>],
    split: usize,
    horizon: Option<Rat>,
    mode: SatisfactionMode,
) -> Result<(), TestCaseError>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let build = || {
        let mon = Monitor::new(conds, seq.first_state());
        match horizon {
            Some(h) => mon.with_predictor(h),
            None => mon,
        }
    };

    // The uninterrupted reference.
    let mut full = build();
    let mut full_verdicts = Vec::new();
    for (_, a, t, post) in seq.step_triples() {
        full_verdicts.push(full.observe(a, t, post));
    }

    // The interrupted run: observe `split` events, snapshot through
    // JSON, resume, and finish the suffix.
    let mut prefix = build();
    let mut last_state = seq.first_state().clone();
    for (_, a, t, post) in seq.step_triples().take(split) {
        prefix.observe(a, t, post);
        last_state = post.clone();
    }
    let prefix_violations = prefix.violations().to_vec();
    let prefix_warnings = prefix.warnings().to_vec();

    let json = serde_json::to_string(&prefix.engine_state()).expect("snapshot serializes");
    let restored: EngineState = serde_json::from_str(&json).expect("snapshot deserializes");
    prop_assert_eq!(restored.events_seen(), prefix.engine_state().events_seen());
    prop_assert_eq!(
        restored.open_obligations(),
        prefix.engine_state().open_obligations()
    );

    let mut resumed = Monitor::resume(conds, restored, &last_state, horizon);
    for (i, (_, a, t, post)) in seq.step_triples().enumerate() {
        if i < split {
            continue;
        }
        let verdict = resumed.observe(a, t, post);
        prop_assert_eq!(
            &verdict,
            &full_verdicts[i],
            "suffix verdict diverged at event {} (split {})",
            i,
            split
        );
    }

    // Prefix + suffix totals equal the uninterrupted totals — no
    // verdict is lost or doubled across the snapshot boundary.
    let (suffix_violations, suffix_warnings) = resumed.finish_with_warnings(mode);
    let (full_violations, full_warnings) = full.finish_with_warnings(mode);
    let mut stitched = prefix_violations;
    stitched.extend(suffix_violations);
    prop_assert_eq!(&stitched, &full_violations, "violations, split {}", split);
    let mut stitched = prefix_warnings;
    stitched.extend(suffix_warnings);
    prop_assert_eq!(
        format!("{stitched:?}"),
        format!("{full_warnings:?}"),
        "warnings, split {}",
        split
    );
    Ok(())
}

/// Deterministic core case: a deadline armed before the snapshot is
/// still enforced — and still warned about — after the round-trip.
#[test]
fn restored_monitor_keeps_pending_deadlines() {
    let cond: TimingCondition<u8, &str> =
        TimingCondition::new("RESP", Interval::closed(Rat::ONE, Rat::from(5)).unwrap())
            .triggered_by_step(|_, a, _| *a == "REQ")
            .on_actions(|a| *a == "GRANT");
    let mut seq = TimedSequence::new(0u8);
    seq.push("REQ", Rat::from(2), 1); // deadline at 7
    seq.push("noise", Rat::from(3), 1); // ← snapshot here
    seq.push("noise", Rat::from(6), 1); // slack 1 ≤ horizon: warning
    seq.push("noise", Rat::from(8), 1); // past the deadline: violation
    for split in 0..=seq.len() {
        assert_roundtrip(
            &seq,
            std::slice::from_ref(&cond),
            split,
            Some(Rat::from(2)),
            SatisfactionMode::Prefix,
        )
        .unwrap();
    }
}

/// The snapshot encoding is stable JSON, not an opaque blob: a restored
/// state re-serializes to the identical document.
#[test]
fn snapshot_json_is_stable() {
    let cond: TimingCondition<u8, &str> =
        TimingCondition::new("C", Interval::closed(Rat::ONE, Rat::from(4)).unwrap())
            .triggered_by_step(|_, a, _| *a == "go")
            .on_actions(|a| *a == "done");
    let mut mon = Monitor::new(std::slice::from_ref(&cond), &0u8);
    mon.observe(&"go", Rat::from(2), &1);
    let json = serde_json::to_string(&mon.engine_state()).unwrap();
    let restored: EngineState = serde_json::from_str(&json).unwrap();
    assert_eq!(serde_json::to_string(&restored).unwrap(), json);
}

/// Backward compatibility: a snapshot written *before* prediction moved
/// into the engine — the serialized form has always been just
/// `(events_seen, last_time, open-obligation table)` and carries no
/// predictive fields — resumes onto a predictive monitor. The warning
/// points and forced-window state are reconstructed from the compiled
/// bounds at adopt time: an obligation whose warning point had already
/// passed is silently marked warned, a restored lower window answers
/// `earliest_legal` and is still enforced, and nothing predictive is
/// re-reported for the prefix.
#[test]
fn pre_refactor_snapshot_resumes_predictively() {
    // Captured from the pre-refactor engine after REQ@2, go@4, noise@6
    // under the two conditions below: RESP's lower window (earliest 3)
    // is already pruned, its upper deadline 7 is open and was warned at
    // its warning point 5; HOLD holds both halves of its [10, 20]
    // window armed at t = 4.
    const FIXTURE: &str = r#"[3,"6",[[[1,true,"7"]],[[2,false,"14"],[2,true,"24"]]]]"#;
    let resp: TimingCondition<u8, &str> =
        TimingCondition::new("RESP", Interval::closed(Rat::ONE, Rat::from(5)).unwrap())
            .triggered_by_step(|_, a, _| *a == "REQ")
            .on_actions(|a| *a == "GRANT");
    let hold: TimingCondition<u8, &str> = TimingCondition::new(
        "HOLD",
        Interval::closed(Rat::from(10), Rat::from(20)).unwrap(),
    )
    .triggered_by_step(|_, a, _| *a == "go")
    .on_actions(|a| *a == "fire");
    let conds = [resp, hold];

    // The fixture is byte-for-byte what the current engine writes for
    // that prefix — the format is deliberately unchanged.
    let mut live = Monitor::new(&conds, &0u8).with_predictor(Rat::from(2));
    live.observe(&"REQ", Rat::from(2), &1);
    live.observe(&"go", Rat::from(4), &1);
    live.observe(&"noise", Rat::from(6), &1);
    assert_eq!(
        serde_json::to_string(&live.engine_state()).unwrap(),
        FIXTURE
    );

    let restored: EngineState = serde_json::from_str(FIXTURE).unwrap();
    assert_eq!(restored.events_seen(), 3);
    assert_eq!(restored.open_obligations(), 3);
    let mut mon = Monitor::resume(&conds, restored, &1u8, Some(Rat::from(2)));

    // Predictive read-outs come straight back: RESP's deadline 7 is one
    // unit away, HOLD's restored lower window pins `fire` until 14
    // (`GRANT` has no open lower window — RESP's was pruned pre-snapshot).
    assert_eq!(mon.min_slack(), Some(Rat::ONE));
    assert_eq!(mon.earliest_legal(&"fire"), Some(Rat::from(14)));
    assert_eq!(mon.earliest_legal(&"GRANT"), None);

    // RESP's warning point (5) had already passed at snapshot time, so
    // the re-armed obligation is marked warned: crossing it again stays
    // silent rather than re-warning.
    assert!(mon.observe(&"noise", Rat::new(13, 2), &1).is_ok());

    // The restored deadline is still enforced …
    let v = mon.observe(&"noise", Rat::from(8), &1);
    assert!(matches!(
        v.violation().map(|v| &v.kind),
        Some(&ViolationKind::UpperBound { trigger_index: 1, deadline }) if deadline == Rat::from(7)
    ));
    // … and so is the restored lower window: `fire` at 12 lands inside
    // the forced window that ends at 14.
    let v = mon.observe(&"fire", Rat::from(12), &1);
    assert!(matches!(
        v.violation().map(|v| &v.kind),
        Some(&ViolationKind::LowerBound { trigger_index: 2, event_index: 6, earliest })
            if earliest == Rat::from(14)
    ));

    // Nothing predictive is re-reported for the prefix: the warning was
    // consumed before the snapshot and forced windows are only emitted
    // at the event that opens them.
    let (violations, warnings, forced) = mon.finish_full(SatisfactionMode::Prefix);
    assert_eq!(violations.len(), 2);
    assert!(
        warnings.is_empty(),
        "re-warned across the snapshot: {warnings:?}"
    );
    assert!(
        forced.is_empty(),
        "re-forced across the snapshot: {forced:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-trip at a random split point on random resource-manager
    /// traces (valid and time-warped), with and without a predictor.
    #[test]
    fn snapshot_resume_preserves_verdicts(
        params in rm_params(),
        seed in 0u64..1000,
        split_frac in 0u32..=4,
        num in 1i128..=12,
        predict in any::<bool>(),
    ) {
        let impl_aut = time_ab(&resource_manager::system(&params));
        let runs = Ensemble::new(2, 40).with_seed(seed).collect(&impl_aut);
        let conds = [g1(&params), g2(&params)];
        let horizon = predict.then_some(Rat::ONE);
        for run in &runs {
            let warped = warp(run, Rat::new(num, 8));
            for seq in [run, &warped] {
                let split = seq.len() * (split_frac as usize) / 4;
                for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
                    assert_roundtrip(seq, &conds, split, horizon, mode)?;
                }
            }
        }
    }
}
