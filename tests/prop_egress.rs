//! Differential property tests pinning the two verdict egress
//! encodings to each other: a random [`StreamReport`] or
//! [`MetricsSnapshot`] pushed through the v2 binary path
//! (`encode_report2` → wire → `NAMES` table → `decode_report2`) must
//! decode pointwise equal to the same value pushed through the v1 JSON
//! path (`serde_json::to_string` → `from_str`). The two transports may
//! never disagree about a verdict.

use std::sync::Arc;

use proptest::prelude::*;
use tempo_core::{Violation, ViolationKind};
use tempo_math::Rat;
use tempo_monitor::{
    Forced, MetricsSnapshot, StreamLagSnapshot, StreamReport, Warning, SLACK_BUCKETS,
};
use tempo_serve::wire::{
    apply_names, decode_metrics_snap2, decode_report2, encode_metrics_snap2, encode_names,
    encode_report2, Frame, RecvBuf,
};

/// A small shared name pool so interning sees both fresh names and
/// repeats within one report.
const NAMES: &[&str] = &["deadline", "window", "g1", "relay_bound", "Π-serve"];

fn name() -> impl Strategy<Value = &'static str> {
    (0..NAMES.len()).prop_map(|i| NAMES[i])
}

fn rat() -> impl Strategy<Value = Rat> {
    (-1_000_000i64..1_000_000, 1i64..10_000).prop_map(|(n, d)| Rat::new(n as i128, d as i128))
}

fn violation() -> impl Strategy<Value = Violation> {
    (
        name(),
        any::<bool>(),
        0usize..1_000_000,
        0usize..1_000_000,
        rat(),
    )
        .prop_map(|(cond, upper, trigger, event, bound)| Violation {
            condition: cond.to_string(),
            kind: if upper {
                ViolationKind::UpperBound {
                    trigger_index: trigger,
                    deadline: bound,
                }
            } else {
                ViolationKind::LowerBound {
                    trigger_index: trigger,
                    event_index: event,
                    earliest: bound,
                }
            },
        })
}

fn warning() -> impl Strategy<Value = Warning> {
    (
        (name(), 0usize..64, 0usize..1_000_000),
        (rat(), rat(), rat(), rat()),
    )
        .prop_map(
            |((cond, ci, trigger), (deadline, at, slack, horizon))| Warning {
                condition: Arc::from(cond),
                condition_index: ci,
                trigger_index: trigger,
                deadline,
                at,
                slack,
                horizon,
            },
        )
}

fn forced() -> impl Strategy<Value = Forced> {
    (
        (name(), 0usize..64, name(), 0usize..1_000_000),
        (rat(), rat(), rat(), rat()),
    )
        .prop_map(
            |((cond, ci, action, trigger), (earliest, at, margin, horizon))| Forced {
                condition: Arc::from(cond),
                condition_index: ci,
                action: Arc::from(action),
                trigger_index: trigger,
                earliest,
                at,
                margin,
                horizon,
            },
        )
}

fn stream_report() -> impl Strategy<Value = StreamReport> {
    (
        (0u64..u64::MAX),
        0usize..1_000_000,
        proptest::collection::vec(violation(), 0..8),
        proptest::collection::vec(warning(), 0..6),
        proptest::collection::vec(forced(), 0..6),
        any::<bool>(),
    )
        .prop_map(
            |(stream, events, violations, warnings, forced, failed)| StreamReport {
                stream,
                events,
                violations,
                warnings,
                forced,
                failed,
            },
        )
}

fn hist() -> impl Strategy<Value = [u64; SLACK_BUCKETS]> {
    proptest::collection::vec(0u64..1_000_000, SLACK_BUCKETS..=SLACK_BUCKETS).prop_map(|v| {
        let mut h = [0u64; SLACK_BUCKETS];
        h.copy_from_slice(&v);
        h
    })
}

fn lag() -> impl Strategy<Value = StreamLagSnapshot> {
    ((0u64..u64::MAX), (0u64..u64::MAX), (0u64..u64::MAX)).prop_map(|(stream, enqueued, lag)| {
        StreamLagSnapshot {
            stream,
            enqueued,
            lag,
        }
    })
}

fn counters() -> impl Strategy<Value = [u64; 8]> {
    proptest::collection::vec(0u64..u64::MAX, 8..=8).prop_map(|v| {
        let mut c = [0u64; 8];
        c.copy_from_slice(&v);
        c
    })
}

fn metrics_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
    (
        counters(),
        (hist(), 0u64..u64::MAX, hist()),
        proptest::option::of(rat()),
        ((0u64..u64::MAX), (0u64..u64::MAX), (0u64..u64::MAX)),
        proptest::collection::vec(lag(), 0..8),
    )
        .prop_map(|(counts, hists, min_slack, b, streams)| {
            let [events, obligations_opened, obligations_discharged, obligations_violated, max_queue_depth, dropped_events, failed_streams, warnings] =
                counts;
            let (warning_slack_hist, forced, forced_margin_hist) = hists;
            let (batches, batched_events, max_batch) = b;
            MetricsSnapshot {
                events,
                obligations_opened,
                obligations_discharged,
                obligations_violated,
                max_queue_depth,
                dropped_events,
                failed_streams,
                warnings,
                warning_slack_hist,
                forced,
                forced_margin_hist,
                min_slack,
                batches,
                batched_events,
                max_batch,
                streams,
            }
        })
}

/// Runs a report through the binary transport end to end: server-side
/// interning + `NAMES` delta + `REPORT2` encode, then a client-side
/// `RecvBuf` parse, table build, and record decode.
fn binary_round_trip(report: &StreamReport, stream: u64) -> StreamReport {
    // Server side: first-sight interning, exactly like `NameIntern`.
    let mut interned: Vec<String> = Vec::new();
    let mut frame = Vec::new();
    {
        let mut intern = |s: &str| {
            if let Some(i) = interned.iter().position(|n| n == s) {
                i as u32
            } else {
                interned.push(s.to_string());
                (interned.len() - 1) as u32
            }
        };
        encode_report2(&mut frame, stream, report, &mut intern);
    }
    let mut wire = Vec::new();
    encode_names(&mut wire, 0, interned.iter().map(String::as_str));
    wire.extend_from_slice(&frame);

    // Client side.
    let mut rb = RecvBuf::new(64 << 20);
    rb.ingest(&wire);
    let mut table: Vec<Arc<str>> = Vec::new();
    loop {
        match rb.next_frame().expect("well-formed frames") {
            Some(Frame::Names(nf)) => apply_names(&mut table, &nf).expect("contiguous delta"),
            Some(Frame::Report2 { stream, body }) => {
                return decode_report2(stream, body, &table).expect("decodes")
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The binary report transport agrees pointwise with the JSON one.
    #[test]
    fn report_encodings_agree(report in stream_report(), wire_stream in (0u64..u64::MAX)) {
        let via_binary = binary_round_trip(&report, wire_stream);

        // The v1 path: JSON payload, stream id rewritten from the frame
        // header by the client (mirrored here).
        let json = serde_json::to_string(&report).expect("serializes");
        let mut via_json: StreamReport = serde_json::from_str(&json).expect("parses");
        via_json.stream = wire_stream;

        prop_assert_eq!(via_binary, via_json);
    }

    /// The binary metrics transport agrees pointwise with the JSON one.
    #[test]
    fn metrics_encodings_agree(snap in metrics_snapshot()) {
        let mut wire = Vec::new();
        encode_metrics_snap2(&mut wire, &snap);
        let mut rb = RecvBuf::new(64 << 20);
        rb.ingest(&wire);
        let via_binary = match rb.next_frame().expect("well-formed") {
            Some(Frame::MetricsSnap2 { body }) => decode_metrics_snap2(body).expect("decodes"),
            other => panic!("unexpected frame {other:?}"),
        };

        let json = serde_json::to_string(&snap).expect("serializes");
        let via_json: MetricsSnapshot = serde_json::from_str(&json).expect("parses");

        prop_assert_eq!(&via_binary, &via_json);
        prop_assert_eq!(&via_binary, &snap);
    }
}
