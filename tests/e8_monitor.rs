//! E8 — streaming monitoring of the paper's example systems.
//!
//! Deterministic end-to-end checks behind the E8 benchmark: the online
//! monitor watches resource-manager and signal-relay executions live,
//! agrees with the offline checker, scales across a pool of workers, and
//! reports faithful metrics.

use tempo_core::{time_ab, SatisfactionMode, ViolationKind};
use tempo_math::Rat;
use tempo_monitor::{replay_verdicts, Monitor, MonitorPool, OverloadPolicy, PoolConfig, Verdict};
use tempo_sim::{audit_runs, pooled_audit_runs, stream_audit_runs, Ensemble};
use tempo_systems::resource_manager::{self, g1, g2, Params, RmAction};
use tempo_systems::signal_relay::{self, u_kn, RelayParams};

fn rm_params() -> Params {
    Params::ints(3, 2, 3, 1).expect("valid")
}

/// A live monitor on simulated manager runs never raises a false alarm,
/// and its obligation count stays bounded by the trigger structure.
#[test]
fn live_monitoring_of_resource_manager() {
    let params = rm_params();
    let impl_aut = time_ab(&resource_manager::system(&params));
    let runs = Ensemble::new(8, 120).with_extremal(true).collect(&impl_aut);
    let conds = [g1(&params), g2(&params)];
    for run in &runs {
        let mut mon = Monitor::new(&conds, run.first_state());
        for (_, a, t, post) in run.step_triples() {
            assert_eq!(mon.observe(a, t, post), Verdict::Ok, "false alarm at t={t}");
            // One start trigger plus one per GRANT, two obligations each,
            // minus everything already discharged: stays small.
            assert!(mon.open_obligations() <= 4);
        }
        assert!(mon.finish(SatisfactionMode::Prefix).is_empty());
    }
}

/// An artificially hurried GRANT is flagged the instant it happens, with
/// the same violation payload the offline checker derives.
#[test]
fn early_grant_is_flagged_online() {
    let params = rm_params();
    let impl_aut = time_ab(&resource_manager::system(&params));
    let run = &Ensemble::new(1, 120).collect(&impl_aut)[0];
    // Compress time 4×: every tick now fires too fast, so the first
    // GRANT lands before k·c1.
    let factor = Rat::new(1, 4);
    let mut warped = tempo_core::TimedSequence::new(*run.first_state());
    for (_, a, t, post) in run.step_triples() {
        warped.push(*a, t * factor, *post);
    }
    let conds = [g1(&params)];
    let verdicts = replay_verdicts(&warped, &conds, SatisfactionMode::Prefix);
    let first_grant = warped
        .timed_schedule()
        .iter()
        .position(|(a, _)| *a == RmAction::Grant);
    if let Some(pos) = first_grant {
        // Verdict indices are 0-based over events; the grant is flagged
        // at the exact event where it occurs.
        let flagged = verdicts
            .iter()
            .position(|v| matches!(v, Verdict::LowerBoundViolation(_)));
        assert!(flagged.is_some(), "compressed run must violate G1");
        let v = verdicts[flagged.unwrap()].violation().unwrap();
        assert_eq!(v.condition, "G1");
        assert!(matches!(v.kind, ViolationKind::LowerBound { .. }));
        // The offline checker agrees there is a G1 violation.
        assert!(tempo_core::semi_satisfies(&warped, &conds[0]).is_err());
        let _ = pos;
    }
}

/// The pooled audit matches the offline audit over a batch of relay
/// executions, across worker counts.
#[test]
fn pooled_relay_audit_scales() {
    let params = RelayParams::ints(3, 1, 3).expect("valid");
    let timed = signal_relay::relay_line(&params);
    let dummified = tempo_core::dummify(
        &timed,
        tempo_math::Interval::closed(Rat::ONE, Rat::from(2)).unwrap(),
    )
    .expect("dummify");
    let impl_aut = time_ab(&dummified);
    let runs: Vec<_> = Ensemble::new(12, 60)
        .collect(&impl_aut)
        .iter()
        .map(tempo_core::undum)
        .collect();
    let conds = [u_kn(0, &params)];
    let offline = audit_runs(&runs, &conds);
    let online = stream_audit_runs(&runs, &conds);
    assert_eq!(offline.passed(), online.passed());
    for workers in [1, 4, 16] {
        let pooled = pooled_audit_runs(
            &runs,
            &conds,
            PoolConfig {
                workers,
                ..PoolConfig::default()
            },
        );
        assert_eq!(pooled.passed(), offline.passed(), "workers = {workers}");
        assert_eq!(pooled.checks, runs.len());
    }
}

/// Pool metrics add up: every enqueued event is drained, obligations
/// balance, and the snapshot renders every counter.
#[test]
fn pool_metrics_are_consistent() {
    let params = rm_params();
    let impl_aut = time_ab(&resource_manager::system(&params));
    let runs = Ensemble::new(6, 80).collect(&impl_aut);
    let conds = [g1(&params), g2(&params)];
    let config = PoolConfig {
        workers: 3,
        queue_capacity: 64,
        policy: OverloadPolicy::Block,
        mode: SatisfactionMode::Prefix,
        ..PoolConfig::default()
    };
    let mut pool = MonitorPool::new(&conds, config);
    let total_events: usize = runs.iter().map(|r| r.len()).sum();
    for run in &runs {
        let mut stream = pool.open_stream(*run.first_state());
        for (_, a, t, post) in run.step_triples() {
            stream.send(*a, t, *post).expect("block policy");
        }
        stream.finish();
    }
    let report = pool.shutdown();
    assert!(report.passed());
    let m = &report.metrics;
    assert_eq!(m.events as usize, total_events);
    assert_eq!(m.obligations_open(), 0);
    assert_eq!(
        m.obligations_opened,
        m.obligations_discharged + m.obligations_violated
    );
    assert_eq!(m.streams.len(), runs.len());
    assert!(m.streams.iter().all(|s| s.lag == 0));
    let rendered = m.render();
    for needle in [
        "events",
        "obligations opened",
        "max queue depth",
        "stream 0 lag",
    ] {
        assert!(rendered.contains(needle), "snapshot missing {needle}");
    }
}
