//! Property tests for the compiled condition engine: the offline checker
//! (`tempo_core::violations`), the streaming [`Monitor`], and a direct
//! [`CompiledConditionSet::fold_sequence`] are three views over the same
//! engine, so on random traces — valid simulated runs and time-warped
//! (possibly violating) variants — they must report identical violation
//! sets, with and without a predictor attached. A zone-graph oracle
//! cross-check closes the loop from the symbolic side: conditions the
//! [`ZoneChecker`] verifies never trip the engine on valid runs.

use proptest::prelude::*;
use tempo_core::engine::CompiledConditionSet;
use tempo_core::{
    dummify, project, time_ab, undum, violations, RandomScheduler, SatisfactionMode, TimedSequence,
    TimingCondition, Violation,
};
use tempo_math::{Interval, Rat};
use tempo_monitor::Monitor;
use tempo_sim::Ensemble;
use tempo_systems::resource_manager::{self, g1, g2, Params};
use tempo_systems::signal_relay::{self, u_kn, RelayParams};
use tempo_zones::ZoneChecker;

fn rm_params() -> impl Strategy<Value = Params> {
    (1u32..=4, 1i64..=4, 1i64..=3, 0i64..=4).prop_map(|(k, l, delta, spread)| {
        let c1 = l + delta;
        Params::ints(k, c1, c1 + spread, l).expect("constructed to be valid")
    })
}

fn relay_params() -> impl Strategy<Value = RelayParams> {
    (1usize..=4, 0i64..=3, 1i64..=3)
        .prop_map(|(n, d1, spread)| RelayParams::ints(n, d1, d1 + spread).expect("valid"))
}

/// Scales every event time by `factor` (> 0 keeps times nondecreasing)
/// to manufacture lower-bound (compression) and upper-bound (stretch)
/// violations.
fn warp<S, A>(seq: &TimedSequence<S, A>, factor: Rat) -> TimedSequence<S, A>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut out = TimedSequence::new(seq.first_state().clone());
    for (_, a, t, post) in seq.step_triples() {
        out.push(a.clone(), t * factor, post.clone());
    }
    out
}

/// Order-insensitive comparison key: the per-condition offline loop
/// groups violations by condition while the engine consumers report in
/// event (discovery) order.
fn sorted(vs: &[Violation]) -> Vec<String> {
    let mut keys: Vec<String> = vs.iter().map(|v| format!("{v:?}")).collect();
    keys.sort();
    keys
}

/// The tentpole invariant: all three consumers of the engine — and the
/// monitor again with a predictor attached — agree exactly.
fn assert_three_way<S, A>(
    seq: &TimedSequence<S, A>,
    conds: &[TimingCondition<S, A>],
) -> Result<(), TestCaseError>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let set = CompiledConditionSet::new(conds);
    for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
        let offline: Vec<Violation> = conds
            .iter()
            .flat_map(|c| violations(seq, c, mode))
            .collect();
        let fold = set.fold_sequence(seq, mode);

        let mut plain = Monitor::new(conds, seq.first_state());
        let mut predictive = Monitor::new(conds, seq.first_state()).with_predictor(Rat::ONE);
        for (_, a, t, post) in seq.step_triples() {
            plain.observe(a, t, post);
            predictive.observe(a, t, post);
        }
        let online = plain.finish(mode);
        let (warned, _) = predictive.finish_with_warnings(mode);

        let want = sorted(&offline);
        prop_assert_eq!(&want, &sorted(&fold), "engine fold, mode {:?}", mode);
        prop_assert_eq!(&want, &sorted(&online), "monitor, mode {:?}", mode);
        prop_assert_eq!(
            &want,
            &sorted(&warned),
            "monitor with predictor, mode {:?}",
            mode
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Three-way agreement on resource-manager traces, valid and
    /// time-warped, for the paper's G1 and G2.
    #[test]
    fn engine_consumers_agree_rm(
        params in rm_params(),
        seed in 0u64..1000,
        num in 1i128..=12,
    ) {
        let impl_aut = time_ab(&resource_manager::system(&params));
        let runs = Ensemble::new(2, 60).with_seed(seed).collect(&impl_aut);
        let conds = [g1(&params), g2(&params)];
        let factor = Rat::new(num, 8);
        for run in &runs {
            assert_three_way(run, &conds)?;
            assert_three_way(&warp(run, factor), &conds)?;
        }
    }

    /// Three-way agreement on signal-relay traces for `U_{0,n}`.
    #[test]
    fn engine_consumers_agree_relay(
        params in relay_params(),
        seed in 0u64..1000,
        num in 1i128..=12,
    ) {
        let timed = signal_relay::relay_line(&params);
        let dummified = dummify(
            &timed,
            Interval::closed(Rat::ONE, Rat::from(2)).unwrap(),
        ).unwrap();
        let impl_aut = time_ab(&dummified);
        let mut sched = RandomScheduler::new(seed);
        let (run, _) = impl_aut.generate(&mut sched, 30 + 10 * params.n);
        let seq = undum(&project(&run));
        let conds = [u_kn(0, &params)];
        assert_three_way(&seq, &conds)?;
        assert_three_way(&warp(&seq, Rat::new(num, 8)), &conds)?;
    }

    /// Zone-oracle cross-check: the symbolic checker proves G1 and G2
    /// hold of the resource manager (Section 4's verified bounds), so
    /// the engine must find no violations on any valid simulated run —
    /// the operational and symbolic readings of Definition 3.1 agree.
    #[test]
    fn zone_verified_conditions_never_trip_the_engine(
        params in rm_params(),
        seed in 0u64..1000,
    ) {
        let timed = resource_manager::system(&params);
        let conds = [g1(&params), g2(&params)];
        let zone = ZoneChecker::new(&timed);
        for c in &conds {
            let verdict = zone.verify_condition(c).expect("zone graph explored");
            prop_assert!(
                verdict.satisfies(c.bounds()),
                "zone oracle refutes {} for {:?}",
                c.name(),
                params
            );
        }
        let impl_aut = time_ab(&timed);
        let runs = Ensemble::new(2, 60).with_seed(seed).collect(&impl_aut);
        let set = CompiledConditionSet::new(&conds);
        for run in &runs {
            let vs = set.fold_sequence(run, SatisfactionMode::Prefix);
            prop_assert!(
                vs.is_empty(),
                "engine found violations on a zone-verified system: {:?}",
                vs
            );
        }
    }
}
