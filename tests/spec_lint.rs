//! The shipped `.tspec` files must be pristine: they parse, pass the
//! static diagnostics pass with **zero** findings (errors *and*
//! warnings), lower through their system's binder, and carry the
//! canonical parameters' derived bounds. CI runs this as the spec-lint
//! gate.

use tempo_core::TimingCondition;
use tempo_math::{Rat, TimeVal};
use tempo_spec::{lint, parse};
use tempo_systems::{
    cement_mixer, fischer, peterson, request_manager, resource_manager, tournament, two_event_chain,
};

type SourceFn = fn() -> &'static str;

const SHIPPED: [(&str, SourceFn); 6] = [
    ("fischer", fischer::tspec_source as SourceFn),
    ("peterson", peterson::tspec_source),
    ("tournament", tournament::tspec_source),
    ("cement_mixer", cement_mixer::tspec_source),
    ("request_manager", request_manager::tspec_source),
    ("two_event_chain", two_event_chain::tspec_source),
];

#[test]
fn shipped_specs_lint_clean() {
    for (name, source) in SHIPPED {
        let findings = lint(source());
        assert!(
            findings.is_empty(),
            "{name}.tspec has findings:\n{}",
            findings
                .iter()
                .map(|d| d.render(source()))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn shipped_specs_declare_their_system() {
    for (name, source) in SHIPPED {
        let spec = parse(source()).unwrap();
        assert_eq!(spec.name.text, name, "{name}.tspec: spec name");
        let system = spec
            .meta
            .iter()
            .find(|m| m.key.text == "system")
            .unwrap_or_else(|| panic!("{name}.tspec: no `meta system` entry"));
        assert_eq!(system.value, name);
        assert!(
            spec.meta.iter().any(|m| m.key.text == "params"),
            "{name}.tspec: no `meta params` entry documenting the canonical parameters"
        );
        assert!(!spec.conds.is_empty(), "{name}.tspec: no conditions");
    }
}

/// The literal bounds written in each shipped spec equal the bounds the
/// paper's formulas derive at the canonical parameters — the spec files
/// cannot silently drift from the Rust constructors.
#[test]
fn shipped_bounds_match_derived_formulas() {
    fn bounds<S, A>(c: &TimingCondition<S, A>) -> (Rat, TimeVal) {
        (c.lower(), c.upper())
    }

    let f = fischer::FischerParams::ints(1, 1, 2, 4);
    for c in fischer::tspec_conditions() {
        assert_eq!(
            bounds(&c),
            bounds(&fischer::solo_entry_condition(&f)),
            "fischer/{}",
            c.name()
        );
    }

    let m = cement_mixer::MixerParams::ints(1, 3, 5, None);
    for c in cement_mixer::tspec_conditions() {
        assert_eq!(
            bounds(&c),
            bounds(&cement_mixer::naive_response(&m)),
            "cement_mixer/{}",
            c.name()
        );
    }

    let r = resource_manager::Params::ints(3, 2, 3, 1).unwrap();
    for c in request_manager::tspec_conditions() {
        assert_eq!(
            bounds(&c),
            bounds(&request_manager::response_condition(&r)),
            "request_manager/{}",
            c.name()
        );
    }

    let ch = two_event_chain::ChainParams::ints((0, 5), (1, 3), (2, 4));
    for c in two_event_chain::tspec_conditions() {
        assert_eq!(
            bounds(&c),
            bounds(&two_event_chain::chain_condition(&ch)),
            "two_event_chain/{}",
            c.name()
        );
    }
}
