//! E11 — zone-based early warning on the resource manager.
//!
//! Deterministic end-to-end checks behind the E11 benchmark: on the E1
//! system (the paper's resource manager with G1/G2), the predictor warns
//! before every deadline violation with at least the configured horizon
//! of lead time, stays silent on violation-free traces at horizon 0, and
//! carries its guarantees through the monitor pool.

use tempo_core::{time_ab, SatisfactionMode, TimedSequence, ViolationKind};
use tempo_math::Rat;
use tempo_monitor::{replay, replay_predictive, Monitor, MonitorPool, PoolConfig, Verdict};
use tempo_sim::{predictive_audit_runs, Ensemble};
use tempo_systems::resource_manager::{self, g1, g2, Params};

fn rm_params() -> Params {
    Params::ints(3, 2, 3, 1).expect("valid")
}

fn stretch<S, A>(seq: &TimedSequence<S, A>, num: i128) -> TimedSequence<S, A>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let factor = Rat::new(num, 8);
    let mut out = TimedSequence::new(seq.first_state().clone());
    for (_, a, t, post) in seq.step_triples() {
        out.push(a.clone(), t * factor, post.clone());
    }
    out
}

/// Every upper-bound violation on time-stretched manager runs is
/// preceded by a warning for the same obligation, with lead time at
/// least the horizon.
#[test]
fn every_violation_is_warned_at_least_horizon_early() {
    let params = rm_params();
    let impl_aut = time_ab(&resource_manager::system(&params));
    let runs = Ensemble::new(6, 120).with_extremal(true).collect(&impl_aut);
    let conds = [g1(&params), g2(&params)];
    let horizon = Rat::ONE; // below every G1/G2 upper bound (≥ k·c1 = 6)
    let mut upper_violations = 0usize;
    for run in &runs {
        // Stretch 2×: every GRANT now lands past its deadline.
        let warped = stretch(run, 16);
        let (violations, warnings) =
            replay_predictive(&warped, &conds, SatisfactionMode::Prefix, horizon);
        for v in &violations {
            if let ViolationKind::UpperBound {
                trigger_index,
                deadline,
            } = v.kind
            {
                upper_violations += 1;
                let w = warnings
                    .iter()
                    .find(|w| {
                        *w.condition == *v.condition
                            && w.trigger_index == trigger_index
                            && w.deadline == deadline
                    })
                    .expect("violation without preceding warning");
                assert!(
                    w.deadline - w.at >= horizon,
                    "lead {} below horizon {horizon}",
                    w.deadline - w.at
                );
            }
        }
        // And the verdicts are untouched by prediction.
        assert_eq!(
            replay(&warped, &conds, SatisfactionMode::Prefix),
            violations
        );
    }
    assert!(
        upper_violations > 0,
        "2x-stretched manager runs must violate some deadline"
    );
}

/// Valid runs at horizon 0: no violations, no warnings — prediction
/// never cries wolf on a clean stream.
#[test]
fn horizon_zero_is_silent_on_valid_runs() {
    let params = rm_params();
    let impl_aut = time_ab(&resource_manager::system(&params));
    let runs = Ensemble::new(8, 120).with_extremal(true).collect(&impl_aut);
    let conds = [g1(&params), g2(&params)];
    let summary = predictive_audit_runs(&runs, &conds, Rat::ZERO);
    assert!(summary.passed(), "{summary}");
    assert!(summary.warnings.is_empty(), "{summary}");
    assert_eq!(summary.checks, runs.len() * conds.len());
}

/// Live monitoring with a predictor: slack readings decrease toward each
/// deadline, and a mildly stretched run produces a Warning verdict
/// strictly before its violation verdict.
#[test]
fn warning_verdict_precedes_violation_verdict_online() {
    let params = rm_params();
    let impl_aut = time_ab(&resource_manager::system(&params));
    let run = &Ensemble::new(1, 120).with_extremal(true).collect(&impl_aut)[0];
    let warped = stretch(run, 10); // 1.25x: late, but not instantly
    let conds = [g1(&params), g2(&params)];
    let mut mon = Monitor::new(&conds, warped.first_state()).with_predictor(Rat::ONE);
    let mut saw_warning_at = None;
    let mut saw_violation_at = None;
    for (i, (_, a, t, post)) in warped.step_triples().enumerate() {
        match mon.observe(a, t, post) {
            Verdict::Warning(_) if saw_warning_at.is_none() => saw_warning_at = Some(i),
            Verdict::UpperBoundViolation(_) if saw_violation_at.is_none() => {
                saw_violation_at = Some(i)
            }
            _ => {}
        }
        if let Some(s) = mon.min_slack() {
            // Slack is a residual of an open deadline, never beyond the
            // loosest bound in the system (G2's k·c2 + l).
            assert!(s <= Rat::from(i64::from(params.k)) * params.c2 + params.l);
        }
    }
    let (violations, warnings) = mon.finish_with_warnings(SatisfactionMode::Prefix);
    if let Some(v_at) = saw_violation_at {
        let w_at = saw_warning_at.expect("a violation implies a warning");
        assert!(
            w_at <= v_at,
            "warning (event {w_at}) must not follow the violation (event {v_at})"
        );
        assert!(!violations.is_empty());
        assert!(!warnings.is_empty());
    }
}

/// The pool propagates predictor warnings into stream reports and the
/// shared metrics, without changing any verdict.
#[test]
fn pooled_prediction_reports_warnings() {
    let params = rm_params();
    let impl_aut = time_ab(&resource_manager::system(&params));
    let runs = Ensemble::new(6, 100).collect(&impl_aut);
    let conds = [g1(&params), g2(&params)];
    let config = PoolConfig {
        workers: 3,
        horizon: Some(Rat::ONE),
        ..PoolConfig::default()
    };
    let mut pool = MonitorPool::new(&conds, config);
    let metrics = pool.metrics();
    for (i, run) in runs.iter().enumerate() {
        // Half the streams are stretched into violation, half are clean.
        let seq = if i % 2 == 0 {
            stretch(run, 16)
        } else {
            run.clone()
        };
        let mut stream = pool.open_stream(*seq.first_state());
        stream
            .send_batch(seq.step_triples().map(|(_, a, t, post)| (*a, t, *post)))
            .expect("block policy");
        stream.finish();
    }
    let report = pool.shutdown();
    for s in &report.streams {
        let has_upper = s
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::UpperBound { .. }));
        if s.stream % 2 == 0 {
            assert!(has_upper, "stretched stream {} must violate", s.stream);
            assert!(
                !s.warnings.is_empty(),
                "violating stream {} must be warned",
                s.stream
            );
        } else {
            assert!(
                s.violations.is_empty(),
                "clean stream {} violated",
                s.stream
            );
        }
    }
    let m = metrics.snapshot();
    assert_eq!(m.warnings as usize, report.warnings().len());
    assert!(m.batches >= runs.len() as u64);
    assert!(m.min_slack.is_some());
    let rendered = m.render();
    assert!(rendered.contains("warnings"));
    assert!(rendered.contains("batches"));
}
