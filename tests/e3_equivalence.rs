//! E3 — Lemma 2.1 / Corollary 2.2, executable: a timed sequence is a
//! timed execution of `(A, b)` (Definition 2.1, checked directly) **iff**
//! it satisfies every condition in `U_b` (Definition 2.2, checked via the
//! generic machinery). Verified on generated runs and on corrupted
//! variants of them, over two different systems.

use tempo_core::{
    check_timed_execution, project, satisfies, semi_satisfies, time_ab, u_b, RandomScheduler,
    SatisfactionMode, TimedSequence,
};
use tempo_math::Rat;
use tempo_systems::resource_manager::{self, Params, RmAction};
use tempo_systems::signal_relay::{self, RelayParams, Sig};

/// Both checkers accept all honestly generated prefixes (resource
/// manager).
#[test]
fn generated_runs_agree_positive_rm() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let timed = resource_manager::system(&params);
    let conds = u_b(timed.automaton(), timed.boundmap());
    let impl_aut = time_ab(&timed);
    for seed in 0..16 {
        let (run, _) = impl_aut.generate(&mut RandomScheduler::new(seed), 70);
        let seq = project(&run);
        let direct = check_timed_execution(&seq, &timed, SatisfactionMode::Prefix).is_ok();
        let via_conditions = conds.iter().all(|c| semi_satisfies(&seq, c).is_ok());
        assert!(direct && via_conditions, "seed {seed}");
    }
}

/// Corruptions are rejected by both checkers alike (resource manager):
/// time-warping an interior event violates some class bound both ways.
#[test]
fn corrupted_runs_agree_negative_rm() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let timed = resource_manager::system(&params);
    let conds = u_b(timed.automaton(), timed.boundmap());
    let impl_aut = time_ab(&timed);
    let mut agreements = 0;
    for seed in 0..24 {
        let (run, _) = impl_aut.generate(&mut RandomScheduler::new(seed), 40);
        let seq = project(&run);
        if seq.len() < 8 {
            continue;
        }
        for warp in [Rat::new(1, 7), Rat::new(5, 2)] {
            let corrupted = warp_event_times(&seq, warp);
            let direct =
                check_timed_execution(&corrupted, &timed, SatisfactionMode::Prefix).is_ok();
            let via = conds.iter().all(|c| semi_satisfies(&corrupted, c).is_ok());
            assert_eq!(direct, via, "seed {seed}, warp {warp}");
            agreements += 1;
            if !direct {
                // Most warps should actually break a bound.
            }
        }
    }
    assert!(agreements >= 20);
}

/// Same agreement on the relay, whose boundmap has a `[0, ∞]` class
/// (exercising infinite upper bounds and disabled classes).
#[test]
fn generated_and_scaled_runs_agree_relay() {
    let params = RelayParams::ints(3, 1, 2).unwrap();
    let timed = signal_relay::relay_line(&params);
    let conds = u_b(timed.automaton(), timed.boundmap());
    let impl_aut = time_ab(&timed);
    let mut checked = 0;
    for seed in 0..16 {
        let (run, _) = impl_aut.generate(&mut RandomScheduler::new(seed), 20);
        let seq = project(&run);
        // Honest prefix: both accept.
        assert!(check_timed_execution(&seq, &timed, SatisfactionMode::Prefix).is_ok());
        assert!(conds.iter().all(|c| semi_satisfies(&seq, c).is_ok()));
        // Compressed to 1/4 speed: hops become too fast; both reject (or,
        // for degenerate prefixes without hops, both accept).
        let compressed = scale_event_times(&seq, Rat::new(1, 4));
        let direct = check_timed_execution(&compressed, &timed, SatisfactionMode::Prefix).is_ok();
        let via = conds.iter().all(|c| semi_satisfies(&compressed, c).is_ok());
        assert_eq!(direct, via, "seed {seed}");
        checked += 1;
    }
    assert_eq!(checked, 16);
}

/// The `Complete` mode (Definition 2.2 proper) also agrees across the two
/// paths on full-delivery relay runs.
#[test]
fn complete_mode_agreement() {
    let params = RelayParams::ints(2, 1, 2).unwrap();
    let timed = signal_relay::relay_line(&params);
    let conds = u_b(timed.automaton(), timed.boundmap());
    let impl_aut = time_ab(&timed);
    for seed in 0..12 {
        let (run, _) = impl_aut.generate(&mut RandomScheduler::new(seed), 20);
        let seq = project(&run);
        let delivered = seq.timed_schedule().iter().any(|(a, _)| a.0 == 2);
        if !delivered {
            continue;
        }
        let direct = check_timed_execution(&seq, &timed, SatisfactionMode::Complete).is_ok();
        let via = conds.iter().all(|c| satisfies(&seq, c).is_ok());
        assert_eq!(direct, via, "seed {seed}");
    }
}

fn warp_event_times(
    seq: &TimedSequence<((), i64), RmAction>,
    factor: Rat,
) -> TimedSequence<((), i64), RmAction> {
    scale_generic(seq, factor)
}

fn scale_event_times(
    seq: &TimedSequence<Vec<bool>, Sig>,
    factor: Rat,
) -> TimedSequence<Vec<bool>, Sig> {
    scale_generic(seq, factor)
}

fn scale_generic<S: Clone + std::fmt::Debug, A: Clone + Eq + std::hash::Hash + std::fmt::Debug>(
    seq: &TimedSequence<S, A>,
    factor: Rat,
) -> TimedSequence<S, A> {
    let mut out = TimedSequence::new(seq.first_state().clone());
    for (_, a, t, post) in seq.step_triples() {
        out.push(a.clone(), t * factor, post.clone());
    }
    out
}

/// Lemma 3.2 part 1, executable: generated base sequences lift to
/// `time(A, b)` executions (and `lift ∘ project = identity` on runs),
/// while corrupted sequences have no lifting.
#[test]
fn lifting_round_trips_and_rejects() {
    use tempo_core::LiftError;

    let params = Params::ints(2, 2, 3, 1).unwrap();
    let timed = resource_manager::system(&params);
    let impl_aut = time_ab(&timed);
    for seed in 0..10 {
        let (run, _) = impl_aut.generate(&mut RandomScheduler::new(seed), 50);
        let seq = project(&run);
        let lifted = impl_aut.lift(&seq).expect("honest runs lift");
        assert_eq!(lifted, run, "lift ∘ project must be the identity");
    }
    // A twice-as-fast sequence violates the TICK lower bound: no lifting.
    let (run, _) = impl_aut.generate(&mut RandomScheduler::new(3), 30);
    let seq = project(&run);
    let compressed = scale_generic(&seq, Rat::new(1, 2));
    match impl_aut.lift(&compressed) {
        Err(LiftError::Unfirable { .. }) => {}
        other => panic!("expected an unfirable event, got {other:?}"),
    }
    // A sequence starting elsewhere cannot lift.
    let mut alien = tempo_core::TimedSequence::new(((), 99i64));
    alien.push(RmAction::Else, Rat::ONE, ((), 99));
    assert_eq!(impl_aut.lift(&alien), Err(LiftError::NotAStartState));
    // A sequence with a non-step cannot lift.
    let mut bogus = tempo_core::TimedSequence::new(((), 2i64));
    bogus.push(RmAction::Grant, Rat::ONE, ((), 2));
    assert!(matches!(
        impl_aut.lift(&bogus),
        Err(LiftError::Unfirable { .. }) | Err(LiftError::NotABaseStep { .. })
    ));
}
