//! E18 — loopback end-to-end checks behind the serve benchmark.
//!
//! The loadgen drives a real server over real sockets and every event
//! is accounted for: reports confirm exactly the events sent, the
//! violation count matches the traffic model's injected-late count
//! computed independently, and a `.tspec` hot reload over a control
//! frame switches bounds mid-connection with zero event drop.

use tempo_monitor::{PoolConfig, StreamReport};
use tempo_serve::{loadgen, Client, LoadgenConfig, ServeConfig, Server, ServerFrame};
use tempo_sim::loadgen::ReqServe;

fn start_server(spec: String, workers: usize) -> Server {
    let mut config = ServeConfig::new(spec, &ReqServe::ACTIONS);
    config.pool = PoolConfig {
        workers,
        ..PoolConfig::default()
    };
    Server::start(config).expect("server starts")
}

/// Multi-connection loadgen traffic arrives loss-free and the verdicts
/// match the model's injected violations exactly — in either egress
/// mode.
fn loadgen_loss_free(binary: bool) {
    let traffic = ReqServe {
        late_every: 5,
        ..ReqServe::default()
    }
    .validated();
    let server = start_server(traffic.tspec(), 2);

    let cfg = LoadgenConfig {
        streams: 64,
        events_per_stream: 40,
        batch: 10,
        conns: 4,
        binary,
        traffic,
    };
    let report = loadgen::run(&server.local_addr().to_string(), &cfg).expect("loadgen runs");

    assert_eq!(report.streams, 64);
    assert_eq!(report.events_sent, 64 * 40);
    assert_eq!(
        report.events_monitored, report.events_sent,
        "zero event drop socket → ring → monitor"
    );
    assert_eq!(report.failed, 0);

    let expected: u64 = (0..64).map(|s| traffic.expected_violations(s, 40)).sum();
    assert!(expected > 0, "the model must inject violations");
    assert_eq!(
        report.violations, expected,
        "every injected-late serve is flagged, nothing else"
    );

    let pool_report = server.shutdown();
    assert!(
        pool_report.streams.is_empty(),
        "every report was already drained to its client"
    );
}

#[test]
fn loadgen_round_trip_is_loss_free() {
    loadgen_loss_free(false);
}

/// Same accounting over `REPORT2` binary egress: the violation count
/// survives the name-interned fixed-layout encoding exactly.
#[test]
fn loadgen_round_trip_is_loss_free_binary() {
    loadgen_loss_free(true);
}

/// A reload control frame swaps the deadline mid-connection: events
/// sent before it are judged under the old bound, events after under
/// the new one, and none are lost.
///
/// The phases use hand-picked serve delays so the expectation is exact:
/// delay 3 satisfies both bounds, delay 8 violates only the original
/// `[0, 5]`, delay 12 violates even the loosened `[0, 10]`. Frames on
/// one connection are processed in order and
/// [`MonitorPool::reload_spec`](tempo_monitor::MonitorPool::reload_spec)
/// blocks until every worker swapped, so the phase boundary is sharp.
#[test]
fn reload_over_the_wire_swaps_bounds_without_dropping_events() {
    let traffic = ReqServe::default().validated(); // deadline 5
    assert_eq!(traffic.deadline_ms, 5);
    let server = start_server(traffic.tspec(), 2);

    const STREAMS: u64 = 16;
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for s in 0..STREAMS {
        client.open(s, 0);
    }

    // Phase A under [0, 5]: request/serve pairs with delay 3 — clean.
    for s in 0..STREAMS {
        let mut b = client.batch(s);
        b.push(tempo_serve::wire::WireEvent::at(0, 1, 0));
        b.push(tempo_serve::wire::WireEvent::at(1, 0, 3));
        b.finish();
    }

    // Hot reload to [0, 10] over the same connection.
    client.reload(&traffic.tspec_with_deadline(10));
    match client.recv().expect("reload ack") {
        ServerFrame::Reloaded(summary) => {
            assert_eq!(summary.spec, "reqserve");
            assert_eq!(summary.revision, 2);
            assert_eq!(summary.workers, 2);
            assert_eq!(summary.dropped, 0, "same condition name: nothing dropped");
        }
        other => panic!("expected the reload summary, got {other:?}"),
    }

    // Phase B under [0, 10]: delay 8 — violates the OLD bound only, so
    // a flag here would mean the reload did not take.
    for s in 0..STREAMS {
        let mut b = client.batch(s);
        b.push(tempo_serve::wire::WireEvent::at(0, 1, 100));
        b.push(tempo_serve::wire::WireEvent::at(1, 0, 108));
        b.finish();
    }

    // Phase C: delay 12 — violates even the loosened bound, exactly
    // once per stream, proving monitoring is still live post-swap.
    for s in 0..STREAMS {
        let mut b = client.batch(s);
        b.push(tempo_serve::wire::WireEvent::at(0, 1, 200));
        b.push(tempo_serve::wire::WireEvent::at(1, 0, 212));
        b.finish();
        client.finish_stream(s);
    }

    let mut reports: Vec<(u64, StreamReport)> = Vec::new();
    while reports.len() < STREAMS as usize {
        match client.recv().expect("report") {
            ServerFrame::Report { stream, report } => reports.push((stream, report)),
            ServerFrame::Error { code, message } => {
                panic!("unexpected server error {code:?}: {message}")
            }
            _ => {}
        }
    }

    for (stream, report) in &reports {
        assert_eq!(
            report.events, 6,
            "stream {stream}: zero event drop across the reload"
        );
        assert_eq!(
            report.violations.len(),
            1,
            "stream {stream}: only the phase-C serve may violate"
        );
        assert!(!report.failed);
    }

    server.shutdown();
}

/// Worker drain/restore reroutes future placements without touching
/// live streams: traffic keeps flowing through both transitions.
#[test]
fn drain_and_restore_keep_serving() {
    let traffic = ReqServe::default().validated();
    let server = start_server(traffic.tspec(), 2);
    let addr = server.local_addr().to_string();

    let run = |streams: std::ops::Range<u64>| {
        let mut client = Client::connect(&*addr).expect("connect");
        for s in streams.clone() {
            client.open(s, 0);
            let mut b = client.batch(s);
            b.push(tempo_serve::wire::WireEvent::at(0, 1, 0));
            b.push(tempo_serve::wire::WireEvent::at(1, 0, 2));
            b.finish();
            client.finish_stream(s);
        }
        let mut seen = 0;
        while seen < streams.clone().count() {
            match client.recv().expect("report") {
                ServerFrame::Report { report, .. } => {
                    assert_eq!(report.events, 2);
                    assert!(report.violations.is_empty());
                    seen += 1;
                }
                other => panic!("unexpected egress {other:?}"),
            }
        }
    };

    run(0..8);
    assert!(server.drain_worker(1), "draining one of two workers");
    run(8..16);
    assert!(!server.drain_worker(0), "the last worker cannot drain");
    assert!(server.restore_worker(1));
    run(16..24);

    let report = server.shutdown();
    assert!(report.streams.is_empty(), "all reports already delivered");
}
