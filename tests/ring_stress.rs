//! Cross-thread stress tests for the pool's SPSC ring transport
//! (`tempo_monitor::ring`): FIFO order, no loss, no duplication under
//! randomized batch sizes, wakeup correctness after parking, and
//! wrap-around behaviour at capacity boundaries.
//!
//! CI runs this file in a loop under `--release` — reordering bugs in
//! the ring's atomics tend to surface only with optimizations on.

use std::thread;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tempo_monitor::ring::ring;

/// One producer and one consumer on separate threads, pushing with
/// randomized batch sizes (mixing `push_blocking`, `try_push`, and the
/// batched `try_push_many`) and draining with randomized claim sizes.
/// Every value must arrive exactly once, in order.
#[test]
fn randomized_batches_preserve_fifo_without_loss_or_duplication() {
    const TOTAL: u64 = 100_000;
    for (seed, capacity) in [(1u64, 8usize), (2, 64), (3, 1024)] {
        let (mut tx, mut rx) = ring::<u64>(capacity);
        let producer = thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut next = 0u64;
            while next < TOTAL {
                match rng.gen_range(0..3u32) {
                    0 => {
                        tx.push_blocking(next);
                        next += 1;
                    }
                    1 => {
                        if tx.try_push(next).is_ok() {
                            next += 1;
                        }
                    }
                    _ => {
                        let n = rng.gen_range(1..=32u64).min(TOTAL - next);
                        let batch: Vec<u64> = (next..next + n).collect();
                        let mut items = batch.into_iter();
                        loop {
                            let (_, accepted) = tx.try_push_many(&mut items);
                            next += accepted as u64;
                            if items.len() == 0 {
                                break;
                            }
                            tx.wait_space();
                        }
                    }
                }
            }
        });
        let consumer = thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
            let mut out: Vec<u64> = Vec::with_capacity(TOTAL as usize);
            while (out.len() as u64) < TOTAL {
                let max = rng.gen_range(1..=64usize);
                if rx.pop_many(max, &mut out) == 0 {
                    std::hint::spin_loop();
                }
            }
            out
        });
        producer.join().expect("producer panicked");
        let out = consumer.join().expect("consumer panicked");
        assert_eq!(out.len() as u64, TOTAL, "no loss, no duplication");
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64, "FIFO order (seed {seed}, cap {capacity})");
        }
    }
}

/// A producer on a tiny full ring must park and be woken by the
/// consumer's drain — repeatedly, with the consumer deliberately slow
/// enough that the producer exhausts its spin budget and parks for real.
#[test]
fn producer_wakes_correctly_after_parking() {
    const TOTAL: u64 = 200;
    let (mut tx, mut rx) = ring::<u64>(1);
    let consumer = thread::spawn(move || {
        let mut out = Vec::with_capacity(TOTAL as usize);
        while (out.len() as u64) < TOTAL {
            // Sleep long enough that the blocked producer parks; the
            // drain must then unpark it promptly.
            thread::sleep(Duration::from_micros(200));
            rx.pop_many(usize::MAX, &mut out);
        }
        out
    });
    for v in 0..TOTAL {
        tx.push_blocking(v);
    }
    let out = consumer.join().expect("consumer panicked");
    assert_eq!(out, (0..TOTAL).collect::<Vec<_>>());
}

/// The drop-oldest eviction racing a concurrent drain: every pushed
/// value is either received or evicted, exactly once, and the received
/// subsequence stays in increasing order.
#[test]
fn eviction_and_drain_partition_the_stream_exactly() {
    const TOTAL: u64 = 50_000;
    let (mut tx, mut rx) = ring::<u64>(4);
    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let done_tx = std::sync::Arc::clone(&done);
    let producer = thread::spawn(move || {
        let mut evicted = Vec::new();
        for mut v in 0..TOTAL {
            loop {
                match tx.try_push(v) {
                    Ok(_) => break,
                    Err(rejected) => {
                        v = rejected;
                        match tx.evict_oldest() {
                            Some(old) => evicted.push(old),
                            None => std::hint::spin_loop(),
                        }
                    }
                }
            }
        }
        done_tx.store(true, std::sync::atomic::Ordering::Release);
        evicted
    });
    let consumer = thread::spawn(move || {
        let mut out = Vec::new();
        // Drain until the producer reports done *and* the ring is empty:
        // received + evicted then partition the TOTAL pushed values.
        loop {
            if rx.pop_many(7, &mut out) == 0 {
                if done.load(std::sync::atomic::Ordering::Acquire) && rx.is_empty() {
                    break;
                }
                std::hint::spin_loop();
            }
        }
        out
    });
    let evicted = producer.join().expect("producer panicked");
    let received = consumer.join().expect("consumer panicked");
    assert!(
        received.windows(2).all(|w| w[0] < w[1]),
        "received values stay in increasing order"
    );
    assert!(
        evicted.windows(2).all(|w| w[0] < w[1]),
        "evictions happen oldest-first"
    );
    // Exactly-once accounting: the two sides partition 0..TOTAL.
    let mut all: Vec<u64> = received.iter().chain(evicted.iter()).copied().collect();
    all.sort_unstable();
    assert_eq!(all.len() as u64, TOTAL, "nothing lost, nothing duplicated");
    assert_eq!(all, (0..TOTAL).collect::<Vec<_>>());
}

/// Single-threaded wrap-around sweep: for every small power-of-two
/// capacity, interleave fills and partial drains so the cursors cross
/// the slot-array boundary at every possible offset.
#[test]
fn wrap_around_is_exact_at_every_capacity_boundary() {
    for capacity in [1usize, 2, 4, 8, 16] {
        let (mut tx, mut rx) = ring::<u64>(capacity);
        let mut next = 0u64;
        let mut expect = 0u64;
        let mut out = Vec::new();
        // 4 × capacity rounds of "fill to the brim, drain k" shifts the
        // boundary through every offset at least twice.
        for round in 0..(4 * capacity) {
            while tx.try_push(next).is_ok() {
                next += 1;
            }
            assert_eq!(tx.len(), capacity, "filled to capacity");
            let k = (round % capacity) + 1;
            out.clear();
            assert_eq!(rx.pop_many(k, &mut out), k);
            for v in &out {
                assert_eq!(*v, expect, "order across the wrap (cap {capacity})");
                expect += 1;
            }
        }
        // Final drain: everything pushed comes out, in order.
        out.clear();
        while rx.pop_many(usize::MAX, &mut out) > 0 {}
        for v in &out {
            assert_eq!(*v, expect);
            expect += 1;
        }
        assert_eq!(expect, next, "every pushed value was popped exactly once");
        assert!(tx.is_empty() && rx.is_empty());
    }
}
