//! Round-trip and diagnostics properties of the `.tspec` front end.
//!
//! * **Round trip**: for arbitrary well-formed ASTs, `parse(pretty(s))`
//!   is structurally identical to `s` (spans excepted — AST equality
//!   ignores them), and `pretty` is idempotent. The shipped system
//!   specs round-trip too.
//! * **Malformed corpus**: a fixture set of broken specs pins the
//!   diagnostics — code, severity, and the exact source slice each
//!   span covers — so error messages cannot silently drift.

use proptest::prelude::*;
use tempo_math::Rat;
use tempo_spec::ast::{
    ActionsDecl, BoundLit, BoundsClause, CondDecl, DisableClause, Ident, Meta, PredRef, RatLit,
    SetExpr, Spec, StartTrigger, StepTrigger, StepWhen, WhenState,
};
use tempo_spec::{lint, parse, pretty, Span};
use tempo_systems::{
    cement_mixer, fischer, peterson, request_manager, tournament, two_event_chain,
};

// ---------------------------------------------------------------------
// AST strategies. Identifiers are uppercase so they can never collide
// with the (all-lowercase) reserved words; they exercise underscores,
// digits, and interior hyphens.
// ---------------------------------------------------------------------

fn ident() -> impl Strategy<Value = Ident> {
    const HEAD: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const TAIL: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-";
    (
        0usize..HEAD.len(),
        proptest::collection::vec(0usize..TAIL.len(), 0..6),
    )
        .prop_map(|(head, tail)| {
            let mut text = String::new();
            text.push(HEAD[head] as char);
            text.extend(tail.iter().map(|&i| TAIL[i] as char));
            Ident {
                text,
                span: Span::default(),
            }
        })
}

/// Printable-ASCII metadata values, including `"` and `\` so the
/// printer's escaping is exercised.
fn meta_value() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..95, 0..16)
        .prop_map(|cs| cs.iter().map(|c| (b' ' + c) as char).collect())
}

fn set_expr() -> impl Strategy<Value = SetExpr> {
    let leaf = prop_oneof![
        4 => ident().prop_map(SetExpr::Action),
        1 => Just(SetExpr::Any(Span::default())),
        1 => Just(SetExpr::None(Span::default())),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            inner
                .clone()
                .prop_map(|e| SetExpr::Not(Span::default(), Box::new(e))),
            (inner.clone(), inner).prop_map(|(a, b)| SetExpr::Union(Box::new(a), Box::new(b))),
        ]
    })
}

fn pred_ref() -> impl Strategy<Value = PredRef> {
    (any::<bool>(), ident()).prop_map(|(negated, name)| PredRef { negated, name })
}

fn rat_lit() -> impl Strategy<Value = RatLit> {
    (0i64..=30, 1i64..=9).prop_map(|(num, den)| RatLit {
        value: Rat::new(num.into(), den.into()),
        span: Span::default(),
    })
}

fn bounds_clause() -> impl Strategy<Value = BoundsClause> {
    (
        rat_lit(),
        prop_oneof![
            3 => rat_lit().prop_map(BoundLit::Finite),
            1 => Just(BoundLit::Inf(Span::default())),
        ],
    )
        .prop_map(|(lo, hi)| BoundsClause {
            lo,
            hi,
            span: Span::default(),
        })
}

fn cond_decl() -> impl Strategy<Value = CondDecl> {
    (
        ident(),
        proptest::option::of(proptest::option::of(pred_ref())),
        proptest::option::of((
            set_expr(),
            proptest::option::of((
                prop_oneof![Just(WhenState::Pre), Just(WhenState::Post)],
                pred_ref(),
            )),
        )),
        proptest::option::of(set_expr()),
        proptest::option::of(prop_oneof![
            set_expr().prop_map(|e| DisableClause::On(e, Span::default())),
            pred_ref().prop_map(|p| DisableClause::When(p, Span::default())),
        ]),
        bounds_clause(),
    )
        .prop_map(|(name, start, step, pi, disable, bounds)| CondDecl {
            name,
            start: start.map(|when| StartTrigger {
                when,
                span: Span::default(),
            }),
            step: step.map(|(expr, when)| StepTrigger {
                expr,
                when: when.map(|(at, pred)| StepWhen { at, pred }),
                span: Span::default(),
            }),
            pi,
            disable,
            bounds,
            span: Span::default(),
        })
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        ident(),
        proptest::collection::vec(
            (ident(), meta_value()).prop_map(|(key, value)| Meta {
                key,
                value,
                span: Span::default(),
            }),
            0..3,
        ),
        proptest::option::of(proptest::collection::vec(ident(), 1..5).prop_map(|names| {
            ActionsDecl {
                names,
                span: Span::default(),
            }
        })),
        proptest::collection::vec(cond_decl(), 0..4),
    )
        .prop_map(|(name, meta, actions, conds)| Spec {
            name,
            meta,
            actions,
            conds,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse(pretty(s)) == s` for arbitrary ASTs, and the canonical
    /// form is a fixed point of the printer.
    #[test]
    fn pretty_then_parse_is_identity(s in spec()) {
        let printed = pretty(&s);
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("printed form fails to parse:\n{printed}\n{e:?}"));
        prop_assert_eq!(&reparsed, &s, "printed form:\n{}", printed);
        prop_assert_eq!(pretty(&reparsed), printed);
    }
}

/// The shipped system specs round-trip through the printer and the
/// printer is idempotent on them.
#[test]
fn shipped_specs_round_trip() {
    let shipped: [(&str, &str); 6] = [
        ("fischer", fischer::tspec_source()),
        ("peterson", peterson::tspec_source()),
        ("tournament", tournament::tspec_source()),
        ("cement_mixer", cement_mixer::tspec_source()),
        ("request_manager", request_manager::tspec_source()),
        ("two_event_chain", two_event_chain::tspec_source()),
    ];
    for (name, src) in shipped {
        let ast = parse(src).unwrap_or_else(|e| panic!("{name}: {e:?}"));
        let printed = pretty(&ast);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{name}: {e:?}\n{printed}"));
        assert_eq!(reparsed, ast, "{name}: round trip\n{printed}");
        assert_eq!(pretty(&reparsed), printed, "{name}: printer idempotence");
    }
}

// ---------------------------------------------------------------------
// Malformed corpus: every fixture pins (code, severity, exact source
// slice) for each diagnostic `lint` reports, in order.
// ---------------------------------------------------------------------

struct Fixture {
    /// What the fixture exercises.
    label: &'static str,
    src: &'static str,
    /// `(code, is_error, span slice)` per expected diagnostic.
    expect: &'static [(&'static str, bool, &'static str)],
}

const CORPUS: &[Fixture] = &[
    Fixture {
        label: "trigger with a missing set expression",
        src: "spec s; cond C { trigger on ; pi X; bounds [0, 1]; }",
        expect: &[("parse", true, ";")],
    },
    Fixture {
        label: "condition without bounds",
        src: "spec s;\ncond NOPE { pi A; }",
        expect: &[("missing-bounds", true, "NOPE")],
    },
    Fixture {
        label: "reserved word as the spec name",
        src: "spec pi;",
        expect: &[("reserved-word", true, "pi")],
    },
    Fixture {
        label: "zero denominator (and the bounds clause it sinks)",
        src: "spec s; cond C { bounds [1/0, 2]; }",
        expect: &[("bad-rational", true, "1/0"), ("missing-bounds", true, "C")],
    },
    Fixture {
        label: "duplicate pi clause",
        src: "spec s; cond C { pi A; pi B; bounds [0, 1]; }",
        expect: &[("duplicate-clause", true, "pi")],
    },
    Fixture {
        label: "stray character",
        src: "spec s; cond C @ { pi A; bounds [0, 1]; }",
        expect: &[("stray-char", true, "@")],
    },
    Fixture {
        label: "unterminated string",
        src: "spec s; meta k \"open",
        expect: &[("unterminated-string", true, "\"open")],
    },
    Fixture {
        label: "warning pile-up, sorted by source position",
        src: "spec s; actions GO, SPARE; cond C { trigger on GO; bounds [2, 1]; }",
        expect: &[
            ("unused-action", false, "SPARE"),
            ("vacuous-pi", false, "C"),
            ("contradictory-bounds", false, "bounds [2, 1];"),
        ],
    },
    Fixture {
        label: "undeclared action",
        src: "spec s; actions GO; cond C { trigger on GO; pi OOPS; bounds [0, 5]; }",
        expect: &[("undeclared-action", true, "OOPS")],
    },
    Fixture {
        label: "duplicate condition name",
        src: "spec s;\ncond C { trigger on A; pi B; bounds [0, 1]; }\ncond C { trigger on A; pi B; bounds [0, 1]; }",
        expect: &[("duplicate-name", false, "C")],
    },
    Fixture {
        label: "zero upper bound",
        src: "spec s; cond C { trigger on A; pi B; bounds [0, 0]; }",
        expect: &[("zero-upper", false, "0")],
    },
];

#[test]
fn malformed_corpus_diagnostics_are_stable() {
    for f in CORPUS {
        let got = lint(f.src);
        let brief: Vec<(&str, bool, &str)> = got
            .iter()
            .map(|d| (d.code, d.is_error(), d.span.slice(f.src)))
            .collect();
        assert_eq!(brief, f.expect, "{}:\n{}", f.label, f.src);
        // Every rendering names the code and is anchored in the source.
        for d in &got {
            let rendered = d.render(f.src);
            assert!(rendered.contains(d.code), "{}: {rendered}", f.label);
        }
    }
}
