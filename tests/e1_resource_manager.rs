//! E1 — cross-crate verification of the paper's §4 resource manager:
//! paper formulas vs zone checker vs simulation vs mapping method, across
//! a parameter sweep.

use tempo_core::mapping::{MappingChecker, RunPlan};
use tempo_core::{time_ab, SatisfactionMode};
use tempo_math::{Rat, TimeVal};
use tempo_sim::{audit_runs, Ensemble, GapStats};
use tempo_systems::resource_manager::{
    self, g1, g2, requirements_automaton, Params, RmAction, RmMapping,
};
use tempo_zones::ZoneChecker;

fn sweep() -> Vec<Params> {
    vec![
        Params::ints(1, 2, 2, 1).unwrap(),
        Params::ints(2, 2, 3, 1).unwrap(),
        Params::ints(3, 2, 5, 1).unwrap(),
        Params::ints(4, 3, 3, 2).unwrap(),
        Params::new(2, Rat::new(3, 2), Rat::new(7, 3), Rat::new(1, 2)).unwrap(),
    ]
}

/// E1a/E1b: the zone checker reproduces both paper formulas exactly.
#[test]
fn zone_bounds_match_paper_formulas() {
    for params in sweep() {
        let timed = resource_manager::system(&params);
        let zone = ZoneChecker::new(&timed);
        let v1 = zone.verify_condition(&g1(&params)).unwrap();
        assert_eq!(
            v1.earliest_pi,
            TimeVal::from(params.g1_bounds().lo()),
            "G1 lower, {params:?}"
        );
        assert_eq!(
            v1.latest_armed,
            params.g1_bounds().hi(),
            "G1 upper, {params:?}"
        );
        let v2 = zone.verify_condition(&g2(&params)).unwrap();
        assert_eq!(
            v2.earliest_pi,
            TimeVal::from(params.g2_bounds().lo()),
            "G2 lower, {params:?}"
        );
        assert_eq!(
            v2.latest_armed,
            params.g2_bounds().hi(),
            "G2 upper, {params:?}"
        );
    }
}

/// E1d: the §4.3 mapping passes the step-correspondence check (Lemma 4.3).
#[test]
fn section_4_3_mapping_verifies() {
    for params in sweep() {
        let timed = resource_manager::system(&params);
        let impl_aut = time_ab(&timed);
        let spec_aut = requirements_automaton(&timed, &params);
        let report = MappingChecker::new().check(
            &impl_aut,
            &spec_aut,
            &RmMapping::new(params.clone()),
            &RunPlan {
                random_runs: 10,
                steps: 90,
                seed: 0xE1A,
            },
        );
        assert!(
            report.passed(),
            "{params:?}: {:?}",
            report.violations.first()
        );
    }
}

/// E1c: Lemma 4.1 holds along simulated predictive states, and its first
/// half (TIMER ≥ 0) holds over the zone-reachable base states.
#[test]
fn lemma_4_1_both_ways() {
    for params in sweep() {
        let timed = resource_manager::system(&params);
        let impl_aut = time_ab(&timed);
        assert!(resource_manager::check_lemma_4_1_on_runs(
            &params, &impl_aut, 16, 120
        ));
        let violation = ZoneChecker::new(&timed)
            .check_invariant(|s| s.1 >= 0)
            .unwrap();
        assert_eq!(violation, None, "{params:?}");
    }
}

/// The timing assumptions are essential for Lemma 4.1: untimed
/// reachability (no boundmap) reaches TIMER < 0.
#[test]
fn untimed_reachability_violates_timer_invariant() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let aut = resource_manager::untimed(&params);
    let outcome = tempo_ioa::check_invariant(
        &aut,
        &tempo_ioa::Explorer::new().with_max_states(50),
        |s: &((), i64)| s.1 >= 0,
    );
    assert!(
        !outcome.holds(),
        "without timing, ticks can pass a pending grant"
    );
}

/// Every simulated run (random + extremal) semi-satisfies G1 and G2, and
/// the observed gaps stay within the proved intervals.
#[test]
fn simulation_within_proved_bounds() {
    for params in sweep() {
        let timed = resource_manager::system(&params);
        let impl_aut = time_ab(&timed);
        let runs = Ensemble::new(20, 120).collect(&impl_aut);
        let audit = audit_runs(&runs, &[g1(&params), g2(&params)]);
        assert!(audit.passed(), "{params:?}: {audit}");
        let first = GapStats::first(&runs, |a| *a == RmAction::Grant);
        assert!(first.count > 0);
        assert!(
            params.g1_bounds().contains(first.min.unwrap()),
            "{params:?}"
        );
        assert!(
            params.g1_bounds().contains(first.max.unwrap()),
            "{params:?}"
        );
        let gaps = GapStats::between(&runs, |a| *a == RmAction::Grant, |a| *a == RmAction::Grant);
        assert!(gaps.count > 0);
        assert!(params.g2_bounds().contains(gaps.min.unwrap()), "{params:?}");
        assert!(params.g2_bounds().contains(gaps.max.unwrap()), "{params:?}");
    }
}

/// Extremal schedulers attain the exact extremes of G1 (rush ⇒ k·c1;
/// the upper end is approached within the LOCAL slack `l`).
#[test]
fn extremal_schedulers_touch_bounds() {
    let params = Params::ints(3, 2, 4, 1).unwrap();
    let timed = resource_manager::system(&params);
    let impl_aut = time_ab(&timed);
    let mut rush = tempo_sim::TargetRushScheduler::new(|a: &RmAction| *a == RmAction::Grant);
    let (run, _) = impl_aut.generate(&mut rush, 60);
    let seq = tempo_core::project(&run);
    let first = seq
        .timed_schedule()
        .into_iter()
        .find(|(a, _)| *a == RmAction::Grant)
        .map(|(_, t)| t)
        .unwrap();
    assert_eq!(first, Rat::from(6), "rush attains k·c1");

    let mut delay = tempo_sim::TargetDelayScheduler::new(impl_aut.clone(), |a: &RmAction| {
        *a == RmAction::Grant
    });
    let (run, _) = impl_aut.generate(&mut delay, 60);
    let seq = tempo_core::project(&run);
    let first = seq
        .timed_schedule()
        .into_iter()
        .find(|(a, _)| *a == RmAction::Grant)
        .map(|(_, t)| t)
        .unwrap();
    // k·c2 ≤ observed ≤ k·c2 + l.
    assert!(
        first >= Rat::from(12) && first <= Rat::from(13),
        "got {first}"
    );
}

/// Definition 2.1 check: extremal runs are timed executions of (A, b).
#[test]
fn runs_are_timed_executions() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let timed = resource_manager::system(&params);
    let impl_aut = time_ab(&timed);
    for seed in 0..8 {
        let mut sched = tempo_core::RandomScheduler::new(seed);
        let (run, _) = impl_aut.generate(&mut sched, 80);
        let seq = tempo_core::project(&run);
        assert_eq!(
            tempo_core::check_timed_execution(&seq, &timed, SatisfactionMode::Prefix),
            Ok(()),
            "seed {seed}"
        );
    }
}

/// **Exhaustive** verification of the §4.3 mapping: every reachable
/// corner-quotient state of `time(A, b)` is expanded and the Definition
/// 3.2 obligations hold at each — a complete mechanical case analysis,
/// not a sampled one.
#[test]
fn section_4_3_mapping_verifies_exhaustively() {
    for params in [
        Params::ints(2, 2, 3, 1).unwrap(),
        Params::ints(3, 2, 5, 1).unwrap(),
    ] {
        let timed = resource_manager::system(&params);
        let impl_aut = time_ab(&timed);
        let spec_aut = requirements_automaton(&timed, &params);
        let report = MappingChecker::new().check_exhaustive(
            &impl_aut,
            &spec_aut,
            &RmMapping::new(params.clone()),
            200_000,
        );
        assert!(
            report.passed(),
            "{params:?}: {:?}",
            report.violations.first()
        );
        assert!(
            report.steps_checked > 20,
            "expected a nontrivial quotient space, got {} steps",
            report.steps_checked
        );
    }
}
