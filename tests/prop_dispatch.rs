//! Differential property tests for the action-dispatch tables: a
//! timing condition whose `T_step`/`Π`/disabling components are given as
//! declarative [`ActionSet`]s must behave *identically* to the same
//! condition given as opaque closures — per-event classifications,
//! per-event monitor verdicts, violation lists, and the final verdict all
//! agree, on random traces that deliberately include actions the
//! interner has never seen (exercising the default dispatch row and
//! complement sets). Mixed sets (some conditions declarative, some
//! opaque) pin the fallback masks: the table path and the closure path
//! coexist inside one compiled set.
//!
//! States are `u32` and each event's post-state equals its action, so an
//! opaque *state*-based disabling closure can mirror a declarative
//! *action*-based disabling set exactly.

use proptest::prelude::*;
use tempo_core::engine::{CompiledConditionSet, EventClassification};
use tempo_core::{ActionSet, SatisfactionMode, TimedSequence, TimingCondition, Violation};
use tempo_math::{Interval, Rat};
use tempo_monitor::Monitor;

/// Actions mentioned by condition sets are drawn from `0..UNIVERSE`;
/// traces also fire actions in `UNIVERSE..UNIVERSE + 4`, which no set
/// ever lists — they dispatch through the default row.
const UNIVERSE: u32 = 8;

/// The start state; outside every action range so no accidental overlap.
const START: u32 = 999;

#[derive(Clone, Debug)]
enum SetSpec {
    Of(Vec<u32>),
    AllExcept(Vec<u32>),
}

impl SetSpec {
    fn to_set(&self) -> ActionSet<u32> {
        match self {
            SetSpec::Of(v) => ActionSet::of(v.iter().copied()),
            SetSpec::AllExcept(v) => ActionSet::all_except(v.iter().copied()),
        }
    }

    fn contains(&self, a: u32) -> bool {
        match self {
            SetSpec::Of(v) => v.contains(&a),
            SetSpec::AllExcept(v) => !v.contains(&a),
        }
    }
}

#[derive(Clone, Debug)]
struct CondSpec {
    lo: i64,
    hi: i64,
    start_trigger: bool,
    trigger: SetSpec,
    pi: SetSpec,
    disabling: SetSpec,
}

impl CondSpec {
    /// The condition with every component declarative.
    fn declarative(&self, name: &str) -> TimingCondition<u32, u32> {
        let mut c = TimingCondition::new(name, self.bounds())
            .triggered_by_actions(self.trigger.to_set())
            .on_action_set(self.pi.to_set())
            .disabled_by_actions(self.disabling.to_set());
        if self.start_trigger {
            c = c.triggered_at_start(|s| *s == START);
        }
        c
    }

    /// The same condition with every component an opaque closure. The
    /// disabling closure reads the post-*state*, which the trace
    /// construction pins to the event's action.
    fn opaque(&self, name: &str) -> TimingCondition<u32, u32> {
        let (tr, pi, dis) = (
            self.trigger.clone(),
            self.pi.clone(),
            self.disabling.clone(),
        );
        let mut c = TimingCondition::new(name, self.bounds())
            .triggered_by_step(move |_, a, _| tr.contains(*a))
            .on_actions(move |a| pi.contains(*a))
            .disabled_in(move |s| dis.contains(*s));
        if self.start_trigger {
            c = c.triggered_at_start(|s| *s == START);
        }
        c
    }

    fn bounds(&self) -> Interval {
        Interval::closed(Rat::from(self.lo), Rat::from(self.hi)).unwrap()
    }
}

fn subset() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..UNIVERSE, 0..4)
}

fn set_spec() -> impl Strategy<Value = SetSpec> {
    (any::<bool>(), subset()).prop_map(|(complement, v)| {
        if complement {
            SetSpec::AllExcept(v)
        } else {
            SetSpec::Of(v)
        }
    })
}

fn cond_spec() -> impl Strategy<Value = CondSpec> {
    (
        0i64..=3,
        0i64..=6,
        any::<bool>(),
        set_spec(),
        set_spec(),
        set_spec(),
    )
        .prop_map(
            |(lo, spread, start_trigger, trigger, pi, disabling)| CondSpec {
                lo,
                // `Interval` rejects hi == 0, so keep point intervals at ≥ 1.
                hi: (lo + spread).max(1),
                start_trigger,
                trigger,
                pi,
                disabling,
            },
        )
}

/// A random trace: each event is `(action, dt)`; times accumulate and
/// the post-state equals the action. Actions range past the interned
/// universe on purpose.
fn trace() -> impl Strategy<Value = Vec<(u32, i64)>> {
    proptest::collection::vec((0..UNIVERSE + 4, 0i64..=3), 0..24)
}

fn to_sequence(events: &[(u32, i64)]) -> TimedSequence<u32, u32> {
    let mut seq = TimedSequence::new(START);
    let mut t = 0i64;
    for &(a, dt) in events {
        t += dt;
        seq.push(a, Rat::from(t), a);
    }
    seq
}

fn sorted(vs: &[Violation]) -> Vec<String> {
    let mut keys: Vec<String> = vs.iter().map(|v| format!("{v:?}")).collect();
    keys.sort();
    keys
}

/// Per-event classification bits of `set` over the trace, via the
/// eager [`classify`](CompiledConditionSet::classify) path.
fn classifications(
    set: &CompiledConditionSet<u32, u32>,
    seq: &TimedSequence<u32, u32>,
) -> Vec<Vec<(bool, bool, bool)>> {
    let mut cls = EventClassification::new(set.len());
    let mut out = Vec::new();
    for (pre, a, _, post) in seq.step_triples() {
        set.classify(pre, a, post, &mut cls);
        out.push(
            (0..set.len())
                .map(|ci| (cls.trigger(ci), cls.pi(ci), cls.disabling(ci)))
                .collect(),
        );
    }
    out
}

/// Violations plus the per-event verdict stream of a monitor over `seq`.
fn monitor_outcomes(
    conds: &[TimingCondition<u32, u32>],
    seq: &TimedSequence<u32, u32>,
    mode: SatisfactionMode,
) -> (Vec<Violation>, Vec<String>) {
    let mut mon = Monitor::new(conds, seq.first_state());
    let mut verdicts = Vec::new();
    for (_, a, t, post) in seq.step_triples() {
        verdicts.push(format!("{:?}", mon.observe(a, t, post)));
    }
    (mon.finish(mode), verdicts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole equivalence: fully declarative, fully opaque, and
    /// per-condition mixed compilations of the same random condition set
    /// agree event-by-event and end-to-end on random traces.
    #[test]
    fn declarative_and_opaque_dispatch_agree(
        specs in proptest::collection::vec(cond_spec(), 1..6),
        events in trace(),
        mix in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let seq = to_sequence(&events);
        let decl: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.declarative(&format!("C{i}")))
            .collect();
        let opaq: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.opaque(&format!("C{i}")))
            .collect();
        let mixed: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                if mix[i] {
                    s.declarative(&format!("C{i}"))
                } else {
                    s.opaque(&format!("C{i}"))
                }
            })
            .collect();

        let d_set = CompiledConditionSet::new(&decl);
        let o_set = CompiledConditionSet::new(&opaq);
        let m_set = CompiledConditionSet::new(&mixed);

        // A fully declarative set needs no closure fallback at all; a
        // fully opaque one needs it everywhere.
        let d_stats = d_set.dispatch_stats();
        prop_assert_eq!(
            (d_stats.opaque_trigger, d_stats.opaque_pi, d_stats.opaque_disabling),
            (0, 0, 0)
        );
        let o_stats = o_set.dispatch_stats();
        prop_assert_eq!(o_stats.opaque_trigger, specs.len());
        prop_assert_eq!(o_stats.opaque_pi, specs.len());
        prop_assert_eq!(o_stats.opaque_disabling, specs.len());

        // Event-by-event classification bits agree across compilations.
        let want_cls = classifications(&o_set, &seq);
        prop_assert_eq!(&want_cls, &classifications(&d_set, &seq));
        prop_assert_eq!(&want_cls, &classifications(&m_set, &seq));

        for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
            // Offline folds (the step_event fused path) agree.
            let want = sorted(&o_set.fold_sequence(&seq, mode));
            prop_assert_eq!(&want, &sorted(&d_set.fold_sequence(&seq, mode)), "mode {:?}", mode);
            prop_assert_eq!(&want, &sorted(&m_set.fold_sequence(&seq, mode)), "mode {:?}", mode);

            // Streaming monitors agree on every verdict and violation.
            let (o_vs, o_verdicts) = monitor_outcomes(&opaq, &seq, mode);
            let (d_vs, d_verdicts) = monitor_outcomes(&decl, &seq, mode);
            let (m_vs, m_verdicts) = monitor_outcomes(&mixed, &seq, mode);
            prop_assert_eq!(&o_verdicts, &d_verdicts);
            prop_assert_eq!(&o_verdicts, &m_verdicts);
            prop_assert_eq!(&sorted(&o_vs), &sorted(&d_vs));
            prop_assert_eq!(&sorted(&o_vs), &sorted(&m_vs));
            // And with the monitors' fused path against the eager
            // classify-then-step fold.
            prop_assert_eq!(&want, &sorted(&o_vs), "mode {:?}", mode);
        }
    }

    /// The eager classify-then-step path and the fused step_event path
    /// produce identical engine states on the declarative compilation.
    #[test]
    fn classify_step_matches_step_event(
        specs in proptest::collection::vec(cond_spec(), 1..5),
        events in trace(),
    ) {
        let seq = to_sequence(&events);
        let conds: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.declarative(&format!("C{i}")))
            .collect();
        let set = CompiledConditionSet::new(&conds);

        let mut fused = set.start(seq.first_state());
        let mut eager = set.start(seq.first_state());
        let mut cls = EventClassification::new(set.len());
        for (pre, a, t, post) in seq.step_triples() {
            let logged: Vec<String> = set
                .step_event(&mut fused, pre, a, post, t)
                .iter()
                .map(|e| format!("{e:?}"))
                .collect();
            set.classify(pre, a, post, &mut cls);
            let eager_log: Vec<String> = set
                .step(&mut eager, &cls, t)
                .iter()
                .map(|e| format!("{e:?}"))
                .collect();
            prop_assert_eq!(&logged, &eager_log);
            prop_assert_eq!(fused.open_obligations(), eager.open_obligations());
        }
    }
}
