//! E7 — the extension systems: the two-event chain (§8), the
//! request-driven manager (§4 footnote), and Fischer mutual exclusion.

use tempo_math::{Interval, Rat, TimeVal};
use tempo_systems::fischer::{self, FischerParams, Pc};
use tempo_systems::request_manager::{self, response_bounds};
use tempo_systems::resource_manager::Params;
use tempo_systems::two_event_chain::{self, ChainParams};

/// E7a: the chain's composed bound `[l1+l2, u1+u2]` holds three ways,
/// across parameters.
#[test]
fn chain_bounds_across_parameters() {
    for (p, phi, psi) in [
        ((0, 3), (1, 2), (1, 2)),
        ((2, 9), (0, 4), (3, 3)),
        ((0, 1), (5, 7), (2, 6)),
    ] {
        let params = ChainParams::ints(p, phi, psi);
        let v = two_event_chain::verify(&params);
        let bounds = params.chain_bounds();
        assert!(
            v.all_passed(),
            "{params:?}: {:?}",
            v.mapping_report.violations.first()
        );
        assert_eq!(v.zone.earliest_pi, TimeVal::from(bounds.lo()), "{params:?}");
        assert_eq!(v.zone.latest_armed, bounds.hi(), "{params:?}");
    }
}

/// E7a (negative): corrupting the mapping's case analysis is caught.
#[test]
fn chain_mapping_wrong_offset_detected() {
    use std::sync::Arc;
    use tempo_core::mapping::{
        CondConstraint, MappingChecker, PossibilitiesMapping, RunPlan, SpecRegion,
    };
    use tempo_core::{cond_of_class, dummify, lift_condition, time_ab, TimeIoa, TimedState};
    use tempo_systems::two_event_chain::{chain_condition, chain_system, ChainPhase};

    let params = ChainParams::ints((0, 3), (1, 2), (1, 2));
    let timed = chain_system(&params);
    let dummified = dummify(&timed, Interval::closed(Rat::ONE, Rat::from(2)).unwrap()).unwrap();
    let impl_aut = time_ab(&dummified);
    let spec_aut = TimeIoa::new(
        Arc::clone(dummified.automaton()),
        vec![
            lift_condition(&chain_condition(&params)),
            cond_of_class(
                dummified.automaton(),
                dummified.boundmap(),
                tempo_ioa::ClassId(3),
            ),
        ],
    );

    /// Claims the ψ-pending phase still has a whole φ-hop of slack.
    struct WrongMapping;
    impl PossibilitiesMapping<ChainPhase, tempo_core::DummyAction<two_event_chain::ChainAction>>
        for WrongMapping
    {
        fn region(&self, s: &TimedState<ChainPhase>) -> SpecRegion {
            let wrong = match s.base {
                ChainPhase::AwaitingPsi => CondConstraint::Window {
                    ft_max: TimeVal::from(s.ft[2] + Rat::from(1)), // inflated
                    lt_min: s.lt[2] + Rat::from(2),                // inflated
                },
                _ => CondConstraint::Window {
                    ft_max: TimeVal::ZERO,
                    lt_min: TimeVal::INFINITY,
                },
            };
            SpecRegion::new(vec![wrong, CondConstraint::EqualTo(3)])
        }
    }

    let report = MappingChecker::new().check(
        &impl_aut,
        &spec_aut,
        &WrongMapping,
        &RunPlan {
            random_runs: 8,
            steps: 40,
            seed: 17,
        },
    );
    assert!(!report.passed());
}

/// E7b: the request-driven manager's phase-uncertain bound, swept.
#[test]
fn request_manager_bounds() {
    for (k, c1, c2, l) in [(1, 2, 3, 1), (2, 2, 3, 1), (3, 3, 4, 2)] {
        let params = Params::ints(k, c1, c2, l).unwrap();
        let v = request_manager::verify(&params);
        let bounds = response_bounds(&params);
        assert!(v.all_passed(), "k={k}");
        assert_eq!(v.zone.earliest_pi, TimeVal::from(bounds.lo()), "k={k}");
        assert_eq!(v.zone.latest_armed, bounds.hi(), "k={k}");
    }
}

/// E7b: the lower bound genuinely differs from G1's — by exactly c1.
#[test]
fn request_manager_loses_one_c1() {
    let params = Params::ints(3, 2, 3, 1).unwrap();
    let rq = request_manager::verify(&params);
    assert_eq!(
        TimeVal::from(params.g1_bounds().lo()),
        rq.zone.earliest_pi + params.c1,
        "REQUEST can land just before a tick"
    );
    // Upper bounds agree.
    assert_eq!(params.g1_bounds().hi(), rq.zone.latest_armed);
}

/// E7c: the Fischer safety frontier is exactly `a < b` on a grid, and the
/// violation witness is a genuine double-critical state.
#[test]
fn fischer_safety_frontier() {
    for a in 1..=3i64 {
        for b in 1..=3i64 {
            let params = FischerParams::ints(2, a, b, b + 1);
            let violation = fischer::check_mutual_exclusion(&params).unwrap();
            if a < b {
                assert_eq!(violation, None, "a={a} b={b} must be safe");
            } else {
                let w = violation.unwrap_or_else(|| panic!("a={a} b={b} must be unsafe"));
                assert_eq!(w.pcs.iter().filter(|pc| **pc == Pc::Crit).count(), 2);
            }
        }
    }
}

/// E7c: three processes, still safe under `a < b`.
#[test]
fn fischer_three_processes_safe() {
    let params = FischerParams::ints(3, 1, 3, 5);
    assert_eq!(fischer::check_mutual_exclusion(&params).unwrap(), None);
}

/// E7c: the solo entry bound, via both methods, swept.
#[test]
fn fischer_solo_entry_bounds() {
    for (a, b, big_b) in [(1, 2, 2), (1, 2, 4), (3, 4, 7)] {
        let params = FischerParams::ints(1, a, b, big_b);
        let v = fischer::verify(&params);
        assert!(
            v.all_passed(),
            "a={a} b={b} B={big_b}: {:?}",
            v.solo_mapping.violations.first()
        );
        let bounds = params.solo_entry_bounds();
        assert_eq!(v.solo_entry.earliest_pi, TimeVal::from(bounds.lo()));
        assert_eq!(v.solo_entry.latest_armed, bounds.hi());
    }
}

/// Exhaustive verification of the extension mappings: the two-event
/// chain's direct mapping and Fischer's solo-entry mapping hold over
/// their entire corner-quotient state spaces.
#[test]
fn extension_mappings_verify_exhaustively() {
    use std::sync::Arc;
    use tempo_core::mapping::MappingChecker;
    use tempo_core::{cond_of_class, dummify, lift_condition, time_ab, TimeIoa};

    // Two-event chain (dummified; the chain halts after ψ).
    let params = ChainParams::ints((0, 3), (1, 2), (1, 2));
    let timed = two_event_chain::chain_system(&params);
    let dummified = dummify(&timed, Interval::closed(Rat::ONE, Rat::from(2)).unwrap()).unwrap();
    let impl_aut = time_ab(&dummified);
    let spec_aut = TimeIoa::new(
        Arc::clone(dummified.automaton()),
        vec![
            lift_condition(&two_event_chain::chain_condition(&params)),
            cond_of_class(
                dummified.automaton(),
                dummified.boundmap(),
                tempo_ioa::ClassId(3),
            ),
        ],
    );
    let report = MappingChecker::new().check_exhaustive(
        &impl_aut,
        &spec_aut,
        &two_event_chain::ChainMapping::new(&params),
        200_000,
    );
    assert!(report.passed(), "chain: {:?}", report.violations.first());

    // Fischer solo entry (the process cycles forever; no dummy needed).
    let fparams = FischerParams::ints(1, 1, 2, 4);
    let ftimed = fischer::fischer_system(&fparams);
    let fimpl = time_ab(&ftimed);
    let fspec = TimeIoa::new(
        Arc::clone(ftimed.automaton()),
        vec![fischer::solo_entry_condition(&fparams)],
    );
    let report = MappingChecker::new().check_exhaustive(
        &fimpl,
        &fspec,
        &fischer::SoloEntryMapping::new(&fparams),
        200_000,
    );
    assert!(report.passed(), "fischer: {:?}", report.violations.first());
}
