//! Integration tests for the integer-tick engine backend: backend
//! auto-selection over the Rat→u64 scaling edge cases (denominator-1
//! fast path, mixed finite/infinite bounds, LCM overflow), mid-stream
//! spill back to the exact engine when an event time leaves the tick
//! grid, snapshot/resume round trips across backends, and the shipped
//! `.tspec` systems all taking the fast path.

use std::sync::Arc;

use tempo_core::engine::{BackendChoice, CompiledConditionSet, EngineBackend};
use tempo_core::{ActionSet, SatisfactionMode, TimedSequence, TimingCondition, Violation};
use tempo_math::{Interval, Rat, TimeVal};
use tempo_monitor::Monitor;

const START: u32 = 999;
const TRIGGER: u32 = 0;
const SERVE: u32 = 1;

/// A condition triggered by action 0, served by action 1, with the
/// given bounds (`hi == None` means unbounded above).
fn cond(name: &str, lo: Rat, hi: Option<Rat>) -> TimingCondition<u32, u32> {
    let bounds = match hi {
        Some(h) => Interval::new(lo, TimeVal::from(h)).unwrap(),
        None => Interval::unbounded_above(lo),
    };
    TimingCondition::new(name, bounds)
        .triggered_by_actions(ActionSet::of([TRIGGER]))
        .on_action_set(ActionSet::of([SERVE]))
}

/// `(action, time)` pairs into a sequence whose post-states mirror the
/// actions.
fn seq(events: &[(u32, Rat)]) -> TimedSequence<u32, u32> {
    let mut s = TimedSequence::new(START);
    for &(a, t) in events {
        s.push(a, t, a);
    }
    s
}

fn sorted(vs: &[Violation]) -> Vec<String> {
    let mut keys: Vec<String> = vs.iter().map(|v| format!("{v:?}")).collect();
    keys.sort();
    keys
}

/// Runs a monitor over `events` under the given backend choice and
/// returns its Complete-mode violations.
fn run_monitor(
    set: &Arc<CompiledConditionSet<u32, u32>>,
    events: &[(u32, Rat)],
    choice: BackendChoice,
) -> Vec<Violation> {
    let mut mon = Monitor::from_compiled_with(Arc::clone(set), &START, choice);
    for &(a, t) in events {
        mon.observe(&a, t, &a);
    }
    mon.finish(SatisfactionMode::Complete)
}

#[test]
fn integral_bounds_take_the_denominator_1_fast_path() {
    let set = CompiledConditionSet::new(&[cond("c", Rat::from(1), Some(Rat::from(5)))]);
    assert!(set.int_capable());
    assert_eq!(set.backend(), EngineBackend::Int);
    // All-integer bounds need no scaling at all: one tick per time unit.
    assert_eq!(set.int_scale().unwrap().denominator(), 1);

    let set = Arc::new(set);
    let auto = Monitor::from_compiled(Arc::clone(&set), &START);
    assert_eq!(auto.backend(), EngineBackend::Int);
    // Pinning the exact engine always wins over auto-selection.
    let exact = Monitor::from_compiled_with(Arc::clone(&set), &START, BackendChoice::Exact);
    assert_eq!(exact.backend(), EngineBackend::Exact);
}

#[test]
fn mixed_finite_and_infinite_bounds_share_a_grid() {
    // An unbounded-above condition contributes only its lower bound to
    // the grid; the denominators 2, 4, 3 combine to 12 ticks per unit.
    let set = CompiledConditionSet::new(&[
        cond("halves", Rat::new(1, 2), Some(Rat::new(3, 4))),
        cond("open", Rat::new(1, 3), None),
    ]);
    assert_eq!(set.backend(), EngineBackend::Int);
    assert_eq!(set.int_scale().unwrap().denominator(), 12);
}

#[test]
fn unscalable_bounds_force_the_exact_backend() {
    // Denominators 2^63 and 3: their LCM overflows u64, so no common
    // tick grid exists.
    let lcm_overflow = CompiledConditionSet::new(&[
        cond("tiny", Rat::new(1, 1i128 << 63), Some(Rat::from(1))),
        cond("third", Rat::new(1, 3), Some(Rat::from(1))),
    ]);
    assert!(!lcm_overflow.int_capable());
    assert_eq!(lcm_overflow.backend(), EngineBackend::Exact);

    // The LCM (6) exists but scaling i64::MAX/2 onto it overflows the
    // u64 tick domain.
    let tick_overflow = CompiledConditionSet::new(&[
        cond("huge", Rat::from(1), Some(Rat::new(i64::MAX as i128, 2))),
        cond("third", Rat::new(1, 3), Some(Rat::from(1))),
    ]);
    assert!(!tick_overflow.int_capable());

    // The exact backend still monitors such a set: deadline 1 for
    // `third` and `tiny` passes unserved at t = 2.
    let trace = [(TRIGGER, Rat::from(0)), (SERVE + 1, Rat::from(2))];
    let fold = lcm_overflow.fold_sequence(&seq(&trace), SatisfactionMode::Complete);
    assert_eq!(fold.len(), 2);
}

#[test]
fn fold_backends_agree_on_verdicts() {
    let set = CompiledConditionSet::new(&[
        cond("tight", Rat::from(1), Some(Rat::from(5))),
        cond("open", Rat::from(2), None),
    ]);
    assert_eq!(set.backend(), EngineBackend::Int);
    // Early serve (lower-bound violation for `tight` and `open`), a
    // re-trigger, then a deadline miss at t = 10 > 5.
    let trace = seq(&[
        (TRIGGER, Rat::from(0)),
        (SERVE, Rat::new(1, 2)),
        (TRIGGER, Rat::from(3)),
        (SERVE + 1, Rat::from(10)),
    ]);
    for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
        let int = set.fold_sequence(&trace, mode);
        let exact = set.fold_sequence_with(&trace, mode, BackendChoice::Exact);
        assert_eq!(sorted(&int), sorted(&exact), "mode {mode:?}");
    }
}

#[test]
fn off_grid_event_time_spills_to_exact_mid_stream() {
    let set = Arc::new(CompiledConditionSet::new(&[cond(
        "c",
        Rat::from(1),
        Some(Rat::from(5)),
    )]));
    // t = 5/3 does not fit the unit grid: the monitor must hand the
    // open obligation to the exact engine and keep identical verdicts.
    let trace = [
        (TRIGGER, Rat::from(0)),
        (SERVE, Rat::new(5, 3)),
        (TRIGGER, Rat::from(2)),
        (SERVE + 1, Rat::from(9)),
    ];
    let mut mon = Monitor::from_compiled(Arc::clone(&set), &START);
    assert_eq!(mon.backend(), EngineBackend::Int);
    mon.observe(&TRIGGER, Rat::from(0), &TRIGGER);
    assert_eq!(mon.backend(), EngineBackend::Int);
    mon.observe(&SERVE, Rat::new(5, 3), &SERVE);
    assert_eq!(mon.backend(), EngineBackend::Exact, "spilled on 5/3");
    mon.observe(&TRIGGER, Rat::from(2), &TRIGGER);
    mon.observe(&(SERVE + 1), Rat::from(9), &(SERVE + 1));
    let spilled = mon.finish(SatisfactionMode::Complete);

    let oracle = run_monitor(&set, &trace, BackendChoice::Exact);
    assert_eq!(sorted(&spilled), sorted(&oracle));
    assert!(!spilled.is_empty(), "the warped trace must violate");
}

#[test]
fn overflowing_event_time_spills_to_exact() {
    let set = Arc::new(CompiledConditionSet::new(&[cond(
        "c",
        Rat::from(1),
        Some(Rat::from(5)),
    )]));
    // The time itself is integral but adding the largest bound to it
    // could overflow u64 ticks, so the step must not run on the int
    // engine.
    let huge = Rat::from(1i128 << 70);
    let trace = [(TRIGGER, Rat::from(0)), (TRIGGER, huge)];
    let mut mon = Monitor::from_compiled(Arc::clone(&set), &START);
    mon.observe(&TRIGGER, Rat::from(0), &TRIGGER);
    mon.observe(&TRIGGER, huge, &TRIGGER);
    assert_eq!(mon.backend(), EngineBackend::Exact);
    let spilled = mon.finish(SatisfactionMode::Complete);
    let oracle = run_monitor(&set, &trace, BackendChoice::Exact);
    assert_eq!(sorted(&spilled), sorted(&oracle));
}

#[test]
fn snapshot_resumes_onto_the_int_backend() {
    let set = Arc::new(CompiledConditionSet::new(&[
        cond("tight", Rat::from(1), Some(Rat::from(5))),
        cond("open", Rat::new(1, 2), None),
    ]));
    let mut prefix = Monitor::from_compiled(Arc::clone(&set), &START);
    prefix.observe(&TRIGGER, Rat::from(2), &TRIGGER);
    assert_eq!(prefix.backend(), EngineBackend::Int);
    assert_eq!(prefix.open_obligations(), 3);

    // The snapshot is backend-agnostic (exact `EngineState`), survives
    // serde, and resuming converts it back onto the int engine.
    let json = serde_json::to_string(&prefix.engine_state()).unwrap();
    let state = serde_json::from_str(&json).unwrap();
    let mut resumed = Monitor::resume_compiled(Arc::clone(&set), state, &TRIGGER, None);
    assert_eq!(resumed.backend(), EngineBackend::Int);

    // Both copies then see the same suffix and agree exactly.
    for mon in [&mut prefix, &mut resumed] {
        mon.observe(&SERVE, Rat::new(5, 2), &SERVE);
        mon.observe(&(SERVE + 1), Rat::from(9), &(SERVE + 1));
    }
    let a = prefix.finish(SatisfactionMode::Complete);
    let b = resumed.finish(SatisfactionMode::Complete);
    assert_eq!(sorted(&a), sorted(&b));
}

#[test]
fn snapshot_of_spilled_state_resumes_exact() {
    let set = Arc::new(CompiledConditionSet::new(&[cond(
        "c",
        Rat::from(1),
        Some(Rat::from(5)),
    )]));
    let mut mon = Monitor::from_compiled(Arc::clone(&set), &START);
    mon.observe(&TRIGGER, Rat::new(1, 3), &TRIGGER);
    assert_eq!(mon.backend(), EngineBackend::Exact);
    // An off-grid trigger time lives in the snapshot, so the resumed
    // monitor cannot re-enter the tick domain.
    let resumed = Monitor::resume_compiled(Arc::clone(&set), mon.engine_state(), &TRIGGER, None);
    assert_eq!(resumed.backend(), EngineBackend::Exact);
}

#[test]
fn shipped_systems_auto_select_the_int_backend() {
    use tempo_systems::{
        cement_mixer, fischer, peterson, request_manager, tournament, two_event_chain,
    };

    fn assert_int<S, A: Clone + Eq + std::hash::Hash + std::fmt::Debug>(
        name: &str,
        conds: &[TimingCondition<S, A>],
    ) {
        let set = CompiledConditionSet::new(conds);
        assert_eq!(set.backend(), EngineBackend::Int, "{name}.tspec");
        assert_eq!(
            set.int_scale().unwrap().denominator(),
            1,
            "{name}.tspec: shipped bounds are integral"
        );
    }

    assert_int("fischer", &fischer::tspec_conditions());
    assert_int("peterson", &peterson::tspec_conditions());
    assert_int("tournament", &tournament::tspec_conditions());
    assert_int("cement_mixer", &cement_mixer::tspec_conditions());
    assert_int("request_manager", &request_manager::tspec_conditions());
    assert_int("two_event_chain", &two_event_chain::tspec_conditions());
}
