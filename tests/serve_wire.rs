//! Malformed-frame corpus against a live `tempo-serve` server.
//!
//! Every case drives raw bytes down a real loopback socket and asserts
//! the stable [`ErrorCode`] response, whether the connection survives
//! (non-fatal errors skip the delimited frame), and — the part that
//! matters for a shared service — that no case wedges the io threads:
//! after each poison connection, a fresh well-formed session still
//! completes a full open → batch → finish → report round trip.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use tempo_monitor::{PoolConfig, StreamReport};
use tempo_serve::wire::{
    apply_names, cap, decode_report2, encode_batch, encode_finish, encode_open, encode_open_caps,
    encode_reload, tag, ErrorCode, Frame, RecvBuf, WireEvent,
};
use tempo_serve::{ServeConfig, Server};
use tempo_sim::loadgen::ReqServe;

fn start_server() -> Server {
    let traffic = ReqServe::default().validated();
    let mut config = ServeConfig::new(traffic.tspec(), &ReqServe::ACTIONS);
    config.pool = PoolConfig {
        workers: 2,
        ..PoolConfig::default()
    };
    Server::start(config).expect("server starts")
}

/// An egress frame with owned payloads (the wire [`Frame`] borrows the
/// receive buffer).
#[derive(Debug)]
enum Egress {
    Report(u64, String),
    Report2(u64, StreamReport),
    Error(ErrorCode, String),
    Other,
}

/// A raw protocol connection: sends arbitrary bytes, decodes egress
/// (both the v1 JSON and v2 binary report frames, maintaining the
/// connection's `NAMES` table).
struct Raw {
    tcp: TcpStream,
    recv: RecvBuf,
    scratch: Vec<u8>,
    names: Vec<Arc<str>>,
}

impl Raw {
    fn connect(addr: SocketAddr) -> Raw {
        let tcp = TcpStream::connect(addr).expect("connect");
        tcp.set_nodelay(true).expect("nodelay");
        tcp.set_read_timeout(Some(Duration::from_secs(20)))
            .expect("timeout");
        Raw {
            tcp,
            recv: RecvBuf::new(16 << 20),
            scratch: vec![0u8; 64 * 1024],
            names: Vec::new(),
        }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.tcp.write_all(bytes).expect("write");
    }

    /// Blocks for the next egress frame; `None` means the server closed
    /// the connection.
    fn recv_one(&mut self) -> Option<Egress> {
        loop {
            match self.recv.next_frame().expect("client-side decode") {
                Some(Frame::Report { stream, json }) => {
                    return Some(Egress::Report(stream, json.to_string()))
                }
                Some(Frame::Report2 { stream, body }) => {
                    let report =
                        decode_report2(stream, body, &self.names).expect("report2 decodes");
                    return Some(Egress::Report2(stream, report));
                }
                Some(Frame::Names(nf)) => {
                    apply_names(&mut self.names, &nf).expect("contiguous names delta");
                    continue;
                }
                Some(Frame::Error { code, message }) => {
                    return Some(Egress::Error(code, message.to_string()))
                }
                Some(_) => return Some(Egress::Other),
                None => {}
            }
            match self.tcp.read(&mut self.scratch) {
                Ok(0) => return None,
                Ok(n) => {
                    let chunk: Vec<u8> = self.scratch[..n].to_vec();
                    self.recv.ingest(&chunk);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => panic!("read failed: {e}"),
            }
        }
    }

    fn expect_error(&mut self, code: ErrorCode) -> String {
        match self.recv_one() {
            Some(Egress::Error(c, msg)) => {
                assert_eq!(c, code, "wrong error code ({msg})");
                msg
            }
            other => panic!("expected {code:?} error, got {other:?}"),
        }
    }
}

/// A full happy-path round trip on a fresh connection: the liveness
/// probe run after every poison case.
fn round_trip(addr: SocketAddr, stream: u64) {
    let mut conn = Raw::connect(addr);
    let mut out = Vec::new();
    encode_open(&mut out, stream, 0);
    encode_batch(
        &mut out,
        stream,
        &[
            WireEvent::at(0, 1, 0), // REQUEST at t=0
            WireEvent::at(1, 0, 3), // SERVE at t=3, inside the deadline
        ],
    );
    encode_finish(&mut out, stream);
    conn.send(&out);
    match conn.recv_one() {
        Some(Egress::Report(s, json)) => {
            assert_eq!(s, stream);
            let report: StreamReport = serde_json::from_str(&json).expect("report decodes");
            assert_eq!(report.events, 2);
            assert!(report.violations.is_empty());
            assert!(!report.failed);
        }
        other => panic!("expected a report, got {other:?}"),
    }
}

#[test]
fn unknown_tag_is_skipped_and_the_connection_survives() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    // A one-byte frame with an unassigned tag.
    conn.send(&[1, 0, 0, 0, 0x7f]);
    conn.expect_error(ErrorCode::UnknownTag);

    // Same connection keeps working: the bad frame was delimited.
    let mut out = Vec::new();
    encode_open(&mut out, 9, 0);
    encode_batch(
        &mut out,
        9,
        &[WireEvent::at(0, 1, 0), WireEvent::at(1, 0, 2)],
    );
    encode_finish(&mut out, 9);
    conn.send(&out);
    match conn.recv_one() {
        Some(Egress::Report(9, _)) => {}
        other => panic!("expected stream 9's report, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_fatal_but_only_for_that_connection() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    // Declare a frame bigger than the server's max_frame (1 MiB).
    let huge = (2u32 << 20).to_le_bytes();
    conn.send(&huge);
    conn.expect_error(ErrorCode::Oversized);
    assert!(
        conn.recv_one().is_none(),
        "oversized is fatal: the server must close the connection"
    );

    // The io thread itself is fine: a fresh connection round-trips.
    round_trip(server.local_addr(), 1);
    server.shutdown();
}

#[test]
fn zero_denominator_is_rejected_without_a_panic() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    let mut out = Vec::new();
    encode_open(&mut out, 3, 0);
    conn.send(&out);

    // A hand-built batch whose single event has denominator 0 — the
    // in-process Rat constructor would panic on it, so the decoder must
    // reject it at parse time.
    let mut bad = Vec::new();
    let body_len = 1 + 8 + 4 + 24;
    bad.extend_from_slice(&(body_len as u32).to_le_bytes());
    bad.push(tag::BATCH);
    bad.extend_from_slice(&3u64.to_le_bytes()); // stream
    bad.extend_from_slice(&1u32.to_le_bytes()); // count
    bad.extend_from_slice(&0u32.to_le_bytes()); // action
    bad.extend_from_slice(&1u32.to_le_bytes()); // state
    bad.extend_from_slice(&5i64.to_le_bytes()); // num
    bad.extend_from_slice(&0u64.to_le_bytes()); // den = 0
    conn.send(&bad);
    conn.expect_error(ErrorCode::Malformed);

    // The opened stream is untouched by the rejected frame.
    let mut out = Vec::new();
    encode_batch(
        &mut out,
        3,
        &[WireEvent::at(0, 1, 0), WireEvent::at(1, 0, 1)],
    );
    encode_finish(&mut out, 3);
    conn.send(&out);
    match conn.recv_one() {
        Some(Egress::Report(3, json)) => {
            let report: StreamReport = serde_json::from_str(&json).expect("report decodes");
            assert_eq!(report.events, 2, "only the well-formed batch counts");
        }
        other => panic!("expected stream 3's report, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn zero_length_frame_is_rejected_once_and_the_connection_survives() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    // Four zero bytes: a frame with length 0 (not even a tag). The
    // prefix must be consumed — a decoder that leaves it pending
    // re-reports the same error forever and wedges its I/O thread.
    conn.send(&0u32.to_le_bytes());
    conn.expect_error(ErrorCode::Malformed);

    // Exactly one error, and the connection keeps working.
    let mut out = Vec::new();
    encode_open(&mut out, 11, 0);
    encode_batch(
        &mut out,
        11,
        &[WireEvent::at(0, 1, 0), WireEvent::at(1, 0, 2)],
    );
    encode_finish(&mut out, 11);
    conn.send(&out);
    match conn.recv_one() {
        Some(Egress::Report(11, _)) => {}
        other => panic!("expected stream 11's report, got {other:?}"),
    }

    // And the io threads are not wedged: a fresh session round-trips.
    round_trip(server.local_addr(), 12);
    server.shutdown();
}

#[test]
fn slow_consumers_are_disconnected_at_the_egress_cap() {
    let traffic = ReqServe::default().validated();
    let mut config = ServeConfig::new(traffic.tspec(), &ReqServe::ACTIONS);
    config.pool = PoolConfig {
        workers: 2,
        ..PoolConfig::default()
    };
    // Tiny cap so the test converges fast: every unknown-tag frame
    // below provokes a ~35-byte error reply the client never reads.
    config.max_conn_egress = 16 << 10;
    let server = Server::start(config).expect("server starts");

    let mut conn = Raw::connect(server.local_addr());
    conn.tcp
        .set_write_timeout(Some(Duration::from_secs(20)))
        .expect("write timeout");
    // Firehose junk without ever reading the replies. Once kernel
    // buffers fill, the server's write_pending crosses the cap and the
    // connection is closed; the client's writes then fail. 8 MiB of
    // junk far exceeds cap + kernel buffering, so reaching the end of
    // the loop without a write error means the cap is not enforced.
    let junk = [1u8, 0, 0, 0, 0x7f].repeat(2048); // 10 KiB of bad frames
    let mut disconnected = false;
    for _ in 0..800 {
        if conn.tcp.write_all(&junk).is_err() {
            disconnected = true;
            break;
        }
    }
    assert!(
        disconnected,
        "server must disconnect a slow consumer instead of buffering forever"
    );

    // The io thread survived the kill: a fresh session round-trips.
    round_trip(server.local_addr(), 13);
    server.shutdown();
}

#[test]
fn batch_count_mismatch_is_malformed() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    let mut out = Vec::new();
    encode_open(&mut out, 4, 0);
    conn.send(&out);

    // Header claims 3 events, body carries 1.
    let mut bad = Vec::new();
    let body_len = 1 + 8 + 4 + 24;
    bad.extend_from_slice(&(body_len as u32).to_le_bytes());
    bad.push(tag::BATCH);
    bad.extend_from_slice(&4u64.to_le_bytes());
    bad.extend_from_slice(&3u32.to_le_bytes());
    bad.extend_from_slice(&[0u8; 24]);
    conn.send(&bad);
    conn.expect_error(ErrorCode::Malformed);
    server.shutdown();
}

#[test]
fn unknown_and_duplicate_streams_get_stable_errors() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    // Batch for a stream that was never opened.
    let mut out = Vec::new();
    encode_batch(&mut out, 77, &[WireEvent::at(0, 1, 0)]);
    conn.send(&out);
    conn.expect_error(ErrorCode::UnknownStream);

    // Open once: fine. Open again: duplicate.
    let mut out = Vec::new();
    encode_open(&mut out, 77, 0);
    encode_open(&mut out, 77, 0);
    conn.send(&out);
    conn.expect_error(ErrorCode::DuplicateStream);

    // Finishing a stream twice: second one is unknown again.
    let mut out = Vec::new();
    encode_finish(&mut out, 77);
    encode_finish(&mut out, 77);
    conn.send(&out);
    let first = conn.recv_one();
    let second = conn.recv_one();
    let mut saw_report = false;
    let mut saw_unknown = false;
    for e in [first, second] {
        match e {
            Some(Egress::Report(77, _)) => saw_report = true,
            Some(Egress::Error(ErrorCode::UnknownStream, _)) => saw_unknown = true,
            other => panic!("unexpected egress {other:?}"),
        }
    }
    assert!(saw_report && saw_unknown);
    server.shutdown();
}

#[test]
fn mid_frame_disconnects_do_not_wedge_the_server() {
    let server = start_server();

    // A length prefix promising 50 bytes, followed by 10 — then gone.
    let mut conn = Raw::connect(server.local_addr());
    conn.send(&50u32.to_le_bytes());
    conn.send(&[0u8; 10]);
    drop(conn);

    // A truncated length prefix itself (2 of 4 bytes) — then gone.
    let mut conn = Raw::connect(server.local_addr());
    conn.send(&[7, 0]);
    drop(conn);

    // An open with no finish — the dropped connection must finish the
    // stream server-side rather than leak it. Pipelining a complete
    // session for a second stream behind the open and waiting for that
    // report proves the open was dispatched before the drop (frames on
    // one connection are processed in order).
    let mut conn = Raw::connect(server.local_addr());
    let mut out = Vec::new();
    encode_open(&mut out, 5, 0);
    encode_open(&mut out, 6, 0);
    encode_batch(
        &mut out,
        6,
        &[WireEvent::at(0, 1, 0), WireEvent::at(1, 0, 2)],
    );
    encode_finish(&mut out, 6);
    conn.send(&out);
    match conn.recv_one() {
        Some(Egress::Report(6, _)) => {}
        other => panic!("expected stream 6's report, got {other:?}"),
    }
    drop(conn);

    // After all three, the io threads still serve.
    round_trip(server.local_addr(), 7);

    // The abandoned stream was finished server-side, not left open:
    // every delivered stream's report is gone, so at most its 0-event
    // report remains (the egress loop may already have drained it to
    // the closed connection, in which case nothing remains).
    let report = server.shutdown();
    assert!(report.streams.len() <= 1, "reports: {:?}", report.streams);
    assert!(
        report.streams.iter().all(|s| s.events == 0),
        "only the abandoned stream's empty report may remain: {:?}",
        report.streams
    );
}

/// A truncated `REPORT2` (length prefix shorter than its record counts
/// demand) is structurally malformed: a stable non-fatal error, and
/// the connection survives.
#[test]
fn truncated_report2_is_malformed_and_the_connection_survives() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    // Header claims 1 violation but the body ends after the counts.
    let mut bad = Vec::new();
    let body_len = 1 + 8 + 8 + 1 + 4 + 4 + 4; // tag + header, no records
    bad.extend_from_slice(&(body_len as u32).to_le_bytes());
    bad.push(tag::REPORT2);
    bad.extend_from_slice(&1u64.to_le_bytes()); // stream
    bad.extend_from_slice(&2u64.to_le_bytes()); // events
    bad.push(0); // failed
    bad.extend_from_slice(&1u32.to_le_bytes()); // violations: 1 (missing!)
    bad.extend_from_slice(&0u32.to_le_bytes()); // warnings
    bad.extend_from_slice(&0u32.to_le_bytes()); // forced
    conn.send(&bad);
    let msg = conn.expect_error(ErrorCode::Malformed);
    assert!(msg.contains("record counts"), "got: {msg}");

    // Non-fatal: the same connection still completes a session.
    let mut out = Vec::new();
    encode_open(&mut out, 21, 0);
    encode_batch(
        &mut out,
        21,
        &[WireEvent::at(0, 1, 0), WireEvent::at(1, 0, 2)],
    );
    encode_finish(&mut out, 21);
    conn.send(&out);
    match conn.recv_one() {
        Some(Egress::Report(21, _)) => {}
        other => panic!("expected stream 21's report, got {other:?}"),
    }
    server.shutdown();
}

/// A *well-formed* egress frame (v2 included) arriving on the ingest
/// path is a protocol violation answered with `UnknownTag`, exactly
/// like the v1 egress tags.
#[test]
fn well_formed_report2_on_ingest_is_an_unknown_tag() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    // An empty-but-valid REPORT2 (zero records, counts consistent).
    let mut frame = Vec::new();
    let body_len = 1 + 8 + 8 + 1 + 4 + 4 + 4;
    frame.extend_from_slice(&(body_len as u32).to_le_bytes());
    frame.push(tag::REPORT2);
    frame.extend_from_slice(&1u64.to_le_bytes());
    frame.extend_from_slice(&0u64.to_le_bytes());
    frame.push(0);
    frame.extend_from_slice(&0u32.to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    conn.send(&frame);
    let msg = conn.expect_error(ErrorCode::UnknownTag);
    assert!(msg.contains("egress frame"), "got: {msg}");

    round_trip(server.local_addr(), 22);
    server.shutdown();
}

/// A `NAMES` frame whose id range overflows `u32` is malformed — and,
/// like every egress tag, it does not belong on the ingest path, so
/// send it client→server only to pin the parse-level error code.
#[test]
fn names_id_out_of_range_is_malformed() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    let mut bad = Vec::new();
    let entry = 4 + 1; // u32 len + "a"
    let body_len = 1 + 4 + 4 + entry;
    bad.extend_from_slice(&(body_len as u32).to_le_bytes());
    bad.push(tag::NAMES);
    bad.extend_from_slice(&u32::MAX.to_le_bytes()); // first_id
    bad.extend_from_slice(&1u32.to_le_bytes()); // count → id range overflows
    bad.extend_from_slice(&1u32.to_le_bytes());
    bad.push(b'a');
    conn.send(&bad);
    let msg = conn.expect_error(ErrorCode::Malformed);
    assert!(msg.contains("id out of range"), "got: {msg}");

    round_trip(server.local_addr(), 23);
    server.shutdown();
}

/// The binary-egress capability is negotiable at most once per
/// connection: a second OPEN re-requesting the bit gets a stable
/// `Malformed` error and is rejected, while the connection — and the
/// already negotiated binary egress — keeps working.
#[test]
fn capability_requested_twice_is_malformed_but_binary_egress_works() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    // First open negotiates binary egress.
    let mut out = Vec::new();
    encode_open_caps(&mut out, 30, 0, cap::BINARY_EGRESS);
    // Second open re-requests the bit: rejected.
    encode_open_caps(&mut out, 31, 0, cap::BINARY_EGRESS);
    conn.send(&out);
    let msg = conn.expect_error(ErrorCode::Malformed);
    assert!(msg.contains("already negotiated"), "got: {msg}");

    // Stream 30 still runs — and its verdict arrives as REPORT2 with a
    // violation whose condition name resolved through the NAMES table.
    let traffic = ReqServe::default().validated();
    let late = i64::from(traffic.deadline_ms) + 2;
    let mut out = Vec::new();
    encode_batch(
        &mut out,
        30,
        &[WireEvent::at(0, 1, 0), WireEvent::at(1, 0, late)],
    );
    encode_finish(&mut out, 30);
    conn.send(&out);
    match conn.recv_one() {
        Some(Egress::Report2(30, report)) => {
            assert_eq!(report.events, 2);
            assert_eq!(report.violations.len(), 1, "the late serve violates");
            assert!(
                !report.violations[0].condition.is_empty(),
                "the name id resolved through the NAMES table"
            );
        }
        other => panic!("expected stream 30's binary report, got {other:?}"),
    }

    // The rejected open took no effect: stream 31 is unknown.
    let mut out = Vec::new();
    encode_finish(&mut out, 31);
    conn.send(&out);
    conn.expect_error(ErrorCode::UnknownStream);

    round_trip(server.local_addr(), 24);
    server.shutdown();
}

#[test]
fn bad_reload_source_reports_diagnostics_and_changes_nothing() {
    let server = start_server();
    let mut conn = Raw::connect(server.local_addr());

    let mut out = Vec::new();
    encode_reload(&mut out, "this is not a spec");
    conn.send(&out);
    let msg = conn.expect_error(ErrorCode::SpecError);
    assert!(!msg.is_empty(), "diagnostics must ride along");

    // The original spec still governs: a late serve violates.
    let traffic = ReqServe::default().validated();
    let late = i64::from(traffic.deadline_ms) + 2;
    let mut out = Vec::new();
    encode_open(&mut out, 8, 0);
    encode_batch(
        &mut out,
        8,
        &[WireEvent::at(0, 1, 0), WireEvent::at(1, 0, late)],
    );
    encode_finish(&mut out, 8);
    conn.send(&out);
    match conn.recv_one() {
        Some(Egress::Report(8, json)) => {
            let report: StreamReport = serde_json::from_str(&json).expect("report decodes");
            assert_eq!(report.violations.len(), 1, "old deadline still enforced");
        }
        other => panic!("expected stream 8's report, got {other:?}"),
    }
    server.shutdown();
}
