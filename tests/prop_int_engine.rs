//! Differential property net for the integer-tick engine: on arbitrary
//! condition sets whose bounds fit a tick grid, the int backend and the
//! exact-rational backend must be **pointwise equal** — same violation
//! lists from [`CompiledConditionSet::fold_sequence`], same per-event
//! monitor verdict stream, in both satisfaction modes. Traces include
//! off-grid event times on purpose, so the mid-stream spill from int to
//! exact is exercised under random schedules, not just by hand-picked
//! cases.

use std::sync::Arc;

use proptest::prelude::*;
use tempo_core::engine::{BackendChoice, CompiledConditionSet, EngineBackend};
use tempo_core::{ActionSet, SatisfactionMode, TimedSequence, TimingCondition, Violation};
use tempo_math::{Interval, Rat};
use tempo_monitor::Monitor;

const UNIVERSE: u32 = 6;
const START: u32 = 999;

#[derive(Clone, Debug)]
struct CondSpec {
    lo: i64,
    hi: Option<i64>,
    start_trigger: bool,
    trigger: Vec<u32>,
    pi: Vec<u32>,
    disabling: Vec<u32>,
}

impl CondSpec {
    fn build(&self, name: &str) -> TimingCondition<u32, u32> {
        let bounds = match self.hi {
            Some(h) => Interval::closed(Rat::from(self.lo), Rat::from(h)).unwrap(),
            None => Interval::unbounded_above(Rat::from(self.lo)),
        };
        let mut c = TimingCondition::new(name, bounds)
            .triggered_by_actions(ActionSet::of(self.trigger.iter().copied()))
            .on_action_set(ActionSet::of(self.pi.iter().copied()))
            .disabled_by_actions(ActionSet::of(self.disabling.iter().copied()));
        if self.start_trigger {
            c = c.triggered_at_start(|s| *s == START);
        }
        c
    }
}

fn subset() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..UNIVERSE, 0..3)
}

/// Integral bounds only — every generated set must be int-capable.
fn cond_spec() -> impl Strategy<Value = CondSpec> {
    (
        0i64..=3,
        proptest::option::of(0i64..=5),
        any::<bool>(),
        subset(),
        subset(),
        subset(),
    )
        .prop_map(
            |(lo, spread, start_trigger, trigger, pi, disabling)| CondSpec {
                lo,
                // `Interval` rejects hi == 0, so keep finite uppers ≥ 1.
                hi: spread.map(|s| (lo + s).max(1)),
                start_trigger,
                trigger,
                pi,
                disabling,
            },
        )
}

/// A trace of `(action, dt)` steps. `dt` is in **quarters** of a time
/// unit: integral-bound sets get a unit tick grid, so roughly three in
/// four event times land off grid and drive the monitor through the
/// spill path at a random prefix.
fn trace(quarters: bool) -> impl Strategy<Value = Vec<(u32, i64)>> {
    let step = if quarters { 0i64..=9 } else { 0i64..=2 };
    proptest::collection::vec(((0..UNIVERSE + 2), step), 0..24)
}

fn to_sequence(events: &[(u32, i64)], quarters: bool) -> TimedSequence<u32, u32> {
    let den = if quarters { 4 } else { 1 };
    let mut s = TimedSequence::new(START);
    let mut t = 0i64;
    for &(a, dt) in events {
        t += dt;
        s.push(a, Rat::new(t.into(), den), a);
    }
    s
}

fn sorted(vs: &[Violation]) -> Vec<String> {
    let mut keys: Vec<String> = vs.iter().map(|v| format!("{v:?}")).collect();
    keys.sort();
    keys
}

/// Per-event verdicts plus final violations of a monitor run under
/// `choice`.
fn monitor_run(
    set: &Arc<CompiledConditionSet<u32, u32>>,
    seq: &TimedSequence<u32, u32>,
    choice: BackendChoice,
    mode: SatisfactionMode,
) -> (Vec<String>, Vec<String>) {
    let mut mon = Monitor::from_compiled_with(Arc::clone(set), seq.first_state(), choice);
    let mut verdicts = Vec::new();
    for (_, a, t, post) in seq.step_triples() {
        verdicts.push(format!("{:?}", mon.observe(a, t, post)));
    }
    (verdicts, sorted(&mon.finish(mode)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant: on integral-bound condition sets the
    /// auto-selected int backend and the pinned exact backend agree
    /// pointwise — fold violations, per-event monitor verdicts, and
    /// final monitor violations, in both modes, on traces that mix
    /// on-grid and off-grid times.
    #[test]
    fn int_and_exact_backends_agree(
        specs in proptest::collection::vec(cond_spec(), 1..4),
        events in trace(true),
    ) {
        let conds: Vec<TimingCondition<u32, u32>> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.build(&format!("c{i}")))
            .collect();
        let set = Arc::new(CompiledConditionSet::new(&conds));
        prop_assert_eq!(set.backend(), EngineBackend::Int);

        let seq = to_sequence(&events, true);
        for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
            let int_fold = set.fold_sequence_with(&seq, mode, BackendChoice::Auto);
            let exact_fold = set.fold_sequence_with(&seq, mode, BackendChoice::Exact);
            prop_assert_eq!(
                sorted(&int_fold),
                sorted(&exact_fold),
                "fold, mode {:?}",
                mode
            );

            let (int_verdicts, int_final) = monitor_run(&set, &seq, BackendChoice::Auto, mode);
            let (exact_verdicts, exact_final) =
                monitor_run(&set, &seq, BackendChoice::Exact, mode);
            prop_assert_eq!(int_verdicts, exact_verdicts, "verdict stream, mode {:?}", mode);
            prop_assert_eq!(int_final, exact_final, "monitor violations, mode {:?}", mode);
        }
    }

    /// On-grid traces never spill: the monitor stays on the int backend
    /// end to end and still matches the exact oracle.
    #[test]
    fn on_grid_traces_stay_on_the_int_backend(
        specs in proptest::collection::vec(cond_spec(), 1..4),
        events in trace(false),
    ) {
        let conds: Vec<TimingCondition<u32, u32>> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| s.build(&format!("c{i}")))
            .collect();
        let set = Arc::new(CompiledConditionSet::new(&conds));
        let seq = to_sequence(&events, false);

        let mut int_mon = Monitor::from_compiled(Arc::clone(&set), seq.first_state());
        let mut exact_mon =
            Monitor::from_compiled_with(Arc::clone(&set), seq.first_state(), BackendChoice::Exact);
        for (_, a, t, post) in seq.step_triples() {
            let vi = int_mon.observe(a, t, post);
            let ve = exact_mon.observe(a, t, post);
            prop_assert_eq!(format!("{vi:?}"), format!("{ve:?}"));
        }
        prop_assert_eq!(int_mon.backend(), EngineBackend::Int, "no spill on grid times");
        prop_assert_eq!(
            sorted(&int_mon.finish(SatisfactionMode::Complete)),
            sorted(&exact_mon.finish(SatisfactionMode::Complete))
        );
    }
}
