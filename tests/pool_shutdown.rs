//! Pool shutdown under fire.
//!
//! Pins the [`MonitorPool::begin_shutdown`] contract `tempo-serve`
//! leans on: the signal is idempotent (any number of calls, from any
//! thread, collapse into one shutdown), and a `send_batch` racing the
//! signal either delivers or returns [`StreamOverflow`] — it never
//! blocks forever on a worker that will not drain again, even under
//! the blocking overload policy on a ring sized to guarantee that
//! senders really are parked in `Block` waits when the signal lands.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use tempo_math::Rat;
use tempo_monitor::{MonitorPool, OverloadPolicy, PoolConfig};
use tempo_spec::{MapBinder, SpecRevision};

fn binder() -> MapBinder<u8, String> {
    MapBinder::new(|n: &str| Some(n.to_string()))
}

fn rev() -> SpecRevision<u8, String> {
    SpecRevision::compile(
        "spec live; actions GO, DONE;\n\
         cond C { trigger on GO; pi DONE; bounds [0, 1000000]; }",
        &binder(),
    )
    .expect("fixture spec compiles")
}

/// Calling `begin_shutdown` many times, concurrently, before
/// `shutdown`, changes nothing: one report per stream, every delivered
/// event accounted for.
#[test]
fn begin_shutdown_is_idempotent() {
    let rev = rev();
    let mut pool: MonitorPool<u8, String> = MonitorPool::from_compiled(
        Arc::clone(rev.compiled()),
        PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        },
    );
    let mut handles: Vec<_> = (0..6).map(|_| pool.open_stream(0u8)).collect();
    for h in &mut handles {
        h.send("GO".to_string(), Rat::from(1), 0).unwrap();
        h.send("DONE".to_string(), Rat::from(2), 0).unwrap();
    }
    drop(handles);

    pool.begin_shutdown();
    pool.begin_shutdown();
    thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| pool.begin_shutdown());
        }
    });

    let report = pool.shutdown();
    assert_eq!(report.streams.len(), 6);
    for sr in &report.streams {
        assert_eq!(sr.events, 2, "stream {}", sr.stream);
        assert!(sr.violations.is_empty());
    }
}

/// Senders blocked on a full ring (Block policy, tiny capacity) when
/// the shutdown signal lands must return — Ok or StreamOverflow —
/// instead of deadlocking, and the pool's final report stays coherent:
/// every stream reports, and every event the report counts was one a
/// sender successfully handed over.
#[test]
fn shutdown_unblocks_racing_send_batch() {
    let rev = rev();
    let mut pool: MonitorPool<u8, String> = MonitorPool::from_compiled(
        Arc::clone(rev.compiled()),
        PoolConfig {
            workers: 2,
            queue_capacity: 8,
            policy: OverloadPolicy::Block,
            // One event per ring claim: consumption is slow enough that
            // producers genuinely hit Block waits.
            drain_batch: 1,
            ..PoolConfig::default()
        },
    );

    const STREAMS: usize = 8;
    const BATCHES: u64 = 2_000;
    let handles: Vec<_> = (0..STREAMS).map(|_| pool.open_stream(0u8)).collect();
    let stop_seen = Arc::new(AtomicBool::new(false));

    let senders: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            let stop_seen = Arc::clone(&stop_seen);
            thread::spawn(move || {
                let mut delivered = 0u64;
                for b in 0..BATCHES {
                    let t = Rat::from((b + 1) as i128);
                    let batch = [("GO".to_string(), t, 0u8), ("DONE".to_string(), t, 0u8)];
                    match h.send_batch(batch) {
                        Ok(()) => delivered += 2,
                        Err(_) => {
                            // The shutdown raced us mid-stream: stop
                            // sending, keep what was delivered.
                            stop_seen.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                }
                h.finish();
                delivered
            })
        })
        .collect();

    // Let the senders get going (and, with capacity 8 and drain batch 1,
    // almost surely park in Block waits), then pull the plug.
    thread::sleep(Duration::from_millis(20));
    pool.begin_shutdown();
    pool.begin_shutdown(); // idempotent under the race, too

    // The pinning claim: every sender returns. A deadlocked Block wait
    // would hang the join (and the test harness would time out).
    let mut delivered_total = 0u64;
    for s in senders {
        delivered_total += s.join().expect("sender panicked");
    }

    let report = pool.shutdown();
    assert_eq!(report.streams.len(), STREAMS, "every stream reports");
    let monitored: u64 = report.streams.iter().map(|s| s.events as u64).sum();
    assert!(
        monitored <= delivered_total,
        "report counts {monitored} events but only {delivered_total} were accepted"
    );
    assert!(
        delivered_total < STREAMS as u64 * BATCHES * 2 || !stop_seen.load(Ordering::SeqCst),
        "with the signal mid-run, senders must have been cut short or all delivered"
    );
    for sr in &report.streams {
        assert!(sr.violations.is_empty(), "loose bound never violates");
    }
}

/// After the workers are gone, a handle send on a full ring fails fast
/// instead of blocking forever.
#[test]
fn send_after_shutdown_fails_fast() {
    let rev = rev();
    let mut pool: MonitorPool<u8, String> = MonitorPool::from_compiled(
        Arc::clone(rev.compiled()),
        PoolConfig {
            workers: 1,
            queue_capacity: 4,
            policy: OverloadPolicy::Block,
            ..PoolConfig::default()
        },
    );
    let mut h = pool.open_stream(0u8);
    pool.begin_shutdown();

    // With the worker winding down, keep pushing until the contract
    // kicks in: each call either delivers or errors; none may hang.
    let mut errored = false;
    for i in 0..10_000u64 {
        let t = Rat::from((i + 1) as i128);
        if h.send("GO".to_string(), t, 0).is_err() {
            errored = true;
            break;
        }
    }
    drop(h);
    let report = pool.shutdown();
    assert_eq!(report.streams.len(), 1);
    // Either the worker drained everything we sent before exiting, or
    // sends started failing once it stopped; both are within contract.
    let _ = errored;
}
