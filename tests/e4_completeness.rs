//! E4 — the completeness theorem (paper §7): the canonical
//! `sup first_U` / `inf first_ΠU` mapping is a strong possibilities
//! mapping whenever the requirements hold, and it coincides with (or
//! dominates) hand-written mappings.

use tempo_core::completeness::{CanonicalMapping, ExhaustiveOracle, FirstOracle, SampledOracle};
use tempo_core::mapping::{CondConstraint, MappingChecker, PossibilitiesMapping, RunPlan};
use tempo_core::{time_ab, RandomScheduler, TimeIoa};
use tempo_math::TimeVal;
use tempo_systems::resource_manager::{self, g1, g2, Params, RmMapping};

fn setup(
    params: &Params,
) -> (
    tempo_core::Timed<resource_manager::RmAutomaton>,
    TimeIoa<resource_manager::RmAutomaton>,
) {
    let timed = resource_manager::system(params);
    let impl_aut = time_ab(&timed);
    (timed, impl_aut)
}

/// Theorem 7.1: the canonical mapping verifies on the resource manager.
#[test]
fn canonical_mapping_verifies() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let (timed, impl_aut) = setup(&params);
    let spec_aut = resource_manager::requirements_automaton(&timed, &params);
    let spec_conds = [g1(&params), g2(&params)];
    let mapping = CanonicalMapping::new(ExhaustiveOracle::new(&impl_aut, 14), &spec_conds);
    let report = MappingChecker::new().check(
        &impl_aut,
        &spec_aut,
        &mapping,
        &RunPlan {
            random_runs: 3,
            steps: 14,
            seed: 4,
        },
    );
    assert!(report.passed(), "{:?}", report.violations.first());
}

/// At the start state, the canonical bounds equal the paper's formulas
/// (k·c1 and k·c2 + l), i.e. the §4.3 mapping is exactly canonical there.
#[test]
fn canonical_equals_handwritten_at_start() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let (_timed, impl_aut) = setup(&params);
    let spec_conds = [g1(&params), g2(&params)];
    let s0 = impl_aut.initial_states().pop().unwrap();
    let canonical = CanonicalMapping::new(ExhaustiveOracle::new(&impl_aut, 14), &spec_conds);
    let hand = RmMapping::new(params.clone());
    let (c, h) = (canonical.region(&s0), hand.region(&s0));
    assert_eq!(c.constraints()[0], h.constraints()[0]);
    match &c.constraints()[0] {
        CondConstraint::Window { ft_max, lt_min } => {
            assert_eq!(*ft_max, TimeVal::from(params.g1_bounds().lo()));
            assert_eq!(*lt_min, params.g1_bounds().hi());
        }
        other => panic!("unexpected constraint {other:?}"),
    }
}

/// The canonical region *contains* the hand-written region at reachable
/// states: `sup first ≤` the §4.3 right-hand side and `inf first_Π ≥` the
/// §4.3 left-hand side (the canonical mapping is the weakest valid one).
#[test]
fn canonical_dominates_handwritten_along_runs() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let (_timed, impl_aut) = setup(&params);
    let spec_conds = [g1(&params), g2(&params)];
    let oracle = ExhaustiveOracle::new(&impl_aut, 12);
    let hand = RmMapping::new(params.clone());
    let (run, _) = impl_aut.generate(&mut RandomScheduler::new(3), 12);
    for s in run.states() {
        let h = hand.region(s);
        for (j, cond) in spec_conds.iter().enumerate() {
            let b = oracle.first_bounds(s, cond);
            if let CondConstraint::Window { ft_max, lt_min } = &h.constraints()[j] {
                assert!(
                    b.sup_first <= *lt_min,
                    "sup {} vs handwritten {lt_min} at {s:?}",
                    b.sup_first
                );
                assert!(
                    b.inf_first_pi >= *ft_max,
                    "inf {} vs handwritten {ft_max} at {s:?}",
                    b.inf_first_pi
                );
            }
        }
    }
}

/// Monte-Carlo estimates bracket the exhaustive bounds from inside and
/// tighten with more samples.
#[test]
fn sampled_oracle_converges_inward() {
    let params = Params::ints(2, 2, 3, 1).unwrap();
    let (_timed, impl_aut) = setup(&params);
    let cond = g1(&params);
    let s0 = impl_aut.initial_states().pop().unwrap();
    let exact = ExhaustiveOracle::new(&impl_aut, 14).first_bounds(&s0, &cond);
    let few = SampledOracle::new(&impl_aut, 8, 40, 7).first_bounds(&s0, &cond);
    let many = SampledOracle::new(&impl_aut, 128, 40, 7).first_bounds(&s0, &cond);
    // Inside the exact interval…
    assert!(few.sup_first <= exact.sup_first);
    assert!(many.sup_first <= exact.sup_first);
    assert!(few.inf_first_pi >= exact.inf_first_pi);
    assert!(many.inf_first_pi >= exact.inf_first_pi);
    // …and monotonically no worse with more samples.
    assert!(many.sup_first >= few.sup_first);
    assert!(many.inf_first_pi <= few.inf_first_pi);
}

/// The converse direction of completeness: when the requirement is
/// *false*, the canonical construction cannot save it — the canonical
/// mapping fails the start condition against a tighter-than-true spec.
#[test]
fn canonical_mapping_fails_for_false_requirements() {
    use std::sync::Arc;
    use tempo_core::TimingCondition;
    use tempo_math::{Interval, Rat};

    let params = Params::ints(2, 2, 3, 1).unwrap();
    let (timed, impl_aut) = setup(&params);
    // A false claim: first GRANT within [5, 6] (truth: [4, 7]).
    let false_cond: TimingCondition<resource_manager::RmState, resource_manager::RmAction> =
        TimingCondition::new(
            "G1-false",
            Interval::closed(Rat::from(5), Rat::from(6)).unwrap(),
        )
        .triggered_at_start(|_| true)
        .on_actions(|a| *a == resource_manager::RmAction::Grant);
    let spec_conds = [false_cond.clone()];
    let spec_aut = TimeIoa::new(Arc::clone(timed.automaton()), vec![false_cond]);
    let mapping = CanonicalMapping::new(ExhaustiveOracle::new(&impl_aut, 14), &spec_conds);
    let report = MappingChecker::new().check(
        &impl_aut,
        &spec_aut,
        &mapping,
        &RunPlan {
            random_runs: 2,
            steps: 12,
            seed: 1,
        },
    );
    assert!(
        !report.passed(),
        "a false requirement must not admit a verified mapping"
    );
}

/// The zone-backed oracle gives the canonical mapping *exactly* at every
/// visited state, and it agrees with the exhaustive oracle.
#[test]
fn zone_oracle_exact_and_consistent() {
    use tempo_math::Rat;
    use tempo_zones::ZoneFirstOracle;

    let params = Params::ints(2, 2, 3, 1).unwrap();
    let (timed, impl_aut) = setup(&params);
    let spec_conds = [g1(&params), g2(&params)];
    let zone_oracle = ZoneFirstOracle::new(&timed, Rat::from(16));
    let exhaustive = ExhaustiveOracle::new(&impl_aut, 14);
    let hand = RmMapping::new(params.clone());
    let (run, _) = impl_aut.generate(&mut RandomScheduler::new(11), 20);
    for s in run.states() {
        for (j, cond) in spec_conds.iter().enumerate() {
            let zb = zone_oracle.first_bounds(s, cond);
            let eb = exhaustive.first_bounds(s, cond);
            assert_eq!(zb.sup_first, eb.sup_first, "sup mismatch at {s:?}");
            assert_eq!(zb.inf_first_pi, eb.inf_first_pi, "inf mismatch at {s:?}");
            // The §4.3 mapping's right-hand sides: the Lt side is exactly
            // canonical; the Ft side is a (possibly strict) lower bound of
            // the canonical one.
            if let CondConstraint::Window { ft_max, lt_min } = &hand.region(s).constraints()[j] {
                assert_eq!(
                    zb.sup_first, *lt_min,
                    "the §4.3 Lt bound is canonical at {s:?}"
                );
                assert!(zb.inf_first_pi >= *ft_max);
            }
        }
    }
}

/// The canonical mapping built on the zone oracle passes the checker
/// (Theorem 7.1, with the exact oracle this time).
#[test]
fn canonical_mapping_with_zone_oracle_verifies() {
    use tempo_math::Rat;
    use tempo_zones::ZoneFirstOracle;

    let params = Params::ints(2, 2, 3, 1).unwrap();
    let (timed, impl_aut) = setup(&params);
    let spec_aut = resource_manager::requirements_automaton(&timed, &params);
    let spec_conds = [g1(&params), g2(&params)];
    let oracle = ZoneFirstOracle::new(&timed, Rat::from(16));
    let mapping = CanonicalMapping::new(oracle, &spec_conds);
    let report = MappingChecker::new().check(
        &impl_aut,
        &spec_aut,
        &mapping,
        &RunPlan {
            random_runs: 4,
            steps: 30,
            seed: 12,
        },
    );
    assert!(report.passed(), "{:?}", report.violations.first());
}
