//! Differential tests for the shipped `.tspec` files: for each of the
//! six example systems, the conditions lowered from the shipped spec
//! through the system's binder must behave *identically* to the
//! hand-built Rust conditions at the canonical parameters — per-event
//! classification bits, offline folds in both satisfaction modes, and
//! streaming monitor verdicts all agree pointwise, on real traces
//! generated from each system's `time(A, b)` automaton.
//!
//! This is the `tests/prop_dispatch.rs` pattern turned outward: there
//! the declarative and opaque *compilations* of one condition are
//! compared; here the *textual* and *programmatic* definitions of one
//! requirement are.

use std::fmt::Debug;
use std::hash::Hash;

use tempo_core::engine::{CompiledConditionSet, EventClassification};
use tempo_core::{
    project, time_ab, RandomScheduler, SatisfactionMode, TimedSequence, TimingCondition, Violation,
};
use tempo_ioa::Ioa;
use tempo_math::{Interval, Rat};
use tempo_monitor::Monitor;
use tempo_systems::{
    cement_mixer, fischer, peterson, request_manager, resource_manager, tournament, two_event_chain,
};

/// Traces of the system's `time(A, b)` automaton under a handful of
/// random schedules, projected to the base automaton.
fn traces<M>(timed: &tempo_core::Timed<M>, steps: usize) -> Vec<TimedSequence<M::State, M::Action>>
where
    M: Ioa + Send + Sync + 'static,
    M::State: Clone + Debug,
    M::Action: Clone + Debug,
{
    let impl_aut = time_ab(timed);
    (0..8u64)
        .map(|seed| {
            let mut sched = RandomScheduler::new(seed);
            let (run, _) = impl_aut.generate(&mut sched, steps);
            project(&run)
        })
        .collect()
}

fn sorted(vs: &[Violation]) -> Vec<String> {
    let mut keys: Vec<String> = vs.iter().map(|v| format!("{v:?}")).collect();
    keys.sort();
    keys
}

/// Per-event classification bits over the trace.
fn classifications<S, A>(
    set: &CompiledConditionSet<S, A>,
    seq: &TimedSequence<S, A>,
) -> Vec<Vec<(bool, bool, bool)>>
where
    S: Clone + Debug,
    A: Clone + Eq + Hash + Debug,
{
    let mut cls = EventClassification::new(set.len());
    let mut out = Vec::new();
    for (pre, a, _, post) in seq.step_triples() {
        set.classify(pre, a, post, &mut cls);
        out.push(
            (0..set.len())
                .map(|ci| (cls.trigger(ci), cls.pi(ci), cls.disabling(ci)))
                .collect(),
        );
    }
    out
}

/// The spec-lowered conditions agree with the hand-built ones on
/// names, bounds, and pointwise behaviour over every trace.
fn assert_differential<S, A>(
    label: &str,
    hand: &[TimingCondition<S, A>],
    spec: &[TimingCondition<S, A>],
    seqs: &[TimedSequence<S, A>],
) where
    S: Clone + Debug + 'static,
    A: Clone + Eq + Hash + Debug + Send + Sync + 'static,
{
    assert_eq!(hand.len(), spec.len(), "{label}: condition count");
    for (h, s) in hand.iter().zip(spec) {
        assert_eq!(h.name(), s.name(), "{label}: names");
        assert_eq!(h.lower(), s.lower(), "{label}/{}: lower bound", h.name());
        assert_eq!(h.upper(), s.upper(), "{label}/{}: upper bound", h.name());
    }
    let h_set = CompiledConditionSet::new(hand);
    let s_set = CompiledConditionSet::new(spec);
    assert!(
        seqs.iter().any(|s| !s.is_empty()),
        "{label}: generated traces are empty — the comparison would be vacuous"
    );
    for seq in seqs {
        assert_eq!(
            classifications(&h_set, seq),
            classifications(&s_set, seq),
            "{label}: classification bits"
        );
        for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
            assert_eq!(
                sorted(&h_set.fold_sequence(seq, mode)),
                sorted(&s_set.fold_sequence(seq, mode)),
                "{label}: offline fold, mode {mode:?}"
            );
            let mut h_mon = Monitor::new(hand, seq.first_state());
            let mut s_mon = Monitor::new(spec, seq.first_state());
            for (_, a, t, post) in seq.step_triples() {
                assert_eq!(
                    h_mon.observe(a, t, post),
                    s_mon.observe(a, t, post),
                    "{label}: monitor verdict at t={t}"
                );
            }
            assert_eq!(
                sorted(&h_mon.finish(mode)),
                sorted(&s_mon.finish(mode)),
                "{label}: final violations, mode {mode:?}"
            );
        }
    }
}

#[test]
fn fischer_spec_matches_hand_built() {
    let params = fischer::FischerParams::ints(1, 1, 2, 4);
    let hand = vec![fischer::solo_entry_condition(&params)];
    let spec = fischer::tspec_conditions();
    let seqs = traces(&fischer::fischer_system(&params), 40);
    assert_differential("fischer", &hand, &spec, &seqs);
}

#[test]
fn peterson_spec_matches_hand_built() {
    let params = peterson::PetersonParams::ints(1, 2);
    let bound = Interval::closed(Rat::ONE, Rat::from(10)).unwrap();
    let hand = vec![
        peterson::entry_condition(0, bound),
        peterson::entry_condition(1, bound),
    ];
    let spec = peterson::tspec_conditions();
    let seqs = traces(&peterson::peterson_system(&params), 60);
    assert_differential("peterson", &hand, &spec, &seqs);
}

#[test]
fn tournament_spec_matches_hand_built() {
    let params = peterson::PetersonParams::ints(1, 2);
    let aut = tournament::Tournament::new(2);
    let bound = Interval::closed(Rat::ONE, Rat::from(12)).unwrap();
    let hand = vec![
        tournament::entry_condition(&aut, 0, bound),
        tournament::entry_condition(&aut, 1, bound),
    ];
    let spec = tournament::tspec_conditions();
    let seqs = traces(&tournament::tournament_system(2, &params), 60);
    assert_differential("tournament", &hand, &spec, &seqs);
}

#[test]
fn cement_mixer_spec_matches_hand_built() {
    let params = cement_mixer::MixerParams::ints(1, 3, 5, None);
    let hand = vec![
        cement_mixer::conditional_response(&params),
        cement_mixer::naive_response(&params),
    ];
    let spec = cement_mixer::tspec_conditions();
    let seqs = traces(&cement_mixer::mixer_system(&params), 40);
    assert_differential("cement_mixer", &hand, &spec, &seqs);
}

#[test]
fn request_manager_spec_matches_hand_built() {
    let params = resource_manager::Params::ints(3, 2, 3, 1).unwrap();
    let hand = vec![request_manager::response_condition(&params)];
    let spec = request_manager::tspec_conditions();
    let seqs = traces(&request_manager::rq_system(&params), 40);
    assert_differential("request_manager", &hand, &spec, &seqs);
}

#[test]
fn two_event_chain_spec_matches_hand_built() {
    let params = two_event_chain::ChainParams::ints((0, 5), (1, 3), (2, 4));
    let hand = vec![two_event_chain::chain_condition(&params)];
    let spec = two_event_chain::tspec_conditions();
    let seqs = traces(&two_event_chain::chain_system(&params), 10);
    assert_differential("two_event_chain", &hand, &spec, &seqs);
}

/// The guarded specs lower to exactly the dispatch shape the hand-built
/// conditions have: tournament and the mixer's conditional requirement
/// take the closure-fallback trigger path, everything else is fully
/// declarative.
#[test]
fn lowered_specs_have_the_expected_dispatch_shape() {
    let decl_only = [
        (
            "fischer",
            CompiledConditionSet::new(&fischer::tspec_conditions()).dispatch_stats(),
            0usize,
        ),
        (
            "peterson",
            CompiledConditionSet::new(&peterson::tspec_conditions()).dispatch_stats(),
            0,
        ),
        (
            "request_manager",
            CompiledConditionSet::new(&request_manager::tspec_conditions()).dispatch_stats(),
            0,
        ),
        (
            "two_event_chain",
            CompiledConditionSet::new(&two_event_chain::tspec_conditions()).dispatch_stats(),
            0,
        ),
        (
            "tournament",
            CompiledConditionSet::new(&tournament::tspec_conditions()).dispatch_stats(),
            2,
        ),
        (
            "cement_mixer",
            CompiledConditionSet::new(&cement_mixer::tspec_conditions()).dispatch_stats(),
            1,
        ),
    ];
    for (label, stats, opaque_triggers) in decl_only {
        assert_eq!(
            stats.opaque_trigger, opaque_triggers,
            "{label}: trigger path"
        );
        assert_eq!(stats.opaque_pi, 0, "{label}: pi is always declarative");
    }
}
