//! Hot-reload properties of compiled spec revisions.
//!
//! * Swapping a monitor onto the **same** revision mid-stream is
//!   invisible: verdicts and final violations match an un-swapped
//!   monitor event for event, every open obligation is carried, none is
//!   dropped.
//! * Swapping onto a revision that **drops** every condition closes all
//!   open obligations administratively — they are reported, not
//!   violated.
//! * Carried obligations keep their **absolute** deadlines (revising a
//!   spec does not revise history); the tightened bound governs
//!   triggers that fire after the swap.
//! * At the pool level, an identity reload in the middle of live
//!   traffic drops zero events and leaves every stream's verdicts
//!   exactly as a reload-free run produces them; `reload_spec` with a
//!   renamed condition reports each closed obligation under its old
//!   name.

use std::sync::Arc;

use proptest::prelude::*;
use tempo_core::SatisfactionMode;
use tempo_math::Rat;
use tempo_monitor::{Monitor, MonitorPool, PoolConfig, Verdict};
use tempo_spec::{MapBinder, SpecRevision};

fn binder() -> MapBinder<u8, String> {
    MapBinder::new(|n: &str| Some(n.to_string()))
}

/// Blocks until the pool's monitors have consumed `n` events, so a
/// subsequent reload deterministically sees their obligations open.
fn wait_processed(pool: &MonitorPool<u8, String>, n: u64) {
    for _ in 0..20_000 {
        if pool.metrics().snapshot().events >= n {
            return;
        }
        std::thread::sleep(std::time::Duration::from_micros(100));
    }
    panic!("pool did not process {n} events in time");
}

/// One condition, parameterized bounds: `GO` opens a window, `DONE`
/// closes it.
fn rev(bounds: &str) -> SpecRevision<u8, String> {
    let src = format!(
        "spec live; actions GO, DONE;\n\
         cond C {{ trigger on GO; pi DONE; bounds {bounds}; }}"
    );
    SpecRevision::compile(&src, &binder()).expect("fixture spec compiles")
}

/// Materializes `(action index, time increment)` pairs into a
/// monotone-time event list over the actions `GO`/`DONE`/`noise`.
fn materialize(raw: &[(usize, u8)]) -> Vec<(String, Rat)> {
    const ACTIONS: [&str; 3] = ["GO", "DONE", "noise"];
    let mut t = 0i64;
    raw.iter()
        .map(|&(a, dt)| {
            t += dt as i64;
            (ACTIONS[a].to_string(), Rat::from(t))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identity swap at an arbitrary point of an arbitrary trace:
    /// verdicts, final violations, and obligation accounting are those
    /// of a monitor that never swapped.
    #[test]
    fn identity_swap_is_invisible(
        raw in proptest::collection::vec((0usize..3, 0u8..4), 1..40),
        cut in 0usize..41,
    ) {
        let rev = rev("[1, 6]");
        let set = Arc::clone(rev.compiled());
        let trace = materialize(&raw);
        let cut = cut % (trace.len() + 1);
        for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
            let mut plain = Monitor::from_compiled(Arc::clone(&set), &0u8);
            let mut swapped = Monitor::from_compiled(Arc::clone(&set), &0u8);
            for (i, (a, t)) in trace.iter().enumerate() {
                if i == cut {
                    let open = swapped.open_obligations();
                    let report =
                        swapped.swap_compiled(Arc::clone(&set), &rev.carry_map(&set));
                    prop_assert_eq!(report.carried, open, "identity swap carries all");
                    prop_assert!(report.dropped.is_empty(), "identity swap drops none");
                }
                prop_assert_eq!(
                    plain.observe(a, *t, &0u8),
                    swapped.observe(a, *t, &0u8),
                    "verdict {} of {} diverged after swap at {}", i, trace.len(), cut
                );
            }
            prop_assert_eq!(swapped.open_obligations(), plain.open_obligations());
            prop_assert_eq!(plain.finish(mode), swapped.finish(mode));
        }
    }

    /// Swapping onto an empty revision closes every open obligation
    /// administratively: all are reported (under the old condition's
    /// name), none survives, and nothing can violate afterwards.
    #[test]
    fn drop_all_swap_closes_every_obligation(
        raw in proptest::collection::vec((0usize..3, 0u8..4), 1..30),
    ) {
        let old = rev("[1, 6]");
        let empty: SpecRevision<u8, String> =
            SpecRevision::compile("spec empty;", &binder()).expect("empty spec compiles");
        prop_assert!(empty.is_empty());

        let mut mon = Monitor::from_compiled(Arc::clone(old.compiled()), &0u8);
        // Reference: same trace, no swap. Its Prefix-mode finish is
        // exactly the violations witnessed *during* the trace.
        let mut reference = Monitor::from_compiled(Arc::clone(old.compiled()), &0u8);
        let trace = materialize(&raw);
        let mut last = Rat::ZERO;
        for (a, t) in &trace {
            mon.observe(a, *t, &0u8);
            reference.observe(a, *t, &0u8);
            last = *t;
        }
        let open = mon.open_obligations();
        let map = empty.carry_map(old.compiled());
        prop_assert_eq!(&map, &vec![None; old.len()]);
        let report = mon.swap_compiled(Arc::clone(empty.compiled()), &map);
        prop_assert_eq!(report.carried, 0);
        prop_assert_eq!(report.dropped.len(), open);
        prop_assert!(report.dropped.iter().all(|(name, _)| name == "C"));
        prop_assert_eq!(mon.open_obligations(), 0);
        // Far beyond every old deadline: nothing is left to violate, so
        // the violation record is frozen at what the trace itself
        // produced before the swap.
        let v = mon.observe(&"noise".to_string(), last + Rat::from(100), &0u8);
        prop_assert_eq!(v, Verdict::Ok);
        prop_assert_eq!(
            mon.finish(SatisfactionMode::Complete),
            reference.finish(SatisfactionMode::Prefix)
        );
    }
}

/// Tightening the bound mid-stream: the obligation opened under the old
/// revision keeps its absolute deadline, while triggers after the swap
/// are held to the new, tighter one.
#[test]
fn tightened_bound_governs_only_new_triggers() {
    let old = rev("[1, 10]");
    let new = rev("[1, 2]");
    let mut mon = Monitor::from_compiled(Arc::clone(old.compiled()), &0u8);

    // Opens a window [2, 11] under the old revision.
    assert_eq!(
        mon.observe(&"GO".to_string(), Rat::from(1), &0u8),
        Verdict::Ok
    );
    let open = mon.open_obligations();
    assert!(open > 0, "the trigger must open obligations");
    let report = mon.swap_compiled(Arc::clone(new.compiled()), &new.carry_map(old.compiled()));
    assert_eq!(
        report.carried, open,
        "same-named condition carries everything"
    );
    assert!(report.dropped.is_empty());

    // t = 9 would be far past a re-based deadline of 1 + 2 = 3; under
    // the preserved absolute window [2, 11] it discharges cleanly.
    assert_eq!(
        mon.observe(&"DONE".to_string(), Rat::from(9), &0u8),
        Verdict::Ok
    );

    // A fresh trigger lives under the new revision: window [11, 12].
    assert_eq!(
        mon.observe(&"GO".to_string(), Rat::from(10), &0u8),
        Verdict::Ok
    );
    match mon.observe(&"noise".to_string(), Rat::from(15), &0u8) {
        Verdict::UpperBoundViolation(v) => assert_eq!(v.condition, "C"),
        v => panic!("expected the tightened deadline to fire, got {v:?}"),
    }
    let violations = mon.finish(SatisfactionMode::Complete);
    assert_eq!(violations.len(), 1, "{violations:?}");
}

/// Pool-level identity reload under live traffic: no stream loses an
/// event, the reload accounting is exact, and every stream's violations
/// equal a reload-free run's.
#[test]
fn pool_identity_reload_is_zero_drop() {
    let rev = rev("[1, 6]");
    let run = |reload: bool| {
        let config = PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        };
        let mut pool: MonitorPool<u8, String> =
            MonitorPool::from_compiled(Arc::clone(rev.compiled()), config);
        let mut handles: Vec<_> = (0..4).map(|_| pool.open_stream(0u8)).collect();
        for h in &mut handles {
            h.send("GO".to_string(), Rat::from(1), 0).unwrap();
            h.send("noise".to_string(), Rat::from(2), 0).unwrap();
        }
        if reload {
            wait_processed(&pool, 8);
            let report = pool.reload_spec(&rev);
            assert_eq!(report.workers, 2);
            assert_eq!(report.streams, 4);
            assert!(report.dropped.is_empty(), "identity reload drops nothing");
            assert!(report.carried >= 4, "each stream's deadline carries");
        }
        for (i, h) in handles.iter_mut().enumerate() {
            // Odd streams discharge too late (deadline 1 + 6 = 7).
            let t = if i % 2 == 1 { 9 } else { 3 };
            h.send("DONE".to_string(), Rat::from(t), 0).unwrap();
        }
        drop(handles);
        pool.shutdown()
    };

    let (with, without) = (run(true), run(false));
    for (w, wo) in with.streams.iter().zip(&without.streams) {
        assert_eq!(
            w.events, 3,
            "stream {}: no event dropped across reload",
            w.stream
        );
        assert_eq!(w.events, wo.events);
        let names = |r: &tempo_monitor::StreamReport| {
            r.violations
                .iter()
                .map(|v| v.condition.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(w), names(wo), "stream {}: verdict drift", w.stream);
    }
    assert!(!with.passed(), "odd streams must violate in both runs");
}

/// `reload_spec` with a renamed condition: the old name's obligations
/// are closed administratively and reported under the old name; the
/// stream then sails past the old deadline without violating.
#[test]
fn pool_reload_spec_reports_dropped_by_old_name() {
    let old = rev("[1, 6]");
    let renamed: SpecRevision<u8, String> = SpecRevision::compile(
        "spec live; actions GO, DONE;\n\
         cond RENAMED { trigger on GO; pi DONE; bounds [1, 6]; }",
        &binder(),
    )
    .unwrap();

    let mut pool: MonitorPool<u8, String> = MonitorPool::from_compiled(
        Arc::clone(old.compiled()),
        PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        },
    );
    let mut h = pool.open_stream(0u8);
    h.send("GO".to_string(), Rat::from(1), 0).unwrap();
    wait_processed(&pool, 1);

    let report = pool.reload_spec(&renamed);
    assert!(
        !report.dropped.is_empty(),
        "the open obligations must be reported"
    );
    assert!(report
        .dropped
        .iter()
        .all(|(s, name, _)| *s == 0 && name == "C"));
    assert_eq!(report.carried, 0);

    // C is gone; its old deadline of 7 passes silently.
    h.send("noise".to_string(), Rat::from(50), 0).unwrap();
    h.finish();
    assert!(pool.shutdown().passed());
}
