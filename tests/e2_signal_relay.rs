//! E2 — cross-crate verification of the paper's §6 signal relay: the
//! hierarchical mapping chain, the exact `U_{0,n}` bound, Lemma 6.1, and
//! the Theorem 6.4 claim (`beh(α) ∈ Q`) on generated behaviors.

use tempo_core::{dummify, project, time_ab, undum, RandomScheduler};
use tempo_ioa::{ActionKind, Ioa};
use tempo_math::{Interval, Rat, TimeVal};
use tempo_systems::signal_relay::{self, u_kn, RelayParams, Sig};
use tempo_zones::ZoneChecker;

/// E2a: the zone bound equals `[n·d1, n·d2]` across a sweep.
#[test]
fn zone_bounds_match_paper_formula() {
    for (n, d1, d2) in [(1, 1, 2), (2, 1, 2), (3, 2, 2), (4, 1, 3), (5, 0, 2)] {
        let params = RelayParams::ints(n, d1, d2).unwrap();
        let timed = signal_relay::relay_line(&params);
        let v = ZoneChecker::new(&timed)
            .verify_condition(&u_kn(0, &params))
            .unwrap();
        let bounds = params.u0n_bounds();
        assert_eq!(v.earliest_pi, TimeVal::from(bounds.lo()), "n={n}");
        assert_eq!(v.latest_armed, bounds.hi(), "n={n}");
    }
}

/// E2a (intermediate levels): every `U_{k,n}` is itself exact.
#[test]
fn intermediate_bounds_are_exact() {
    let params = RelayParams::ints(4, 1, 3).unwrap();
    let timed = signal_relay::relay_line(&params);
    for k in 0..4 {
        let v = ZoneChecker::new(&timed)
            .verify_condition(&u_kn(k, &params))
            .unwrap();
        let bounds = params.u_kn_bounds(k);
        assert_eq!(v.earliest_pi, TimeVal::from(bounds.lo()), "k={k}");
        assert_eq!(v.latest_armed, bounds.hi(), "k={k}");
    }
}

/// E2b: the mapping chain verifies at every level (Lemma 6.2 +
/// Corollary 6.3), for several line lengths.
#[test]
fn hierarchy_chain_verifies() {
    for n in [1, 2, 3, 5] {
        let params = RelayParams::ints(n, 1, 2).unwrap();
        let timed = signal_relay::relay_line(&params);
        let reports = signal_relay::check_chain(&params, &timed);
        assert_eq!(reports.len(), n + 1);
        for (i, r) in reports.iter().enumerate() {
            assert!(r.passed(), "n={n} level {i}: {:?}", r.violations.first());
        }
    }
}

/// Theorem 6.4, observed: every generated behavior is in `Q` — at most
/// one SIGNAL_n per SIGNAL_0, delayed by a value in `[n·d1, n·d2]`.
#[test]
fn behaviors_lie_in_q() {
    let params = RelayParams::ints(3, 1, 2).unwrap();
    let timed = signal_relay::relay_line(&params);
    let dummified = dummify(&timed, Interval::closed(Rat::ONE, Rat::ONE).unwrap()).unwrap();
    let impl_aut = time_ab(&dummified);
    let bounds = params.u0n_bounds();
    let mut deliveries = 0;
    for seed in 0..24 {
        let (run, _) = impl_aut.generate(&mut RandomScheduler::new(seed), 60);
        let seq = undum(&project(&run));
        // Timed behavior = external (SIGNAL_0, SIGNAL_n) events only.
        let beh = seq.timed_behavior(timed.automaton().as_ref());
        let starts: Vec<Rat> = beh
            .iter()
            .filter(|(a, _)| a.0 == 0)
            .map(|(_, t)| *t)
            .collect();
        let ends: Vec<Rat> = beh
            .iter()
            .filter(|(a, _)| a.0 == 3)
            .map(|(_, t)| *t)
            .collect();
        assert!(starts.len() <= 1, "SIGNAL_0 fires at most once");
        assert!(ends.len() <= starts.len(), "no delivery without a send");
        if let (Some(t0), Some(tn)) = (starts.first(), ends.first()) {
            assert!(
                bounds.contains(*tn - *t0),
                "delay {} outside {bounds}",
                *tn - *t0
            );
            deliveries += 1;
        }
    }
    assert!(deliveries > 0, "some run must complete the relay");
}

/// Lemma 6.1 over the full reachable space, plus the signature shape the
/// paper fixes (only SIGNAL_0 and SIGNAL_n external).
#[test]
fn structure_and_lemma_6_1() {
    let params = RelayParams::ints(4, 1, 2).unwrap();
    let aut = signal_relay::relay_untimed(&params);
    let outcome = tempo_ioa::check_invariant(&aut, &tempo_ioa::Explorer::new(), |s: &Vec<bool>| {
        s.iter().filter(|f| **f).count() <= 1
    });
    assert!(outcome.holds());
    assert_eq!(aut.signature().kind_of(&Sig(0)), Some(ActionKind::Output));
    assert_eq!(aut.signature().kind_of(&Sig(4)), Some(ActionKind::Output));
    for i in 1..4 {
        assert_eq!(aut.signature().kind_of(&Sig(i)), Some(ActionKind::Internal));
    }
}

/// A deliberately broken relay (one hop slower than claimed) must fail
/// both the zone check and the chain.
#[test]
fn broken_relay_detected() {
    use std::sync::Arc;
    use tempo_core::{Boundmap, Timed};
    // Build the n = 2 line but give SIGNAL_2's class looser bounds than
    // the per-hop claim.
    let params = RelayParams::ints(2, 1, 2).unwrap();
    let aut = Arc::new(signal_relay::relay_untimed(&params));
    let b = Boundmap::from_intervals(vec![
        Interval::unbounded_above(Rat::ZERO),
        Interval::closed(Rat::ONE, Rat::from(2)).unwrap(),
        Interval::closed(Rat::ONE, Rat::from(5)).unwrap(), // slow hop!
    ]);
    let slow = Timed::new(aut, b).unwrap();
    let v = ZoneChecker::new(&slow)
        .verify_condition(&u_kn(0, &params))
        .unwrap();
    assert!(!v.satisfies(params.u0n_bounds()));
    assert_eq!(v.latest_armed, TimeVal::from(Rat::from(7))); // 2 + 5
}

/// Exhaustive verification of the relay hierarchy: each mapping level is
/// checked over the full corner-quotient state space of its source
/// automaton (dummified, so the space is finite and live).
#[test]
fn hierarchy_verifies_exhaustively() {
    use std::sync::Arc;
    use tempo_core::mapping::MappingChecker;
    use tempo_core::{dummify, time_ab, TimeIoa};
    use tempo_systems::signal_relay::{
        bottom_mapping, intermediate_automaton, lifted_u_kn, top_mapping, HierarchyMapping,
    };

    let params = RelayParams::ints(3, 1, 2).unwrap();
    let timed = signal_relay::relay_line(&params);
    let dummified = dummify(&timed, Interval::closed(Rat::ONE, Rat::from(2)).unwrap()).unwrap();
    let checker = MappingChecker::new();
    let cap = 400_000;

    // Top.
    let impl_top = time_ab(&dummified);
    let spec_top = intermediate_automaton(params.n - 1, &params, &dummified);
    let report = checker.check_exhaustive(&impl_top, &spec_top, &top_mapping(&params), cap);
    assert!(report.passed(), "top: {:?}", report.violations.first());

    // f_k levels.
    for k in (1..params.n).rev() {
        let impl_k = intermediate_automaton(k, &params, &dummified);
        let spec_k = intermediate_automaton(k - 1, &params, &dummified);
        let report =
            checker.check_exhaustive(&impl_k, &spec_k, &HierarchyMapping::new(k, &params), cap);
        assert!(report.passed(), "f_{k}: {:?}", report.violations.first());
    }

    // Bottom.
    let impl_0 = intermediate_automaton(0, &params, &dummified);
    let spec_b = TimeIoa::new(
        Arc::clone(dummified.automaton()),
        vec![lifted_u_kn(0, &params)],
    );
    let report = checker.check_exhaustive(&impl_0, &spec_b, &bottom_mapping(), cap);
    assert!(report.passed(), "bottom: {:?}", report.violations.first());
}
