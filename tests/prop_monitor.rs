//! Property tests for the streaming monitor: on random timed sequences —
//! valid simulated runs and time-warped (possibly violating) variants —
//! the online [`tempo_monitor::Monitor`] reports exactly the violations
//! the offline checker (`tempo_core::violations`) finds.

use proptest::prelude::*;
use tempo_core::{
    dummify, project, time_ab, undum, violations, RandomScheduler, SatisfactionMode, TimedSequence,
    TimingCondition, Violation,
};
use tempo_math::{Interval, Rat};
use tempo_monitor::{replay, replay_semi_satisfies, PoolConfig};
use tempo_sim::{audit_runs, pooled_audit_runs, stream_audit_runs, Ensemble};
use tempo_systems::resource_manager::{self, g1, g2, Params};
use tempo_systems::signal_relay::{self, u_kn, RelayParams};

fn rm_params() -> impl Strategy<Value = Params> {
    (1u32..=4, 1i64..=4, 1i64..=3, 0i64..=4).prop_map(|(k, l, delta, spread)| {
        let c1 = l + delta;
        Params::ints(k, c1, c1 + spread, l).expect("constructed to be valid")
    })
}

fn relay_params() -> impl Strategy<Value = RelayParams> {
    (1usize..=4, 0i64..=3, 1i64..=3)
        .prop_map(|(n, d1, spread)| RelayParams::ints(n, d1, d1 + spread).expect("valid"))
}

/// Scales every event time by `factor` (> 0 keeps times nondecreasing):
/// compression below 1 manufactures lower-bound violations, stretching
/// above 1 manufactures upper-bound violations.
fn warp<S, A>(seq: &TimedSequence<S, A>, factor: Rat) -> TimedSequence<S, A>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut out = TimedSequence::new(seq.first_state().clone());
    for (_, a, t, post) in seq.step_triples() {
        out.push(a.clone(), t * factor, post.clone());
    }
    out
}

/// Order-insensitive comparison key (the monitor reports in event order,
/// the offline checker in trigger order).
fn sorted(vs: Vec<Violation>) -> Vec<String> {
    let mut keys: Vec<String> = vs.iter().map(|v| format!("{v:?}")).collect();
    keys.sort();
    keys
}

fn assert_agreement<S, A>(
    seq: &TimedSequence<S, A>,
    conds: &[TimingCondition<S, A>],
) -> Result<(), TestCaseError>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    for mode in [SatisfactionMode::Prefix, SatisfactionMode::Complete] {
        let offline: Vec<Violation> = conds
            .iter()
            .flat_map(|c| violations(seq, c, mode))
            .collect();
        let online = replay(seq, conds, mode);
        prop_assert_eq!(sorted(offline), sorted(online), "mode {:?}", mode);
    }
    let offline_ok = conds
        .iter()
        .all(|c| tempo_core::semi_satisfies(seq, c).is_ok());
    prop_assert_eq!(offline_ok, replay_semi_satisfies(seq, conds).is_ok());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Agreement on resource-manager traces, valid and time-warped, for
    /// the paper's G1 and G2.
    #[test]
    fn monitor_agrees_with_offline_rm(
        params in rm_params(),
        seed in 0u64..1000,
        num in 1i128..=12,
    ) {
        let impl_aut = time_ab(&resource_manager::system(&params));
        let runs = Ensemble::new(2, 60).with_seed(seed).collect(&impl_aut);
        let conds = [g1(&params), g2(&params)];
        let factor = Rat::new(num, 8);
        for run in &runs {
            assert_agreement(run, &conds)?;
            assert_agreement(&warp(run, factor), &conds)?;
        }
    }

    /// Agreement on signal-relay traces for `U_{0,n}` (delivery bound
    /// from the line's head to its tail).
    #[test]
    fn monitor_agrees_with_offline_relay(
        params in relay_params(),
        seed in 0u64..1000,
        num in 1i128..=12,
    ) {
        let timed = signal_relay::relay_line(&params);
        let dummified = dummify(
            &timed,
            Interval::closed(Rat::ONE, Rat::from(2)).unwrap(),
        ).unwrap();
        let impl_aut = time_ab(&dummified);
        let mut sched = RandomScheduler::new(seed);
        let (run, _) = impl_aut.generate(&mut sched, 30 + 10 * params.n);
        let seq = undum(&project(&run));
        let conds = [u_kn(0, &params)];
        assert_agreement(&seq, &conds)?;
        assert_agreement(&warp(&seq, Rat::new(num, 8)), &conds)?;
    }

    /// The streaming audits agree with the offline ensemble audit, and
    /// valid simulated runs always pass online (the monitor raises no
    /// false alarms).
    #[test]
    fn streaming_audits_agree_with_offline(params in rm_params(), seed in 0u64..1000) {
        let impl_aut = time_ab(&resource_manager::system(&params));
        let runs = Ensemble::new(3, 60).with_seed(seed).collect(&impl_aut);
        let conds = [g1(&params), g2(&params)];
        let offline = audit_runs(&runs, &conds);
        let online = stream_audit_runs(&runs, &conds);
        let pooled = pooled_audit_runs(&runs, &conds, PoolConfig::default());
        prop_assert!(offline.passed(), "{}", offline);
        prop_assert!(online.passed(), "{}", online);
        prop_assert!(pooled.passed(), "{}", pooled);
        prop_assert_eq!(online.checks, offline.checks);
    }
}
