//! Empirical statistics over run ensembles.

use std::fmt;

use tempo_core::TimedSequence;
use tempo_math::Rat;

/// Statistics of the elapsed time between a *from*-event and the next
/// *to*-event across an ensemble of runs (the measured analogue of a
/// timing condition's interval).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct GapStats {
    /// Smallest observed gap.
    pub min: Option<Rat>,
    /// Largest observed gap.
    pub max: Option<Rat>,
    /// Number of gaps measured.
    pub count: usize,
    /// Sum of all gaps (for the mean).
    pub total: Rat,
}

impl GapStats {
    /// Measures, in each run, every maximal interval from a `from`-event
    /// (or the run start, for the first `to`-event, when `from_start`)
    /// to the next `to`-event.
    pub fn between<S, A>(
        runs: &[TimedSequence<S, A>],
        mut from: impl FnMut(&A) -> bool,
        mut to: impl FnMut(&A) -> bool,
    ) -> GapStats
    where
        S: Clone + fmt::Debug,
        A: Clone + fmt::Debug,
    {
        let mut stats = GapStats {
            min: None,
            max: None,
            count: 0,
            total: Rat::ZERO,
        };
        for run in runs {
            let mut armed_at: Option<Rat> = None;
            for (a, t) in run.timed_schedule() {
                if let Some(start) = armed_at {
                    if to(&a) {
                        stats.record(t - start);
                        armed_at = None;
                    }
                }
                if from(&a) {
                    armed_at = Some(t);
                }
            }
        }
        stats
    }

    /// Measures the time of the first `to`-event in each run (from time 0).
    pub fn first<S, A>(runs: &[TimedSequence<S, A>], mut to: impl FnMut(&A) -> bool) -> GapStats
    where
        S: Clone + fmt::Debug,
        A: Clone + fmt::Debug,
    {
        let mut stats = GapStats {
            min: None,
            max: None,
            count: 0,
            total: Rat::ZERO,
        };
        for run in runs {
            if let Some((_, t)) = run.timed_schedule().into_iter().find(|(a, _)| to(a)) {
                stats.record(t);
            }
        }
        stats
    }

    fn record(&mut self, gap: Rat) {
        self.min = Some(self.min.map_or(gap, |m| m.min(gap)));
        self.max = Some(self.max.map_or(gap, |m| m.max(gap)));
        self.count += 1;
        self.total += gap;
    }

    /// The mean gap, if any were measured.
    pub fn mean(&self) -> Option<Rat> {
        if self.count == 0 {
            None
        } else {
            Some(self.total / Rat::from(self.count))
        }
    }
}

impl fmt::Display for GapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min, self.max) {
            (Some(min), Some(max)) => write!(
                f,
                "min {min} / max {max} over {} samples (mean {})",
                self.count,
                self.mean().expect("count > 0")
            ),
            _ => write!(f, "no samples"),
        }
    }
}

/// Per-run first-occurrence times of an event (kept run-by-run, unlike the
/// aggregated [`GapStats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct FirstTimeStats {
    /// One entry per run that contained the event.
    pub times: Vec<Rat>,
    /// Number of runs without the event.
    pub missing: usize,
}

impl FirstTimeStats {
    /// Collects the first occurrence time of a `to`-event in each run.
    pub fn collect<S, A>(
        runs: &[TimedSequence<S, A>],
        mut to: impl FnMut(&A) -> bool,
    ) -> FirstTimeStats
    where
        S: Clone + fmt::Debug,
        A: Clone + fmt::Debug,
    {
        let mut times = Vec::new();
        let mut missing = 0;
        for run in runs {
            match run.timed_schedule().into_iter().find(|(a, _)| to(a)) {
                Some((_, t)) => times.push(t),
                None => missing += 1,
            }
        }
        FirstTimeStats { times, missing }
    }

    /// The smallest first-occurrence time.
    pub fn min(&self) -> Option<Rat> {
        self.times.iter().copied().reduce(Rat::min)
    }

    /// The largest first-occurrence time.
    pub fn max(&self) -> Option<Rat> {
        self.times.iter().copied().reduce(Rat::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(events: &[(&'static str, i64)]) -> TimedSequence<(), &'static str> {
        let mut s = TimedSequence::new(());
        for (a, t) in events {
            s.push(*a, Rat::from(*t), ());
        }
        s
    }

    #[test]
    fn gap_stats_basic() {
        let runs = vec![
            seq(&[("a", 1), ("b", 3), ("a", 4), ("b", 8)]),
            seq(&[("a", 2), ("b", 3)]),
        ];
        let g = GapStats::between(&runs, |x| *x == "a", |x| *x == "b");
        assert_eq!(g.count, 3);
        assert_eq!(g.min, Some(Rat::ONE));
        assert_eq!(g.max, Some(Rat::from(4)));
        assert_eq!(g.mean(), Some(Rat::new(7, 3)));
        assert!(g.to_string().contains("min 1 / max 4"));
    }

    #[test]
    fn gap_stats_self_gaps() {
        let runs = vec![seq(&[("t", 1), ("t", 3), ("t", 4)])];
        let g = GapStats::between(&runs, |x| *x == "t", |x| *x == "t");
        assert_eq!(g.count, 2);
        assert_eq!(g.min, Some(Rat::ONE));
        assert_eq!(g.max, Some(Rat::from(2)));
    }

    #[test]
    fn first_stats() {
        let runs = vec![
            seq(&[("x", 2), ("g", 5)]),
            seq(&[("g", 3)]),
            seq(&[("x", 1)]),
        ];
        let f = GapStats::first(&runs, |a| *a == "g");
        assert_eq!(f.count, 2);
        assert_eq!(f.min, Some(Rat::from(3)));
        assert_eq!(f.max, Some(Rat::from(5)));
        let ft = FirstTimeStats::collect(&runs, |a| *a == "g");
        assert_eq!(ft.times, vec![Rat::from(5), Rat::from(3)]);
        assert_eq!(ft.missing, 1);
        assert_eq!(ft.min(), Some(Rat::from(3)));
        assert_eq!(ft.max(), Some(Rat::from(5)));
    }

    #[test]
    fn empty_stats() {
        let runs: Vec<TimedSequence<(), &str>> = vec![seq(&[("x", 1)])];
        let g = GapStats::between(&runs, |a| *a == "a", |a| *a == "b");
        assert_eq!(g.count, 0);
        assert_eq!(g.mean(), None);
        assert_eq!(g.to_string(), "no samples");
    }
}
