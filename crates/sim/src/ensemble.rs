//! Run ensembles: batches of projected timed sequences under varied
//! schedulers.

use tempo_core::{
    project, EarliestScheduler, LatestScheduler, RandomScheduler, TimeIoa, TimedSequence,
};
use tempo_ioa::Ioa;
use tempo_math::Rat;

/// A recipe for a batch of runs: `seeds` random runs (reproducible) plus,
/// optionally, the two extremal runs.
#[derive(Clone, Debug)]
pub struct Ensemble {
    seeds: u64,
    steps: usize,
    base_seed: u64,
    extremal: bool,
    cap: Rat,
}

impl Ensemble {
    /// Creates an ensemble of `seeds` random runs of `steps` steps each.
    pub fn new(seeds: u64, steps: usize) -> Ensemble {
        Ensemble {
            seeds,
            steps,
            base_seed: 0xACE5,
            extremal: true,
            cap: Rat::ONE,
        }
    }

    /// Includes (default) or excludes the earliest/latest extremal runs.
    pub fn with_extremal(mut self, extremal: bool) -> Ensemble {
        self.extremal = extremal;
        self
    }

    /// Sets the base seed for the random runs.
    pub fn with_seed(mut self, seed: u64) -> Ensemble {
        self.base_seed = seed;
        self
    }

    /// Number of steps per run.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Generates the runs of `aut` and projects them to base timed
    /// sequences.
    pub fn collect<M: Ioa>(&self, aut: &TimeIoa<M>) -> Vec<TimedSequence<M::State, M::Action>> {
        let mut out = Vec::new();
        if self.extremal {
            let (run, _) = aut.generate(&mut EarliestScheduler::new(), self.steps);
            out.push(project(&run));
            let (run, _) = aut.generate(&mut LatestScheduler::new().with_cap(self.cap), self.steps);
            out.push(project(&run));
        }
        for i in 0..self.seeds {
            let mut sched = RandomScheduler::new(self.base_seed.wrapping_add(i)).with_cap(self.cap);
            let (run, _) = aut.generate(&mut sched, self.steps);
            out.push(project(&run));
        }
        out
    }

    /// Generates runs under a caller-supplied scheduler factory (one
    /// scheduler per run index), projected to base sequences. Use this for
    /// adversarial schedulers.
    pub fn collect_with<M, Sch, F>(
        &self,
        aut: &TimeIoa<M>,
        mut make: F,
    ) -> Vec<TimedSequence<M::State, M::Action>>
    where
        M: Ioa,
        Sch: tempo_core::Scheduler<M::State, M::Action>,
        F: FnMut(u64) -> Sch,
    {
        (0..self.seeds.max(1))
            .map(|i| {
                let mut sched = make(i);
                let (run, _) = aut.generate(&mut sched, self.steps);
                project(&run)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use tempo_core::{time_ab, Boundmap, Timed};
    use tempo_ioa::{Partition, Signature};
    use tempo_math::Interval;

    #[derive(Debug)]
    struct Ticker {
        sig: Signature<&'static str>,
        part: Partition<&'static str>,
    }

    impl Ioa for Ticker {
        type State = u32;
        type Action = &'static str;
        fn signature(&self) -> &Signature<&'static str> {
            &self.sig
        }
        fn partition(&self) -> &Partition<&'static str> {
            &self.part
        }
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn post(&self, s: &u32, a: &&'static str) -> Vec<u32> {
            if *a == "tick" {
                vec![s + 1]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn ensemble_counts_and_reproducibility() {
        let sig = Signature::new(vec![], vec!["tick"], vec![]).unwrap();
        let part = Partition::singletons(&sig).unwrap();
        let aut = Arc::new(Ticker { sig, part });
        let b = Boundmap::from_intervals(vec![Interval::closed(Rat::ONE, Rat::from(2)).unwrap()]);
        let t = time_ab(&Timed::new(aut, b).unwrap());
        let runs = Ensemble::new(5, 10).collect(&t);
        assert_eq!(runs.len(), 7); // 2 extremal + 5 random
        for r in &runs {
            assert_eq!(r.len(), 10);
        }
        // Same seeds → identical runs.
        let again = Ensemble::new(5, 10).collect(&t);
        assert_eq!(runs, again);
        // Different base seed → (almost surely) different random runs.
        let other = Ensemble::new(5, 10).with_seed(99).collect(&t);
        assert_ne!(runs, other);
        // Extremal-free ensembles.
        let plain = Ensemble::new(3, 10).with_extremal(false).collect(&t);
        assert_eq!(plain.len(), 3);
    }
}
