//! Batch auditing of run ensembles against timing conditions.
//!
//! [`audit_runs`] checks each (run, condition) pair with the offline
//! [`semi_satisfies`] checker, which steps the shared condition engine
//! under the hood; [`stream_audit_runs`](crate::stream_audit_runs)
//! compiles the conditions once and replays runs through the online
//! monitor over the same engine, so the two audits agree on pass/fail
//! by construction.

use std::fmt;

use tempo_core::{semi_satisfies, TimedSequence, TimingCondition, Violation};

/// The result of auditing an ensemble against a set of conditions.
#[derive(Debug, Clone, Default)]
pub struct AuditSummary {
    /// Total (run, condition) pairs checked.
    pub checks: usize,
    /// Violations found, with the index of the offending run.
    pub violations: Vec<(usize, Violation)>,
}

impl AuditSummary {
    /// Returns `true` if every run semi-satisfied every condition.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.passed() {
            write!(f, "{} checks, all passed", self.checks)
        } else {
            write!(
                f,
                "{} checks, {} violations (first: run {} / {:?})",
                self.checks,
                self.violations.len(),
                self.violations[0].0,
                self.violations[0].1
            )
        }
    }
}

/// Semi-satisfaction audit (Definition 3.1) of every run against every
/// condition. Generated prefixes of a correct system must always pass;
/// a failure is either a system bug or a false timing claim.
pub fn audit_runs<S, A>(
    runs: &[TimedSequence<S, A>],
    conds: &[TimingCondition<S, A>],
) -> AuditSummary
where
    S: Clone + fmt::Debug,
    A: Clone + Eq + std::hash::Hash + fmt::Debug,
{
    let mut summary = AuditSummary::default();
    for (i, run) in runs.iter().enumerate() {
        for cond in conds {
            summary.checks += 1;
            if let Err(v) = semi_satisfies(run, cond) {
                summary.violations.push((i, v));
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_math::{Interval, Rat};

    fn seq(events: &[(&'static str, i64)]) -> TimedSequence<(), &'static str> {
        let mut s = TimedSequence::new(());
        for (a, t) in events {
            s.push(*a, Rat::from(*t), ());
        }
        s
    }

    fn cond(lo: i64, hi: i64) -> TimingCondition<(), &'static str> {
        TimingCondition::new("C", Interval::closed(Rat::from(lo), Rat::from(hi)).unwrap())
            .triggered_at_start(|_| true)
            .on_actions(|a| *a == "g")
    }

    #[test]
    fn passing_audit() {
        let runs = vec![seq(&[("g", 2)]), seq(&[("x", 1), ("g", 3)])];
        let summary = audit_runs(&runs, &[cond(1, 3)]);
        assert!(summary.passed());
        assert_eq!(summary.checks, 2);
        assert!(summary.to_string().contains("all passed"));
    }

    #[test]
    fn failing_audit_names_run() {
        let runs = vec![seq(&[("g", 2)]), seq(&[("g", 0)])];
        let summary = audit_runs(&runs, &[cond(1, 3)]);
        assert!(!summary.passed());
        assert_eq!(summary.violations.len(), 1);
        assert_eq!(summary.violations[0].0, 1);
        assert!(summary.to_string().contains("1 violations"));
    }
}
