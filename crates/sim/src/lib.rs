//! Simulation harness for `time(A, U)` automata: adversarial schedulers,
//! run ensembles, event-gap statistics, and batch condition auditing.
//!
//! Where `tempo-zones` proves a bound symbolically and `tempo-core`'s
//! mapping checker verifies the paper's assertional proof, this crate
//! *measures*: it drives the system with extremal and adversarial
//! schedules and reports the empirically observed best/worst cases —
//! the "measured" column of EXPERIMENTS.md.
//!
//! # Example
//!
//! ```
//! # use std::sync::Arc;
//! # use tempo_ioa::{Ioa, Partition, Signature};
//! # use tempo_math::{Interval, Rat};
//! # use tempo_core::{time_ab, Boundmap, Timed};
//! use tempo_sim::{Ensemble, GapStats};
//!
//! # #[derive(Debug)]
//! # struct Ticker { sig: Signature<&'static str>, part: Partition<&'static str> }
//! # impl Ioa for Ticker {
//! #     type State = u32;
//! #     type Action = &'static str;
//! #     fn signature(&self) -> &Signature<&'static str> { &self.sig }
//! #     fn partition(&self) -> &Partition<&'static str> { &self.part }
//! #     fn initial_states(&self) -> Vec<u32> { vec![0] }
//! #     fn post(&self, s: &u32, a: &&'static str) -> Vec<u32> {
//! #         if *a == "tick" { vec![s + 1] } else { vec![] }
//! #     }
//! # }
//! # let sig = Signature::new(vec![], vec!["tick"], vec![]).unwrap();
//! # let part = Partition::singletons(&sig).unwrap();
//! # let aut = Arc::new(Ticker { sig, part });
//! # let b = Boundmap::from_intervals(vec![Interval::closed(Rat::ONE, Rat::from(2)).unwrap()]);
//! # let t = time_ab(&Timed::new(aut, b).unwrap());
//! let runs = Ensemble::new(32, 50).with_extremal(true).collect(&t);
//! let gaps = GapStats::between(&runs, |a| *a == "tick", |a| *a == "tick");
//! assert_eq!(gaps.min, Some(Rat::ONE));        // back-to-back fastest
//! assert_eq!(gaps.max, Some(Rat::from(2)));    // slowest
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod ensemble;
pub mod loadgen;
mod scheduler;
mod stats;
mod stream;

pub use audit::{audit_runs, AuditSummary};
pub use ensemble::Ensemble;
pub use scheduler::{TargetDelayScheduler, TargetRushScheduler};
pub use stats::{FirstTimeStats, GapStats};
pub use stream::{
    pooled_audit_runs, predictive_audit_runs, stream_audit_runs, PredictiveAuditSummary,
};
