//! Online auditing of run ensembles through the streaming monitor.
//!
//! The offline [`audit_runs`](crate::audit_runs) re-checks every
//! condition against every complete run; these adapters push the same
//! runs through `tempo-monitor` instead — sequentially with a single
//! [`Monitor`](tempo_monitor::Monitor) per run, or sharded across a
//! [`MonitorPool`]'s worker threads. Both agree with the offline audit
//! on whether the ensemble passes.

use std::fmt;
use std::sync::Arc;

use tempo_core::engine::CompiledConditionSet;
use tempo_core::{TimedSequence, TimingCondition, Violation};
use tempo_math::Rat;
use tempo_monitor::{Forced, Monitor, MonitorPool, PoolConfig, Warning};

use crate::audit::AuditSummary;

/// Streaming semi-satisfaction audit: the conditions are compiled once
/// (one shared [`CompiledConditionSet`]) and each run is replayed
/// through an online monitor over that set.
///
/// Agrees with [`audit_runs`](crate::audit_runs) on
/// [`passed`](AuditSummary::passed); the violation lists may differ in
/// granularity — the offline audit records only the first violation per
/// (run, condition) pair, the monitor records one per violated trigger.
pub fn stream_audit_runs<S, A>(
    runs: &[TimedSequence<S, A>],
    conds: &[TimingCondition<S, A>],
) -> AuditSummary
where
    S: Clone + fmt::Debug,
    A: Clone + Eq + std::hash::Hash + fmt::Debug,
{
    let set = Arc::new(CompiledConditionSet::new(conds));
    let mut summary = AuditSummary {
        checks: runs.len() * conds.len(),
        violations: Vec::new(),
    };
    for (i, run) in runs.iter().enumerate() {
        let mut mon = Monitor::from_compiled(Arc::clone(&set), run.first_state());
        for (_, a, t, post) in run.step_triples() {
            mon.observe(a, t, post);
        }
        for v in mon.finish(tempo_core::SatisfactionMode::Prefix) {
            summary.violations.push((i, v));
        }
    }
    summary
}

/// Streaming audit sharded across a [`MonitorPool`]: each run becomes
/// one stream, fed event-by-event to the pool's worker threads.
///
/// Same agreement guarantee as [`stream_audit_runs`].
pub fn pooled_audit_runs<S, A>(
    runs: &[TimedSequence<S, A>],
    conds: &[TimingCondition<S, A>],
    config: PoolConfig,
) -> AuditSummary
where
    S: Clone + fmt::Debug + Send + 'static,
    A: Clone + Eq + std::hash::Hash + fmt::Debug + Send + Sync + 'static,
{
    let mut pool = MonitorPool::new(conds, config);
    for run in runs {
        let mut stream = pool.open_stream(run.first_state().clone());
        for (_, a, t, post) in run.step_triples() {
            stream
                .send(a.clone(), t, post.clone())
                .expect("audit pools use the lossless Block policy");
        }
        stream.finish();
    }
    let report = pool.shutdown();
    let mut summary = AuditSummary {
        checks: runs.len() * conds.len(),
        violations: Vec::new(),
    };
    for s in report.streams {
        for v in s.violations {
            summary.violations.push((s.stream as usize, v));
        }
    }
    summary.violations.sort_by_key(|(i, _)| *i);
    summary
}

/// The result of a predictive streaming audit: violations plus the early
/// warnings that preceded them.
#[derive(Debug, Clone, Default)]
pub struct PredictiveAuditSummary {
    /// Total (run, condition) pairs checked.
    pub checks: usize,
    /// Violations found, with the index of the offending run.
    pub violations: Vec<(usize, Violation)>,
    /// Early warnings emitted, with the index of the warned run.
    pub warnings: Vec<(usize, Warning)>,
    /// Forced windows reported (the `Ft(U)` side), with the index of
    /// the run that opened them.
    pub forced: Vec<(usize, Forced)>,
}

impl PredictiveAuditSummary {
    /// Returns `true` if every run semi-satisfied every condition
    /// (warnings alone never fail an audit).
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The violation/warning split as an [`AuditSummary`], for comparing
    /// against the non-predictive audits.
    pub fn without_warnings(self) -> AuditSummary {
        AuditSummary {
            checks: self.checks,
            violations: self.violations,
        }
    }
}

impl fmt::Display for PredictiveAuditSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} checks, {} violations, {} warnings, {} forced windows",
            self.checks,
            self.violations.len(),
            self.warnings.len(),
            self.forced.len()
        )
    }
}

/// Streaming audit with prediction: each run is replayed through a
/// monitor whose engine is armed with the given slack horizon
/// ([`Monitor::with_predictor`]), so besides the violations the summary
/// reports every deadline that entered its warning window (including
/// the near misses that were ultimately served) and every forced window
/// at least the horizon wide.
///
/// The violation set is identical to [`stream_audit_runs`]'s —
/// prediction only *adds* the warnings and forced windows.
pub fn predictive_audit_runs<S, A>(
    runs: &[TimedSequence<S, A>],
    conds: &[TimingCondition<S, A>],
    horizon: Rat,
) -> PredictiveAuditSummary
where
    S: Clone + fmt::Debug,
    A: Clone + Eq + std::hash::Hash + fmt::Debug,
{
    let set = Arc::new(CompiledConditionSet::new(conds));
    let mut summary = PredictiveAuditSummary {
        checks: runs.len() * conds.len(),
        ..PredictiveAuditSummary::default()
    };
    for (i, run) in runs.iter().enumerate() {
        let mut mon =
            Monitor::from_compiled(Arc::clone(&set), run.first_state()).with_predictor(horizon);
        for (_, a, t, post) in run.step_triples() {
            mon.observe(a, t, post);
        }
        let (violations, warnings, forced) = mon.finish_full(tempo_core::SatisfactionMode::Prefix);
        summary
            .violations
            .extend(violations.into_iter().map(|v| (i, v)));
        summary
            .warnings
            .extend(warnings.into_iter().map(|w| (i, w)));
        summary.forced.extend(forced.into_iter().map(|f| (i, f)));
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit_runs;
    use tempo_math::{Interval, Rat};

    fn seq(events: &[(&'static str, i64)]) -> TimedSequence<(), &'static str> {
        let mut s = TimedSequence::new(());
        for (a, t) in events {
            s.push(*a, Rat::from(*t), ());
        }
        s
    }

    fn cond(lo: i64, hi: i64) -> TimingCondition<(), &'static str> {
        TimingCondition::new("C", Interval::closed(Rat::from(lo), Rat::from(hi)).unwrap())
            .triggered_at_start(|_| true)
            .on_actions(|a| *a == "g")
    }

    #[test]
    fn streaming_audit_agrees_with_offline() {
        let runs = vec![
            seq(&[("g", 2)]),
            seq(&[("g", 0)]),
            seq(&[("x", 1), ("g", 3)]),
        ];
        let conds = [cond(1, 3)];
        let offline = audit_runs(&runs, &conds);
        let online = stream_audit_runs(&runs, &conds);
        assert_eq!(offline.passed(), online.passed());
        assert_eq!(online.checks, 3);
        assert_eq!(online.violations.len(), 1);
        assert_eq!(online.violations[0].0, 1);
    }

    #[test]
    fn predictive_audit_adds_warnings_only() {
        let runs = vec![
            seq(&[("g", 2)]),           // served early: no warning
            seq(&[("x", 1), ("x", 9)]), // deadline 3 lapses: warning + violation...
            seq(&[("x", 2), ("g", 3)]), // served inside the window: near miss
        ];
        let conds = [cond(1, 3)];
        let offline = audit_runs(&runs, &conds);
        let predictive = predictive_audit_runs(&runs, &conds, Rat::ONE);
        assert_eq!(offline.passed(), predictive.passed());
        assert_eq!(predictive.checks, 3);
        // Run 1's lapse warns (at 3 − 1 = 2) then violates; run 2's
        // grant at t = 3 > 2 is a near miss.
        let warned: Vec<usize> = predictive.warnings.iter().map(|(i, _)| *i).collect();
        assert_eq!(warned, vec![1, 2]);
        let violated: Vec<usize> = predictive.violations.iter().map(|(i, _)| *i).collect();
        assert_eq!(violated, vec![1]);
        // Violation sets agree with the non-predictive streaming audit.
        let plain = stream_audit_runs(&runs, &conds);
        assert_eq!(
            plain.violations,
            predictive.clone().without_warnings().violations
        );
        assert!(predictive.to_string().contains("2 warnings"));
    }

    #[test]
    fn predictive_audit_reports_forced_windows() {
        // A step-triggered condition with a wide lower bound: every "go"
        // opens a forced window (margin 5 ≥ horizon 2).
        let guarded: TimingCondition<(), &'static str> =
            TimingCondition::new("G", Interval::closed(Rat::from(5), Rat::from(9)).unwrap())
                .triggered_by_step(|_, a, _| *a == "go")
                .on_actions(|a| *a == "g");
        let runs = vec![seq(&[("go", 1), ("g", 7)]), seq(&[("x", 2)])];
        let predictive = predictive_audit_runs(&runs, &[guarded], Rat::from(2));
        assert!(predictive.passed());
        assert_eq!(predictive.forced.len(), 1);
        assert_eq!(predictive.forced[0].0, 0);
        assert_eq!(predictive.forced[0].1.earliest, Rat::from(6));
        assert!(predictive.to_string().contains("1 forced window"));
    }

    #[test]
    fn pooled_audit_agrees_with_offline() {
        let runs: Vec<_> = (0..10)
            .map(|i| {
                if i % 3 == 0 {
                    seq(&[("g", 0)]) // lower-bound violation
                } else {
                    seq(&[("g", 2)])
                }
            })
            .collect();
        let conds = [cond(1, 3)];
        let offline = audit_runs(&runs, &conds);
        let online = pooled_audit_runs(&runs, &conds, PoolConfig::default());
        assert_eq!(offline.passed(), online.passed());
        let offline_runs: Vec<usize> = offline.violations.iter().map(|(i, _)| *i).collect();
        let online_runs: Vec<usize> = online.violations.iter().map(|(i, _)| *i).collect();
        assert_eq!(offline_runs, online_runs);
    }
}
