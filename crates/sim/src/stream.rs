//! Online auditing of run ensembles through the streaming monitor.
//!
//! The offline [`audit_runs`](crate::audit_runs) re-checks every
//! condition against every complete run; these adapters push the same
//! runs through `tempo-monitor` instead — sequentially with a single
//! [`Monitor`](tempo_monitor::Monitor) per run, or sharded across a
//! [`MonitorPool`]'s worker threads. Both agree with the offline audit
//! on whether the ensemble passes.

use std::fmt;

use tempo_core::{TimedSequence, TimingCondition};
use tempo_monitor::{replay, MonitorPool, PoolConfig};

use crate::audit::AuditSummary;

/// Streaming semi-satisfaction audit: each run is replayed through an
/// online monitor compiled from `conds`.
///
/// Agrees with [`audit_runs`](crate::audit_runs) on
/// [`passed`](AuditSummary::passed); the violation lists may differ in
/// granularity — the offline audit records only the first violation per
/// (run, condition) pair, the monitor records one per violated trigger.
pub fn stream_audit_runs<S, A>(
    runs: &[TimedSequence<S, A>],
    conds: &[TimingCondition<S, A>],
) -> AuditSummary
where
    S: Clone + fmt::Debug,
    A: Clone + fmt::Debug,
{
    let mut summary = AuditSummary {
        checks: runs.len() * conds.len(),
        violations: Vec::new(),
    };
    for (i, run) in runs.iter().enumerate() {
        for v in replay(run, conds, tempo_core::SatisfactionMode::Prefix) {
            summary.violations.push((i, v));
        }
    }
    summary
}

/// Streaming audit sharded across a [`MonitorPool`]: each run becomes
/// one stream, fed event-by-event to the pool's worker threads.
///
/// Same agreement guarantee as [`stream_audit_runs`].
pub fn pooled_audit_runs<S, A>(
    runs: &[TimedSequence<S, A>],
    conds: &[TimingCondition<S, A>],
    config: PoolConfig,
) -> AuditSummary
where
    S: Clone + fmt::Debug + Send + 'static,
    A: Clone + fmt::Debug + Send + 'static,
{
    let mut pool = MonitorPool::new(conds, config);
    for run in runs {
        let mut stream = pool.open_stream(run.first_state().clone());
        for (_, a, t, post) in run.step_triples() {
            stream
                .send(a.clone(), t, post.clone())
                .expect("audit pools use the lossless Block policy");
        }
        stream.finish();
    }
    let report = pool.shutdown();
    let mut summary = AuditSummary {
        checks: runs.len() * conds.len(),
        violations: Vec::new(),
    };
    for s in report.streams {
        for v in s.violations {
            summary.violations.push((s.stream as usize, v));
        }
    }
    summary.violations.sort_by_key(|(i, _)| *i);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit_runs;
    use tempo_math::{Interval, Rat};

    fn seq(events: &[(&'static str, i64)]) -> TimedSequence<(), &'static str> {
        let mut s = TimedSequence::new(());
        for (a, t) in events {
            s.push(*a, Rat::from(*t), ());
        }
        s
    }

    fn cond(lo: i64, hi: i64) -> TimingCondition<(), &'static str> {
        TimingCondition::new("C", Interval::closed(Rat::from(lo), Rat::from(hi)).unwrap())
            .triggered_at_start(|_| true)
            .on_actions(|a| *a == "g")
    }

    #[test]
    fn streaming_audit_agrees_with_offline() {
        let runs = vec![
            seq(&[("g", 2)]),
            seq(&[("g", 0)]),
            seq(&[("x", 1), ("g", 3)]),
        ];
        let conds = [cond(1, 3)];
        let offline = audit_runs(&runs, &conds);
        let online = stream_audit_runs(&runs, &conds);
        assert_eq!(offline.passed(), online.passed());
        assert_eq!(online.checks, 3);
        assert_eq!(online.violations.len(), 1);
        assert_eq!(online.violations[0].0, 1);
    }

    #[test]
    fn pooled_audit_agrees_with_offline() {
        let runs: Vec<_> = (0..10)
            .map(|i| {
                if i % 3 == 0 {
                    seq(&[("g", 0)]) // lower-bound violation
                } else {
                    seq(&[("g", 2)])
                }
            })
            .collect();
        let conds = [cond(1, 3)];
        let offline = audit_runs(&runs, &conds);
        let online = pooled_audit_runs(&runs, &conds, PoolConfig::default());
        assert_eq!(offline.passed(), online.passed());
        let offline_runs: Vec<usize> = offline.violations.iter().map(|(i, _)| *i).collect();
        let online_runs: Vec<usize> = online.violations.iter().map(|(i, _)| *i).collect();
        assert_eq!(offline_runs, online_runs);
    }
}
