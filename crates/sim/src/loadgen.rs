//! Deterministic request/serve traffic for driving the networked
//! ingest path (`tempo-serve`'s loadgen and the E18 experiments).
//!
//! [`ReqServe`] generates, per stream, an alternating
//! `REQUEST`/`SERVE` trace on an integer-millisecond clock: request `k`
//! lands at `k·period + jitter`, its serve follows within the deadline
//! — except every [`late_every`](ReqServe::late_every)-th serve, which
//! is pushed past the deadline to inject a known upper-bound violation.
//! Everything is a pure function of `(stream, index)` through a
//! `splitmix64`-style mixer, so any worker can generate any slice of
//! any stream with no shared state, and the expected violation count is
//! exactly computable — which is how the loopback tests assert
//! zero-loss delivery end to end.

/// Mixes `(stream, k, salt)` into 64 well-spread bits.
fn mix(stream: u64, k: u64, salt: u64) -> u64 {
    let mut x = stream
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(k)
        .wrapping_add(salt.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One generated event: an action/state id pair at an integer
/// millisecond timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoadEvent {
    /// `0` = `REQUEST`, `1` = `SERVE` (indices into
    /// [`ReqServe::ACTIONS`]).
    pub action: u32,
    /// Post-state id (`1` while a request is outstanding, `0` after its
    /// serve).
    pub state: u32,
    /// Absolute time in milliseconds.
    pub time_ms: i64,
}

/// A deterministic request/serve traffic model.
#[derive(Clone, Copy, Debug)]
pub struct ReqServe {
    /// Request period per stream, in ms.
    pub period_ms: u32,
    /// Serve deadline after each request, in ms (the spec's upper
    /// bound).
    pub deadline_ms: u32,
    /// Maximum request jitter, in ms.
    pub jitter_ms: u32,
    /// Inject one late serve every this many requests (`0` = never).
    /// Lateness is keyed on `(stream + request index)`, so violations
    /// spread across streams.
    pub late_every: u64,
}

impl Default for ReqServe {
    fn default() -> ReqServe {
        ReqServe {
            period_ms: 20,
            deadline_ms: 5,
            jitter_ms: 3,
            late_every: 0,
        }
    }
}

impl ReqServe {
    /// The action table, in wire id order.
    pub const ACTIONS: [&'static str; 2] = ["REQUEST", "SERVE"];

    /// Normalizes the model so each stream's trace is time-ordered:
    /// the period must cover the worst jitter plus the latest possible
    /// (injected-late) serve.
    pub fn validated(self) -> ReqServe {
        let deadline_ms = self.deadline_ms.max(1);
        let floor = self.jitter_ms + 2 * deadline_ms + 2;
        ReqServe {
            period_ms: self.period_ms.max(floor),
            deadline_ms,
            ..self
        }
    }

    /// The `.tspec` source this traffic is checked against: every
    /// `REQUEST` must be served within `deadline_ms` (times are
    /// integer milliseconds end to end, so the pool's integer-tick
    /// backend engages).
    pub fn tspec(&self) -> String {
        self.tspec_with_deadline(self.deadline_ms)
    }

    /// [`tspec`](ReqServe::tspec) with an explicit deadline — e.g. a
    /// *tightened* bound to hot-reload a running server onto.
    pub fn tspec_with_deadline(&self, deadline_ms: u32) -> String {
        format!(
            "spec reqserve;\n\n\
             actions REQUEST, SERVE;\n\n\
             cond SERVE-DEADLINE {{\n    \
             trigger on REQUEST;\n    \
             pi SERVE;\n    \
             bounds [0, {deadline_ms}];\n\
             }}\n"
        )
    }

    /// Whether request `k` of `stream` is injected late (a guaranteed
    /// upper-bound violation).
    pub fn is_late(&self, stream: u64, k: u64) -> bool {
        self.late_every != 0 && stream.wrapping_add(k).is_multiple_of(self.late_every)
    }

    /// Event `i` (0-based) of `stream`: even indices are requests, odd
    /// indices their serves.
    pub fn event(&self, stream: u64, i: u64) -> LoadEvent {
        let k = i / 2;
        let request_at = k as i64 * i64::from(self.period_ms)
            + (mix(stream, k, 1) % u64::from(self.jitter_ms + 1)) as i64;
        if i.is_multiple_of(2) {
            LoadEvent {
                action: 0,
                state: 1,
                time_ms: request_at,
            }
        } else {
            let delay = if self.is_late(stream, k) {
                // Past the deadline by at least 1ms: a violation.
                i64::from(self.deadline_ms)
                    + 1
                    + (mix(stream, k, 2) % u64::from(self.deadline_ms)) as i64
            } else {
                (mix(stream, k, 3) % u64::from(self.deadline_ms + 1)) as i64
            };
            LoadEvent {
                action: 1,
                state: 0,
                time_ms: request_at + delay,
            }
        }
    }

    /// How many of the first `events` events of `stream` are injected
    /// violations (late serves) — the expected per-stream violation
    /// count for a loss-free ingest path.
    pub fn expected_violations(&self, stream: u64, events: u64) -> u64 {
        (0..events)
            .filter(|i| i % 2 == 1 && self.is_late(stream, i / 2))
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_time_ordered() {
        let model = ReqServe {
            period_ms: 1, // clamped up by validated()
            deadline_ms: 4,
            jitter_ms: 5,
            late_every: 3,
        }
        .validated();
        assert!(model.period_ms >= model.jitter_ms + 2 * model.deadline_ms + 2);
        for stream in [0u64, 1, 17, 1_000_003] {
            let mut last = i64::MIN;
            for i in 0..200 {
                let ev = model.event(stream, i);
                assert!(
                    ev.time_ms >= last,
                    "stream {stream} event {i} at {} after {last}",
                    ev.time_ms
                );
                last = ev.time_ms;
                assert_eq!(ev.action, (i % 2) as u32);
            }
        }
    }

    #[test]
    fn late_serves_break_the_deadline_and_only_them() {
        let model = ReqServe {
            late_every: 5,
            ..ReqServe::default()
        }
        .validated();
        let mut late_seen = 0u64;
        for stream in 0..20u64 {
            for k in 0..50u64 {
                let req = model.event(stream, 2 * k);
                let serve = model.event(stream, 2 * k + 1);
                let gap = serve.time_ms - req.time_ms;
                if model.is_late(stream, k) {
                    assert!(
                        gap > i64::from(model.deadline_ms),
                        "late serve within bound"
                    );
                    late_seen += 1;
                } else {
                    assert!(
                        gap <= i64::from(model.deadline_ms),
                        "on-time serve past bound"
                    );
                }
            }
            assert_eq!(
                model.expected_violations(stream, 100),
                (0..50).filter(|&k| model.is_late(stream, k)).count() as u64
            );
        }
        assert!(late_seen > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let model = ReqServe::default().validated();
        assert_eq!(model.event(42, 13), model.event(42, 13));
        assert_ne!(model.event(42, 12).time_ms, model.event(43, 12).time_ms);
    }
}
