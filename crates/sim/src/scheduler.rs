//! Adversarial schedulers biased for or against a target action set.
//!
//! Both schedulers guard against Zeno stuttering (classes with lower bound
//! 0 can legally refire at the same instant forever): a repeated exact
//! `(action, time)` choice is escalated to the window's upper end, forcing
//! time to advance.

use tempo_core::{Scheduler, TimedState, Window};
use tempo_math::{Rat, TimeVal};

fn window_top(w: Window, cap: Rat) -> Rat {
    match w.hi {
        TimeVal::Finite(hi) => hi,
        TimeVal::Infinity => w.lo + cap,
    }
}

#[derive(Debug, Default)]
struct StutterGuard {
    last: Option<(String, Rat)>,
}

impl StutterGuard {
    /// Escalates `t` to the window top if the exact choice would repeat.
    fn adjust<A: std::fmt::Debug>(&mut self, a: &A, t: Rat, w: Window, cap: Rat) -> Rat {
        let key = format!("{a:?}");
        let t = if self.last.as_ref() == Some(&(key.clone(), t)) {
            window_top(w, cap).max(t)
        } else {
            t
        };
        self.last = Some((key, t));
        t
    }
}

/// Maximally *delays* target actions: every action is postponed to the
/// last legal instant; when several actions could fire there, non-target
/// ones go first, tie-broken by a **one-step lookahead** that maximizes
/// the next state's shared deadline (the min over all `Lt` predictions) —
/// firing the action whose own deadline is binding frees the others to
/// procrastinate further. Drives the empirical worst case for "time until
/// target".
pub struct TargetDelayScheduler<M: tempo_ioa::Ioa, P> {
    aut: tempo_core::TimeIoa<M>,
    is_target: P,
    cap: Rat,
    guard: StutterGuard,
}

impl<M: tempo_ioa::Ioa, P> std::fmt::Debug for TargetDelayScheduler<M, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetDelayScheduler")
            .finish_non_exhaustive()
    }
}

impl<M: tempo_ioa::Ioa, P> TargetDelayScheduler<M, P> {
    /// Creates a delaying scheduler for actions matching `is_target`,
    /// using `aut` for the lookahead.
    pub fn new(aut: tempo_core::TimeIoa<M>, is_target: P) -> TargetDelayScheduler<M, P> {
        TargetDelayScheduler {
            aut,
            is_target,
            cap: Rat::ONE,
            guard: StutterGuard::default(),
        }
    }

    /// The shared deadline after firing `(a, t)` from `state` (first base
    /// post-state; our example systems are deterministic).
    fn next_deadline(&self, state: &TimedState<M::State>, a: &M::Action, t: Rat) -> TimeVal {
        let Some(post) = self.aut.base().post(&state.base, a).into_iter().next() else {
            return TimeVal::ZERO;
        };
        let next = self.aut.update(state, a, t, &post);
        next.lt
            .iter()
            .copied()
            .fold(TimeVal::INFINITY, TimeVal::min)
    }
}

impl<M, P> Scheduler<M::State, M::Action> for TargetDelayScheduler<M, P>
where
    M: tempo_ioa::Ioa,
    P: FnMut(&M::Action) -> bool,
{
    fn choose(
        &mut self,
        state: &TimedState<M::State>,
        options: &[(M::Action, Window)],
    ) -> Option<(usize, Rat)> {
        // (idx, t, is_target, next-deadline score)
        let mut best: Option<(usize, Rat, bool, TimeVal)> = None;
        for (i, (a, w)) in options.iter().enumerate() {
            let t = window_top(*w, self.cap);
            let target = (self.is_target)(a);
            let score = self.next_deadline(state, a, t);
            let better = match &best {
                None => true,
                Some((_, bt, btarget, bscore)) => {
                    t > *bt
                        || (t == *bt && *btarget && !target)
                        || (t == *bt && *btarget == target && score > *bscore)
                }
            };
            if better {
                best = Some((i, t, target, score));
            }
        }
        let (i, t, _, _) = best?;
        let t = self.guard.adjust(&options[i].0, t, options[i].1, self.cap);
        Some((i, t))
    }
}

/// Maximally *rushes* target actions: fires a target as soon as one is
/// enabled (at its window's earliest point); otherwise advances the rest
/// of the system as fast as possible. Drives the empirical best case for
/// "time until target".
#[derive(Debug)]
pub struct TargetRushScheduler<P> {
    is_target: P,
    cap: Rat,
    guard: StutterGuard,
}

impl<P> TargetRushScheduler<P> {
    /// Creates a rushing scheduler for actions matching `is_target`.
    pub fn new(is_target: P) -> TargetRushScheduler<P> {
        TargetRushScheduler {
            is_target,
            cap: Rat::ONE,
            guard: StutterGuard::default(),
        }
    }
}

impl<S, A, P> Scheduler<S, A> for TargetRushScheduler<P>
where
    A: std::fmt::Debug,
    P: FnMut(&A) -> bool,
{
    fn choose(&mut self, _state: &TimedState<S>, options: &[(A, Window)]) -> Option<(usize, Rat)> {
        let pick = options
            .iter()
            .enumerate()
            .filter(|(_, (a, _))| (self.is_target)(a))
            .min_by_key(|(_, (_, w))| w.lo)
            .or_else(|| options.iter().enumerate().min_by_key(|(_, (_, w))| w.lo));
        let (i, (a, w)) = pick?;
        let t = self.guard.adjust(a, w.lo, *w, self.cap);
        Some((i, t))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use tempo_core::{time_ab, Boundmap, TimeIoa, Timed};
    use tempo_ioa::{Ioa, Partition, Signature};
    use tempo_math::Interval;

    /// Two independent always-enabled classes `fast` ([1, 2]) and `slow`
    /// ([3, 10]).
    #[derive(Debug)]
    struct TwoClocks {
        sig: Signature<&'static str>,
        part: Partition<&'static str>,
    }

    impl Ioa for TwoClocks {
        type State = (u32, u32);
        type Action = &'static str;
        fn signature(&self) -> &Signature<&'static str> {
            &self.sig
        }
        fn partition(&self) -> &Partition<&'static str> {
            &self.part
        }
        fn initial_states(&self) -> Vec<(u32, u32)> {
            vec![(0, 0)]
        }
        fn post(&self, s: &(u32, u32), a: &&'static str) -> Vec<(u32, u32)> {
            match *a {
                "fast" => vec![(s.0 + 1, s.1)],
                "slow" => vec![(s.0, s.1 + 1)],
                _ => vec![],
            }
        }
    }

    fn automaton() -> TimeIoa<TwoClocks> {
        let sig = Signature::new(vec![], vec!["fast", "slow"], vec![]).unwrap();
        let part = Partition::singletons(&sig).unwrap();
        let aut = Arc::new(TwoClocks { sig, part });
        let b = Boundmap::from_intervals(vec![
            Interval::closed(Rat::ONE, Rat::from(2)).unwrap(),
            Interval::closed(Rat::from(3), Rat::from(10)).unwrap(),
        ]);
        time_ab(&Timed::new(aut, b).unwrap())
    }

    #[test]
    fn delay_scheduler_postpones_target() {
        let t = automaton();
        let mut sched = TargetDelayScheduler::new(t.clone(), |a: &&str| *a == "slow");
        let (run, _) = t.generate(&mut sched, 40);
        // The first slow event fires at the very last legal moment.
        let first_slow = run
            .timed_schedule()
            .iter()
            .find(|(a, _)| *a == "slow")
            .map(|(_, t)| *t)
            .expect("slow must eventually fire");
        assert_eq!(first_slow, Rat::from(10), "delayed to its Lt");
        // Everything is postponed: fast events ride their upper bound.
        let fast_times: Vec<Rat> = run
            .timed_schedule()
            .iter()
            .filter(|(a, _)| *a == "fast")
            .map(|(_, t)| *t)
            .take(3)
            .collect();
        assert_eq!(fast_times, vec![Rat::from(2), Rat::from(4), Rat::from(6)]);
    }

    #[test]
    fn rush_scheduler_fires_target_first() {
        let t = automaton();
        let mut sched = TargetRushScheduler::new(|a: &&str| *a == "slow");
        let (run, _) = t.generate(&mut sched, 10);
        let first_slow = run
            .timed_schedule()
            .iter()
            .find(|(a, _)| *a == "slow")
            .map(|(_, t)| *t)
            .unwrap();
        assert_eq!(first_slow, Rat::from(3), "rushed to its Ft");
    }

    /// A zero-lower-bound class cannot trap either scheduler at one
    /// instant: time always diverges.
    #[test]
    fn schedulers_are_non_zeno() {
        #[derive(Debug)]
        struct Stutter {
            sig: Signature<&'static str>,
            part: Partition<&'static str>,
        }
        impl Ioa for Stutter {
            type State = ();
            type Action = &'static str;
            fn signature(&self) -> &Signature<&'static str> {
                &self.sig
            }
            fn partition(&self) -> &Partition<&'static str> {
                &self.part
            }
            fn initial_states(&self) -> Vec<()> {
                vec![()]
            }
            fn post(&self, _: &(), a: &&'static str) -> Vec<()> {
                if *a == "idle" {
                    vec![()]
                } else {
                    vec![]
                }
            }
        }
        let sig = Signature::new(vec![], vec!["idle"], vec![]).unwrap();
        let part = Partition::singletons(&sig).unwrap();
        let aut = Arc::new(Stutter { sig, part });
        let b = Boundmap::from_intervals(vec![Interval::closed(Rat::ZERO, Rat::ONE).unwrap()]);
        let t = time_ab(&Timed::new(aut, b).unwrap());
        let mut rush = TargetRushScheduler::new(|_: &&str| false);
        let (run, _) = t.generate(&mut rush, 20);
        assert!(
            run.t_end() >= Rat::from(5),
            "time must diverge, got {}",
            run.t_end()
        );
        let mut delay = TargetDelayScheduler::new(t.clone(), |_: &&str| false);
        let (run, _) = t.generate(&mut delay, 20);
        assert!(run.t_end() >= Rat::from(10));
    }
}
