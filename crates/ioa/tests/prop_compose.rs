//! Property tests for the composition operators: composition is
//! symmetric up to state swapping, `Product` of two components agrees
//! with binary `Compose`, and hiding changes behaviors but not
//! reachability.

use std::collections::BTreeSet;

use proptest::prelude::*;
use tempo_ioa::{ActionKind, Compose, Explorer, Hide, Ioa, Partition, Product, Signature};

/// A small configurable component: counts its own output modulo `m`, and
/// listens to a shared input that resets it.
#[derive(Debug, Clone)]
struct Cell {
    modulus: u8,
    my_action: &'static str,
    other_action: &'static str,
    sig: Signature<&'static str>,
    part: Partition<&'static str>,
}

impl Cell {
    fn new(
        name: &'static str,
        modulus: u8,
        my_action: &'static str,
        other_action: &'static str,
    ) -> Cell {
        let sig = Signature::new(vec![other_action], vec![my_action], vec![]).unwrap();
        let part = Partition::new(&sig, vec![(name, vec![my_action])]).unwrap();
        let _ = name;
        Cell {
            modulus,
            my_action,
            other_action,
            sig,
            part,
        }
    }
}

impl Ioa for Cell {
    type State = u8;
    type Action = &'static str;

    fn signature(&self) -> &Signature<&'static str> {
        &self.sig
    }
    fn partition(&self) -> &Partition<&'static str> {
        &self.part
    }
    fn initial_states(&self) -> Vec<u8> {
        vec![0]
    }
    fn post(&self, s: &u8, a: &&'static str) -> Vec<u8> {
        if *a == self.my_action {
            vec![(s + 1) % self.modulus]
        } else if *a == self.other_action {
            vec![0] // reset on the partner's action
        } else {
            vec![]
        }
    }
}

fn cells(m1: u8, m2: u8) -> (Cell, Cell) {
    (
        Cell::new("L", m1, "ding", "dong"),
        Cell::new("R", m2, "dong", "ding"),
    )
}

fn reachable_pairs<M: Ioa<Action = &'static str>>(aut: &M) -> BTreeSet<String>
where
    M::State: Ord,
{
    Explorer::new()
        .with_max_states(10_000)
        .explore(aut)
        .states()
        .iter()
        .map(|s| format!("{s:?}"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compose(L, R) and Compose(R, L) reach mirror-image state sets.
    #[test]
    fn composition_symmetric(m1 in 2u8..6, m2 in 2u8..6) {
        let (l, r) = cells(m1, m2);
        let lr = Compose::new(l.clone(), r.clone()).unwrap();
        let rl = Compose::new(r, l).unwrap();
        let lr_states: BTreeSet<(u8, u8)> = Explorer::new()
            .explore(&lr)
            .states()
            .iter()
            .copied()
            .collect();
        let rl_states_swapped: BTreeSet<(u8, u8)> = Explorer::new()
            .explore(&rl)
            .states()
            .iter()
            .map(|(a, b)| (*b, *a))
            .collect();
        prop_assert_eq!(lr_states, rl_states_swapped);
    }

    /// A two-element Product reaches the same states as the binary
    /// Compose (modulo tuple vs vector shape).
    #[test]
    fn product_matches_compose(m1 in 2u8..6, m2 in 2u8..6) {
        let (l, r) = cells(m1, m2);
        let compose = Compose::new(l.clone(), r.clone()).unwrap();
        let product = Product::new(vec![l, r]).unwrap();
        let via_compose: BTreeSet<Vec<u8>> = Explorer::new()
            .explore(&compose)
            .states()
            .iter()
            .map(|(a, b)| vec![*a, *b])
            .collect();
        let via_product: BTreeSet<Vec<u8>> = Explorer::new()
            .explore(&product)
            .states()
            .iter()
            .cloned()
            .collect();
        prop_assert_eq!(via_compose, via_product);
        // Signatures agree action-for-action.
        for a in compose.signature().actions() {
            prop_assert_eq!(
                compose.signature().kind_of(a),
                product.signature().kind_of(a)
            );
        }
    }

    /// Hiding never changes the reachable state space, only the
    /// classification of actions.
    #[test]
    fn hiding_preserves_reachability(m1 in 2u8..6, m2 in 2u8..6) {
        let (l, r) = cells(m1, m2);
        let open = Compose::new(l, r).unwrap();
        let before = reachable_pairs(&open);
        let hidden = Hide::new(open, &["ding"]);
        prop_assert_eq!(
            hidden.signature().kind_of(&"ding"),
            Some(ActionKind::Internal)
        );
        let after = reachable_pairs(&hidden);
        prop_assert_eq!(before, after);
    }

    /// Matched input/output pairs become outputs of the composition, and
    /// every composite step drives both participants.
    #[test]
    fn synchronization_is_total(m1 in 2u8..6, m2 in 2u8..6) {
        let (l, r) = cells(m1, m2);
        let c = Compose::new(l, r).unwrap();
        prop_assert_eq!(c.signature().kind_of(&"ding"), Some(ActionKind::Output));
        prop_assert_eq!(c.signature().kind_of(&"dong"), Some(ActionKind::Output));
        prop_assert_eq!(c.signature().inputs().count(), 0);
        // From any reachable state, a ding resets R and steps L.
        let report = Explorer::new().explore(&c);
        for s in report.states() {
            for next in c.post(s, &"ding") {
                prop_assert_eq!(next.0, (s.0 + 1) % m1);
                prop_assert_eq!(next.1, 0);
            }
        }
    }
}
