//! The core [`Ioa`] trait.

use std::fmt;
use std::hash::Hash;

use crate::{ClassId, Partition, Signature};

/// An I/O automaton: action signature, start states, nondeterministic steps
/// and a partition of the locally controlled actions.
///
/// Implementations provide [`signature`](Ioa::signature),
/// [`partition`](Ioa::partition), [`initial_states`](Ioa::initial_states)
/// and [`post`](Ioa::post); the remaining methods are derived.
///
/// The action alphabet is required to be finite (enumerated by the
/// signature) so that enabledness and composition are decidable. States may
/// be unbounded; exploration tools take explicit limits.
pub trait Ioa {
    /// The state type.
    type State: Clone + Eq + Hash + fmt::Debug;
    /// The action type.
    type Action: Clone + Eq + Hash + fmt::Debug;

    /// The action signature.
    fn signature(&self) -> &Signature<Self::Action>;

    /// The partition of locally controlled actions into classes.
    fn partition(&self) -> &Partition<Self::Action>;

    /// The start states (`start(A)`); must be nonempty.
    fn initial_states(&self) -> Vec<Self::State>;

    /// All states `s` such that `(s', a, s)` is a step. Empty when `a` is
    /// not enabled in `s'`.
    fn post(&self, s: &Self::State, a: &Self::Action) -> Vec<Self::State>;

    /// Returns `true` if `(s', a, s)` is a step of the automaton.
    fn has_step(&self, s_pre: &Self::State, a: &Self::Action, s_post: &Self::State) -> bool {
        self.post(s_pre, a).contains(s_post)
    }

    /// Returns `true` if some step with action `a` leaves `s`.
    fn is_enabled(&self, s: &Self::State, a: &Self::Action) -> bool {
        !self.post(s, a).is_empty()
    }

    /// All actions enabled in `s`, in signature order.
    fn enabled_actions(&self, s: &Self::State) -> Vec<Self::Action> {
        self.signature()
            .actions()
            .filter(|a| self.is_enabled(s, a))
            .cloned()
            .collect()
    }

    /// All `(action, post-state)` pairs leaving `s`.
    fn steps_from(&self, s: &Self::State) -> Vec<(Self::Action, Self::State)> {
        let mut out = Vec::new();
        for a in self.signature().actions() {
            for s2 in self.post(s, a) {
                out.push((a.clone(), s2));
            }
        }
        out
    }

    /// Returns `true` if `s ∈ enabled(A, C)`: some action of class `C` is
    /// enabled in `s`.
    fn class_enabled(&self, s: &Self::State, class: ClassId) -> bool {
        self.partition()
            .actions_of(class)
            .iter()
            .any(|a| self.is_enabled(s, a))
    }

    /// Returns `true` if `s ∈ disabled(A, C)`: no action of class `C` is
    /// enabled in `s`.
    fn class_disabled(&self, s: &Self::State, class: ClassId) -> bool {
        !self.class_enabled(s, class)
    }
}

// An automaton reference is itself an automaton; this lets combinators and
// checkers borrow rather than consume.
impl<T: Ioa + ?Sized> Ioa for &T {
    type State = T::State;
    type Action = T::Action;

    fn signature(&self) -> &Signature<Self::Action> {
        (**self).signature()
    }
    fn partition(&self) -> &Partition<Self::Action> {
        (**self).partition()
    }
    fn initial_states(&self) -> Vec<Self::State> {
        (**self).initial_states()
    }
    fn post(&self, s: &Self::State, a: &Self::Action) -> Vec<Self::State> {
        (**self).post(s, a)
    }
}
