//! Homogeneous n-ary parallel composition.

use crate::compose::{compose_signatures, CompositionError};
use crate::{Ioa, Partition, Signature};

/// The parallel composition of `n` automata of the same concrete type.
///
/// This is the composition used for parameterized families like the
/// signal-relay line `P_0 ‖ P_1 ‖ … ‖ P_n` of Section 6, where every
/// component is an instance of the same process automaton. Semantics are
/// identical to iterated [`Compose`](crate::Compose) but with `Vec`-shaped
/// states instead of nested pairs.
///
/// Strong compatibility across *all* components is checked at construction.
#[derive(Debug)]
pub struct Product<P: Ioa> {
    components: Vec<P>,
    sig: Signature<P::Action>,
    part: Partition<P::Action>,
}

impl<P: Ioa> Product<P> {
    /// Composes the given components.
    ///
    /// # Errors
    ///
    /// Returns a [`CompositionError`] if any pair of components is not
    /// strongly compatible.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn new(components: Vec<P>) -> Result<Product<P>, CompositionError> {
        assert!(
            !components.is_empty(),
            "a product needs at least one component"
        );
        let sigs: Vec<&Signature<P::Action>> = components.iter().map(|c| c.signature()).collect();
        let sig = compose_signatures(&sigs)?;
        let mut part = components[0].partition().clone();
        for c in &components[1..] {
            part = part.union(c.partition());
        }
        Ok(Product {
            components,
            sig,
            part,
        })
    }

    /// Returns the components.
    pub fn components(&self) -> &[P] {
        &self.components
    }

    /// Returns the number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Returns `false`; products are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl<P: Ioa> Ioa for Product<P> {
    type State = Vec<P::State>;
    type Action = P::Action;

    fn signature(&self) -> &Signature<Self::Action> {
        &self.sig
    }

    fn partition(&self) -> &Partition<Self::Action> {
        &self.part
    }

    fn initial_states(&self) -> Vec<Self::State> {
        // Cartesian product of component start-state sets.
        let mut states: Vec<Vec<P::State>> = vec![vec![]];
        for c in &self.components {
            let inits = c.initial_states();
            states = states
                .into_iter()
                .flat_map(|prefix| {
                    inits.iter().cloned().map(move |s| {
                        let mut v = prefix.clone();
                        v.push(s);
                        v
                    })
                })
                .collect();
        }
        states
    }

    fn post(&self, s: &Self::State, a: &Self::Action) -> Vec<Self::State> {
        assert_eq!(
            s.len(),
            self.components.len(),
            "product state arity mismatch"
        );
        if !self.sig.contains(a) {
            return vec![];
        }
        // For each component, the list of its possible next local states.
        let mut choices: Vec<Vec<P::State>> = Vec::with_capacity(self.components.len());
        for (c, local) in self.components.iter().zip(s.iter()) {
            if c.signature().contains(a) {
                let posts = c.post(local, a);
                if posts.is_empty() {
                    return vec![]; // a participant is not enabled: no composite step
                }
                choices.push(posts);
            } else {
                choices.push(vec![local.clone()]);
            }
        }
        // Cartesian product of choices.
        let mut out: Vec<Vec<P::State>> = vec![vec![]];
        for options in choices {
            out = out
                .into_iter()
                .flat_map(|prefix| {
                    options.iter().cloned().map(move |o| {
                        let mut v = prefix.clone();
                        v.push(o);
                        v
                    })
                })
                .collect();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relay cell `i`: input Signal(i-1) sets flag; output Signal(i) clears
    /// it. Cell 0 starts flagged and only outputs Signal(0).
    #[derive(Debug)]
    struct Cell {
        index: usize,
        sig: Signature<usize>,
        part: Partition<usize>,
    }

    impl Cell {
        fn new(index: usize) -> Cell {
            let (inputs, outputs) = if index == 0 {
                (vec![], vec![0])
            } else {
                (vec![index - 1], vec![index])
            };
            let sig = Signature::new(inputs, outputs, vec![]).unwrap();
            let part = Partition::singletons(&sig).unwrap();
            Cell { index, sig, part }
        }
    }

    impl Ioa for Cell {
        type State = bool;
        type Action = usize;
        fn signature(&self) -> &Signature<usize> {
            &self.sig
        }
        fn partition(&self) -> &Partition<usize> {
            &self.part
        }
        fn initial_states(&self) -> Vec<bool> {
            vec![self.index == 0]
        }
        fn post(&self, s: &bool, a: &usize) -> Vec<bool> {
            if self.index > 0 && *a == self.index - 1 {
                vec![true]
            } else if *a == self.index && *s {
                vec![false]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn relay_line_propagates() {
        let line = Product::new((0..3).map(Cell::new).collect()).unwrap();
        assert_eq!(line.len(), 3);
        let s0 = line.initial_states().pop().unwrap();
        assert_eq!(s0, vec![true, false, false]);
        // Signal 0 fires: cell 0 clears, cell 1 sets.
        let s1 = line.post(&s0, &0);
        assert_eq!(s1, vec![vec![false, true, false]]);
        // Signal 1 is not yet enabled from s0.
        assert!(line.post(&s0, &1).is_empty());
        let s2 = line.post(&s1[0], &1);
        assert_eq!(s2, vec![vec![false, false, true]]);
        let s3 = line.post(&s2[0], &2);
        assert_eq!(s3, vec![vec![false, false, false]]);
        // Terminal state: nothing enabled.
        assert!(line.enabled_actions(&s3[0]).is_empty());
    }

    #[test]
    fn composite_signature_and_partition() {
        let line = Product::new((0..4).map(Cell::new).collect()).unwrap();
        // All signals are matched pairs → outputs; no open inputs.
        assert_eq!(line.signature().inputs().count(), 0);
        assert_eq!(line.signature().outputs().count(), 4);
        assert_eq!(line.partition().len(), 4);
        for i in 0..4 {
            assert!(line.partition().class_of(&i).is_some());
        }
    }

    #[test]
    fn incompatible_components_rejected() {
        // Two copies of cell 0 share the output 0.
        let err = Product::new(vec![Cell::new(0), Cell::new(0)]);
        assert!(matches!(err, Err(CompositionError::SharedOutput(_))));
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_product_panics() {
        let _ = Product::<Cell>::new(vec![]);
    }
}
