//! The hiding operator.

use crate::{Ioa, Partition, Signature};

/// Reclassifies selected output actions of an automaton as internal.
///
/// Hiding changes only the signature (and hence behaviors); states, steps
/// and the partition are untouched. In the paper's resource manager, the
/// clock's `TICK` output is hidden so that `GRANT` is the composite's only
/// external action.
///
/// # Example
///
/// ```
/// use tempo_ioa::{ActionKind, Hide, Ioa, Partition, Signature};
///
/// #[derive(Debug)]
/// struct Two {
///     sig: Signature<&'static str>,
///     part: Partition<&'static str>,
/// }
/// impl Ioa for Two {
///     type State = ();
///     type Action = &'static str;
///     fn signature(&self) -> &Signature<&'static str> { &self.sig }
///     fn partition(&self) -> &Partition<&'static str> { &self.part }
///     fn initial_states(&self) -> Vec<()> { vec![()] }
///     fn post(&self, _: &(), _: &&'static str) -> Vec<()> { vec![()] }
/// }
///
/// let sig = Signature::new(vec![], vec!["a", "b"], vec![])?;
/// let part = Partition::singletons(&sig)?;
/// let hidden = Hide::new(Two { sig, part }, &["a"]);
/// assert_eq!(hidden.signature().kind_of(&"a"), Some(ActionKind::Internal));
/// assert_eq!(hidden.signature().kind_of(&"b"), Some(ActionKind::Output));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Hide<M: Ioa> {
    inner: M,
    sig: Signature<M::Action>,
}

impl<M: Ioa> Hide<M> {
    /// Hides the given output actions of `inner`.
    ///
    /// Actions that are not outputs of `inner` are silently ignored, as in
    /// the standard definition of the operator.
    pub fn new(inner: M, hidden: &[M::Action]) -> Hide<M> {
        let sig = inner.signature().hide(hidden);
        Hide { inner, sig }
    }

    /// Returns the underlying automaton.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: Ioa> Ioa for Hide<M> {
    type State = M::State;
    type Action = M::Action;

    fn signature(&self) -> &Signature<Self::Action> {
        &self.sig
    }

    fn partition(&self) -> &Partition<Self::Action> {
        self.inner.partition()
    }

    fn initial_states(&self) -> Vec<Self::State> {
        self.inner.initial_states()
    }

    fn post(&self, s: &Self::State, a: &Self::Action) -> Vec<Self::State> {
        self.inner.post(s, a)
    }
}
