//! Binary parallel composition of I/O automata.

use std::fmt;

use crate::{Ioa, Partition, Signature, SignatureError};

/// The parallel composition of two I/O automata sharing an action type.
///
/// Components synchronize on shared actions: a shared action occurs in the
/// composite exactly when it occurs in every component whose signature
/// contains it. Strong compatibility (Section 2.1) is enforced at
/// construction: no action is an output of both components, and internal
/// actions are not shared.
///
/// The composite signature classifies an action as output if it is an
/// output of either component (an input matched with an output becomes an
/// output of the composition), and as input if it is an input of some
/// component and an output of neither. The composite partition is the
/// disjoint union of the component partitions.
///
/// # Example
///
/// See `tempo-systems`' resource manager, which composes a clock and a
/// manager over a shared `TICK` action.
#[derive(Debug)]
pub struct Compose<L, R>
where
    L: Ioa,
    R: Ioa<Action = L::Action>,
{
    left: L,
    right: R,
    sig: Signature<L::Action>,
    part: Partition<L::Action>,
}

/// Error returned when two automata are not strongly compatible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompositionError {
    /// An action is an output of both components.
    SharedOutput(String),
    /// An internal action of one component appears in the other's
    /// signature.
    SharedInternal(String),
    /// The combined signature is ill-formed.
    Signature(SignatureError),
}

impl fmt::Display for CompositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompositionError::SharedOutput(a) => {
                write!(f, "action {a} is an output of more than one component")
            }
            CompositionError::SharedInternal(a) => {
                write!(f, "internal action {a} is shared with another component")
            }
            CompositionError::Signature(e) => write!(f, "ill-formed composite signature: {e}"),
        }
    }
}

impl std::error::Error for CompositionError {}

impl From<SignatureError> for CompositionError {
    fn from(e: SignatureError) -> CompositionError {
        CompositionError::Signature(e)
    }
}

/// Computes the composite signature of a list of component signatures.
///
/// # Errors
///
/// Returns a [`CompositionError`] if the components are not strongly
/// compatible.
pub(crate) fn compose_signatures<A: Clone + Eq + std::hash::Hash + fmt::Debug>(
    sigs: &[&Signature<A>],
) -> Result<Signature<A>, CompositionError> {
    let mut outputs: Vec<A> = Vec::new();
    let mut internals: Vec<A> = Vec::new();
    let mut inputs: Vec<A> = Vec::new();

    for (i, sig) in sigs.iter().enumerate() {
        for a in sig.outputs() {
            if outputs.contains(a) {
                return Err(CompositionError::SharedOutput(format!("{a:?}")));
            }
            outputs.push(a.clone());
        }
        for a in sig.internals() {
            for (j, other) in sigs.iter().enumerate() {
                if i != j && other.contains(a) {
                    return Err(CompositionError::SharedInternal(format!("{a:?}")));
                }
            }
            internals.push(a.clone());
        }
    }
    for sig in sigs {
        for a in sig.inputs() {
            if !outputs.contains(a) && !inputs.contains(a) {
                inputs.push(a.clone());
            }
        }
    }
    Ok(Signature::new(inputs, outputs, internals)?)
}

impl<L, R> Compose<L, R>
where
    L: Ioa,
    R: Ioa<Action = L::Action>,
{
    /// Composes `left` and `right`, checking strong compatibility.
    ///
    /// # Errors
    ///
    /// Returns a [`CompositionError`] if the automata share an output, or
    /// an internal action of one appears in the other's signature.
    pub fn new(left: L, right: R) -> Result<Compose<L, R>, CompositionError> {
        let sig = compose_signatures(&[left.signature(), right.signature()])?;
        let part = left.partition().union(right.partition());
        Ok(Compose {
            left,
            right,
            sig,
            part,
        })
    }

    /// Returns the left component.
    pub fn left(&self) -> &L {
        &self.left
    }

    /// Returns the right component.
    pub fn right(&self) -> &R {
        &self.right
    }
}

impl<L, R> Ioa for Compose<L, R>
where
    L: Ioa,
    R: Ioa<Action = L::Action>,
{
    type State = (L::State, R::State);
    type Action = L::Action;

    fn signature(&self) -> &Signature<Self::Action> {
        &self.sig
    }

    fn partition(&self) -> &Partition<Self::Action> {
        &self.part
    }

    fn initial_states(&self) -> Vec<Self::State> {
        let rights = self.right.initial_states();
        self.left
            .initial_states()
            .into_iter()
            .flat_map(|l| rights.iter().cloned().map(move |r| (l.clone(), r)))
            .collect()
    }

    fn post(&self, s: &Self::State, a: &Self::Action) -> Vec<Self::State> {
        let in_left = self.left.signature().contains(a);
        let in_right = self.right.signature().contains(a);
        if !in_left && !in_right {
            return vec![];
        }
        let lefts: Vec<L::State> = if in_left {
            self.left.post(&s.0, a)
        } else {
            vec![s.0.clone()]
        };
        let rights: Vec<R::State> = if in_right {
            self.right.post(&s.1, a)
        } else {
            vec![s.1.clone()]
        };
        if (in_left && lefts.is_empty()) || (in_right && rights.is_empty()) {
            return vec![];
        }
        lefts
            .into_iter()
            .flat_map(|l| rights.iter().cloned().map(move |r| (l.clone(), r)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ActionKind;

    /// Emits `ping` when off, turning on; receives `pong` turning off.
    #[derive(Debug)]
    struct Pinger {
        sig: Signature<&'static str>,
        part: Partition<&'static str>,
    }

    impl Pinger {
        fn new() -> Pinger {
            let sig = Signature::new(vec!["pong"], vec!["ping"], vec![]).unwrap();
            let part = Partition::singletons(&sig).unwrap();
            Pinger { sig, part }
        }
    }

    impl Ioa for Pinger {
        type State = bool; // waiting-for-pong?
        type Action = &'static str;
        fn signature(&self) -> &Signature<&'static str> {
            &self.sig
        }
        fn partition(&self) -> &Partition<&'static str> {
            &self.part
        }
        fn initial_states(&self) -> Vec<bool> {
            vec![false]
        }
        fn post(&self, s: &bool, a: &&'static str) -> Vec<bool> {
            match (*a, *s) {
                ("ping", false) => vec![true],
                ("pong", _) => vec![false], // input: always enabled
                _ => vec![],
            }
        }
    }

    /// Receives `ping`, then emits `pong`.
    #[derive(Debug)]
    struct Ponger {
        sig: Signature<&'static str>,
        part: Partition<&'static str>,
    }

    impl Ponger {
        fn new() -> Ponger {
            let sig = Signature::new(vec!["ping"], vec!["pong"], vec![]).unwrap();
            let part = Partition::singletons(&sig).unwrap();
            Ponger { sig, part }
        }
    }

    impl Ioa for Ponger {
        type State = bool; // owes-a-pong?
        type Action = &'static str;
        fn signature(&self) -> &Signature<&'static str> {
            &self.sig
        }
        fn partition(&self) -> &Partition<&'static str> {
            &self.part
        }
        fn initial_states(&self) -> Vec<bool> {
            vec![false]
        }
        fn post(&self, s: &bool, a: &&'static str) -> Vec<bool> {
            match (*a, *s) {
                ("ping", _) => vec![true],
                ("pong", true) => vec![false],
                _ => vec![],
            }
        }
    }

    #[test]
    fn composite_signature() {
        let c = Compose::new(Pinger::new(), Ponger::new()).unwrap();
        // Both actions are matched input/output pairs, so both are outputs.
        assert_eq!(c.signature().kind_of(&"ping"), Some(ActionKind::Output));
        assert_eq!(c.signature().kind_of(&"pong"), Some(ActionKind::Output));
        assert_eq!(c.signature().inputs().count(), 0);
        assert_eq!(c.partition().len(), 2);
    }

    #[test]
    fn synchronization() {
        let c = Compose::new(Pinger::new(), Ponger::new()).unwrap();
        let s0 = (false, false);
        // ping fires in both components simultaneously.
        assert_eq!(c.post(&s0, &"ping"), vec![(true, true)]);
        // pong is not enabled yet (ponger owes nothing).
        assert!(c.post(&s0, &"pong").is_empty());
        let s1 = (true, true);
        assert_eq!(c.post(&s1, &"pong"), vec![(false, false)]);
        // ping disabled while pinger waits.
        assert!(c.post(&s1, &"ping").is_empty());
        assert_eq!(c.initial_states(), vec![(false, false)]);
    }

    #[test]
    fn alternation_execution() {
        let c = Compose::new(Pinger::new(), Ponger::new()).unwrap();
        let mut e = crate::Execution::new((false, false));
        e.push("ping", (true, true));
        e.push("pong", (false, false));
        e.push("ping", (true, true));
        assert!(e.validate(&c).is_ok());
    }

    #[test]
    fn shared_output_rejected() {
        let err = Compose::new(Pinger::new(), Pinger::new());
        assert!(matches!(err, Err(CompositionError::SharedOutput(_))));
    }

    #[test]
    fn shared_internal_rejected() {
        #[derive(Debug)]
        struct WithInternal {
            sig: Signature<&'static str>,
            part: Partition<&'static str>,
        }
        impl Ioa for WithInternal {
            type State = ();
            type Action = &'static str;
            fn signature(&self) -> &Signature<&'static str> {
                &self.sig
            }
            fn partition(&self) -> &Partition<&'static str> {
                &self.part
            }
            fn initial_states(&self) -> Vec<()> {
                vec![()]
            }
            fn post(&self, _: &(), _: &&'static str) -> Vec<()> {
                vec![()]
            }
        }
        let sig = Signature::new(vec![], vec![], vec!["ping"]).unwrap();
        let part = Partition::singletons(&sig).unwrap();
        let w = WithInternal { sig, part };
        let err = Compose::new(w, Ponger::new());
        assert!(matches!(err, Err(CompositionError::SharedInternal(_))));
    }
}
