//! An untimed **I/O automaton** kernel, following the Lynch–Tuttle model as
//! summarized in Section 2.1 of Lynch & Attiya, *Using Mappings to Prove
//! Timing Properties* (PODC 1990).
//!
//! An I/O automaton has a set of actions classified as input, output or
//! internal ([`Signature`]), states with distinguished start states,
//! (possibly nondeterministic) steps, and a [`Partition`] of the locally
//! controlled actions into classes, each representing a sequential "process"
//! within the automaton. This crate provides:
//!
//! * the [`Ioa`] trait — the interface every concrete automaton implements;
//! * [`Compose`] (binary) and [`Product`] (homogeneous n-ary) parallel
//!   composition with strong-compatibility checks;
//! * [`Hide`] and [`Rename`] operators;
//! * [`Execution`] fragments with schedule/behavior projections;
//! * an explicit-state reachability [`Explorer`] and invariant checking.
//!
//! The timed layer (`tempo-core`) builds boundmaps, timing conditions, and
//! the `time(A, U)` construction on top of this kernel.
//!
//! # Example
//!
//! A one-state clock that can always tick:
//!
//! ```
//! use tempo_ioa::{Ioa, Partition, Signature};
//!
//! #[derive(Debug)]
//! struct Clock {
//!     sig: Signature<&'static str>,
//!     part: Partition<&'static str>,
//! }
//!
//! impl Clock {
//!     fn new() -> Clock {
//!         let sig = Signature::new(vec![], vec!["TICK"], vec![]).unwrap();
//!         let part = Partition::singletons(&sig).unwrap();
//!         Clock { sig, part }
//!     }
//! }
//!
//! impl Ioa for Clock {
//!     type State = ();
//!     type Action = &'static str;
//!     fn signature(&self) -> &Signature<&'static str> { &self.sig }
//!     fn partition(&self) -> &Partition<&'static str> { &self.part }
//!     fn initial_states(&self) -> Vec<()> { vec![()] }
//!     fn post(&self, _s: &(), a: &&'static str) -> Vec<()> {
//!         if *a == "TICK" { vec![()] } else { vec![] }
//!     }
//! }
//!
//! let clock = Clock::new();
//! assert!(clock.is_enabled(&(), &"TICK"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod automaton;
mod compose;
mod dot;
mod execution;
mod explore;
mod hide;
mod invariant;
mod partition;
mod product;
mod rename;
mod signature;

pub use action::ActionKind;
pub use automaton::Ioa;
pub use compose::{Compose, CompositionError};
pub use execution::{Execution, ExecutionError};
pub use explore::{Explorer, ReachReport};
pub use hide::Hide;
pub use invariant::{check_input_enabled, check_invariant, InvariantOutcome};
pub use partition::{ClassId, Partition, PartitionError};
pub use product::Product;
pub use rename::{Relabel, Rename};
pub use signature::{Signature, SignatureError};
