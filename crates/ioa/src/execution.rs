//! Execution fragments, executions, schedules and behaviors.

use std::fmt;

use crate::{ActionKind, Ioa};

/// An execution fragment `s0, π1, s1, …, πn, sn` of an I/O automaton.
///
/// The fragment alternates states and actions and ends with a state. An
/// *execution* is a fragment whose first state is a start state; use
/// [`Execution::validate`] to check a fragment against an automaton.
///
/// # Example
///
/// ```
/// use tempo_ioa::Execution;
///
/// let mut e: Execution<u32, &str> = Execution::new(0);
/// e.push("inc", 1);
/// e.push("inc", 2);
/// assert_eq!(e.schedule(), vec!["inc", "inc"]);
/// assert_eq!(e.last_state(), &2);
/// assert_eq!(e.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Execution<S, A> {
    start: S,
    steps: Vec<(A, S)>,
}

/// Error returned by [`Execution::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecutionError {
    /// The first state is not a start state of the automaton.
    NotAStartState(String),
    /// Step `index` is not a step of the automaton.
    InvalidStep {
        /// Position of the offending step (0-based).
        index: usize,
        /// Debug rendering of the offending triple.
        step: String,
    },
}

impl fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionError::NotAStartState(s) => write!(f, "{s} is not a start state"),
            ExecutionError::InvalidStep { index, step } => {
                write!(f, "step {index} is not an automaton step: {step}")
            }
        }
    }
}

impl std::error::Error for ExecutionError {}

impl<S: Clone + fmt::Debug, A: Clone + fmt::Debug> Execution<S, A> {
    /// Creates a zero-step fragment at `start`.
    pub fn new(start: S) -> Execution<S, A> {
        Execution {
            start,
            steps: Vec::new(),
        }
    }

    /// Appends a step `(last_state, action, state)`.
    pub fn push(&mut self, action: A, state: S) {
        self.steps.push((action, state));
    }

    /// Returns the first state.
    pub fn first_state(&self) -> &S {
        &self.start
    }

    /// Returns the final state.
    pub fn last_state(&self) -> &S {
        self.steps.last().map(|(_, s)| s).unwrap_or(&self.start)
    }

    /// Returns the number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if the fragment has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterates over the `i`-th step triples `(s_{i-1}, π_i, s_i)`.
    pub fn step_triples(&self) -> impl Iterator<Item = (&S, &A, &S)> {
        let states = std::iter::once(&self.start).chain(self.steps.iter().map(|(_, s)| s));
        states
            .zip(self.steps.iter())
            .map(|(pre, (a, post))| (pre, a, post))
    }

    /// Iterates over the visited states, starting with the first.
    pub fn states(&self) -> impl Iterator<Item = &S> {
        std::iter::once(&self.start).chain(self.steps.iter().map(|(_, s)| s))
    }

    /// The schedule: the sequence of actions.
    pub fn schedule(&self) -> Vec<A> {
        self.steps.iter().map(|(a, _)| a.clone()).collect()
    }

    /// The behavior: the subsequence of external actions, classified by the
    /// automaton `aut`.
    pub fn behavior<M>(&self, aut: &M) -> Vec<A>
    where
        M: Ioa<Action = A>,
        A: Eq + std::hash::Hash,
    {
        self.steps
            .iter()
            .filter(|(a, _)| {
                aut.signature()
                    .kind_of(a)
                    .is_some_and(ActionKind::is_external)
            })
            .map(|(a, _)| a.clone())
            .collect()
    }

    /// Checks that this fragment is an execution of `aut`: the first state
    /// is a start state and every triple is a step.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate<M>(&self, aut: &M) -> Result<(), ExecutionError>
    where
        M: Ioa<State = S, Action = A>,
        S: Eq + std::hash::Hash,
        A: Eq + std::hash::Hash,
    {
        if !aut.initial_states().contains(&self.start) {
            return Err(ExecutionError::NotAStartState(format!("{:?}", self.start)));
        }
        for (index, (pre, a, post)) in self.step_triples().enumerate() {
            if !aut.has_step(pre, a, post) {
                return Err(ExecutionError::InvalidStep {
                    index,
                    step: format!("({pre:?}, {a:?}, {post:?})"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Partition, Signature};

    /// A toy counter: output `inc` always enabled, increments the state.
    #[derive(Debug)]
    struct Counter {
        sig: Signature<&'static str>,
        part: Partition<&'static str>,
    }

    impl Counter {
        fn new() -> Counter {
            let sig = Signature::new(vec!["reset"], vec!["inc"], vec![]).unwrap();
            let part = Partition::singletons(&sig).unwrap();
            Counter { sig, part }
        }
    }

    impl Ioa for Counter {
        type State = u32;
        type Action = &'static str;
        fn signature(&self) -> &Signature<&'static str> {
            &self.sig
        }
        fn partition(&self) -> &Partition<&'static str> {
            &self.part
        }
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn post(&self, s: &u32, a: &&'static str) -> Vec<u32> {
            match *a {
                "inc" => vec![s + 1],
                "reset" => vec![0],
                _ => vec![],
            }
        }
    }

    #[test]
    fn build_and_project() {
        let mut e: Execution<u32, &str> = Execution::new(0);
        assert!(e.is_empty());
        e.push("inc", 1);
        e.push("reset", 0);
        e.push("inc", 1);
        assert_eq!(e.len(), 3);
        assert_eq!(e.first_state(), &0);
        assert_eq!(e.last_state(), &1);
        assert_eq!(e.schedule(), vec!["inc", "reset", "inc"]);
        assert_eq!(e.states().copied().collect::<Vec<_>>(), vec![0, 1, 0, 1]);
        let triples: Vec<_> = e.step_triples().map(|(a, b, c)| (*a, *b, *c)).collect();
        assert_eq!(triples, vec![(0, "inc", 1), (1, "reset", 0), (0, "inc", 1)]);
    }

    #[test]
    fn behavior_filters_internal() {
        let sig = Signature::new(vec![], vec!["out"], vec!["hidden"]).unwrap();
        let part = Partition::singletons(&sig).unwrap();
        #[derive(Debug)]
        struct M {
            sig: Signature<&'static str>,
            part: Partition<&'static str>,
        }
        impl Ioa for M {
            type State = ();
            type Action = &'static str;
            fn signature(&self) -> &Signature<&'static str> {
                &self.sig
            }
            fn partition(&self) -> &Partition<&'static str> {
                &self.part
            }
            fn initial_states(&self) -> Vec<()> {
                vec![()]
            }
            fn post(&self, _: &(), _: &&'static str) -> Vec<()> {
                vec![()]
            }
        }
        let m = M { sig, part };
        let mut e: Execution<(), &str> = Execution::new(());
        e.push("out", ());
        e.push("hidden", ());
        e.push("out", ());
        assert_eq!(e.behavior(&m), vec!["out", "out"]);
    }

    #[test]
    fn validation() {
        let c = Counter::new();
        let mut e: Execution<u32, &str> = Execution::new(0);
        e.push("inc", 1);
        e.push("inc", 2);
        assert!(e.validate(&c).is_ok());

        let bad_start: Execution<u32, &str> = Execution::new(7);
        assert!(matches!(
            bad_start.validate(&c),
            Err(ExecutionError::NotAStartState(_))
        ));

        let mut bad_step: Execution<u32, &str> = Execution::new(0);
        bad_step.push("inc", 5);
        assert!(matches!(
            bad_step.validate(&c),
            Err(ExecutionError::InvalidStep { index: 0, .. })
        ));
    }
}
