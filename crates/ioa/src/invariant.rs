//! Invariant checking over reachable states.

use crate::{Execution, Explorer, Ioa};

/// The outcome of checking a state predicate over reachable states.
#[derive(Debug, Clone)]
pub enum InvariantOutcome<S, A> {
    /// The predicate held in every reachable state visited.
    Holds {
        /// Number of states checked.
        states_checked: usize,
        /// `true` if the exploration was truncated by the state limit (the
        /// verdict is then only valid for the visited prefix).
        truncated: bool,
    },
    /// The predicate failed; a shortest witnessing execution is included.
    Violated {
        /// A shortest execution from a start state to the violating state.
        witness: Execution<S, A>,
    },
}

impl<S, A> InvariantOutcome<S, A> {
    /// Returns `true` if the invariant held on all visited states.
    pub fn holds(&self) -> bool {
        matches!(self, InvariantOutcome::Holds { .. })
    }
}

/// Checks that `pred` holds in every reachable state of `aut` (up to the
/// explorer's state limit), returning a counterexample execution otherwise.
///
/// This is the workhorse behind proofs like Lemma 4.1 (`TIMER ≥ 0`) and
/// Lemma 6.1 (at most one `SIGNAL` flag set) when instantiated on the
/// untimed automaton, and behind predictive-state invariants when
/// instantiated on discretized `time(A, b)` automata.
pub fn check_invariant<M, F>(
    aut: &M,
    explorer: &Explorer,
    pred: F,
) -> InvariantOutcome<M::State, M::Action>
where
    M: Ioa,
    F: Fn(&M::State) -> bool,
{
    let report = explorer.explore(aut);
    for (id, s) in report.states().iter().enumerate() {
        if !pred(s) {
            return InvariantOutcome::Violated {
                witness: report.witness(id),
            };
        }
    }
    InvariantOutcome::Holds {
        states_checked: report.states().len(),
        truncated: report.truncated(),
    }
}

/// Checks input-enabledness: every input action of the signature must be
/// enabled in every reachable state.
///
/// Returns `Ok(states_checked)` or the first violation as
/// `(state, input-action)`.
///
/// # Errors
///
/// Returns the violating `(state, action)` pair.
pub fn check_input_enabled<M: Ioa>(
    aut: &M,
    explorer: &Explorer,
) -> Result<usize, (M::State, M::Action)> {
    let report = explorer.explore(aut);
    let inputs: Vec<M::Action> = aut.signature().inputs().cloned().collect();
    for s in report.states() {
        for a in &inputs {
            if !aut.is_enabled(s, a) {
                return Err((s.clone(), a.clone()));
            }
        }
    }
    Ok(report.states().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Partition, Signature};

    #[derive(Debug)]
    struct Saturating {
        limit: u8,
        input_enabled: bool,
        sig: Signature<&'static str>,
        part: Partition<&'static str>,
    }

    impl Saturating {
        fn new(limit: u8, input_enabled: bool) -> Saturating {
            let sig = Signature::new(vec!["poke"], vec!["inc"], vec![]).unwrap();
            let part = Partition::singletons(&sig).unwrap();
            Saturating {
                limit,
                input_enabled,
                sig,
                part,
            }
        }
    }

    impl Ioa for Saturating {
        type State = u8;
        type Action = &'static str;
        fn signature(&self) -> &Signature<&'static str> {
            &self.sig
        }
        fn partition(&self) -> &Partition<&'static str> {
            &self.part
        }
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn post(&self, s: &u8, a: &&'static str) -> Vec<u8> {
            match *a {
                "inc" if *s < self.limit => vec![s + 1],
                // A (deliberately broken, when configured) input.
                "poke" if self.input_enabled || *s == 0 => vec![*s],
                _ => vec![],
            }
        }
    }

    #[test]
    fn invariant_holds() {
        let aut = Saturating::new(5, true);
        let out = check_invariant(&aut, &Explorer::new(), |s| *s <= 5);
        assert!(out.holds());
        match out {
            InvariantOutcome::Holds {
                states_checked,
                truncated,
            } => {
                assert_eq!(states_checked, 6);
                assert!(!truncated);
            }
            InvariantOutcome::Violated { .. } => unreachable!(),
        }
    }

    #[test]
    fn invariant_violated_with_shortest_witness() {
        let aut = Saturating::new(5, true);
        let out = check_invariant(&aut, &Explorer::new(), |s| *s < 3);
        match out {
            InvariantOutcome::Violated { witness } => {
                assert_eq!(witness.last_state(), &3);
                assert_eq!(witness.len(), 3);
                assert!(witness.validate(&aut).is_ok());
            }
            InvariantOutcome::Holds { .. } => panic!("expected violation"),
        }
    }

    #[test]
    fn input_enabledness() {
        assert_eq!(
            check_input_enabled(&Saturating::new(3, true), &Explorer::new()),
            Ok(4)
        );
        let err = check_input_enabled(&Saturating::new(3, false), &Explorer::new());
        assert_eq!(err, Err((1, "poke")));
    }
}
