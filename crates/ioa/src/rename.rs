//! Action renaming.

use std::fmt;
use std::hash::Hash;

use crate::{Ioa, Partition, Signature};

/// Renames the actions of an automaton through a bijection.
///
/// `forward` maps inner actions to outer actions and `backward` inverts it;
/// the pair must form a bijection on the inner signature (checked at
/// construction for the signature's actions). Renaming is used to
/// instantiate a generic component at different "ports" before composing.
pub struct Rename<M: Ioa, B: Relabel> {
    inner: M,
    backward: B,
    sig: Signature<B::Out>,
    part: Partition<B::Out>,
}

/// A bijective action relabeling used by [`Rename`].
pub trait Relabel {
    /// The inner (original) action type.
    type In;
    /// The outer (renamed) action type.
    type Out;
    /// Maps an inner action outward.
    fn forward(&self, a: &Self::In) -> Self::Out;
    /// Maps an outer action inward, or `None` if it has no preimage.
    fn backward(&self, a: &Self::Out) -> Option<Self::In>;
}

impl<M, B> Rename<M, B>
where
    M: Ioa,
    B: Relabel<In = M::Action>,
    B::Out: Clone + Eq + Hash + fmt::Debug,
{
    /// Renames `inner`'s actions through `relabel`.
    ///
    /// # Panics
    ///
    /// Panics if `relabel` is not injective on the signature, or if
    /// `backward ∘ forward` is not the identity there.
    pub fn new(inner: M, relabel: B) -> Rename<M, B> {
        let sig_in = inner.signature();
        let map = |list: Vec<&M::Action>| -> Vec<B::Out> {
            list.iter().map(|a| relabel.forward(a)).collect()
        };
        let inputs = map(sig_in.inputs().collect());
        let outputs = map(sig_in.outputs().collect());
        let internals = map(sig_in.internals().collect());
        let sig = Signature::new(inputs, outputs, internals).expect("relabeling must be injective");
        for a in sig_in.actions() {
            let round_trip = relabel
                .backward(&relabel.forward(a))
                .expect("backward must invert forward");
            assert!(
                round_trip == *a,
                "backward(forward(a)) must equal a for every signature action"
            );
        }
        let classes = inner
            .partition()
            .ids()
            .map(|id| {
                (
                    inner.partition().class_name(id).to_string(),
                    inner
                        .partition()
                        .actions_of(id)
                        .iter()
                        .map(|a| relabel.forward(a))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let part = Partition::new(&sig, classes).expect("renamed partition stays valid");
        Rename {
            inner,
            backward: relabel,
            sig,
            part,
        }
    }

    /// Returns the underlying automaton.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M, B> fmt::Debug for Rename<M, B>
where
    M: Ioa + fmt::Debug,
    B: Relabel<In = M::Action>,
    B::Out: Clone + Eq + Hash + fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Rename")
            .field("inner", &self.inner)
            .finish()
    }
}

impl<M, B> Ioa for Rename<M, B>
where
    M: Ioa,
    B: Relabel<In = M::Action>,
    B::Out: Clone + Eq + Hash + fmt::Debug,
{
    type State = M::State;
    type Action = B::Out;

    fn signature(&self) -> &Signature<Self::Action> {
        &self.sig
    }

    fn partition(&self) -> &Partition<Self::Action> {
        &self.part
    }

    fn initial_states(&self) -> Vec<Self::State> {
        self.inner.initial_states()
    }

    fn post(&self, s: &Self::State, a: &Self::Action) -> Vec<Self::State> {
        match self.backward.backward(a) {
            Some(inner_a) => self.inner.post(s, &inner_a),
            None => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Counter {
        sig: Signature<&'static str>,
        part: Partition<&'static str>,
    }

    impl Counter {
        fn new() -> Counter {
            let sig = Signature::new(vec![], vec!["inc"], vec![]).unwrap();
            let part = Partition::singletons(&sig).unwrap();
            Counter { sig, part }
        }
    }

    impl Ioa for Counter {
        type State = u8;
        type Action = &'static str;
        fn signature(&self) -> &Signature<&'static str> {
            &self.sig
        }
        fn partition(&self) -> &Partition<&'static str> {
            &self.part
        }
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn post(&self, s: &u8, a: &&'static str) -> Vec<u8> {
            if *a == "inc" && *s < 3 {
                vec![s + 1]
            } else {
                vec![]
            }
        }
    }

    struct Indexed(usize);

    impl Relabel for Indexed {
        type In = &'static str;
        type Out = (usize, &'static str);
        fn forward(&self, a: &&'static str) -> (usize, &'static str) {
            (self.0, a)
        }
        fn backward(&self, a: &(usize, &'static str)) -> Option<&'static str> {
            (a.0 == self.0).then_some(a.1)
        }
    }

    #[test]
    fn renamed_actions_step() {
        let r = Rename::new(Counter::new(), Indexed(7));
        assert!(r.signature().contains(&(7, "inc")));
        assert!(!r.signature().contains(&(8, "inc")));
        assert_eq!(r.post(&0, &(7, "inc")), vec![1]);
        assert!(r.post(&0, &(8, "inc")).is_empty());
        assert_eq!(r.partition().len(), 1);
        assert!(r.partition().class_of(&(7, "inc")).is_some());
    }
}
