//! Action signatures: the input/output/internal classification of a finite
//! action alphabet.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::ActionKind;

/// The action signature of an I/O automaton: finite, disjoint sets of input,
/// output and internal actions.
///
/// # Example
///
/// ```
/// use tempo_ioa::{ActionKind, Signature};
///
/// let sig = Signature::new(vec!["TICK"], vec!["GRANT"], vec!["ELSE"])?;
/// assert_eq!(sig.kind_of(&"GRANT"), Some(ActionKind::Output));
/// assert_eq!(sig.kind_of(&"NOPE"), None);
/// assert_eq!(sig.locally_controlled().count(), 2);
/// # Ok::<(), tempo_ioa::SignatureError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Signature<A> {
    actions: Vec<A>,
    kinds: HashMap<A, ActionKind>,
}

/// Error returned when a signature is ill-formed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignatureError {
    /// The same action appears in more than one classification (or twice in
    /// the same one).
    Duplicate(String),
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::Duplicate(a) => {
                write!(f, "action {a} appears more than once in the signature")
            }
        }
    }
}

impl std::error::Error for SignatureError {}

impl<A: Clone + Eq + Hash + fmt::Debug> Signature<A> {
    /// Creates a signature from disjoint input, output and internal action
    /// lists.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::Duplicate`] if any action is listed twice.
    pub fn new(
        inputs: Vec<A>,
        outputs: Vec<A>,
        internals: Vec<A>,
    ) -> Result<Signature<A>, SignatureError> {
        let mut actions = Vec::new();
        let mut kinds = HashMap::new();
        let classified = [
            (inputs, ActionKind::Input),
            (outputs, ActionKind::Output),
            (internals, ActionKind::Internal),
        ];
        for (list, kind) in classified {
            for a in list {
                if kinds.insert(a.clone(), kind).is_some() {
                    return Err(SignatureError::Duplicate(format!("{a:?}")));
                }
                actions.push(a);
            }
        }
        Ok(Signature { actions, kinds })
    }

    /// Returns the classification of `a`, or `None` if `a` is not in the
    /// signature.
    pub fn kind_of(&self, a: &A) -> Option<ActionKind> {
        self.kinds.get(a).copied()
    }

    /// Returns `true` if `a` belongs to the signature.
    pub fn contains(&self, a: &A) -> bool {
        self.kinds.contains_key(a)
    }

    /// Iterates over all actions, in declaration order.
    pub fn actions(&self) -> impl Iterator<Item = &A> {
        self.actions.iter()
    }

    /// Returns the number of actions in the signature.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` if the signature has no actions.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Iterates over actions of a given kind.
    pub fn of_kind(&self, kind: ActionKind) -> impl Iterator<Item = &A> {
        self.actions.iter().filter(move |a| self.kinds[*a] == kind)
    }

    /// Iterates over input actions.
    pub fn inputs(&self) -> impl Iterator<Item = &A> {
        self.of_kind(ActionKind::Input)
    }

    /// Iterates over output actions.
    pub fn outputs(&self) -> impl Iterator<Item = &A> {
        self.of_kind(ActionKind::Output)
    }

    /// Iterates over internal actions.
    pub fn internals(&self) -> impl Iterator<Item = &A> {
        self.of_kind(ActionKind::Internal)
    }

    /// Iterates over locally controlled (output and internal) actions.
    pub fn locally_controlled(&self) -> impl Iterator<Item = &A> {
        self.actions
            .iter()
            .filter(move |a| self.kinds[*a].is_locally_controlled())
    }

    /// Iterates over external (input and output) actions.
    pub fn external(&self) -> impl Iterator<Item = &A> {
        self.actions
            .iter()
            .filter(move |a| self.kinds[*a].is_external())
    }

    /// Returns a copy of this signature with the given output actions
    /// reclassified as internal (the *hiding* operator of Section 2.1).
    ///
    /// Actions in `hidden` that are not outputs are ignored.
    pub fn hide(&self, hidden: &[A]) -> Signature<A> {
        let mut out = self.clone();
        for a in hidden {
            if out.kinds.get(a) == Some(&ActionKind::Output) {
                out.kinds.insert(a.clone(), ActionKind::Internal);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signature<&'static str> {
        Signature::new(vec!["in1", "in2"], vec!["out1"], vec!["int1"]).unwrap()
    }

    #[test]
    fn classification() {
        let s = sig();
        assert_eq!(s.kind_of(&"in1"), Some(ActionKind::Input));
        assert_eq!(s.kind_of(&"out1"), Some(ActionKind::Output));
        assert_eq!(s.kind_of(&"int1"), Some(ActionKind::Internal));
        assert_eq!(s.kind_of(&"zzz"), None);
        assert!(s.contains(&"in2"));
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }

    #[test]
    fn iterators() {
        let s = sig();
        assert_eq!(s.inputs().count(), 2);
        assert_eq!(s.outputs().count(), 1);
        assert_eq!(s.internals().count(), 1);
        assert_eq!(s.locally_controlled().count(), 2);
        assert_eq!(s.external().count(), 3);
        assert_eq!(s.actions().count(), 4);
    }

    #[test]
    fn duplicates_rejected() {
        assert!(Signature::new(vec!["a"], vec!["a"], vec![]).is_err());
        assert!(Signature::new(vec!["a", "a"], vec![], vec![]).is_err());
        assert!(Signature::new(vec![], vec!["b"], vec!["b"]).is_err());
    }

    #[test]
    fn hiding() {
        let s = sig().hide(&["out1", "in1"]);
        assert_eq!(s.kind_of(&"out1"), Some(ActionKind::Internal));
        // Inputs are untouched by hiding.
        assert_eq!(s.kind_of(&"in1"), Some(ActionKind::Input));
        assert_eq!(s.outputs().count(), 0);
        assert_eq!(s.internals().count(), 2);
    }
}
