//! Explicit-state reachability exploration.

use std::collections::{HashMap, VecDeque};

use crate::{Execution, Ioa};

/// A bounded breadth-first reachability explorer.
///
/// # Example
///
/// ```
/// # use tempo_ioa::{Explorer, Ioa, Partition, Signature};
/// # #[derive(Debug)]
/// # struct Mod4 { sig: Signature<&'static str>, part: Partition<&'static str> }
/// # impl Ioa for Mod4 {
/// #     type State = u8;
/// #     type Action = &'static str;
/// #     fn signature(&self) -> &Signature<&'static str> { &self.sig }
/// #     fn partition(&self) -> &Partition<&'static str> { &self.part }
/// #     fn initial_states(&self) -> Vec<u8> { vec![0] }
/// #     fn post(&self, s: &u8, a: &&'static str) -> Vec<u8> {
/// #         if *a == "inc" { vec![(s + 1) % 4] } else { vec![] }
/// #     }
/// # }
/// # let sig = Signature::new(vec![], vec!["inc"], vec![]).unwrap();
/// # let part = Partition::singletons(&sig).unwrap();
/// let report = Explorer::new().explore(&Mod4 { sig, part });
/// assert_eq!(report.states().len(), 4);
/// assert!(!report.truncated());
/// ```
#[derive(Debug, Clone)]
pub struct Explorer {
    max_states: usize,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer::new()
    }
}

impl Explorer {
    /// Creates an explorer with the default state limit (1,000,000).
    pub fn new() -> Explorer {
        Explorer {
            max_states: 1_000_000,
        }
    }

    /// Sets the maximum number of distinct states to visit.
    pub fn with_max_states(mut self, max_states: usize) -> Explorer {
        self.max_states = max_states;
        self
    }

    /// Explores the reachable states of `aut` breadth-first.
    pub fn explore<M: Ioa>(&self, aut: &M) -> ReachReport<M::State, M::Action> {
        let mut states: Vec<M::State> = Vec::new();
        let mut index: HashMap<M::State, usize> = HashMap::new();
        let mut parent: Vec<Option<(usize, M::Action)>> = Vec::new();
        let mut steps: Vec<(usize, M::Action, usize)> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut truncated = false;

        for s in aut.initial_states() {
            if index.contains_key(&s) {
                continue;
            }
            let id = states.len();
            index.insert(s.clone(), id);
            states.push(s);
            parent.push(None);
            queue.push_back(id);
        }

        while let Some(id) = queue.pop_front() {
            let s = states[id].clone();
            for (a, s2) in aut.steps_from(&s) {
                let id2 = match index.get(&s2) {
                    Some(&known) => known,
                    None => {
                        if states.len() >= self.max_states {
                            truncated = true;
                            continue;
                        }
                        let fresh = states.len();
                        index.insert(s2.clone(), fresh);
                        states.push(s2);
                        parent.push(Some((id, a.clone())));
                        queue.push_back(fresh);
                        fresh
                    }
                };
                steps.push((id, a.clone(), id2));
            }
        }

        ReachReport {
            states,
            index,
            parent,
            steps,
            truncated,
        }
    }
}

/// The result of a reachability exploration: the visited states, the
/// explored transitions, and BFS parent pointers for path reconstruction.
#[derive(Debug, Clone)]
pub struct ReachReport<S, A> {
    states: Vec<S>,
    index: HashMap<S, usize>,
    parent: Vec<Option<(usize, A)>>,
    steps: Vec<(usize, A, usize)>,
    truncated: bool,
}

impl<S: Clone + Eq + std::hash::Hash + std::fmt::Debug, A: Clone + std::fmt::Debug>
    ReachReport<S, A>
{
    /// The reachable states, in BFS discovery order.
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// The explored steps, as index triples into [`states`](Self::states).
    pub fn steps(&self) -> &[(usize, A, usize)] {
        &self.steps
    }

    /// Returns `true` if the exploration hit the state limit (the report is
    /// then an under-approximation).
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Returns the BFS index of a state, if reached.
    pub fn index_of(&self, s: &S) -> Option<usize> {
        self.index.get(s).copied()
    }

    /// Returns `true` if `s` was reached.
    pub fn contains(&self, s: &S) -> bool {
        self.index.contains_key(s)
    }

    /// Reconstructs a shortest witnessing execution from a start state to
    /// the state with BFS index `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn witness(&self, id: usize) -> Execution<S, A> {
        let mut rev: Vec<(A, S)> = Vec::new();
        let mut cur = id;
        while let Some((prev, a)) = &self.parent[cur] {
            rev.push((a.clone(), self.states[cur].clone()));
            cur = *prev;
        }
        let mut exec = Execution::new(self.states[cur].clone());
        for (a, s) in rev.into_iter().rev() {
            exec.push(a, s);
        }
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Partition, Signature};

    #[derive(Debug)]
    struct Gray {
        sig: Signature<&'static str>,
        part: Partition<&'static str>,
    }

    impl Gray {
        fn new() -> Gray {
            let sig = Signature::new(vec![], vec!["a", "b"], vec![]).unwrap();
            let part = Partition::singletons(&sig).unwrap();
            Gray { sig, part }
        }
    }

    impl Ioa for Gray {
        type State = (bool, bool);
        type Action = &'static str;
        fn signature(&self) -> &Signature<&'static str> {
            &self.sig
        }
        fn partition(&self) -> &Partition<&'static str> {
            &self.part
        }
        fn initial_states(&self) -> Vec<(bool, bool)> {
            vec![(false, false)]
        }
        fn post(&self, s: &(bool, bool), a: &&'static str) -> Vec<(bool, bool)> {
            match *a {
                "a" => vec![(!s.0, s.1)],
                "b" => vec![(s.0, !s.1)],
                _ => vec![],
            }
        }
    }

    #[test]
    fn explores_full_space() {
        let report = Explorer::new().explore(&Gray::new());
        assert_eq!(report.states().len(), 4);
        assert!(!report.truncated());
        // Each state has 2 outgoing steps.
        assert_eq!(report.steps().len(), 8);
        assert!(report.contains(&(true, true)));
    }

    #[test]
    fn truncation() {
        let report = Explorer::new().with_max_states(2).explore(&Gray::new());
        assert_eq!(report.states().len(), 2);
        assert!(report.truncated());
    }

    #[test]
    fn witness_paths_are_valid_and_shortest() {
        let aut = Gray::new();
        let report = Explorer::new().explore(&aut);
        let target = report.index_of(&(true, true)).unwrap();
        let w = report.witness(target);
        assert!(w.validate(&aut).is_ok());
        assert_eq!(w.last_state(), &(true, true));
        assert_eq!(w.len(), 2); // shortest path flips each bit once
                                // Witness of an initial state is empty.
        let w0 = report.witness(report.index_of(&(false, false)).unwrap());
        assert!(w0.is_empty());
    }
}
