//! Graphviz (`dot`) export of reachability graphs.

use std::fmt::Write as _;

use crate::ReachReport;

impl<S, A> ReachReport<S, A>
where
    S: Clone + Eq + std::hash::Hash + std::fmt::Debug,
    A: Clone + std::fmt::Debug,
{
    /// Renders the explored transition graph in Graphviz `dot` format:
    /// one node per reachable state (labelled with its `Debug` form),
    /// one edge per explored step (labelled with the action).
    ///
    /// Pipe the output through `dot -Tsvg` to visualize a system.
    ///
    /// # Example
    ///
    /// ```
    /// # use tempo_ioa::{Explorer, Ioa, Partition, Signature};
    /// # #[derive(Debug)]
    /// # struct Bit { sig: Signature<&'static str>, part: Partition<&'static str> }
    /// # impl Ioa for Bit {
    /// #     type State = bool;
    /// #     type Action = &'static str;
    /// #     fn signature(&self) -> &Signature<&'static str> { &self.sig }
    /// #     fn partition(&self) -> &Partition<&'static str> { &self.part }
    /// #     fn initial_states(&self) -> Vec<bool> { vec![false] }
    /// #     fn post(&self, s: &bool, a: &&'static str) -> Vec<bool> {
    /// #         if *a == "flip" { vec![!s] } else { vec![] }
    /// #     }
    /// # }
    /// # let sig = Signature::new(vec![], vec!["flip"], vec![]).unwrap();
    /// # let part = Partition::singletons(&sig).unwrap();
    /// let report = Explorer::new().explore(&Bit { sig, part });
    /// let dot = report.to_dot("bit");
    /// assert!(dot.starts_with("digraph bit {"));
    /// assert!(dot.contains("flip"));
    /// ```
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
        for (id, state) in self.states().iter().enumerate() {
            let label = escape(&format!("{state:?}"));
            let _ = writeln!(out, "  s{id} [label=\"{label}\"];");
        }
        for (from, action, to) in self.steps() {
            let label = escape(&format!("{action:?}"));
            let _ = writeln!(out, "  s{from} -> s{to} [label=\"{label}\"];");
        }
        let _ = writeln!(out, "}}");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use crate::{Explorer, Ioa, Partition, Signature};

    #[derive(Debug)]
    struct Two {
        sig: Signature<&'static str>,
        part: Partition<&'static str>,
    }

    impl Ioa for Two {
        type State = u8;
        type Action = &'static str;
        fn signature(&self) -> &Signature<&'static str> {
            &self.sig
        }
        fn partition(&self) -> &Partition<&'static str> {
            &self.part
        }
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn post(&self, s: &u8, a: &&'static str) -> Vec<u8> {
            if *a == "next" {
                vec![(s + 1) % 2]
            } else {
                vec![]
            }
        }
    }

    #[test]
    fn dot_structure() {
        let sig = Signature::new(vec![], vec!["next"], vec![]).unwrap();
        let part = Partition::singletons(&sig).unwrap();
        let dot = Explorer::new().explore(&Two { sig, part }).to_dot("two");
        assert!(dot.starts_with("digraph two {"));
        assert!(dot.trim_end().ends_with('}'));
        // &str actions Debug-print with quotes, which are escaped.
        assert_eq!(dot.matches("next").count(), 2);
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("s1 -> s0"));
        // One node line per state.
        assert!(dot.contains("s0 [label=\"0\"];"));
        assert!(dot.contains("s1 [label=\"1\"];"));
    }

    #[test]
    fn quotes_escaped() {
        let sig = Signature::new(vec![], vec!["say \"hi\""], vec![]).unwrap();
        let part = Partition::singletons(&sig).unwrap();
        let dot = Explorer::new()
            .explore(&{
                #[derive(Debug)]
                struct Q {
                    sig: Signature<&'static str>,
                    part: Partition<&'static str>,
                }
                impl Ioa for Q {
                    type State = ();
                    type Action = &'static str;
                    fn signature(&self) -> &Signature<&'static str> {
                        &self.sig
                    }
                    fn partition(&self) -> &Partition<&'static str> {
                        &self.part
                    }
                    fn initial_states(&self) -> Vec<()> {
                        vec![()]
                    }
                    fn post(&self, _: &(), _: &&'static str) -> Vec<()> {
                        vec![()]
                    }
                }
                Q { sig, part }
            })
            .to_dot("q");
        assert!(dot.contains("hi"), "{dot}");
        // The raw quote characters are escaped, keeping the dot valid:
        // every unescaped quote delimits an attribute.
        assert!(!dot.contains("=\"say"), "{dot}");
    }
}
