//! Action classification.

use std::fmt;

/// The classification of an action within an automaton's signature.
///
/// Input and output actions are *external*; output and internal actions are
/// *locally controlled* (under the automaton's own control and subject to
/// its partition classes and, in the timed layer, to boundmap bounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// An action controlled by the environment; must be enabled in every
    /// state (input-enabledness).
    Input,
    /// A locally controlled, externally visible action.
    Output,
    /// A locally controlled, hidden action.
    Internal,
}

impl ActionKind {
    /// Returns `true` for output and internal actions.
    pub fn is_locally_controlled(self) -> bool {
        matches!(self, ActionKind::Output | ActionKind::Internal)
    }

    /// Returns `true` for input and output actions.
    pub fn is_external(self) -> bool {
        matches!(self, ActionKind::Input | ActionKind::Output)
    }
}

impl fmt::Display for ActionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionKind::Input => write!(f, "input"),
            ActionKind::Output => write!(f, "output"),
            ActionKind::Internal => write!(f, "internal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(ActionKind::Output.is_locally_controlled());
        assert!(ActionKind::Internal.is_locally_controlled());
        assert!(!ActionKind::Input.is_locally_controlled());
        assert!(ActionKind::Input.is_external());
        assert!(ActionKind::Output.is_external());
        assert!(!ActionKind::Internal.is_external());
    }

    #[test]
    fn display() {
        assert_eq!(ActionKind::Input.to_string(), "input");
        assert_eq!(ActionKind::Output.to_string(), "output");
        assert_eq!(ActionKind::Internal.to_string(), "internal");
    }
}
