//! Partitions of locally controlled actions into classes.
//!
//! `part(A)` groups the locally controlled actions of an automaton into
//! equivalence classes, each thought of as controlled by one underlying
//! sequential process. In the timed layer each class receives a boundmap
//! interval.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

use crate::Signature;

/// Index of a partition class within a [`Partition`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub usize);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A partition of an automaton's locally controlled actions into named
/// classes.
///
/// # Example
///
/// ```
/// use tempo_ioa::{Partition, Signature};
///
/// let sig = Signature::new(vec![], vec!["GRANT"], vec!["ELSE"])?;
/// let part = Partition::new(&sig, vec![("LOCAL", vec!["GRANT", "ELSE"])])?;
/// assert_eq!(part.len(), 1);
/// assert_eq!(part.class_name(part.class_of(&"GRANT").unwrap()), "LOCAL");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Partition<A> {
    names: Vec<String>,
    members: Vec<Vec<A>>,
    class_of: HashMap<A, ClassId>,
}

/// Error returned when a partition is ill-formed with respect to a
/// signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// An action appears in two classes.
    Overlap(String),
    /// A class contains an action that is not locally controlled (or not in
    /// the signature at all).
    NotLocallyControlled(String),
    /// A locally controlled action of the signature is not covered by any
    /// class.
    Uncovered(String),
    /// A class is empty.
    EmptyClass(String),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::Overlap(a) => write!(f, "action {a} appears in two classes"),
            PartitionError::NotLocallyControlled(a) => {
                write!(
                    f,
                    "action {a} is not a locally controlled action of the signature"
                )
            }
            PartitionError::Uncovered(a) => {
                write!(
                    f,
                    "locally controlled action {a} is not covered by any class"
                )
            }
            PartitionError::EmptyClass(c) => write!(f, "class {c} has no actions"),
        }
    }
}

impl std::error::Error for PartitionError {}

impl<A: Clone + Eq + Hash + fmt::Debug> Partition<A> {
    /// Creates a partition from named classes, validating it against the
    /// signature: classes must be nonempty, disjoint, consist of locally
    /// controlled actions, and jointly cover all of them.
    ///
    /// # Errors
    ///
    /// Returns a [`PartitionError`] describing the first violation found.
    pub fn new<N: Into<String>>(
        sig: &Signature<A>,
        classes: Vec<(N, Vec<A>)>,
    ) -> Result<Partition<A>, PartitionError> {
        let mut names = Vec::new();
        let mut members = Vec::new();
        let mut class_of = HashMap::new();
        for (name, actions) in classes {
            let name = name.into();
            if actions.is_empty() {
                return Err(PartitionError::EmptyClass(name));
            }
            let id = ClassId(names.len());
            for a in &actions {
                match sig.kind_of(a) {
                    Some(k) if k.is_locally_controlled() => {}
                    _ => return Err(PartitionError::NotLocallyControlled(format!("{a:?}"))),
                }
                if class_of.insert(a.clone(), id).is_some() {
                    return Err(PartitionError::Overlap(format!("{a:?}")));
                }
            }
            names.push(name);
            members.push(actions);
        }
        for a in sig.locally_controlled() {
            if !class_of.contains_key(a) {
                return Err(PartitionError::Uncovered(format!("{a:?}")));
            }
        }
        Ok(Partition {
            names,
            members,
            class_of,
        })
    }

    /// Creates the finest partition: one singleton class per locally
    /// controlled action, named after the action's `Debug` form.
    ///
    /// # Errors
    ///
    /// Propagates [`PartitionError`] (cannot actually occur for a valid
    /// signature).
    pub fn singletons(sig: &Signature<A>) -> Result<Partition<A>, PartitionError> {
        Partition::new(
            sig,
            sig.locally_controlled()
                .map(|a| (format!("{a:?}"), vec![a.clone()]))
                .collect(),
        )
    }

    /// Returns the number of classes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if there are no classes.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Returns the class containing `a`, or `None` for input actions and
    /// actions outside the signature.
    pub fn class_of(&self, a: &A) -> Option<ClassId> {
        self.class_of.get(a).copied()
    }

    /// Returns the name of a class.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn class_name(&self, id: ClassId) -> &str {
        &self.names[id.0]
    }

    /// Returns the class with the given name, if any.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.names.iter().position(|n| n == name).map(ClassId)
    }

    /// Returns the actions of a class.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn actions_of(&self, id: ClassId) -> &[A] {
        &self.members[id.0]
    }

    /// Iterates over all class ids.
    pub fn ids(&self) -> impl Iterator<Item = ClassId> {
        (0..self.names.len()).map(ClassId)
    }

    /// Builds the disjoint union of two partitions (used by composition).
    /// Class ids of `other` are shifted past those of `self`.
    pub fn union(&self, other: &Partition<A>) -> Partition<A> {
        let mut names = self.names.clone();
        names.extend(other.names.iter().cloned());
        let mut members = self.members.clone();
        members.extend(other.members.iter().cloned());
        let mut class_of = self.class_of.clone();
        for (a, id) in &other.class_of {
            class_of.insert(a.clone(), ClassId(id.0 + self.names.len()));
        }
        Partition {
            names,
            members,
            class_of,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> Signature<&'static str> {
        Signature::new(vec!["in"], vec!["o1", "o2"], vec!["i1"]).unwrap()
    }

    #[test]
    fn valid_partition() {
        let p = Partition::new(&sig(), vec![("A", vec!["o1", "i1"]), ("B", vec!["o2"])]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.class_of(&"o1"), Some(ClassId(0)));
        assert_eq!(p.class_of(&"o2"), Some(ClassId(1)));
        assert_eq!(p.class_of(&"in"), None);
        assert_eq!(p.class_name(ClassId(1)), "B");
        assert_eq!(p.class_by_name("A"), Some(ClassId(0)));
        assert_eq!(p.class_by_name("Z"), None);
        assert_eq!(p.actions_of(ClassId(0)), &["o1", "i1"]);
        assert_eq!(p.ids().count(), 2);
    }

    #[test]
    fn singletons() {
        let p = Partition::singletons(&sig()).unwrap();
        assert_eq!(p.len(), 3);
        assert!(p.class_of(&"in").is_none());
    }

    #[test]
    fn rejects_overlap() {
        let err = Partition::new(
            &sig(),
            vec![("A", vec!["o1"]), ("B", vec!["o1", "o2", "i1"])],
        );
        assert!(matches!(err, Err(PartitionError::Overlap(_))));
    }

    #[test]
    fn rejects_inputs_and_unknown() {
        let err = Partition::new(&sig(), vec![("A", vec!["in", "o1", "o2", "i1"])]);
        assert!(matches!(err, Err(PartitionError::NotLocallyControlled(_))));
        let err = Partition::new(&sig(), vec![("A", vec!["nope", "o1", "o2", "i1"])]);
        assert!(matches!(err, Err(PartitionError::NotLocallyControlled(_))));
    }

    #[test]
    fn rejects_uncovered_and_empty() {
        let err = Partition::new(&sig(), vec![("A", vec!["o1", "o2"])]);
        assert!(matches!(err, Err(PartitionError::Uncovered(_))));
        let err = Partition::new(
            &sig(),
            vec![("A", vec!["o1", "o2", "i1"]), ("B", Vec::<&str>::new())],
        );
        assert!(matches!(err, Err(PartitionError::EmptyClass(_))));
    }

    #[test]
    fn union_shifts_ids() {
        let s1 = Signature::new(vec![], vec!["x"], Vec::<&str>::new()).unwrap();
        let s2 = Signature::new(vec![], vec!["y"], Vec::<&str>::new()).unwrap();
        let p1 = Partition::singletons(&s1).unwrap();
        let p2 = Partition::singletons(&s2).unwrap();
        let u = p1.union(&p2);
        assert_eq!(u.len(), 2);
        assert_eq!(u.class_of(&"x"), Some(ClassId(0)));
        assert_eq!(u.class_of(&"y"), Some(ClassId(1)));
    }
}
