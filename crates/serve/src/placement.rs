//! Consistent-hash stream → worker placement.
//!
//! New streams are pinned to pool workers by hashing the stream key
//! onto a ring of virtual nodes. Compared to the pool's default round
//! robin, the ring keeps placement *stable under membership change*:
//! draining one worker (for rebalancing, or because a shard is being
//! retired) moves only the streams that hashed onto that worker's
//! virtual nodes — every other stream keeps its worker, so their rings
//! and monitor state stay where they are.
//!
//! Placement only steers *new* streams; live streams stay pinned to the
//! worker that adopted them (the pool's SPSC rings are single-consumer
//! by construction). That is exactly the consistent-hashing contract:
//! membership change perturbs the minimal fraction of future keys.

/// `splitmix64` — a fast, well-mixed 64-bit hash (public-domain
/// constants), enough to spread sequential stream ids uniformly.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A consistent-hash ring over worker indices.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(position, worker)` sorted by position.
    vnodes: Vec<(u64, u32)>,
    replicas: usize,
}

impl HashRing {
    /// An empty ring placing each worker at `replicas` virtual nodes.
    pub fn new(replicas: usize) -> HashRing {
        HashRing {
            vnodes: Vec::new(),
            replicas: replicas.max(1),
        }
    }

    /// A ring pre-populated with workers `0..workers`.
    pub fn with_workers(workers: usize, replicas: usize) -> HashRing {
        let mut ring = HashRing::new(replicas);
        for w in 0..workers {
            ring.add_worker(w as u32);
        }
        ring
    }

    /// Adds a worker's virtual nodes. Adding a present worker is a
    /// no-op.
    pub fn add_worker(&mut self, worker: u32) {
        if self.contains(worker) {
            return;
        }
        for r in 0..self.replicas {
            let pos = splitmix64((u64::from(worker) << 32) | r as u64);
            self.vnodes.push((pos, worker));
        }
        self.vnodes.sort_unstable();
    }

    /// Removes a worker's virtual nodes (draining it from future
    /// placement). Removing an absent worker is a no-op.
    pub fn remove_worker(&mut self, worker: u32) {
        self.vnodes.retain(|&(_, w)| w != worker);
    }

    /// Whether the worker is currently placed on the ring.
    pub fn contains(&self, worker: u32) -> bool {
        self.vnodes.iter().any(|&(_, w)| w == worker)
    }

    /// Number of distinct workers on the ring.
    pub fn workers(&self) -> usize {
        let mut ws: Vec<u32> = self.vnodes.iter().map(|&(_, w)| w).collect();
        ws.sort_unstable();
        ws.dedup();
        ws.len()
    }

    /// Whether the ring is empty (no placement possible).
    pub fn is_empty(&self) -> bool {
        self.vnodes.is_empty()
    }

    /// The worker owning `key`: the first virtual node clockwise from
    /// the key's hash. `None` on an empty ring.
    pub fn worker_for(&self, key: u64) -> Option<u32> {
        if self.vnodes.is_empty() {
            return None;
        }
        let h = splitmix64(key);
        let i = self.vnodes.partition_point(|&(pos, _)| pos < h);
        let &(_, w) = self.vnodes.get(i).unwrap_or_else(|| &self.vnodes[0]); // wrap around
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreads_keys_roughly_evenly() {
        let ring = HashRing::with_workers(8, 64);
        let mut counts = [0usize; 8];
        let n = 80_000u64;
        for key in 0..n {
            counts[ring.worker_for(key).unwrap() as usize] += 1;
        }
        let ideal = n as usize / 8;
        for (w, &c) in counts.iter().enumerate() {
            assert!(
                c > ideal / 2 && c < ideal * 2,
                "worker {w} got {c} of {n} keys (ideal {ideal})"
            );
        }
    }

    #[test]
    fn removal_only_moves_the_removed_workers_keys() {
        let mut ring = HashRing::with_workers(8, 64);
        let before: Vec<u32> = (0..20_000).map(|k| ring.worker_for(k).unwrap()).collect();
        ring.remove_worker(3);
        let mut moved = 0usize;
        for (k, &was) in before.iter().enumerate() {
            let now = ring.worker_for(k as u64).unwrap();
            assert_ne!(now, 3, "key {k} placed on a drained worker");
            if was != 3 {
                assert_eq!(now, was, "key {k} moved although its worker stayed");
            } else {
                moved += 1;
            }
        }
        assert!(moved > 0, "worker 3 owned no keys at all");
    }

    #[test]
    fn restore_brings_back_the_original_placement() {
        let mut ring = HashRing::with_workers(4, 32);
        let before: Vec<u32> = (0..5_000).map(|k| ring.worker_for(k).unwrap()).collect();
        ring.remove_worker(1);
        ring.add_worker(1);
        let after: Vec<u32> = (0..5_000).map(|k| ring.worker_for(k).unwrap()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn empty_ring_places_nothing() {
        let mut ring = HashRing::new(16);
        assert!(ring.is_empty());
        assert_eq!(ring.worker_for(1), None);
        ring.add_worker(0);
        assert_eq!(ring.worker_for(1), Some(0));
        assert_eq!(ring.workers(), 1);
    }
}
