//! The load generator: drives a running server with
//! [`tempo_sim::loadgen`] traffic over N connections and measures
//! sustained ingest throughput and finish-to-verdict latency.
//!
//! Used three ways: as the `tempo-loadgen` binary (EXPERIMENTS.md
//! §E18), inside `bench/e18_serve`, and by the loopback CI smoke test.
//!
//! Streams are spread round robin over the configured connections;
//! each connection runs on its own thread with its own socket. A run
//! has three phases — open every stream, stream event batches
//! round-robin across the connection's streams (so all streams progress
//! together, like real concurrent clients), then finish every stream
//! and wait for its [`StreamReport`](tempo_monitor::StreamReport).
//! The reported latency is
//! finish-flush → report-receipt per stream: the tail of the
//! socket → ring → monitor → egress pipeline, i.e. ingest-to-verdict
//! for the stream's last event.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tempo_sim::loadgen::ReqServe;

use crate::client::{Client, ServerFrame};
use crate::wire::WireEvent;

/// Loadgen parameters.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Concurrent streams, spread over the connections.
    pub streams: u64,
    /// Events per stream (even: requests pair with serves).
    pub events_per_stream: u32,
    /// Events per batch frame.
    pub batch: u32,
    /// Client connections (one thread each).
    pub conns: usize,
    /// Negotiate binary egress ([`cap::BINARY_EGRESS`]) per
    /// connection, so verdicts arrive as `REPORT2` frames instead of
    /// JSON.
    ///
    /// [`cap::BINARY_EGRESS`]: crate::wire::cap::BINARY_EGRESS
    pub binary: bool,
    /// The traffic model ([`ReqServe::validated`] is applied).
    pub traffic: ReqServe,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            streams: 1000,
            events_per_stream: 20,
            batch: 10,
            conns: 4,
            binary: false,
            traffic: ReqServe::default(),
        }
    }
}

/// What a loadgen run measured.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Streams driven to completion (reports received).
    pub streams: u64,
    /// Events put on the wire.
    pub events_sent: u64,
    /// Events the reports confirm were consumed by monitors.
    pub events_monitored: u64,
    /// Wall-clock for the whole run (open → last report).
    pub elapsed: Duration,
    /// Violations reported across all streams.
    pub violations: u64,
    /// Streams reported as failed (overload policy).
    pub failed: u64,
    /// Finish-to-report latencies: p50.
    pub latency_p50: Duration,
    /// Finish-to-report latencies: p99.
    pub latency_p99: Duration,
    /// Finish-to-report latencies: worst.
    pub latency_max: Duration,
}

impl LoadgenReport {
    /// Sustained events per second over the whole run.
    pub fn events_per_sec(&self) -> f64 {
        self.events_sent as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Mean wire cost per event, in nanoseconds.
    pub fn ns_per_event(&self) -> f64 {
        self.elapsed.as_nanos() as f64 / self.events_sent.max(1) as f64
    }

    /// One-line human summary.
    pub fn render(&self) -> String {
        format!(
            "{} streams · {} events · {:.2}s · {:.0} ev/s · {:.0} ns/ev · p50 {:?} p99 {:?} max {:?} · {} violations · {} failed",
            self.streams,
            self.events_sent,
            self.elapsed.as_secs_f64(),
            self.events_per_sec(),
            self.ns_per_event(),
            self.latency_p50,
            self.latency_p99,
            self.latency_max,
            self.violations,
            self.failed,
        )
    }
}

/// Outcome of one connection worker.
struct ConnOutcome {
    events_sent: u64,
    events_monitored: u64,
    violations: u64,
    failed: u64,
    reports: u64,
    latencies: Vec<Duration>,
}

/// Runs the full load against `addr`. Returns after every stream's
/// report arrived (or errors on the first transport failure).
pub fn run(addr: &str, cfg: &LoadgenConfig) -> io::Result<LoadgenReport> {
    let traffic = cfg.traffic.validated();
    let conns = cfg.conns.max(1).min(cfg.streams.max(1) as usize);
    let started = Instant::now();
    let sent_total = Arc::new(AtomicU64::new(0));

    let workers: Vec<thread::JoinHandle<io::Result<ConnOutcome>>> = (0..conns)
        .map(|c| {
            let addr = addr.to_string();
            let cfg = *cfg;
            let sent_total = Arc::clone(&sent_total);
            thread::spawn(move || {
                conn_worker(&addr, &cfg, traffic, c as u64, conns as u64, &sent_total)
            })
        })
        .collect();

    let mut events_sent = 0u64;
    let mut events_monitored = 0u64;
    let mut violations = 0u64;
    let mut failed = 0u64;
    let mut streams = 0u64;
    let mut latencies: Vec<Duration> = Vec::new();
    for w in workers {
        let out = w.join().expect("loadgen worker panicked")?;
        events_sent += out.events_sent;
        events_monitored += out.events_monitored;
        violations += out.violations;
        failed += out.failed;
        streams += out.reports;
        latencies.extend(out.latencies);
    }
    let elapsed = started.elapsed();

    latencies.sort_unstable();
    let pick = |q: f64| -> Duration {
        if latencies.is_empty() {
            Duration::ZERO
        } else {
            let i = ((latencies.len() - 1) as f64 * q).round() as usize;
            latencies[i]
        }
    };
    Ok(LoadgenReport {
        streams,
        events_sent,
        events_monitored,
        elapsed,
        violations,
        failed,
        latency_p50: pick(0.50),
        latency_p99: pick(0.99),
        latency_max: latencies.last().copied().unwrap_or(Duration::ZERO),
    })
}

fn conn_worker(
    addr: &str,
    cfg: &LoadgenConfig,
    traffic: ReqServe,
    conn_index: u64,
    conns: u64,
    sent_total: &AtomicU64,
) -> io::Result<ConnOutcome> {
    let mut client = Client::connect(addr)?;
    let my_streams: Vec<u64> = (0..cfg.streams)
        .filter(|s| s % conns == conn_index)
        .collect();

    // Phase 1: open everything (flush in chunks to bound the buffer).
    // Binary egress is negotiated once per connection, on its first
    // open; later opens ride the already granted capability.
    for (i, &s) in my_streams.iter().enumerate() {
        if cfg.binary && i == 0 {
            client.open_binary(s, 0);
        } else {
            client.open(s, 0);
        }
        if client.buffered() > 1 << 16 || i + 1 == my_streams.len() {
            client.flush()?;
        }
    }

    // Phase 2: round-robin batches so all streams progress together.
    let events = u64::from(cfg.events_per_stream);
    let batch = u64::from(cfg.batch.max(1));
    let mut sent_here = 0u64;
    let mut offset = 0u64;
    while offset < events {
        let hi = (offset + batch).min(events);
        for &s in &my_streams {
            let mut b = client.batch(s);
            for i in offset..hi {
                let ev = traffic.event(s, i);
                b.push(WireEvent::at(ev.action, ev.state, ev.time_ms));
            }
            b.finish();
            sent_here += hi - offset;
            if client.buffered() > 1 << 18 {
                client.flush()?;
            }
        }
        client.flush()?;
        offset = hi;
    }
    sent_total.fetch_add(sent_here, Ordering::Relaxed);

    // Phase 3: finish (stamping flush time per chunk) and await reports.
    let mut finish_at: std::collections::HashMap<u64, Instant> = Default::default();
    for chunk in my_streams.chunks(512) {
        for &s in chunk {
            client.finish_stream(s);
        }
        client.flush()?;
        let now = Instant::now();
        for &s in chunk {
            finish_at.insert(s, now);
        }
    }

    let mut out = ConnOutcome {
        events_sent: sent_here,
        events_monitored: 0,
        violations: 0,
        failed: 0,
        reports: 0,
        latencies: Vec::with_capacity(my_streams.len()),
    };
    client.set_read_timeout(Some(Duration::from_secs(60)))?;
    while out.reports < my_streams.len() as u64 {
        match client.recv()? {
            ServerFrame::Report { stream, report } => {
                let now = Instant::now();
                if let Some(t) = finish_at.remove(&stream) {
                    out.latencies.push(now.duration_since(t));
                }
                out.reports += 1;
                out.events_monitored += report.events as u64;
                out.violations += report.violations.len() as u64;
                out.failed += u64::from(report.failed);
            }
            ServerFrame::Error { code, message } => {
                return Err(io::Error::other(format!(
                    "server error {code:?}: {message}"
                )));
            }
            ServerFrame::Metrics(_) | ServerFrame::Reloaded(_) => {}
        }
    }
    Ok(out)
}
