//! The length-prefixed binary wire protocol.
//!
//! Every frame is `u32 length (LE) · u8 tag · body`, where `length`
//! counts the tag byte plus the body. All integers are little-endian.
//! Ingest frames (client → server) map 1:1 onto pool operations —
//! [`Frame::Batch`] *is* a [`StreamHandle::send_batch_exact`] call — and
//! egress frames (server → client) carry the `serde`-encoded reports as
//! JSON payloads, so nothing is hand-encoded twice.
//!
//! The batch body is a packed array of 24-byte event records
//! (`u32 action · u32 state · i64 time numerator · u64 time
//! denominator`), decoded **zero-copy**: [`EventBatch::events`] is an
//! [`ExactSizeIterator`] reading events straight out of the receive
//! buffer into the pool's `Event<u32, u32>` layout, so the ingest path
//! performs no per-event allocation between the socket and the SPSC
//! ring.
//!
//! [`StreamHandle::send_batch_exact`]:
//! tempo_monitor::StreamHandle::send_batch_exact

use std::fmt;

use tempo_math::Rat;
use tempo_monitor::Event;

/// Frame tags (the `u8` after the length prefix). Ingest tags have the
/// high bit clear, egress tags have it set.
pub mod tag {
    /// Client → server: open a stream (`u64 stream · u32 start state`).
    pub const OPEN: u8 = 0x01;
    /// Client → server: event batch (`u64 stream · u32 count · count ×
    /// 24-byte events`).
    pub const BATCH: u8 = 0x02;
    /// Client → server: finish a stream (`u64 stream`).
    pub const FINISH: u8 = 0x03;
    /// Client → server: hot-swap the spec (UTF-8 `.tspec` source).
    pub const RELOAD: u8 = 0x04;
    /// Client → server: subscribe to metrics snapshots
    /// (`u32 interval in ms`, `0` unsubscribes).
    pub const METRICS: u8 = 0x05;
    /// Server → client: a finished stream's report (`u64 client stream
    /// id · JSON StreamReport`).
    pub const REPORT: u8 = 0x81;
    /// Server → client: a metrics snapshot (JSON MetricsSnapshot).
    pub const METRICS_SNAP: u8 = 0x82;
    /// Server → client: a reload was applied (JSON ReloadSummary).
    pub const RELOADED: u8 = 0x83;
    /// Server → client: an error (`u8 code · UTF-8 message`).
    pub const ERROR: u8 = 0x84;
}

/// Bytes of one packed event record in a batch body.
pub const EVENT_WIRE_BYTES: usize = 24;

/// Bytes of a batch body header (`u64 stream · u32 count`).
pub const BATCH_HEADER_BYTES: usize = 12;

/// Stable error codes carried by [`tag::ERROR`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame body did not parse (short body, bad UTF-8, zero time
    /// denominator, count mismatch).
    Malformed = 1,
    /// The frame tag is not one the server understands.
    UnknownTag = 2,
    /// The declared frame length exceeds the configured maximum.
    Oversized = 3,
    /// A batch or finish referenced a stream id never opened (or
    /// already finished) on this connection.
    UnknownStream = 4,
    /// An open reused a stream id already live on this connection.
    DuplicateStream = 5,
    /// A reload's `.tspec` source failed to compile; the message
    /// carries the diagnostics.
    SpecError = 6,
    /// The stream's queue refused the events (fail-stream policy, or a
    /// blocked send cut off by shutdown). The stream is closed; its
    /// report covers the delivered prefix.
    Overload = 7,
    /// The server is shutting down and accepts no new work.
    ShuttingDown = 8,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownTag,
            3 => ErrorCode::Oversized,
            4 => ErrorCode::UnknownStream,
            5 => ErrorCode::DuplicateStream,
            6 => ErrorCode::SpecError,
            7 => ErrorCode::Overload,
            8 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// A wire-level decode failure.
///
/// [`Fatal`](WireError::is_fatal) errors poison the byte stream (frame
/// boundaries can no longer be trusted) and close the connection after
/// the error response; non-fatal errors skip the offending frame and
/// keep the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// A tag outside the protocol. Non-fatal: the frame is delimited,
    /// so it is skipped.
    UnknownTag(u8),
    /// A declared length above the maximum. Fatal: the decoder cannot
    /// skip what it will not buffer.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// Configured cap.
        max: u32,
    },
    /// A body that does not parse under its tag. Non-fatal.
    Malformed(&'static str),
}

impl WireError {
    /// The stable code to answer with.
    pub fn code(&self) -> ErrorCode {
        match self {
            WireError::UnknownTag(_) => ErrorCode::UnknownTag,
            WireError::Oversized { .. } => ErrorCode::Oversized,
            WireError::Malformed(_) => ErrorCode::Malformed,
        }
    }

    /// Whether the connection's byte stream is unrecoverable.
    pub fn is_fatal(&self) -> bool {
        matches!(self, WireError::Oversized { .. })
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownTag(t) => write!(f, "unknown frame tag 0x{t:02x}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A zero-copy view of a [`tag::BATCH`] body: the event records stay in
/// the receive buffer until the iterator lifts them into the ring.
#[derive(Clone, Copy, Debug)]
pub struct EventBatch<'a> {
    /// Client-chosen stream id.
    pub stream: u64,
    bytes: &'a [u8],
}

impl<'a> EventBatch<'a> {
    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.bytes.len() / EVENT_WIRE_BYTES
    }

    /// Whether the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Iterates the events, decoding each record on the fly. The
    /// iterator is exact-size, so
    /// [`send_batch_exact`](tempo_monitor::StreamHandle::send_batch_exact)
    /// can reserve ring space without collecting.
    pub fn events(&self) -> EventIter<'a> {
        EventIter { bytes: self.bytes }
    }
}

/// Iterator over a batch's packed event records. Denominators were
/// validated non-zero at frame decode, so iteration is infallible.
#[derive(Clone, Debug)]
pub struct EventIter<'a> {
    bytes: &'a [u8],
}

impl Iterator for EventIter<'_> {
    type Item = Event<u32, u32>;

    fn next(&mut self) -> Option<Event<u32, u32>> {
        if self.bytes.len() < EVENT_WIRE_BYTES {
            return None;
        }
        let (rec, rest) = self.bytes.split_at(EVENT_WIRE_BYTES);
        self.bytes = rest;
        let action = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let state = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let num = i64::from_le_bytes(rec[8..16].try_into().unwrap());
        let den = u64::from_le_bytes(rec[16..24].try_into().unwrap());
        Some(Event::new(
            action,
            Rat::new(num as i128, den as i128),
            state,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bytes.len() / EVENT_WIRE_BYTES;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EventIter<'_> {}

/// One decoded frame, borrowing string/batch payloads from the receive
/// buffer.
#[derive(Clone, Debug)]
pub enum Frame<'a> {
    /// Open a stream with a start state.
    Open {
        /// Client-chosen stream id (unique per connection).
        stream: u64,
        /// Start state handed to the stream's monitor.
        start: u32,
    },
    /// An event batch.
    Batch(EventBatch<'a>),
    /// Finish a stream and request its report.
    Finish {
        /// Client-chosen stream id.
        stream: u64,
    },
    /// Hot-swap the server's spec.
    Reload {
        /// `.tspec` source text.
        src: &'a str,
    },
    /// (Un)subscribe to periodic metrics snapshots.
    Metrics {
        /// Snapshot interval in milliseconds; `0` unsubscribes.
        interval_ms: u32,
    },
    /// Egress: a finished stream's report.
    Report {
        /// Client stream id (translated back from the pool id).
        stream: u64,
        /// JSON-encoded `StreamReport`.
        json: &'a str,
    },
    /// Egress: a metrics snapshot.
    MetricsSnap {
        /// JSON-encoded `MetricsSnapshot`.
        json: &'a str,
    },
    /// Egress: a reload was applied.
    Reloaded {
        /// JSON-encoded [`ReloadSummary`](crate::ReloadSummary).
        json: &'a str,
    },
    /// Egress: an error response.
    Error {
        /// Stable error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: &'a str,
    },
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[0..4].try_into().unwrap())
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[0..8].try_into().unwrap())
}

/// Parses one complete frame payload (tag + body, the length prefix
/// already stripped).
pub fn parse_frame(payload: &[u8]) -> Result<Frame<'_>, WireError> {
    let (&t, body) = payload
        .split_first()
        .ok_or(WireError::Malformed("empty frame payload"))?;
    match t {
        tag::OPEN => {
            if body.len() != 12 {
                return Err(WireError::Malformed("open body must be 12 bytes"));
            }
            Ok(Frame::Open {
                stream: le_u64(body),
                start: le_u32(&body[8..]),
            })
        }
        tag::BATCH => {
            if body.len() < BATCH_HEADER_BYTES {
                return Err(WireError::Malformed("batch body shorter than its header"));
            }
            let stream = le_u64(body);
            let count = le_u32(&body[8..]) as usize;
            let bytes = &body[BATCH_HEADER_BYTES..];
            if bytes.len() != count * EVENT_WIRE_BYTES {
                return Err(WireError::Malformed("batch length disagrees with count"));
            }
            // Validate denominators up front so EventIter is infallible
            // on the hot path into the ring.
            for rec in bytes.chunks_exact(EVENT_WIRE_BYTES) {
                if le_u64(&rec[16..24]) == 0 {
                    return Err(WireError::Malformed("event time denominator is zero"));
                }
            }
            Ok(Frame::Batch(EventBatch { stream, bytes }))
        }
        tag::FINISH => {
            if body.len() != 8 {
                return Err(WireError::Malformed("finish body must be 8 bytes"));
            }
            Ok(Frame::Finish {
                stream: le_u64(body),
            })
        }
        tag::RELOAD => {
            let src = std::str::from_utf8(body)
                .map_err(|_| WireError::Malformed("reload source is not UTF-8"))?;
            Ok(Frame::Reload { src })
        }
        tag::METRICS => {
            if body.len() != 4 {
                return Err(WireError::Malformed("metrics body must be 4 bytes"));
            }
            Ok(Frame::Metrics {
                interval_ms: le_u32(body),
            })
        }
        tag::REPORT => {
            if body.len() < 8 {
                return Err(WireError::Malformed("report body shorter than its header"));
            }
            let stream = le_u64(body);
            let json = std::str::from_utf8(&body[8..])
                .map_err(|_| WireError::Malformed("report payload is not UTF-8"))?;
            Ok(Frame::Report { stream, json })
        }
        tag::METRICS_SNAP => {
            let json = std::str::from_utf8(body)
                .map_err(|_| WireError::Malformed("metrics payload is not UTF-8"))?;
            Ok(Frame::MetricsSnap { json })
        }
        tag::RELOADED => {
            let json = std::str::from_utf8(body)
                .map_err(|_| WireError::Malformed("reload payload is not UTF-8"))?;
            Ok(Frame::Reloaded { json })
        }
        tag::ERROR => {
            let (&code, msg) = body
                .split_first()
                .ok_or(WireError::Malformed("error body missing its code"))?;
            let code =
                ErrorCode::from_u8(code).ok_or(WireError::Malformed("unknown error code"))?;
            let message = std::str::from_utf8(msg)
                .map_err(|_| WireError::Malformed("error message is not UTF-8"))?;
            Ok(Frame::Error { code, message })
        }
        other => Err(WireError::UnknownTag(other)),
    }
}

/// An accumulating receive buffer that yields complete frames.
///
/// Bytes arrive via [`ingest`](RecvBuf::ingest) (straight from a socket
/// read); [`next_frame`](RecvBuf::next_frame) yields a borrowed
/// [`Frame`] per complete frame without copying the payload. Consumed
/// bytes are compacted away on the next ingest, so a long-lived
/// connection reuses one allocation.
#[derive(Debug)]
pub struct RecvBuf {
    buf: Vec<u8>,
    start: usize,
    max_frame: u32,
}

impl RecvBuf {
    /// An empty buffer enforcing `max_frame` as the largest acceptable
    /// declared payload length.
    pub fn new(max_frame: u32) -> RecvBuf {
        RecvBuf {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Appends freshly received bytes.
    pub fn ingest(&mut self, data: &[u8]) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes received but not yet consumed as a complete frame —
    /// nonzero at EOF means the peer disconnected mid-frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Yields the next complete frame, or `None` when more bytes are
    /// needed. On a non-fatal error the offending frame is consumed
    /// (the stream stays aligned); on a fatal error the buffer is
    /// unusable and the connection should close.
    pub fn next_frame(&mut self) -> Result<Option<Frame<'_>>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let len = le_u32(&self.buf[self.start..]);
        if len > self.max_frame {
            return Err(WireError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        if len == 0 {
            // Consume the prefix so the error is returned once and the
            // stream stays aligned — otherwise the caller's retry loop
            // would see the same four zero bytes forever.
            self.start += 4;
            return Err(WireError::Malformed("zero-length frame"));
        }
        let total = 4 + len as usize;
        if avail < total {
            return Ok(None);
        }
        let lo = self.start + 4;
        let hi = self.start + total;
        self.start = hi;
        parse_frame(&self.buf[lo..hi]).map(Some)
    }
}

fn begin_frame(out: &mut Vec<u8>, t: u8) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0, t]);
    at
}

fn end_frame(out: &mut [u8], at: usize) {
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes an [`tag::OPEN`] frame.
pub fn encode_open(out: &mut Vec<u8>, stream: u64, start: u32) {
    let at = begin_frame(out, tag::OPEN);
    out.extend_from_slice(&stream.to_le_bytes());
    out.extend_from_slice(&start.to_le_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::FINISH`] frame.
pub fn encode_finish(out: &mut Vec<u8>, stream: u64) {
    let at = begin_frame(out, tag::FINISH);
    out.extend_from_slice(&stream.to_le_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::RELOAD`] frame.
pub fn encode_reload(out: &mut Vec<u8>, src: &str) {
    let at = begin_frame(out, tag::RELOAD);
    out.extend_from_slice(src.as_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::METRICS`] subscription frame.
pub fn encode_metrics_sub(out: &mut Vec<u8>, interval_ms: u32) {
    let at = begin_frame(out, tag::METRICS);
    out.extend_from_slice(&interval_ms.to_le_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::REPORT`] egress frame.
pub fn encode_report(out: &mut Vec<u8>, stream: u64, json: &str) {
    let at = begin_frame(out, tag::REPORT);
    out.extend_from_slice(&stream.to_le_bytes());
    out.extend_from_slice(json.as_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::METRICS_SNAP`] egress frame.
pub fn encode_metrics_snap(out: &mut Vec<u8>, json: &str) {
    let at = begin_frame(out, tag::METRICS_SNAP);
    out.extend_from_slice(json.as_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::RELOADED`] egress frame.
pub fn encode_reloaded(out: &mut Vec<u8>, json: &str) {
    let at = begin_frame(out, tag::RELOADED);
    out.extend_from_slice(json.as_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::ERROR`] egress frame.
pub fn encode_error(out: &mut Vec<u8>, code: ErrorCode, message: &str) {
    let at = begin_frame(out, tag::ERROR);
    out.push(code as u8);
    out.extend_from_slice(message.as_bytes());
    end_frame(out, at);
}

/// One event as the client encodes it: action/state ids plus the time
/// as an explicit 64-bit rational.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireEvent {
    /// Action id (an index into the server's action table).
    pub action: u32,
    /// Post-state id.
    pub state: u32,
    /// Time numerator.
    pub num: i64,
    /// Time denominator (must be nonzero).
    pub den: u64,
}

impl WireEvent {
    /// An event at integer time `t` (denominator 1).
    pub fn at(action: u32, state: u32, t: i64) -> WireEvent {
        WireEvent {
            action,
            state,
            num: t,
            den: 1,
        }
    }
}

/// Incrementally encodes one [`tag::BATCH`] frame into `out`.
///
/// The loadgen hot path uses this to build batches without an
/// intermediate event vector: `begin`, then `push` per event, then
/// `finish` (which back-patches the length prefix and event count).
#[derive(Debug)]
pub struct BatchBuilder<'a> {
    out: &'a mut Vec<u8>,
    at: usize,
    count: u32,
}

impl<'a> BatchBuilder<'a> {
    /// Starts a batch frame for `stream`.
    pub fn begin(out: &'a mut Vec<u8>, stream: u64) -> BatchBuilder<'a> {
        let at = begin_frame(out, tag::BATCH);
        out.extend_from_slice(&stream.to_le_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]);
        BatchBuilder { out, at, count: 0 }
    }

    /// Appends one event record.
    pub fn push(&mut self, ev: WireEvent) {
        self.out.extend_from_slice(&ev.action.to_le_bytes());
        self.out.extend_from_slice(&ev.state.to_le_bytes());
        self.out.extend_from_slice(&ev.num.to_le_bytes());
        self.out.extend_from_slice(&ev.den.to_le_bytes());
        self.count += 1;
    }

    /// Back-patches the length prefix and count.
    pub fn finish(self) {
        let count_at = self.at + 5 + 8;
        self.out[count_at..count_at + 4].copy_from_slice(&self.count.to_le_bytes());
        end_frame(self.out, self.at);
    }
}

/// Encodes a whole [`tag::BATCH`] frame from a slice.
pub fn encode_batch(out: &mut Vec<u8>, stream: u64, events: &[WireEvent]) {
    let mut b = BatchBuilder::begin(out, stream);
    for ev in events {
        b.push(*ev);
    }
    b.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_ingest_frame() {
        let mut out = Vec::new();
        encode_open(&mut out, 7, 3);
        encode_batch(
            &mut out,
            7,
            &[WireEvent::at(0, 1, 10), WireEvent::at(1, 0, 12)],
        );
        encode_finish(&mut out, 7);
        encode_reload(&mut out, "spec s;\nactions a;\n");
        encode_metrics_sub(&mut out, 250);

        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Open {
                stream: 7,
                start: 3
            }
        ));
        match rb.next_frame().unwrap().unwrap() {
            Frame::Batch(b) => {
                assert_eq!(b.stream, 7);
                let evs: Vec<_> = b.events().collect();
                assert_eq!(evs.len(), 2);
                assert_eq!(evs[0].action, 0);
                assert_eq!(evs[0].state, 1);
                assert_eq!(evs[0].time, Rat::from(10));
                assert_eq!(evs[1].time, Rat::from(12));
            }
            f => panic!("expected batch, got {f:?}"),
        }
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Finish { stream: 7 }
        ));
        assert!(
            matches!(rb.next_frame().unwrap().unwrap(), Frame::Reload { src } if src.starts_with("spec s;"))
        );
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Metrics { interval_ms: 250 }
        ));
        assert!(rb.next_frame().unwrap().is_none());
        assert_eq!(rb.pending(), 0);
    }

    #[test]
    fn round_trips_every_egress_frame() {
        let mut out = Vec::new();
        encode_report(&mut out, 9, "{\"stream\":9}");
        encode_metrics_snap(&mut out, "{}");
        encode_reloaded(&mut out, "{\"revision\":2}");
        encode_error(&mut out, ErrorCode::UnknownStream, "stream 4 not open");

        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Report {
                stream: 9,
                json: "{\"stream\":9}"
            }
        ));
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::MetricsSnap { json: "{}" }
        ));
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Reloaded { .. }
        ));
        match rb.next_frame().unwrap().unwrap() {
            Frame::Error { code, message } => {
                assert_eq!(code, ErrorCode::UnknownStream);
                assert_eq!(message, "stream 4 not open");
            }
            f => panic!("expected error, got {f:?}"),
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut out = Vec::new();
        encode_open(&mut out, 1, 0);
        let mut rb = RecvBuf::new(1 << 20);
        // Feed one byte at a time; only the final byte completes it.
        for (i, b) in out.iter().enumerate() {
            rb.ingest(&[*b]);
            let got = rb.next_frame().unwrap();
            if i + 1 < out.len() {
                assert!(got.is_none(), "frame completed early at byte {i}");
            } else {
                assert!(matches!(
                    got,
                    Some(Frame::Open {
                        stream: 1,
                        start: 0
                    })
                ));
            }
        }
    }

    #[test]
    fn batch_iterator_is_exact_size() {
        let mut out = Vec::new();
        let events: Vec<WireEvent> = (0..37).map(|i| WireEvent::at(0, 0, i)).collect();
        encode_batch(&mut out, 3, &events);
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        match rb.next_frame().unwrap().unwrap() {
            Frame::Batch(b) => {
                let it = b.events();
                assert_eq!(it.len(), 37);
                assert_eq!(it.count(), 37);
            }
            f => panic!("expected batch, got {f:?}"),
        }
    }

    #[test]
    fn oversized_length_is_fatal() {
        let mut rb = RecvBuf::new(1024);
        rb.ingest(&(4096u32).to_le_bytes());
        rb.ingest(&[tag::OPEN]);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Oversized);
        assert!(err.is_fatal());
    }

    #[test]
    fn zero_denominator_is_malformed_not_a_panic() {
        let mut out = Vec::new();
        encode_batch(
            &mut out,
            1,
            &[WireEvent {
                action: 0,
                state: 0,
                num: 5,
                den: 0,
            }],
        );
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Malformed);
        assert!(!err.is_fatal());
        // The malformed frame was consumed; the stream stays aligned.
        encode_finish(&mut out, 1);
        rb.ingest(&out[out.len() - 13..]);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Finish { stream: 1 }
        ));
    }

    #[test]
    fn unknown_tag_skips_one_frame() {
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&3u32.to_le_bytes());
        rb.ingest(&[0x7f, 0xaa, 0xbb]);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::UnknownTag);
        assert!(!err.is_fatal());
        let mut out = Vec::new();
        encode_finish(&mut out, 2);
        rb.ingest(&out);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Finish { stream: 2 }
        ));
    }

    #[test]
    fn zero_length_frame_is_consumed_not_repeated() {
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&0u32.to_le_bytes());
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Malformed);
        assert!(!err.is_fatal());
        // The prefix was consumed: the next call wants more bytes
        // instead of re-reporting the same error forever.
        assert!(rb.next_frame().unwrap().is_none());
        assert_eq!(rb.pending(), 0);
        // And the stream stays aligned for the next well-formed frame.
        let mut out = Vec::new();
        encode_finish(&mut out, 6);
        rb.ingest(&out);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Finish { stream: 6 }
        ));
    }

    #[test]
    fn count_mismatch_is_malformed() {
        let mut out = Vec::new();
        let at = out.len();
        // Hand-build a batch claiming 2 events but carrying 1.
        out.extend_from_slice(&[0, 0, 0, 0, tag::BATCH]);
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&[0u8; EVENT_WIRE_BYTES]);
        let len = (out.len() - at - 4) as u32;
        out[at..at + 4].copy_from_slice(&len.to_le_bytes());
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Malformed);
    }
}
