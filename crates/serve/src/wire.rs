//! The length-prefixed binary wire protocol.
//!
//! Every frame is `u32 length (LE) · u8 tag · body`, where `length`
//! counts the tag byte plus the body. All integers are little-endian.
//! Ingest frames (client → server) map 1:1 onto pool operations —
//! [`Frame::Batch`] *is* a [`StreamHandle::send_batch_exact`] call.
//!
//! Egress comes in two generations. The **v1** frames carry the
//! `serde`-encoded reports as JSON payloads; they remain the default,
//! so a legacy client needs no changes. A client that sets the
//! [`cap::BINARY_EGRESS`] capability bit on its first [`tag::OPEN`]
//! instead receives **v2** binary egress: fixed-layout little-endian
//! [`tag::REPORT2`]/[`tag::METRICS_SNAP2`] records encoded
//! allocation-free by [`ReportBuilder`] (the egress sibling of
//! [`BatchBuilder`]), with condition/action names sent once per
//! connection through an interned string table ([`tag::NAMES`]) and
//! referenced by `u32` id thereafter — a violation report is a handful
//! of integers instead of a JSON `Value` tree.
//!
//! The batch body is a packed array of 24-byte event records
//! (`u32 action · u32 state · i64 time numerator · u64 time
//! denominator`), decoded **zero-copy**: [`EventBatch::events`] is an
//! [`ExactSizeIterator`] reading events straight out of the receive
//! buffer into the pool's `Event<u32, u32>` layout, so the ingest path
//! performs no per-event allocation between the socket and the SPSC
//! ring.
//!
//! [`StreamHandle::send_batch_exact`]:
//! tempo_monitor::StreamHandle::send_batch_exact

use std::fmt;
use std::sync::Arc;

use tempo_core::{Violation, ViolationKind};
use tempo_math::Rat;
use tempo_monitor::{
    Event, Forced, MetricsSnapshot, StreamLagSnapshot, StreamReport, Warning, SLACK_BUCKETS,
};

/// Frame tags (the `u8` after the length prefix). Ingest tags have the
/// high bit clear, egress tags have it set.
pub mod tag {
    /// Client → server: open a stream (`u64 stream · u32 start state`,
    /// optionally `· u32 capability flags` — see [`cap`](super::cap)).
    pub const OPEN: u8 = 0x01;
    /// Client → server: event batch (`u64 stream · u32 count · count ×
    /// 24-byte events`).
    pub const BATCH: u8 = 0x02;
    /// Client → server: finish a stream (`u64 stream`).
    pub const FINISH: u8 = 0x03;
    /// Client → server: hot-swap the spec (UTF-8 `.tspec` source).
    pub const RELOAD: u8 = 0x04;
    /// Client → server: subscribe to metrics snapshots
    /// (`u32 interval in ms`, `0` unsubscribes).
    pub const METRICS: u8 = 0x05;
    /// Server → client: a finished stream's report (`u64 client stream
    /// id · JSON StreamReport`).
    pub const REPORT: u8 = 0x81;
    /// Server → client: a metrics snapshot (JSON MetricsSnapshot).
    pub const METRICS_SNAP: u8 = 0x82;
    /// Server → client: a reload was applied (JSON ReloadSummary).
    pub const RELOADED: u8 = 0x83;
    /// Server → client: an error (`u8 code · UTF-8 message`).
    pub const ERROR: u8 = 0x84;
    /// Server → client (v2): a finished stream's report as fixed-layout
    /// binary records (`u64 client stream id · u64 events · u8 failed ·
    /// u32×3 counts · records`). Sent only after the client requested
    /// [`cap::BINARY_EGRESS`](super::cap::BINARY_EGRESS).
    pub const REPORT2: u8 = 0x85;
    /// Server → client (v2): a metrics snapshot as fixed-layout binary
    /// counters. Sent only on binary-egress connections.
    pub const METRICS_SNAP2: u8 = 0x86;
    /// Server → client (v2): an interned-name-table delta (`u32 first
    /// id · u32 count · count × (u32 len · UTF-8 bytes)`). Always
    /// precedes the first [`REPORT2`] referencing the new ids.
    pub const NAMES: u8 = 0x87;
}

/// Capability flags carried by the optional fourth [`tag::OPEN`] field.
///
/// A capability is negotiated **at most once per connection**: the
/// first `OPEN` carrying a set bit enables it for the whole connection,
/// and any later `OPEN` requesting a bit again is answered with a
/// [`Malformed`](ErrorCode::Malformed) error (the open is rejected, the
/// connection survives). Unknown bits are malformed outright, so a
/// future server can add capabilities without ambiguity.
pub mod cap {
    /// Receive v2 binary egress ([`REPORT2`](super::tag::REPORT2) /
    /// [`METRICS_SNAP2`](super::tag::METRICS_SNAP2) with a
    /// [`NAMES`](super::tag::NAMES) string table) instead of the
    /// default JSON frames.
    pub const BINARY_EGRESS: u32 = 1 << 0;
    /// Every capability bit this protocol revision understands.
    pub const ALL: u32 = BINARY_EGRESS;
}

/// Bytes of one packed event record in a batch body.
pub const EVENT_WIRE_BYTES: usize = 24;

/// Bytes of a batch body header (`u64 stream · u32 count`).
pub const BATCH_HEADER_BYTES: usize = 12;

/// Bytes of one rational on the egress wire (`i128 num · i128 den`).
pub const RAT_WIRE_BYTES: usize = 32;

/// Bytes of one fixed-layout violation record in a [`tag::REPORT2`]
/// body (`u32 name id · u8 kind · u64 trigger · u64 event · rat`).
pub const VIOLATION_WIRE_BYTES: usize = 4 + 1 + 8 + 8 + RAT_WIRE_BYTES;

/// Bytes of one warning record (`u32 name id · u64 condition index ·
/// u64 trigger · 4 × rat`).
pub const WARNING_WIRE_BYTES: usize = 4 + 8 + 8 + 4 * RAT_WIRE_BYTES;

/// Bytes of one forced-window record (`u32 name id · u32 action id ·
/// u64 condition index · u64 trigger · 4 × rat`).
pub const FORCED_WIRE_BYTES: usize = 4 + 4 + 8 + 8 + 4 * RAT_WIRE_BYTES;

/// Bytes of a [`tag::REPORT2`] body header (`u64 stream · u64 events ·
/// u8 failed · u32 violations · u32 warnings · u32 forced`).
pub const REPORT2_HEADER_BYTES: usize = 8 + 8 + 1 + 4 + 4 + 4;

/// Stable error codes carried by [`tag::ERROR`] frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame body did not parse (short body, bad UTF-8, zero time
    /// denominator, count mismatch).
    Malformed = 1,
    /// The frame tag is not one the server understands.
    UnknownTag = 2,
    /// The declared frame length exceeds the configured maximum.
    Oversized = 3,
    /// A batch or finish referenced a stream id never opened (or
    /// already finished) on this connection.
    UnknownStream = 4,
    /// An open reused a stream id already live on this connection.
    DuplicateStream = 5,
    /// A reload's `.tspec` source failed to compile; the message
    /// carries the diagnostics.
    SpecError = 6,
    /// The stream's queue refused the events (fail-stream policy, or a
    /// blocked send cut off by shutdown). The stream is closed; its
    /// report covers the delivered prefix.
    Overload = 7,
    /// The server is shutting down and accepts no new work.
    ShuttingDown = 8,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Malformed,
            2 => ErrorCode::UnknownTag,
            3 => ErrorCode::Oversized,
            4 => ErrorCode::UnknownStream,
            5 => ErrorCode::DuplicateStream,
            6 => ErrorCode::SpecError,
            7 => ErrorCode::Overload,
            8 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// A wire-level decode failure.
///
/// [`Fatal`](WireError::is_fatal) errors poison the byte stream (frame
/// boundaries can no longer be trusted) and close the connection after
/// the error response; non-fatal errors skip the offending frame and
/// keep the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// A tag outside the protocol. Non-fatal: the frame is delimited,
    /// so it is skipped.
    UnknownTag(u8),
    /// A declared length above the maximum. Fatal: the decoder cannot
    /// skip what it will not buffer.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// Configured cap.
        max: u32,
    },
    /// A body that does not parse under its tag. Non-fatal.
    Malformed(&'static str),
}

impl WireError {
    /// The stable code to answer with.
    pub fn code(&self) -> ErrorCode {
        match self {
            WireError::UnknownTag(_) => ErrorCode::UnknownTag,
            WireError::Oversized { .. } => ErrorCode::Oversized,
            WireError::Malformed(_) => ErrorCode::Malformed,
        }
    }

    /// Whether the connection's byte stream is unrecoverable.
    pub fn is_fatal(&self) -> bool {
        matches!(self, WireError::Oversized { .. })
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnknownTag(t) => write!(f, "unknown frame tag 0x{t:02x}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A zero-copy view of a [`tag::BATCH`] body: the event records stay in
/// the receive buffer until the iterator lifts them into the ring.
#[derive(Clone, Copy, Debug)]
pub struct EventBatch<'a> {
    /// Client-chosen stream id.
    pub stream: u64,
    bytes: &'a [u8],
}

impl<'a> EventBatch<'a> {
    /// Number of events in the batch.
    pub fn len(&self) -> usize {
        self.bytes.len() / EVENT_WIRE_BYTES
    }

    /// Whether the batch carries no events.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Iterates the events, decoding each record on the fly. The
    /// iterator is exact-size, so
    /// [`send_batch_exact`](tempo_monitor::StreamHandle::send_batch_exact)
    /// can reserve ring space without collecting.
    pub fn events(&self) -> EventIter<'a> {
        EventIter { bytes: self.bytes }
    }
}

/// Iterator over a batch's packed event records. Denominators were
/// validated non-zero at frame decode, so iteration is infallible.
#[derive(Clone, Debug)]
pub struct EventIter<'a> {
    bytes: &'a [u8],
}

impl Iterator for EventIter<'_> {
    type Item = Event<u32, u32>;

    fn next(&mut self) -> Option<Event<u32, u32>> {
        if self.bytes.len() < EVENT_WIRE_BYTES {
            return None;
        }
        let (rec, rest) = self.bytes.split_at(EVENT_WIRE_BYTES);
        self.bytes = rest;
        let action = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let state = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let num = i64::from_le_bytes(rec[8..16].try_into().unwrap());
        let den = u64::from_le_bytes(rec[16..24].try_into().unwrap());
        Some(Event::new(
            action,
            Rat::new(num as i128, den as i128),
            state,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.bytes.len() / EVENT_WIRE_BYTES;
        (n, Some(n))
    }
}

impl ExactSizeIterator for EventIter<'_> {}

/// One decoded frame, borrowing string/batch payloads from the receive
/// buffer.
#[derive(Clone, Debug)]
pub enum Frame<'a> {
    /// Open a stream with a start state.
    Open {
        /// Client-chosen stream id (unique per connection).
        stream: u64,
        /// Start state handed to the stream's monitor.
        start: u32,
        /// Capability flags ([`cap`]); `0` for the legacy 12-byte body.
        caps: u32,
    },
    /// An event batch.
    Batch(EventBatch<'a>),
    /// Finish a stream and request its report.
    Finish {
        /// Client-chosen stream id.
        stream: u64,
    },
    /// Hot-swap the server's spec.
    Reload {
        /// `.tspec` source text.
        src: &'a str,
    },
    /// (Un)subscribe to periodic metrics snapshots.
    Metrics {
        /// Snapshot interval in milliseconds; `0` unsubscribes.
        interval_ms: u32,
    },
    /// Egress: a finished stream's report.
    Report {
        /// Client stream id (translated back from the pool id).
        stream: u64,
        /// JSON-encoded `StreamReport`.
        json: &'a str,
    },
    /// Egress: a metrics snapshot.
    MetricsSnap {
        /// JSON-encoded `MetricsSnapshot`.
        json: &'a str,
    },
    /// Egress: a reload was applied.
    Reloaded {
        /// JSON-encoded [`ReloadSummary`](crate::ReloadSummary).
        json: &'a str,
    },
    /// Egress: an error response.
    Error {
        /// Stable error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: &'a str,
    },
    /// Egress (v2): a finished stream's report as binary records. The
    /// body was structurally validated at parse; decode it with
    /// [`decode_report2`] once the connection's name table is current.
    Report2 {
        /// Client stream id (translated back from the pool id).
        stream: u64,
        /// The report body after the stream id (header + records).
        body: &'a [u8],
    },
    /// Egress (v2): a metrics snapshot as binary counters; decode with
    /// [`decode_metrics_snap2`].
    MetricsSnap2 {
        /// The snapshot body (structurally validated at parse).
        body: &'a [u8],
    },
    /// Egress (v2): an interned-name-table delta; apply with
    /// [`apply_names`].
    Names(NamesFrame<'a>),
}

/// A validated view of a [`tag::NAMES`] body: `count` UTF-8 entries
/// assigning ids `first_id .. first_id + count` in order.
#[derive(Clone, Copy, Debug)]
pub struct NamesFrame<'a> {
    /// Id assigned to the first entry.
    pub first_id: u32,
    /// Number of entries.
    pub count: u32,
    bytes: &'a [u8],
}

impl<'a> NamesFrame<'a> {
    /// Iterates the entries in id order. UTF-8 was validated at parse,
    /// so iteration is infallible.
    pub fn entries(&self) -> NamesIter<'a> {
        NamesIter { bytes: self.bytes }
    }
}

/// Iterator over a [`NamesFrame`]'s entries.
#[derive(Clone, Debug)]
pub struct NamesIter<'a> {
    bytes: &'a [u8],
}

impl<'a> Iterator for NamesIter<'a> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        if self.bytes.len() < 4 {
            return None;
        }
        let len = le_u32(self.bytes) as usize;
        let (entry, rest) = self.bytes[4..].split_at(len);
        self.bytes = rest;
        // Validated UTF-8 at parse time.
        Some(std::str::from_utf8(entry).expect("NAMES entries are validated UTF-8"))
    }
}

/// Extends a client-side name table with a [`tag::NAMES`] delta.
///
/// Deltas are contiguous: the frame's `first_id` must equal the current
/// table length, otherwise the server and client have lost sync and the
/// frame is rejected as malformed.
///
/// # Errors
///
/// [`WireError::Malformed`] when the delta does not start exactly at
/// the end of `table`.
pub fn apply_names(table: &mut Vec<Arc<str>>, frame: &NamesFrame<'_>) -> Result<(), WireError> {
    if frame.first_id as usize != table.len() {
        return Err(WireError::Malformed(
            "names frame does not extend the table contiguously",
        ));
    }
    table.reserve(frame.count as usize);
    for entry in frame.entries() {
        table.push(Arc::from(entry));
    }
    Ok(())
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[0..4].try_into().unwrap())
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[0..8].try_into().unwrap())
}

/// Parses one complete frame payload (tag + body, the length prefix
/// already stripped).
pub fn parse_frame(payload: &[u8]) -> Result<Frame<'_>, WireError> {
    let (&t, body) = payload
        .split_first()
        .ok_or(WireError::Malformed("empty frame payload"))?;
    match t {
        tag::OPEN => {
            let caps = match body.len() {
                12 => 0,
                16 => le_u32(&body[12..]),
                _ => return Err(WireError::Malformed("open body must be 12 or 16 bytes")),
            };
            if caps & !cap::ALL != 0 {
                return Err(WireError::Malformed(
                    "open requests unknown capability bits",
                ));
            }
            Ok(Frame::Open {
                stream: le_u64(body),
                start: le_u32(&body[8..]),
                caps,
            })
        }
        tag::BATCH => {
            if body.len() < BATCH_HEADER_BYTES {
                return Err(WireError::Malformed("batch body shorter than its header"));
            }
            let stream = le_u64(body);
            let count = le_u32(&body[8..]) as usize;
            let bytes = &body[BATCH_HEADER_BYTES..];
            if bytes.len() != count * EVENT_WIRE_BYTES {
                return Err(WireError::Malformed("batch length disagrees with count"));
            }
            // Validate denominators up front so EventIter is infallible
            // on the hot path into the ring.
            for rec in bytes.chunks_exact(EVENT_WIRE_BYTES) {
                if le_u64(&rec[16..24]) == 0 {
                    return Err(WireError::Malformed("event time denominator is zero"));
                }
            }
            Ok(Frame::Batch(EventBatch { stream, bytes }))
        }
        tag::FINISH => {
            if body.len() != 8 {
                return Err(WireError::Malformed("finish body must be 8 bytes"));
            }
            Ok(Frame::Finish {
                stream: le_u64(body),
            })
        }
        tag::RELOAD => {
            let src = std::str::from_utf8(body)
                .map_err(|_| WireError::Malformed("reload source is not UTF-8"))?;
            Ok(Frame::Reload { src })
        }
        tag::METRICS => {
            if body.len() != 4 {
                return Err(WireError::Malformed("metrics body must be 4 bytes"));
            }
            Ok(Frame::Metrics {
                interval_ms: le_u32(body),
            })
        }
        tag::REPORT => {
            if body.len() < 8 {
                return Err(WireError::Malformed("report body shorter than its header"));
            }
            let stream = le_u64(body);
            let json = std::str::from_utf8(&body[8..])
                .map_err(|_| WireError::Malformed("report payload is not UTF-8"))?;
            Ok(Frame::Report { stream, json })
        }
        tag::METRICS_SNAP => {
            let json = std::str::from_utf8(body)
                .map_err(|_| WireError::Malformed("metrics payload is not UTF-8"))?;
            Ok(Frame::MetricsSnap { json })
        }
        tag::RELOADED => {
            let json = std::str::from_utf8(body)
                .map_err(|_| WireError::Malformed("reload payload is not UTF-8"))?;
            Ok(Frame::Reloaded { json })
        }
        tag::ERROR => {
            let (&code, msg) = body
                .split_first()
                .ok_or(WireError::Malformed("error body missing its code"))?;
            let code =
                ErrorCode::from_u8(code).ok_or(WireError::Malformed("unknown error code"))?;
            let message = std::str::from_utf8(msg)
                .map_err(|_| WireError::Malformed("error message is not UTF-8"))?;
            Ok(Frame::Error { code, message })
        }
        tag::REPORT2 => {
            if body.len() < REPORT2_HEADER_BYTES {
                return Err(WireError::Malformed("report2 body shorter than its header"));
            }
            let stream = le_u64(body);
            let rest = &body[8..];
            let nv = le_u32(&rest[9..13]) as usize;
            let nw = le_u32(&rest[13..17]) as usize;
            let nf = le_u32(&rest[17..21]) as usize;
            let want = nv
                .checked_mul(VIOLATION_WIRE_BYTES)
                .and_then(|a| nw.checked_mul(WARNING_WIRE_BYTES).map(|b| (a, b)))
                .and_then(|(a, b)| nf.checked_mul(FORCED_WIRE_BYTES).map(|c| (a, b, c)))
                .and_then(|(a, b, c)| a.checked_add(b)?.checked_add(c))
                .and_then(|n| n.checked_add(REPORT2_HEADER_BYTES - 8));
            if want != Some(rest.len()) {
                return Err(WireError::Malformed(
                    "report2 length disagrees with its record counts",
                ));
            }
            Ok(Frame::Report2 { stream, body: rest })
        }
        tag::METRICS_SNAP2 => {
            validate_metrics_snap2(body)?;
            Ok(Frame::MetricsSnap2 { body })
        }
        tag::NAMES => {
            if body.len() < 8 {
                return Err(WireError::Malformed("names body shorter than its header"));
            }
            let first_id = le_u32(body);
            let count = le_u32(&body[4..]);
            if first_id.checked_add(count).is_none() {
                return Err(WireError::Malformed("names id out of range"));
            }
            let mut rest = &body[8..];
            for _ in 0..count {
                if rest.len() < 4 {
                    return Err(WireError::Malformed("names entry shorter than its header"));
                }
                let len = le_u32(rest) as usize;
                if rest.len() - 4 < len {
                    return Err(WireError::Malformed("names entry overruns the frame"));
                }
                std::str::from_utf8(&rest[4..4 + len])
                    .map_err(|_| WireError::Malformed("names entry is not UTF-8"))?;
                rest = &rest[4 + len..];
            }
            if !rest.is_empty() {
                return Err(WireError::Malformed("names body has trailing bytes"));
            }
            Ok(Frame::Names(NamesFrame {
                first_id,
                count,
                bytes: &body[8..],
            }))
        }
        other => Err(WireError::UnknownTag(other)),
    }
}

/// Structural check of a [`tag::METRICS_SNAP2`] body: every section's
/// declared count fits exactly, so [`decode_metrics_snap2`] can walk it
/// without re-validating lengths.
fn validate_metrics_snap2(body: &[u8]) -> Result<(), WireError> {
    let mut at = 0usize;
    let mut need = |n: usize| -> Result<usize, WireError> {
        let here = at;
        at = at
            .checked_add(n)
            .filter(|&hi| hi <= body.len())
            .ok_or(WireError::Malformed("metrics2 body truncated"))?;
        Ok(here)
    };
    need(8 * 8)?; // leading u64 counters
    let nb1 = le_u32(&body[need(4)?..]) as usize;
    need(nb1.checked_mul(8).ok_or(WireError::Malformed(
        "metrics2 histogram count out of range",
    ))?)?;
    need(8)?; // forced
    let nb2 = le_u32(&body[need(4)?..]) as usize;
    need(nb2.checked_mul(8).ok_or(WireError::Malformed(
        "metrics2 histogram count out of range",
    ))?)?;
    let has_slack = body[need(1)?];
    if has_slack > 1 {
        return Err(WireError::Malformed("metrics2 min-slack flag must be 0/1"));
    }
    if has_slack == 1 {
        need(RAT_WIRE_BYTES)?;
    }
    need(3 * 8)?; // batches, batched_events, max_batch
    let ns = le_u32(&body[need(4)?..]) as usize;
    need(
        ns.checked_mul(24)
            .ok_or(WireError::Malformed("metrics2 stream count out of range"))?,
    )?;
    if at != body.len() {
        return Err(WireError::Malformed("metrics2 body has trailing bytes"));
    }
    Ok(())
}

/// An accumulating receive buffer that yields complete frames.
///
/// Bytes arrive via [`ingest`](RecvBuf::ingest) (straight from a socket
/// read); [`next_frame`](RecvBuf::next_frame) yields a borrowed
/// [`Frame`] per complete frame without copying the payload. Consumed
/// bytes are compacted away on the next ingest, so a long-lived
/// connection reuses one allocation.
#[derive(Debug)]
pub struct RecvBuf {
    buf: Vec<u8>,
    start: usize,
    max_frame: u32,
}

impl RecvBuf {
    /// An empty buffer enforcing `max_frame` as the largest acceptable
    /// declared payload length.
    pub fn new(max_frame: u32) -> RecvBuf {
        RecvBuf {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Appends freshly received bytes.
    pub fn ingest(&mut self, data: &[u8]) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes received but not yet consumed as a complete frame —
    /// nonzero at EOF means the peer disconnected mid-frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Yields the next complete frame, or `None` when more bytes are
    /// needed. On a non-fatal error the offending frame is consumed
    /// (the stream stays aligned); on a fatal error the buffer is
    /// unusable and the connection should close.
    pub fn next_frame(&mut self) -> Result<Option<Frame<'_>>, WireError> {
        let avail = self.buf.len() - self.start;
        if avail < 4 {
            return Ok(None);
        }
        let len = le_u32(&self.buf[self.start..]);
        if len > self.max_frame {
            return Err(WireError::Oversized {
                len,
                max: self.max_frame,
            });
        }
        if len == 0 {
            // Consume the prefix so the error is returned once and the
            // stream stays aligned — otherwise the caller's retry loop
            // would see the same four zero bytes forever.
            self.start += 4;
            return Err(WireError::Malformed("zero-length frame"));
        }
        let total = 4 + len as usize;
        if avail < total {
            return Ok(None);
        }
        let lo = self.start + 4;
        let hi = self.start + total;
        self.start = hi;
        parse_frame(&self.buf[lo..hi]).map(Some)
    }
}

fn begin_frame(out: &mut Vec<u8>, t: u8) -> usize {
    let at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0, t]);
    at
}

fn end_frame(out: &mut [u8], at: usize) {
    let len = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes an [`tag::OPEN`] frame (legacy 12-byte body, no
/// capabilities).
pub fn encode_open(out: &mut Vec<u8>, stream: u64, start: u32) {
    let at = begin_frame(out, tag::OPEN);
    out.extend_from_slice(&stream.to_le_bytes());
    out.extend_from_slice(&start.to_le_bytes());
    end_frame(out, at);
}

/// Encodes an [`tag::OPEN`] frame with capability flags (16-byte body).
pub fn encode_open_caps(out: &mut Vec<u8>, stream: u64, start: u32, caps: u32) {
    let at = begin_frame(out, tag::OPEN);
    out.extend_from_slice(&stream.to_le_bytes());
    out.extend_from_slice(&start.to_le_bytes());
    out.extend_from_slice(&caps.to_le_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::FINISH`] frame.
pub fn encode_finish(out: &mut Vec<u8>, stream: u64) {
    let at = begin_frame(out, tag::FINISH);
    out.extend_from_slice(&stream.to_le_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::RELOAD`] frame.
pub fn encode_reload(out: &mut Vec<u8>, src: &str) {
    let at = begin_frame(out, tag::RELOAD);
    out.extend_from_slice(src.as_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::METRICS`] subscription frame.
pub fn encode_metrics_sub(out: &mut Vec<u8>, interval_ms: u32) {
    let at = begin_frame(out, tag::METRICS);
    out.extend_from_slice(&interval_ms.to_le_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::REPORT`] egress frame.
pub fn encode_report(out: &mut Vec<u8>, stream: u64, json: &str) {
    let at = begin_frame(out, tag::REPORT);
    out.extend_from_slice(&stream.to_le_bytes());
    out.extend_from_slice(json.as_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::METRICS_SNAP`] egress frame.
pub fn encode_metrics_snap(out: &mut Vec<u8>, json: &str) {
    let at = begin_frame(out, tag::METRICS_SNAP);
    out.extend_from_slice(json.as_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::RELOADED`] egress frame.
pub fn encode_reloaded(out: &mut Vec<u8>, json: &str) {
    let at = begin_frame(out, tag::RELOADED);
    out.extend_from_slice(json.as_bytes());
    end_frame(out, at);
}

/// Encodes a [`tag::ERROR`] egress frame.
pub fn encode_error(out: &mut Vec<u8>, code: ErrorCode, message: &str) {
    let at = begin_frame(out, tag::ERROR);
    out.push(code as u8);
    out.extend_from_slice(message.as_bytes());
    end_frame(out, at);
}

/// One event as the client encodes it: action/state ids plus the time
/// as an explicit 64-bit rational.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireEvent {
    /// Action id (an index into the server's action table).
    pub action: u32,
    /// Post-state id.
    pub state: u32,
    /// Time numerator.
    pub num: i64,
    /// Time denominator (must be nonzero).
    pub den: u64,
}

impl WireEvent {
    /// An event at integer time `t` (denominator 1).
    pub fn at(action: u32, state: u32, t: i64) -> WireEvent {
        WireEvent {
            action,
            state,
            num: t,
            den: 1,
        }
    }
}

/// Incrementally encodes one [`tag::BATCH`] frame into `out`.
///
/// The loadgen hot path uses this to build batches without an
/// intermediate event vector: `begin`, then `push` per event, then
/// `finish` (which back-patches the length prefix and event count).
#[derive(Debug)]
pub struct BatchBuilder<'a> {
    out: &'a mut Vec<u8>,
    at: usize,
    count: u32,
}

impl<'a> BatchBuilder<'a> {
    /// Starts a batch frame for `stream`.
    pub fn begin(out: &'a mut Vec<u8>, stream: u64) -> BatchBuilder<'a> {
        let at = begin_frame(out, tag::BATCH);
        out.extend_from_slice(&stream.to_le_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]);
        BatchBuilder { out, at, count: 0 }
    }

    /// Appends one event record.
    pub fn push(&mut self, ev: WireEvent) {
        self.out.extend_from_slice(&ev.action.to_le_bytes());
        self.out.extend_from_slice(&ev.state.to_le_bytes());
        self.out.extend_from_slice(&ev.num.to_le_bytes());
        self.out.extend_from_slice(&ev.den.to_le_bytes());
        self.count += 1;
    }

    /// Back-patches the length prefix and count.
    pub fn finish(self) {
        let count_at = self.at + 5 + 8;
        self.out[count_at..count_at + 4].copy_from_slice(&self.count.to_le_bytes());
        end_frame(self.out, self.at);
    }
}

/// Encodes a whole [`tag::BATCH`] frame from a slice.
pub fn encode_batch(out: &mut Vec<u8>, stream: u64, events: &[WireEvent]) {
    let mut b = BatchBuilder::begin(out, stream);
    for ev in events {
        b.push(*ev);
    }
    b.finish();
}

fn put_rat(out: &mut Vec<u8>, r: Rat) {
    out.extend_from_slice(&r.numer().to_le_bytes());
    out.extend_from_slice(&r.denom().to_le_bytes());
}

fn get_rat(b: &[u8]) -> Result<Rat, WireError> {
    let num = i128::from_le_bytes(b[0..16].try_into().unwrap());
    let den = i128::from_le_bytes(b[16..32].try_into().unwrap());
    if den <= 0 {
        return Err(WireError::Malformed(
            "rational denominator must be positive",
        ));
    }
    Ok(Rat::new(num, den))
}

/// Encodes a [`tag::NAMES`] delta assigning ids `first_id ..` to
/// `names` in order.
pub fn encode_names<'n>(
    out: &mut Vec<u8>,
    first_id: u32,
    names: impl IntoIterator<Item = &'n str>,
) {
    let at = begin_frame(out, tag::NAMES);
    out.extend_from_slice(&first_id.to_le_bytes());
    let count_at = out.len();
    out.extend_from_slice(&[0, 0, 0, 0]);
    let mut count = 0u32;
    for name in names {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        count += 1;
    }
    let bytes = count.to_le_bytes();
    out[count_at..count_at + 4].copy_from_slice(&bytes);
    end_frame(out, at);
}

/// Incrementally encodes one [`tag::REPORT2`] frame into `out`,
/// allocation-free — the egress sibling of [`BatchBuilder`].
///
/// Records are sectioned (violations, then warnings, then forced
/// windows) with back-patched counts, so the section order is enforced:
/// pushing a violation after a warning, or a warning after a forced
/// window, panics. Names are *not* carried here — callers intern them
/// and pass `u32` ids, emitting a [`tag::NAMES`] delta beforehand for
/// any id the peer has not seen.
#[derive(Debug)]
pub struct ReportBuilder<'a> {
    out: &'a mut Vec<u8>,
    at: usize,
    violations: u32,
    warnings: u32,
    forced: u32,
}

impl<'a> ReportBuilder<'a> {
    /// Starts a report frame for the client's `stream`.
    pub fn begin(
        out: &'a mut Vec<u8>,
        stream: u64,
        events: u64,
        failed: bool,
    ) -> ReportBuilder<'a> {
        let at = begin_frame(out, tag::REPORT2);
        out.extend_from_slice(&stream.to_le_bytes());
        out.extend_from_slice(&events.to_le_bytes());
        out.push(u8::from(failed));
        out.extend_from_slice(&[0u8; 12]); // three back-patched counts
        ReportBuilder {
            out,
            at,
            violations: 0,
            warnings: 0,
            forced: 0,
        }
    }

    /// Appends one violation record. `name_id` is the interned id of
    /// `v.condition`.
    pub fn violation(&mut self, name_id: u32, v: &Violation) {
        assert!(
            self.warnings == 0 && self.forced == 0,
            "violations precede warnings and forced windows in a REPORT2 body"
        );
        self.out.extend_from_slice(&name_id.to_le_bytes());
        match &v.kind {
            ViolationKind::UpperBound {
                trigger_index,
                deadline,
            } => {
                self.out.push(0);
                self.out
                    .extend_from_slice(&(*trigger_index as u64).to_le_bytes());
                self.out.extend_from_slice(&0u64.to_le_bytes());
                put_rat(self.out, *deadline);
            }
            ViolationKind::LowerBound {
                trigger_index,
                event_index,
                earliest,
            } => {
                self.out.push(1);
                self.out
                    .extend_from_slice(&(*trigger_index as u64).to_le_bytes());
                self.out
                    .extend_from_slice(&(*event_index as u64).to_le_bytes());
                put_rat(self.out, *earliest);
            }
        }
        self.violations += 1;
    }

    /// Appends one warning record. `name_id` is the interned id of
    /// `w.condition`.
    pub fn warning(&mut self, name_id: u32, w: &Warning) {
        assert!(
            self.forced == 0,
            "warnings precede forced windows in a REPORT2 body"
        );
        self.out.extend_from_slice(&name_id.to_le_bytes());
        self.out
            .extend_from_slice(&(w.condition_index as u64).to_le_bytes());
        self.out
            .extend_from_slice(&(w.trigger_index as u64).to_le_bytes());
        put_rat(self.out, w.deadline);
        put_rat(self.out, w.at);
        put_rat(self.out, w.slack);
        put_rat(self.out, w.horizon);
        self.warnings += 1;
    }

    /// Appends one forced-window record. `name_id`/`action_id` are the
    /// interned ids of `f.condition`/`f.action`.
    pub fn forced(&mut self, name_id: u32, action_id: u32, f: &Forced) {
        self.out.extend_from_slice(&name_id.to_le_bytes());
        self.out.extend_from_slice(&action_id.to_le_bytes());
        self.out
            .extend_from_slice(&(f.condition_index as u64).to_le_bytes());
        self.out
            .extend_from_slice(&(f.trigger_index as u64).to_le_bytes());
        put_rat(self.out, f.earliest);
        put_rat(self.out, f.at);
        put_rat(self.out, f.margin);
        put_rat(self.out, f.horizon);
        self.forced += 1;
    }

    /// Back-patches the record counts and the length prefix.
    pub fn finish(self) {
        let counts_at = self.at + 5 + 8 + 8 + 1;
        self.out[counts_at..counts_at + 4].copy_from_slice(&self.violations.to_le_bytes());
        self.out[counts_at + 4..counts_at + 8].copy_from_slice(&self.warnings.to_le_bytes());
        self.out[counts_at + 8..counts_at + 12].copy_from_slice(&self.forced.to_le_bytes());
        end_frame(self.out, self.at);
    }
}

/// Encodes a whole [`tag::REPORT2`] frame from a [`StreamReport`],
/// interning every condition/action name through `intern` (which
/// returns the name's stable `u32` id, assigning one on first sight).
///
/// The report's own `stream` field is ignored in favour of `stream` —
/// the server translates pool ids back to client ids, exactly like the
/// JSON [`tag::REPORT`] path.
pub fn encode_report2(
    out: &mut Vec<u8>,
    stream: u64,
    report: &StreamReport,
    mut intern: impl FnMut(&str) -> u32,
) {
    let mut b = ReportBuilder::begin(out, stream, report.events as u64, report.failed);
    for v in &report.violations {
        let id = intern(&v.condition);
        b.violation(id, v);
    }
    for w in &report.warnings {
        let id = intern(&w.condition);
        b.warning(id, w);
    }
    for f in &report.forced {
        let id = intern(&f.condition);
        let action = intern(&f.action);
        b.forced(id, action, f);
    }
    b.finish();
}

fn resolve_name(names: &[Arc<str>], id: u32) -> Result<Arc<str>, WireError> {
    names
        .get(id as usize)
        .cloned()
        .ok_or(WireError::Malformed("report2 name id out of range"))
}

/// Decodes a [`Frame::Report2`] body into a [`StreamReport`], resolving
/// interned name ids against the connection's accumulated `names`
/// table.
///
/// # Errors
///
/// [`WireError::Malformed`] on a name id the table does not cover or a
/// non-positive rational denominator. Record-count/length mismatches
/// were already rejected at [`parse_frame`].
pub fn decode_report2(
    stream: u64,
    body: &[u8],
    names: &[Arc<str>],
) -> Result<StreamReport, WireError> {
    let events = le_u64(body) as usize;
    let failed = body[8] != 0;
    let nv = le_u32(&body[9..]) as usize;
    let nw = le_u32(&body[13..]) as usize;
    let nf = le_u32(&body[17..]) as usize;
    let mut at = REPORT2_HEADER_BYTES - 8;

    let mut violations = Vec::with_capacity(nv);
    for _ in 0..nv {
        let rec = &body[at..at + VIOLATION_WIRE_BYTES];
        at += VIOLATION_WIRE_BYTES;
        let condition = resolve_name(names, le_u32(rec))?;
        let trigger_index = le_u64(&rec[5..]) as usize;
        let event_index = le_u64(&rec[13..]) as usize;
        let bound = get_rat(&rec[21..])?;
        let kind = match rec[4] {
            0 => ViolationKind::UpperBound {
                trigger_index,
                deadline: bound,
            },
            1 => ViolationKind::LowerBound {
                trigger_index,
                event_index,
                earliest: bound,
            },
            _ => return Err(WireError::Malformed("unknown violation kind")),
        };
        violations.push(Violation {
            condition: condition.to_string(),
            kind,
        });
    }

    let mut warnings = Vec::with_capacity(nw);
    for _ in 0..nw {
        let rec = &body[at..at + WARNING_WIRE_BYTES];
        at += WARNING_WIRE_BYTES;
        warnings.push(Warning {
            condition: resolve_name(names, le_u32(rec))?,
            condition_index: le_u64(&rec[4..]) as usize,
            trigger_index: le_u64(&rec[12..]) as usize,
            deadline: get_rat(&rec[20..])?,
            at: get_rat(&rec[52..])?,
            slack: get_rat(&rec[84..])?,
            horizon: get_rat(&rec[116..])?,
        });
    }

    let mut forced = Vec::with_capacity(nf);
    for _ in 0..nf {
        let rec = &body[at..at + FORCED_WIRE_BYTES];
        at += FORCED_WIRE_BYTES;
        forced.push(Forced {
            condition: resolve_name(names, le_u32(rec))?,
            action: resolve_name(names, le_u32(&rec[4..]))?,
            condition_index: le_u64(&rec[8..]) as usize,
            trigger_index: le_u64(&rec[16..]) as usize,
            earliest: get_rat(&rec[24..])?,
            at: get_rat(&rec[56..])?,
            margin: get_rat(&rec[88..])?,
            horizon: get_rat(&rec[120..])?,
        });
    }

    Ok(StreamReport {
        stream,
        events,
        violations,
        warnings,
        forced,
        failed,
    })
}

/// Encodes a [`tag::METRICS_SNAP2`] frame, allocation-free given spare
/// capacity in `out`.
pub fn encode_metrics_snap2(out: &mut Vec<u8>, snap: &MetricsSnapshot) {
    let at = begin_frame(out, tag::METRICS_SNAP2);
    for v in [
        snap.events,
        snap.obligations_opened,
        snap.obligations_discharged,
        snap.obligations_violated,
        snap.max_queue_depth,
        snap.dropped_events,
        snap.failed_streams,
        snap.warnings,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(SLACK_BUCKETS as u32).to_le_bytes());
    for b in snap.warning_slack_hist {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out.extend_from_slice(&snap.forced.to_le_bytes());
    out.extend_from_slice(&(SLACK_BUCKETS as u32).to_le_bytes());
    for b in snap.forced_margin_hist {
        out.extend_from_slice(&b.to_le_bytes());
    }
    match snap.min_slack {
        Some(s) => {
            out.push(1);
            put_rat(out, s);
        }
        None => out.push(0),
    }
    for v in [snap.batches, snap.batched_events, snap.max_batch] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(snap.streams.len() as u32).to_le_bytes());
    for s in &snap.streams {
        out.extend_from_slice(&s.stream.to_le_bytes());
        out.extend_from_slice(&s.enqueued.to_le_bytes());
        out.extend_from_slice(&s.lag.to_le_bytes());
    }
    end_frame(out, at);
}

/// Decodes a [`Frame::MetricsSnap2`] body into a [`MetricsSnapshot`].
///
/// # Errors
///
/// [`WireError::Malformed`] when a histogram does not have exactly
/// [`SLACK_BUCKETS`] buckets (mirroring the JSON decoder's length
/// check) or a rational denominator is non-positive.
pub fn decode_metrics_snap2(body: &[u8]) -> Result<MetricsSnapshot, WireError> {
    let mut snap = MetricsSnapshot::default();
    let mut at = 0usize;
    let take_u64 = |at: &mut usize| -> u64 {
        let v = le_u64(&body[*at..]);
        *at += 8;
        v
    };
    snap.events = take_u64(&mut at);
    snap.obligations_opened = take_u64(&mut at);
    snap.obligations_discharged = take_u64(&mut at);
    snap.obligations_violated = take_u64(&mut at);
    snap.max_queue_depth = take_u64(&mut at);
    snap.dropped_events = take_u64(&mut at);
    snap.failed_streams = take_u64(&mut at);
    snap.warnings = take_u64(&mut at);

    let take_hist = |at: &mut usize| -> Result<[u64; SLACK_BUCKETS], WireError> {
        let nb = le_u32(&body[*at..]) as usize;
        *at += 4;
        if nb != SLACK_BUCKETS {
            return Err(WireError::Malformed(
                "metrics2 histogram bucket count mismatch",
            ));
        }
        let mut hist = [0u64; SLACK_BUCKETS];
        for h in &mut hist {
            *h = le_u64(&body[*at..]);
            *at += 8;
        }
        Ok(hist)
    };
    snap.warning_slack_hist = take_hist(&mut at)?;
    snap.forced = take_u64(&mut at);
    snap.forced_margin_hist = take_hist(&mut at)?;

    if body[at] == 1 {
        snap.min_slack = Some(get_rat(&body[at + 1..])?);
        at += 1 + RAT_WIRE_BYTES;
    } else {
        at += 1;
    }
    snap.batches = take_u64(&mut at);
    snap.batched_events = take_u64(&mut at);
    snap.max_batch = take_u64(&mut at);

    let ns = le_u32(&body[at..]) as usize;
    at += 4;
    snap.streams = Vec::with_capacity(ns);
    for _ in 0..ns {
        snap.streams.push(StreamLagSnapshot {
            stream: take_u64(&mut at),
            enqueued: take_u64(&mut at),
            lag: take_u64(&mut at),
        });
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_ingest_frame() {
        let mut out = Vec::new();
        encode_open(&mut out, 7, 3);
        encode_batch(
            &mut out,
            7,
            &[WireEvent::at(0, 1, 10), WireEvent::at(1, 0, 12)],
        );
        encode_finish(&mut out, 7);
        encode_reload(&mut out, "spec s;\nactions a;\n");
        encode_metrics_sub(&mut out, 250);

        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Open {
                stream: 7,
                start: 3,
                caps: 0
            }
        ));
        match rb.next_frame().unwrap().unwrap() {
            Frame::Batch(b) => {
                assert_eq!(b.stream, 7);
                let evs: Vec<_> = b.events().collect();
                assert_eq!(evs.len(), 2);
                assert_eq!(evs[0].action, 0);
                assert_eq!(evs[0].state, 1);
                assert_eq!(evs[0].time, Rat::from(10));
                assert_eq!(evs[1].time, Rat::from(12));
            }
            f => panic!("expected batch, got {f:?}"),
        }
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Finish { stream: 7 }
        ));
        assert!(
            matches!(rb.next_frame().unwrap().unwrap(), Frame::Reload { src } if src.starts_with("spec s;"))
        );
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Metrics { interval_ms: 250 }
        ));
        assert!(rb.next_frame().unwrap().is_none());
        assert_eq!(rb.pending(), 0);
    }

    #[test]
    fn round_trips_every_egress_frame() {
        let mut out = Vec::new();
        encode_report(&mut out, 9, "{\"stream\":9}");
        encode_metrics_snap(&mut out, "{}");
        encode_reloaded(&mut out, "{\"revision\":2}");
        encode_error(&mut out, ErrorCode::UnknownStream, "stream 4 not open");

        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Report {
                stream: 9,
                json: "{\"stream\":9}"
            }
        ));
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::MetricsSnap { json: "{}" }
        ));
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Reloaded { .. }
        ));
        match rb.next_frame().unwrap().unwrap() {
            Frame::Error { code, message } => {
                assert_eq!(code, ErrorCode::UnknownStream);
                assert_eq!(message, "stream 4 not open");
            }
            f => panic!("expected error, got {f:?}"),
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut out = Vec::new();
        encode_open(&mut out, 1, 0);
        let mut rb = RecvBuf::new(1 << 20);
        // Feed one byte at a time; only the final byte completes it.
        for (i, b) in out.iter().enumerate() {
            rb.ingest(&[*b]);
            let got = rb.next_frame().unwrap();
            if i + 1 < out.len() {
                assert!(got.is_none(), "frame completed early at byte {i}");
            } else {
                assert!(matches!(
                    got,
                    Some(Frame::Open {
                        stream: 1,
                        start: 0,
                        caps: 0
                    })
                ));
            }
        }
    }

    #[test]
    fn batch_iterator_is_exact_size() {
        let mut out = Vec::new();
        let events: Vec<WireEvent> = (0..37).map(|i| WireEvent::at(0, 0, i)).collect();
        encode_batch(&mut out, 3, &events);
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        match rb.next_frame().unwrap().unwrap() {
            Frame::Batch(b) => {
                let it = b.events();
                assert_eq!(it.len(), 37);
                assert_eq!(it.count(), 37);
            }
            f => panic!("expected batch, got {f:?}"),
        }
    }

    #[test]
    fn oversized_length_is_fatal() {
        let mut rb = RecvBuf::new(1024);
        rb.ingest(&(4096u32).to_le_bytes());
        rb.ingest(&[tag::OPEN]);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Oversized);
        assert!(err.is_fatal());
    }

    #[test]
    fn zero_denominator_is_malformed_not_a_panic() {
        let mut out = Vec::new();
        encode_batch(
            &mut out,
            1,
            &[WireEvent {
                action: 0,
                state: 0,
                num: 5,
                den: 0,
            }],
        );
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Malformed);
        assert!(!err.is_fatal());
        // The malformed frame was consumed; the stream stays aligned.
        encode_finish(&mut out, 1);
        rb.ingest(&out[out.len() - 13..]);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Finish { stream: 1 }
        ));
    }

    #[test]
    fn unknown_tag_skips_one_frame() {
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&3u32.to_le_bytes());
        rb.ingest(&[0x7f, 0xaa, 0xbb]);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::UnknownTag);
        assert!(!err.is_fatal());
        let mut out = Vec::new();
        encode_finish(&mut out, 2);
        rb.ingest(&out);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Finish { stream: 2 }
        ));
    }

    #[test]
    fn zero_length_frame_is_consumed_not_repeated() {
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&0u32.to_le_bytes());
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Malformed);
        assert!(!err.is_fatal());
        // The prefix was consumed: the next call wants more bytes
        // instead of re-reporting the same error forever.
        assert!(rb.next_frame().unwrap().is_none());
        assert_eq!(rb.pending(), 0);
        // And the stream stays aligned for the next well-formed frame.
        let mut out = Vec::new();
        encode_finish(&mut out, 6);
        rb.ingest(&out);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Finish { stream: 6 }
        ));
    }

    #[test]
    fn open_capability_flags_round_trip_and_unknown_bits_are_malformed() {
        let mut out = Vec::new();
        encode_open_caps(&mut out, 5, 2, cap::BINARY_EGRESS);
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        assert!(matches!(
            rb.next_frame().unwrap().unwrap(),
            Frame::Open {
                stream: 5,
                start: 2,
                caps: cap::BINARY_EGRESS
            }
        ));

        let mut out = Vec::new();
        encode_open_caps(&mut out, 5, 2, 1 << 17);
        rb.ingest(&out);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Malformed);
        assert!(!err.is_fatal());
    }

    fn sample_report() -> StreamReport {
        StreamReport {
            stream: 0,
            events: 12,
            violations: vec![
                Violation {
                    condition: "deadline".to_string(),
                    kind: ViolationKind::UpperBound {
                        trigger_index: 3,
                        deadline: Rat::new(7, 2),
                    },
                },
                Violation {
                    condition: "window".to_string(),
                    kind: ViolationKind::LowerBound {
                        trigger_index: 1,
                        event_index: 4,
                        earliest: Rat::from(9),
                    },
                },
            ],
            warnings: vec![Warning {
                condition: "deadline".into(),
                condition_index: 0,
                trigger_index: 3,
                deadline: Rat::new(7, 2),
                at: Rat::new(5, 2),
                slack: Rat::from(1),
                horizon: Rat::from(1),
            }],
            forced: vec![Forced {
                condition: "window".into(),
                condition_index: 1,
                action: "SERVE".into(),
                trigger_index: 1,
                earliest: Rat::from(9),
                at: Rat::from(4),
                margin: Rat::from(5),
                horizon: Rat::from(2),
            }],
            failed: true,
        }
    }

    /// A minimal client-side interner for tests: ids in first-sight
    /// order, like the server's.
    fn intern_all(report: &StreamReport) -> Vec<Arc<str>> {
        let mut names: Vec<Arc<str>> = Vec::new();
        let mut intern = |s: &str| {
            if let Some(i) = names.iter().position(|n| &**n == s) {
                i as u32
            } else {
                names.push(Arc::from(s));
                (names.len() - 1) as u32
            }
        };
        let mut sink = Vec::new();
        encode_report2(&mut sink, 0, report, &mut intern);
        names
    }

    #[test]
    fn report2_round_trips_through_names_and_records() {
        let report = sample_report();
        let names = intern_all(&report);

        let mut out = Vec::new();
        encode_names(&mut out, 0, names.iter().map(|n| &**n));
        let mut next = |s: &str| names.iter().position(|n| &**n == s).unwrap() as u32;
        encode_report2(&mut out, 42, &report, &mut next);

        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        let mut table: Vec<Arc<str>> = Vec::new();
        match rb.next_frame().unwrap().unwrap() {
            Frame::Names(nf) => apply_names(&mut table, &nf).unwrap(),
            f => panic!("expected names, got {f:?}"),
        }
        assert_eq!(table.len(), names.len());
        match rb.next_frame().unwrap().unwrap() {
            Frame::Report2 { stream, body } => {
                assert_eq!(stream, 42);
                let decoded = decode_report2(stream, body, &table).unwrap();
                let expected = StreamReport {
                    stream: 42,
                    ..report
                };
                assert_eq!(decoded, expected);
            }
            f => panic!("expected report2, got {f:?}"),
        }
    }

    #[test]
    fn truncated_report2_is_malformed() {
        let report = sample_report();
        let names = intern_all(&report);
        let mut out = Vec::new();
        let mut next = |s: &str| names.iter().position(|n| &**n == s).unwrap() as u32;
        encode_report2(&mut out, 42, &report, &mut next);
        // Chop one byte off the body and fix up the length prefix.
        out.truncate(out.len() - 1);
        let len = (out.len() - 4) as u32;
        out[0..4].copy_from_slice(&len.to_le_bytes());
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Malformed);
        assert!(!err.is_fatal());
    }

    #[test]
    fn report2_name_id_out_of_table_is_malformed() {
        let report = sample_report();
        let names = intern_all(&report);
        let mut out = Vec::new();
        let mut next = |s: &str| names.iter().position(|n| &**n == s).unwrap() as u32;
        encode_report2(&mut out, 42, &report, &mut next);
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        match rb.next_frame().unwrap().unwrap() {
            // Decode against an empty table: every id is out of range.
            Frame::Report2 { stream, body } => {
                let err = decode_report2(stream, body, &[]).unwrap_err();
                assert_eq!(err.code(), ErrorCode::Malformed);
            }
            f => panic!("expected report2, got {f:?}"),
        }
    }

    #[test]
    fn names_id_overflow_is_malformed() {
        let mut out = Vec::new();
        let at = out.len();
        out.extend_from_slice(&[0, 0, 0, 0, tag::NAMES]);
        out.extend_from_slice(&u32::MAX.to_le_bytes()); // first_id
        out.extend_from_slice(&2u32.to_le_bytes()); // count: overflows
        out.extend_from_slice(&1u32.to_le_bytes());
        out.push(b'a');
        out.extend_from_slice(&1u32.to_le_bytes());
        out.push(b'b');
        let len = (out.len() - at - 4) as u32;
        out[at..at + 4].copy_from_slice(&len.to_le_bytes());
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Malformed);
        assert!(!err.is_fatal());
    }

    #[test]
    fn names_must_extend_the_table_contiguously() {
        let mut out = Vec::new();
        encode_names(&mut out, 3, ["late"]);
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        match rb.next_frame().unwrap().unwrap() {
            Frame::Names(nf) => {
                let mut table: Vec<Arc<str>> = Vec::new();
                let err = apply_names(&mut table, &nf).unwrap_err();
                assert_eq!(err.code(), ErrorCode::Malformed);
                assert!(table.is_empty());
            }
            f => panic!("expected names, got {f:?}"),
        }
    }

    #[test]
    fn metrics_snap2_round_trips() {
        let mut snap = MetricsSnapshot {
            events: 1_000_000,
            obligations_opened: 500,
            obligations_discharged: 400,
            obligations_violated: 50,
            max_queue_depth: 64,
            dropped_events: 3,
            failed_streams: 1,
            warnings: 7,
            forced: 2,
            min_slack: Some(Rat::new(-3, 7)),
            batches: 99,
            batched_events: 990,
            max_batch: 16,
            streams: vec![
                StreamLagSnapshot {
                    stream: 0,
                    enqueued: 10,
                    lag: 2,
                },
                StreamLagSnapshot {
                    stream: 9,
                    enqueued: 5,
                    lag: 0,
                },
            ],
            ..MetricsSnapshot::default()
        };
        snap.warning_slack_hist[1] = 4;
        snap.forced_margin_hist[4] = 2;

        for min_slack in [Some(Rat::new(-3, 7)), None] {
            snap.min_slack = min_slack;
            let mut out = Vec::new();
            encode_metrics_snap2(&mut out, &snap);
            let mut rb = RecvBuf::new(1 << 20);
            rb.ingest(&out);
            match rb.next_frame().unwrap().unwrap() {
                Frame::MetricsSnap2 { body } => {
                    assert_eq!(decode_metrics_snap2(body).unwrap(), snap);
                }
                f => panic!("expected metrics2, got {f:?}"),
            }
        }
    }

    #[test]
    fn report_builder_enforces_section_order() {
        let report = sample_report();
        let mut out = Vec::new();
        let mut b = ReportBuilder::begin(&mut out, 1, 2, false);
        b.warning(0, &report.warnings[0]);
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.violation(0, &report.violations[0]);
        }));
        assert!(panicked.is_err(), "violation after warning must panic");
    }

    #[test]
    fn count_mismatch_is_malformed() {
        let mut out = Vec::new();
        let at = out.len();
        // Hand-build a batch claiming 2 events but carrying 1.
        out.extend_from_slice(&[0, 0, 0, 0, tag::BATCH]);
        out.extend_from_slice(&1u64.to_le_bytes());
        out.extend_from_slice(&2u32.to_le_bytes());
        out.extend_from_slice(&[0u8; EVENT_WIRE_BYTES]);
        let len = (out.len() - at - 4) as u32;
        out[at..at + 4].copy_from_slice(&len.to_le_bytes());
        let mut rb = RecvBuf::new(1 << 20);
        rb.ingest(&out);
        let err = rb.next_frame().unwrap_err();
        assert_eq!(err.code(), ErrorCode::Malformed);
    }
}
