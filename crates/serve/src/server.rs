//! The ingest server: non-blocking acceptor, I/O worker threads, and
//! the verdict/metrics egress loop, all over one [`MonitorPool`].
//!
//! # Threading model
//!
//! * **Acceptor** — one thread on a non-blocking listener; accepted
//!   sockets are registered in the connection slab and handed to an I/O
//!   thread round robin.
//! * **I/O threads** — a fixed set (`ServeConfig::io_threads`), each
//!   owning its connections outright: it reads, decodes frames out of
//!   the connection's [`RecvBuf`], and pushes event batches *directly*
//!   into the pool's SPSC rings via the stream's [`StreamHandle`] — the
//!   zero-copy path is socket buffer → [`EventBatch`] iterator → ring
//!   slot, with no intermediate event vector. Each socket has exactly
//!   one writing thread (its I/O thread), which also drains the
//!   connection's egress outbox filled by the egress thread.
//! * **Pool workers** — the [`MonitorPool`]'s own threads, untouched.
//! * **Egress** — one thread polling
//!   [`drain_finished`](MonitorPool::drain_finished) for stream reports
//!   and serving metrics subscriptions from a single reused
//!   [`MetricsSnapshot`] buffer
//!   ([`snapshot_into`](tempo_monitor::MonitorMetrics::snapshot_into)).
//!   Connections that negotiated [`cap::BINARY_EGRESS`] on `OPEN` get
//!   fixed-layout `REPORT2`/`METRICS_SNAP2` frames (names interned
//!   once per connection via `NAMES`) encoded into reused scratch;
//!   everyone else keeps the v1 JSON frames. Either way a metrics
//!   snapshot is encoded at most once per tick per mode and the frozen
//!   bytes are shared across every due subscriber's outbox.
//!
//! # Placement
//!
//! New streams are pinned to pool workers through the consistent-hash
//! [`HashRing`]: [`Server::drain_worker`] /
//! [`Server::restore_worker`] rebalance *future* stream placement with
//! minimal movement, while live streams stay on their worker (the rings
//! are single-consumer).
//!
//! # Backpressure
//!
//! The pool's [`OverloadPolicy`](tempo_monitor::OverloadPolicy) is the
//! backpressure story end to end: `Block` stalls the I/O thread on the
//! stream's full ring (TCP backpressure propagates to the client),
//! `DropOldest` sheds per-stream load invisibly, and `FailStream`
//! surfaces as an [`ErrorCode::Overload`] egress frame and a closed
//! stream whose report covers the delivered prefix.

use std::collections::HashMap;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use serde::ser::Error as SerError;
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value, ValueError};
use tempo_core::serde_util::{FieldMap, MapBuilder};
use tempo_monitor::{
    MetricsSnapshot, MonitorMetrics, MonitorPool, PoolConfig, PoolReport, StreamHandle,
};
use tempo_spec::{Diagnostic, MapBinder, SpecRevision};

use crate::placement::HashRing;
use crate::wire::{
    cap, encode_error, encode_metrics_snap, encode_metrics_snap2, encode_names, encode_reloaded,
    encode_report, encode_report2, ErrorCode, EventBatch, Frame, RecvBuf,
};

/// Monitor state type served over the wire (a state id).
pub type WireState = u32;
/// Monitor action type served over the wire (an action-table index).
pub type WireAction = u32;
/// The pool type the server runs.
pub type WirePool = MonitorPool<WireState, WireAction>;
/// The binder resolving `.tspec` names for the server's pool.
pub type WireBinder = MapBinder<WireState, WireAction>;

/// Server configuration.
pub struct ServeConfig {
    /// Listen address (`"127.0.0.1:0"` picks a free loopback port).
    pub addr: String,
    /// Number of socket I/O threads (clamped to at least 1).
    pub io_threads: usize,
    /// The monitor pool's own sizing/overload configuration.
    pub pool: PoolConfig,
    /// Initial `.tspec` source compiled at startup.
    pub spec_src: String,
    /// Resolves the spec's action (and predicate) names; shared with
    /// every later reload-over-the-wire.
    pub binder: Arc<WireBinder>,
    /// Largest acceptable frame payload (tag + body), in bytes.
    pub max_frame: u32,
    /// Virtual nodes per worker on the placement ring.
    pub vnodes: usize,
    /// Cap on a connection's queued egress bytes (outbox plus
    /// unflushed socket writes). A client that provokes replies or
    /// subscribes to metrics but never reads hits the cap and is
    /// disconnected instead of growing server memory without bound.
    pub max_conn_egress: usize,
}

impl ServeConfig {
    /// A loopback config for `spec_src` whose action names resolve to
    /// their index in `actions` — the common case where the wire's
    /// `u32` action ids are indices into a shared action table.
    pub fn new(spec_src: impl Into<String>, actions: &[&str]) -> ServeConfig {
        let table: Vec<String> = actions.iter().map(|s| s.to_string()).collect();
        let binder = MapBinder::new(move |name: &str| {
            table.iter().position(|a| a == name).map(|i| i as u32)
        });
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            io_threads: 2,
            pool: PoolConfig::default(),
            spec_src: spec_src.into(),
            binder: Arc::new(binder),
            max_frame: 1 << 20,
            vnodes: 64,
            max_conn_egress: 8 << 20,
        }
    }
}

/// Why the server could not start or reload.
#[derive(Debug)]
pub enum ServeError {
    /// Socket setup failed.
    Io(std::io::Error),
    /// The `.tspec` source failed to compile.
    Spec(Vec<Diagnostic>),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Spec(diags) => {
                write!(f, "spec failed to compile:")?;
                for d in diags {
                    write!(f, " [{}] {};", d.code, d.message)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// What a successful reload-over-the-wire did (the [`tag::RELOADED`]
/// payload).
///
/// [`tag::RELOADED`]: crate::wire::tag::RELOADED
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReloadSummary {
    /// The new spec's declared name.
    pub spec: String,
    /// Monotone revision counter (the initial spec is revision 1).
    pub revision: u64,
    /// Worker threads that acknowledged the swap.
    pub workers: usize,
    /// Live streams swapped onto the new set.
    pub streams: usize,
    /// Open obligations carried forward across the swap.
    pub carried: usize,
    /// Obligations dropped because their condition left the spec.
    pub dropped: usize,
    /// Compile warnings that rode along.
    pub warnings: usize,
}

impl Serialize for ReloadSummary {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let encode = || -> Result<Value, ValueError> {
            let mut m = MapBuilder::new();
            m.put("spec", &self.spec)?;
            m.put("revision", &self.revision)?;
            m.put("workers", &self.workers)?;
            m.put("streams", &self.streams)?;
            m.put("carried", &self.carried)?;
            m.put("dropped", &self.dropped)?;
            m.put("warnings", &self.warnings)?;
            Ok(m.finish())
        };
        serializer.serialize_value(encode().map_err(S::Error::custom)?)
    }
}

impl<'de> Deserialize<'de> for ReloadSummary {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<ReloadSummary, D::Error> {
        let mut m =
            FieldMap::<D::Error>::new(deserializer.deserialize_value()?, "a reload summary")?;
        Ok(ReloadSummary {
            spec: m.take("spec")?,
            revision: m.take("revision")?,
            workers: m.take("workers")?,
            streams: m.take("streams")?,
            carried: m.take("carried")?,
            dropped: m.take("dropped")?,
            warnings: m.take("warnings")?,
        })
    }
}

/// Per-connection state shared between its I/O thread and the egress
/// thread.
struct ConnShared {
    /// Egress frames queued by the egress thread; the connection's I/O
    /// thread (the socket's only writer) drains this into the socket.
    outbox: Mutex<Vec<u8>>,
    /// Metrics subscription interval in ms (`0` = none).
    metrics_every_ms: AtomicU32,
    /// When the egress thread last sent this connection a metrics
    /// snapshot. Lives here (not keyed by slab slot) so it dies with
    /// the connection instead of leaking into whichever connection
    /// reuses the slot. Only the egress thread touches it.
    last_snap: Mutex<Option<Instant>>,
    /// Capability bits negotiated on `OPEN` ([`cap`]); each bit can be
    /// granted at most once per connection.
    caps: AtomicU32,
    /// How many interned names this connection has been sent (a prefix
    /// of the server's [`NameIntern`] table). Only the egress thread
    /// advances it, and only after the `NAMES` delta actually shipped.
    names_sent: AtomicU32,
    /// Set when the I/O thread retired the connection.
    closed: AtomicBool,
}

/// A connection handed from the acceptor to an I/O thread.
struct NewConn {
    tcp: TcpStream,
    slot: usize,
    shared: Arc<ConnShared>,
}

/// State fully owned by one I/O thread.
struct ConnState {
    tcp: TcpStream,
    slot: usize,
    shared: Arc<ConnShared>,
    recv: RecvBuf,
    /// Live streams: client id → pool handle.
    streams: HashMap<u64, StreamHandle<WireState, WireAction>>,
    /// Bytes awaiting a writable socket (error replies + drained
    /// outbox).
    write_pending: Vec<u8>,
    dead: bool,
}

/// Server-wide condition/action name interner backing the `NAMES`
/// frame: ids are assigned in first-sight order and never reused, so
/// every connection's name table is a prefix of this one and a `NAMES`
/// delta is always a contiguous suffix.
#[derive(Default)]
struct NameIntern {
    ids: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

impl NameIntern {
    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let arc: Arc<str> = Arc::from(name);
        self.ids.insert(Arc::clone(&arc), id);
        self.names.push(arc);
        id
    }
}

/// State shared across all server threads.
struct Shared {
    pool: Mutex<Option<WirePool>>,
    binder: Arc<WireBinder>,
    routes: Mutex<HashMap<u64, Route>>,
    conns: Mutex<Slab>,
    placement: Mutex<HashRing>,
    names: Mutex<NameIntern>,
    metrics: Arc<MonitorMetrics>,
    revision: AtomicU64,
    shutdown: AtomicBool,
    max_frame: u32,
    max_conn_egress: usize,
}

/// Where a pool stream's report should be delivered. Holds the
/// connection identity itself — slab slots are reused, so a slot index
/// could misroute a retired connection's report to whichever new
/// connection inherited the slot.
struct Route {
    conn: Arc<ConnShared>,
    client_stream: u64,
}

/// Connection slab: the egress loop's view of live connections (for
/// metrics subscriptions). Slots are reused, so anything that must
/// survive a connection's retirement holds the `Arc<ConnShared>`
/// itself, never a slot index.
#[derive(Default)]
struct Slab {
    conns: Vec<Option<Arc<ConnShared>>>,
    free: Vec<usize>,
}

impl Slab {
    fn insert(&mut self, conn: Arc<ConnShared>) -> usize {
        if let Some(slot) = self.free.pop() {
            self.conns[slot] = Some(conn);
            slot
        } else {
            self.conns.push(Some(conn));
            self.conns.len() - 1
        }
    }

    fn remove(&mut self, slot: usize) {
        if let Some(entry) = self.conns.get_mut(slot) {
            if entry.take().is_some() {
                self.free.push(slot);
            }
        }
    }

    fn get(&self, slot: usize) -> Option<Arc<ConnShared>> {
        self.conns.get(slot).and_then(Clone::clone)
    }
}

/// A running ingest server.
///
/// Dropping the handle does **not** stop the server; call
/// [`shutdown`](Server::shutdown) for the final [`PoolReport`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: JoinHandle<()>,
    io: Vec<JoinHandle<()>>,
    egress: JoinHandle<()>,
}

impl Server {
    /// Compiles the initial spec, binds the listener, and spawns the
    /// acceptor, I/O, and egress threads.
    pub fn start(config: ServeConfig) -> Result<Server, ServeError> {
        let rev: SpecRevision<WireState, WireAction> =
            SpecRevision::compile(&config.spec_src, &*config.binder).map_err(ServeError::Spec)?;
        let pool = MonitorPool::from_compiled(Arc::clone(rev.compiled()), config.pool);
        let metrics = pool.metrics();
        let workers = pool.workers();

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let shared = Arc::new(Shared {
            pool: Mutex::new(Some(pool)),
            binder: Arc::clone(&config.binder),
            routes: Mutex::new(HashMap::new()),
            conns: Mutex::new(Slab::default()),
            placement: Mutex::new(HashRing::with_workers(workers, config.vnodes)),
            names: Mutex::new(NameIntern::default()),
            metrics,
            revision: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            max_frame: config.max_frame,
            max_conn_egress: config.max_conn_egress.max(1),
        });

        let io_threads = config.io_threads.max(1);
        let injectors: Vec<Arc<Mutex<Vec<NewConn>>>> = (0..io_threads)
            .map(|_| Arc::new(Mutex::new(Vec::new())))
            .collect();

        let io = injectors
            .iter()
            .map(|inj| {
                let shared = Arc::clone(&shared);
                let inj = Arc::clone(inj);
                thread::spawn(move || io_loop(&shared, &inj))
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&shared, &listener, &injectors))
        };

        let egress = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || egress_loop(&shared))
        };

        Ok(Server {
            shared,
            local_addr,
            acceptor,
            io,
            egress,
        })
    }

    /// The bound address (with the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The pool's live metrics registry.
    pub fn metrics(&self) -> Arc<MonitorMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Takes worker `w` out of future stream placement (live streams
    /// stay). Returns whether the ring changed.
    pub fn drain_worker(&self, w: u32) -> bool {
        let mut ring = self.shared.placement.lock().expect("placement poisoned");
        if !ring.contains(w) || ring.workers() == 1 {
            return false;
        }
        ring.remove_worker(w);
        true
    }

    /// Restores worker `w` into stream placement. Returns whether the
    /// ring changed.
    pub fn restore_worker(&self, w: u32) -> bool {
        let pool_workers = {
            let g = self.shared.pool.lock().expect("pool poisoned");
            g.as_ref().map(MonitorPool::workers).unwrap_or(0)
        };
        if (w as usize) >= pool_workers {
            return false;
        }
        let mut ring = self.shared.placement.lock().expect("placement poisoned");
        if ring.contains(w) {
            return false;
        }
        ring.add_worker(w);
        true
    }

    /// Stops accepting, retires every connection (finishing its live
    /// streams), drains the pool, and returns the final report.
    /// Reports already streamed out by the egress loop are not
    /// repeated.
    pub fn shutdown(self) -> PoolReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.acceptor.join().expect("acceptor thread panicked");
        for th in self.io {
            th.join().expect("io thread panicked");
        }
        self.egress.join().expect("egress thread panicked");
        let pool = self
            .shared
            .pool
            .lock()
            .expect("pool poisoned")
            .take()
            .expect("pool already shut down");
        pool.shutdown()
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener, injectors: &[Arc<Mutex<Vec<NewConn>>>]) {
    let mut next = 0usize;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((tcp, _)) => {
                let _ = tcp.set_nodelay(true);
                if tcp.set_nonblocking(true).is_err() {
                    continue;
                }
                let conn = Arc::new(ConnShared {
                    outbox: Mutex::new(Vec::new()),
                    metrics_every_ms: AtomicU32::new(0),
                    last_snap: Mutex::new(None),
                    caps: AtomicU32::new(0),
                    names_sent: AtomicU32::new(0),
                    closed: AtomicBool::new(false),
                });
                let slot = shared
                    .conns
                    .lock()
                    .expect("conn slab poisoned")
                    .insert(Arc::clone(&conn));
                injectors[next % injectors.len()]
                    .lock()
                    .expect("injector poisoned")
                    .push(NewConn {
                        tcp,
                        slot,
                        shared: conn,
                    });
                next += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_micros(200));
            }
            Err(_) => thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn io_loop(shared: &Shared, injector: &Mutex<Vec<NewConn>>) {
    let mut conns: Vec<ConnState> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        if shutting_down {
            // Dropping the handles finishes every live stream; their
            // reports surface via the egress loop or the final
            // `PoolReport`.
            let mut slab = shared.conns.lock().expect("conn slab poisoned");
            for conn in conns.drain(..) {
                conn.shared.closed.store(true, Ordering::SeqCst);
                slab.remove(conn.slot);
            }
            return;
        }

        let mut progressed = false;
        {
            let mut inj = injector.lock().expect("injector poisoned");
            for nc in inj.drain(..) {
                progressed = true;
                conns.push(ConnState {
                    tcp: nc.tcp,
                    slot: nc.slot,
                    shared: nc.shared,
                    recv: RecvBuf::new(shared.max_frame),
                    streams: HashMap::new(),
                    write_pending: Vec::new(),
                    dead: false,
                });
            }
        }

        for conn in &mut conns {
            progressed |= service_conn(shared, conn, &mut scratch);
        }

        let mut removed = false;
        conns.retain(|c| {
            if c.dead {
                c.shared.closed.store(true, Ordering::SeqCst);
                shared
                    .conns
                    .lock()
                    .expect("conn slab poisoned")
                    .remove(c.slot);
                removed = true;
                false
            } else {
                true
            }
        });
        progressed |= removed;

        if !progressed {
            thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Socket reads per connection per [`service_conn`] pass. Bounding the
/// read loop keeps one firehose client from pinning its I/O thread (and
/// growing its `RecvBuf`) while the thread's other connections starve.
const MAX_READS_PER_PASS: usize = 4;

/// Services one connection: read → decode/dispatch → flush. Returns
/// whether any progress was made.
fn service_conn(shared: &Shared, conn: &mut ConnState, scratch: &mut [u8]) -> bool {
    let mut progressed = false;

    let mut reads = 0usize;
    loop {
        // Stop reading once a full frame's worth of bytes is pending:
        // dispatch below is then guaranteed to make progress, and the
        // unread rest waits in the kernel buffer (TCP backpressure).
        if reads == MAX_READS_PER_PASS || conn.recv.pending() > shared.max_frame as usize + 4 {
            break;
        }
        match conn.tcp.read(scratch) {
            Ok(0) => {
                // Mid-frame disconnects leave `recv.pending() > 0`;
                // either way the streams are finished by handle drop.
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.recv.ingest(&scratch[..n]);
                progressed = true;
                reads += 1;
                if n < scratch.len() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }

    if !conn.dead {
        progressed |= dispatch_frames(shared, conn);
    }

    // Drain egress frames queued for this connection; this thread is
    // the socket's only writer.
    {
        let mut outbox = conn.shared.outbox.lock().expect("outbox poisoned");
        if !outbox.is_empty() {
            conn.write_pending.append(&mut outbox);
        }
    }
    if !conn.write_pending.is_empty() {
        match write_some(&mut conn.tcp, &mut conn.write_pending) {
            Ok(wrote) => progressed |= wrote,
            Err(_) => conn.dead = true,
        }
    }
    // Slow-consumer guard: a client that accumulates egress (error
    // replies, reports, metrics) faster than it reads is disconnected
    // rather than allowed to grow server memory without bound.
    if !conn.dead && conn.write_pending.len() > shared.max_conn_egress {
        conn.dead = true;
        progressed = true;
    }

    progressed
}

/// Decodes and dispatches every complete frame in the receive buffer.
fn dispatch_frames(shared: &Shared, conn: &mut ConnState) -> bool {
    let mut progressed = false;
    let ConnState {
        recv,
        streams,
        write_pending,
        slot,
        shared: conn_shared,
        dead,
        ..
    } = conn;
    loop {
        match recv.next_frame() {
            Ok(None) => break,
            Ok(Some(frame)) => {
                progressed = true;
                handle_frame(shared, frame, *slot, conn_shared, streams, write_pending);
            }
            Err(e) => {
                progressed = true;
                encode_error(write_pending, e.code(), &e.to_string());
                if e.is_fatal() {
                    *dead = true;
                    break;
                }
                // Non-fatal: the offending frame was consumed; keep
                // decoding so one bad frame never wedges the stream.
            }
        }
    }
    progressed
}

fn handle_frame(
    shared: &Shared,
    frame: Frame<'_>,
    slot: usize,
    conn: &Arc<ConnShared>,
    streams: &mut HashMap<u64, StreamHandle<WireState, WireAction>>,
    reply: &mut Vec<u8>,
) {
    match frame {
        Frame::Open {
            stream,
            start,
            caps,
        } => {
            // Capability bits are negotiable at most once per
            // connection: a second OPEN re-requesting an already
            // granted bit is rejected (the connection survives, the
            // open does not take effect).
            if caps != 0 {
                let before = conn.caps.load(Ordering::SeqCst);
                if before & caps != 0 {
                    encode_error(
                        reply,
                        ErrorCode::Malformed,
                        "binary egress capability already negotiated",
                    );
                    return;
                }
                conn.caps.store(before | caps, Ordering::SeqCst);
            }
            if streams.contains_key(&stream) {
                encode_error(
                    reply,
                    ErrorCode::DuplicateStream,
                    &format!("stream {stream} is already open"),
                );
                return;
            }
            let key = (slot as u64).rotate_left(40) ^ stream;
            let worker = shared
                .placement
                .lock()
                .expect("placement poisoned")
                .worker_for(key);
            let mut guard = shared.pool.lock().expect("pool poisoned");
            let (Some(pool), Some(worker)) = (guard.as_mut(), worker) else {
                encode_error(reply, ErrorCode::ShuttingDown, "server is shutting down");
                return;
            };
            let handle = pool.open_stream_on(worker as usize, start);
            drop(guard);
            shared.routes.lock().expect("routes poisoned").insert(
                handle.id(),
                Route {
                    conn: Arc::clone(conn),
                    client_stream: stream,
                },
            );
            streams.insert(stream, handle);
        }
        Frame::Batch(batch) => {
            let EventBatch { stream, .. } = batch;
            let Some(handle) = streams.get_mut(&stream) else {
                encode_error(
                    reply,
                    ErrorCode::UnknownStream,
                    &format!("stream {stream} is not open"),
                );
                return;
            };
            // The zero-copy hot path: wire records decode straight into
            // ring slots, batch-shaped (one reservation per batch).
            if handle.send_batch_exact(batch.events()).is_err() {
                encode_error(
                    reply,
                    ErrorCode::Overload,
                    &format!("stream {stream} overflowed its queue; stream closed"),
                );
                // Retire the stream; its report covers the prefix.
                if let Some(h) = streams.remove(&stream) {
                    h.finish();
                }
            }
        }
        Frame::Finish { stream } => {
            let Some(handle) = streams.remove(&stream) else {
                encode_error(
                    reply,
                    ErrorCode::UnknownStream,
                    &format!("stream {stream} is not open"),
                );
                return;
            };
            handle.finish();
        }
        Frame::Reload { src } => match SpecRevision::compile(src, &*shared.binder) {
            Ok(rev) => {
                let mut guard = shared.pool.lock().expect("pool poisoned");
                let Some(pool) = guard.as_mut() else {
                    encode_error(reply, ErrorCode::ShuttingDown, "server is shutting down");
                    return;
                };
                let report = pool.reload_spec(&rev);
                drop(guard);
                let revision = shared.revision.fetch_add(1, Ordering::SeqCst) + 1;
                let summary = ReloadSummary {
                    spec: rev.name().to_string(),
                    revision,
                    workers: report.workers,
                    streams: report.streams,
                    carried: report.carried,
                    dropped: report.dropped.len(),
                    warnings: rev.warnings().len(),
                };
                match serde_json::to_string(&summary) {
                    Ok(json) => encode_reloaded(reply, &json),
                    Err(e) => encode_error(reply, ErrorCode::SpecError, &e.to_string()),
                }
            }
            Err(diags) => {
                let msg = diags
                    .iter()
                    .map(|d| format!("{}: {}", d.code, d.message))
                    .collect::<Vec<_>>()
                    .join("; ");
                encode_error(reply, ErrorCode::SpecError, &msg);
            }
        },
        Frame::Metrics { interval_ms } => {
            let slab = shared.conns.lock().expect("conn slab poisoned");
            if let Some(cs) = slab.get(slot) {
                cs.metrics_every_ms.store(interval_ms, Ordering::SeqCst);
            }
        }
        // Egress frames arriving on the ingest side are a protocol
        // violation by the client; answer like any unknown frame.
        Frame::Report { .. }
        | Frame::MetricsSnap { .. }
        | Frame::Report2 { .. }
        | Frame::MetricsSnap2 { .. }
        | Frame::Names(_)
        | Frame::Reloaded { .. }
        | Frame::Error { .. } => {
            encode_error(
                reply,
                ErrorCode::UnknownTag,
                "egress frame on the ingest path",
            );
        }
    }
}

/// Writes as much of `pending` as the socket accepts. Returns whether
/// any bytes moved.
fn write_some(tcp: &mut TcpStream, pending: &mut Vec<u8>) -> std::io::Result<bool> {
    let mut off = 0usize;
    let result = loop {
        if off == pending.len() {
            break Ok(off > 0);
        }
        match tcp.write(&pending[off..]) {
            Ok(0) => break Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => off += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break Ok(off > 0),
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => break Err(e),
        }
    };
    pending.drain(..off);
    result
}

fn egress_loop(shared: &Shared) {
    let mut snap = MetricsSnapshot::default();
    // Reused scratch buffers: steady-state egress encodes binary
    // reports, `NAMES` deltas, and per-tick metrics frames without
    // allocating.
    let mut report_scratch: Vec<u8> = Vec::new();
    let mut names_scratch: Vec<u8> = Vec::new();
    let mut json_snap_frame: Vec<u8> = Vec::new();
    let mut bin_snap_frame: Vec<u8> = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let mut progressed = false;

        let reports = {
            let guard = shared.pool.lock().expect("pool poisoned");
            match guard.as_ref() {
                Some(pool) => pool.drain_finished(),
                None => return,
            }
        };
        if !reports.is_empty() {
            progressed = true;
            let mut routes = shared.routes.lock().expect("routes poisoned");
            for report in reports {
                let Some(route) = routes.remove(&report.stream) else {
                    continue;
                };
                if route.conn.closed.load(Ordering::SeqCst) {
                    continue;
                }
                if route.conn.caps.load(Ordering::SeqCst) & cap::BINARY_EGRESS != 0 {
                    // Binary path: fixed-layout records into reused
                    // scratch, plus the `NAMES` delta for any ids this
                    // connection has not seen yet.
                    report_scratch.clear();
                    names_scratch.clear();
                    let sent = route.conn.names_sent.load(Ordering::SeqCst) as usize;
                    let total;
                    {
                        let mut intern = shared.names.lock().expect("names poisoned");
                        encode_report2(&mut report_scratch, route.client_stream, &report, |s| {
                            intern.intern(s)
                        });
                        total = intern.names.len();
                        if total > sent {
                            encode_names(
                                &mut names_scratch,
                                sent as u32,
                                intern.names[sent..].iter().map(|n| &**n),
                            );
                        }
                    }
                    let mut outbox = route.conn.outbox.lock().expect("outbox poisoned");
                    if outbox.len() <= shared.max_conn_egress {
                        outbox.extend_from_slice(&names_scratch);
                        outbox.extend_from_slice(&report_scratch);
                        drop(outbox);
                        // The watermark advances only when the bytes
                        // actually shipped: a report skipped at the
                        // outbox cap must not strand ids the client
                        // has never seen.
                        route.conn.names_sent.store(total as u32, Ordering::SeqCst);
                    }
                } else if let Ok(json) = serde_json::to_string(&report) {
                    let mut outbox = route.conn.outbox.lock().expect("outbox poisoned");
                    // A slow consumer's outbox is bounded: once over the
                    // cap the connection is doomed anyway (its I/O
                    // thread closes it on the next drain), so dropping
                    // the report loses nothing observable.
                    if outbox.len() <= shared.max_conn_egress {
                        encode_report(&mut outbox, route.client_stream, &json);
                    }
                }
            }
        }

        // Metrics subscriptions: one merged snapshot per pass, and at
        // most one encoded frame per egress mode per tick — every due
        // subscriber gets the same frozen bytes appended to its outbox
        // instead of a private re-encoding. Due-ness lives on the
        // connection itself (`last_snap`), so a retired connection
        // takes its timestamp with it.
        let now = Instant::now();
        let due: Vec<Arc<ConnShared>> = {
            let slab = shared.conns.lock().expect("conn slab poisoned");
            slab.conns
                .iter()
                .filter_map(Clone::clone)
                .filter(|c| {
                    let every = c.metrics_every_ms.load(Ordering::SeqCst);
                    if every == 0 || c.closed.load(Ordering::SeqCst) {
                        return false;
                    }
                    c.last_snap
                        .lock()
                        .expect("last_snap poisoned")
                        .map(|t| now.duration_since(t) >= Duration::from_millis(every.into()))
                        .unwrap_or(true)
                })
                .collect()
        };
        if !due.is_empty() {
            progressed = true;
            shared.metrics.snapshot_into(&mut snap);
            json_snap_frame.clear();
            bin_snap_frame.clear();
            let mut json_encoded = false;
            let mut bin_encoded = false;
            for conn in due {
                let frame: &[u8] = if conn.caps.load(Ordering::SeqCst) & cap::BINARY_EGRESS != 0 {
                    if !bin_encoded {
                        encode_metrics_snap2(&mut bin_snap_frame, &snap);
                        bin_encoded = true;
                    }
                    &bin_snap_frame
                } else {
                    if !json_encoded {
                        if let Ok(json) = serde_json::to_string(&snap) {
                            encode_metrics_snap(&mut json_snap_frame, &json);
                        }
                        json_encoded = true;
                    }
                    &json_snap_frame
                };
                if !frame.is_empty() {
                    let mut outbox = conn.outbox.lock().expect("outbox poisoned");
                    if outbox.len() <= shared.max_conn_egress {
                        outbox.extend_from_slice(frame);
                    }
                }
                *conn.last_snap.lock().expect("last_snap poisoned") = Some(now);
            }
        }

        if !progressed {
            thread::sleep(Duration::from_micros(200));
        }
    }
}
