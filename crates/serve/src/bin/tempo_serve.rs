//! `tempo-serve` binary: serve a `.tspec` over TCP.
//!
//! ```text
//! tempo-serve --spec path/to/spec.tspec --actions REQUEST,SERVE \
//!             [--addr 127.0.0.1:7400] [--io-threads 2] [--workers 4] [--queue 1024]
//! ```
//!
//! Runs until killed; prints the bound address on stdout so scripts
//! (and the loadgen) can pick up an ephemeral port.

use std::process::ExitCode;

use tempo_serve::{ServeConfig, Server};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tempo-serve --spec FILE --actions A,B,... \
         [--addr HOST:PORT] [--io-threads N] [--workers N] [--queue EVENTS]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut spec_path: Option<String> = None;
    let mut actions: Vec<String> = Vec::new();
    let mut addr = "127.0.0.1:7400".to_string();
    let mut io_threads = 2usize;
    let mut workers: Option<usize> = None;
    let mut queue: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = |name: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("missing value for {name}");
            }
            v
        };
        match flag.as_str() {
            "--spec" => spec_path = val("--spec"),
            "--actions" => match val("--actions") {
                Some(v) => actions = v.split(',').map(|s| s.trim().to_string()).collect(),
                None => return usage(),
            },
            "--addr" => match val("--addr") {
                Some(v) => addr = v,
                None => return usage(),
            },
            "--io-threads" => match val("--io-threads").and_then(|v| v.parse().ok()) {
                Some(v) => io_threads = v,
                None => return usage(),
            },
            "--workers" => match val("--workers").and_then(|v| v.parse().ok()) {
                Some(v) => workers = Some(v),
                None => return usage(),
            },
            "--queue" => match val("--queue").and_then(|v| v.parse().ok()) {
                Some(v) => queue = Some(v),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let (Some(spec_path), false) = (spec_path, actions.is_empty()) else {
        return usage();
    };
    let src = match std::fs::read_to_string(&spec_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {spec_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let action_refs: Vec<&str> = actions.iter().map(String::as_str).collect();
    let mut config = ServeConfig::new(src, &action_refs);
    config.addr = addr;
    config.io_threads = io_threads;
    if let Some(w) = workers {
        config.pool.workers = w;
    }
    if let Some(q) = queue {
        config.pool.queue_capacity = q;
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tempo-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", server.local_addr());
    eprintln!("tempo-serve listening on {}", server.local_addr());
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
