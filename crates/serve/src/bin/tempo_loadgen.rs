//! `tempo-loadgen` binary: drive a running `tempo-serve` with
//! deterministic request/serve traffic and print throughput/latency.
//!
//! ```text
//! tempo-loadgen --addr 127.0.0.1:7400 --streams 10000 \
//!               [--events 20] [--batch 10] [--conns 4] [--late-every 0]
//! ```

use std::process::ExitCode;

use tempo_serve::{loadgen, LoadgenConfig};
use tempo_sim::loadgen::ReqServe;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tempo-loadgen --addr HOST:PORT [--streams N] [--events N] \
         [--batch N] [--conns N] [--late-every N]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut cfg = LoadgenConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(v) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--addr" => addr = Some(v),
            "--streams" => match v.parse() {
                Ok(n) => cfg.streams = n,
                Err(_) => return usage(),
            },
            "--events" => match v.parse() {
                Ok(n) => cfg.events_per_stream = n,
                Err(_) => return usage(),
            },
            "--batch" => match v.parse() {
                Ok(n) => cfg.batch = n,
                Err(_) => return usage(),
            },
            "--conns" => match v.parse() {
                Ok(n) => cfg.conns = n,
                Err(_) => return usage(),
            },
            "--late-every" => match v.parse() {
                Ok(n) => {
                    cfg.traffic = ReqServe {
                        late_every: n,
                        ..cfg.traffic
                    }
                }
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        return usage();
    };

    match loadgen::run(&addr, &cfg) {
        Ok(report) => {
            println!("{}", report.render());
            if report.events_monitored != report.events_sent {
                eprintln!(
                    "warning: {} events sent but {} monitored",
                    report.events_sent, report.events_monitored
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tempo-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
