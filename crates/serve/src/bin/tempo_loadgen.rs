//! `tempo-loadgen` binary: drive a running `tempo-serve` with
//! deterministic request/serve traffic and print throughput/latency.
//!
//! ```text
//! tempo-loadgen --addr 127.0.0.1:7400 --streams 10000 \
//!               [--events 20] [--batch 10] [--conns 4] [--late-every 0] \
//!               [--binary] [--json BENCH_e18.json]
//! ```
//!
//! `--binary` negotiates binary egress (`REPORT2`) instead of the
//! default JSON verdicts. `--json PATH` appends the run as one row to
//! a machine-readable JSON array at `PATH` (the perf-trajectory file
//! EXPERIMENTS.md §E18/§E19 tables are generated from), in addition to
//! the human-readable line on stdout.

use std::process::ExitCode;

use tempo_serve::{loadgen, LoadgenConfig};
use tempo_sim::loadgen::ReqServe;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tempo-loadgen --addr HOST:PORT [--streams N] [--events N] \
         [--batch N] [--conns N] [--late-every N] [--binary] [--json PATH]"
    );
    ExitCode::FAILURE
}

/// One machine-readable trajectory row for the run.
fn json_row(cfg: &LoadgenConfig, report: &loadgen::LoadgenReport) -> String {
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    format!(
        concat!(
            "{{\"egress\": \"{}\", \"streams\": {}, \"events_per_stream\": {}, ",
            "\"late_every\": {}, \"conns\": {}, \"events_sent\": {}, ",
            "\"events_per_sec\": {:.0}, \"ns_per_event\": {:.1}, ",
            "\"violations\": {}, \"failed\": {}, ",
            "\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}, ",
            "\"loss_free\": {}}}"
        ),
        if cfg.binary { "binary" } else { "json" },
        cfg.streams,
        cfg.events_per_stream,
        cfg.traffic.late_every,
        cfg.conns,
        report.events_sent,
        report.events_per_sec(),
        report.ns_per_event(),
        report.violations,
        report.failed,
        ms(report.latency_p50),
        ms(report.latency_p99),
        ms(report.latency_max),
        report.events_monitored == report.events_sent,
    )
}

/// Appends `row` to the JSON array at `path` (created on first use).
/// Text splice — strip the closing bracket, append the row — so rows
/// from successive runs accumulate without a JSON parser in the loop.
fn append_row(path: &str, row: &str) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let trimmed = existing.trim_end();
    let body = trimmed.strip_suffix(']').map(str::trim_end);
    let next = match body {
        Some(inner) if inner.trim() != "[" && !inner.trim().is_empty() => {
            format!("{inner},\n  {row}\n]\n")
        }
        _ => format!("[\n  {row}\n]\n"),
    };
    std::fs::write(path, next)
}

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut cfg = LoadgenConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        if flag == "--binary" {
            cfg.binary = true;
            continue;
        }
        let Some(v) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--addr" => addr = Some(v),
            "--json" => json_path = Some(v),
            "--streams" => match v.parse() {
                Ok(n) => cfg.streams = n,
                Err(_) => return usage(),
            },
            "--events" => match v.parse() {
                Ok(n) => cfg.events_per_stream = n,
                Err(_) => return usage(),
            },
            "--batch" => match v.parse() {
                Ok(n) => cfg.batch = n,
                Err(_) => return usage(),
            },
            "--conns" => match v.parse() {
                Ok(n) => cfg.conns = n,
                Err(_) => return usage(),
            },
            "--late-every" => match v.parse() {
                Ok(n) => {
                    cfg.traffic = ReqServe {
                        late_every: n,
                        ..cfg.traffic
                    }
                }
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }
    let Some(addr) = addr else {
        return usage();
    };

    match loadgen::run(&addr, &cfg) {
        Ok(report) => {
            println!("{}", report.render());
            if report.events_monitored != report.events_sent {
                eprintln!(
                    "warning: {} events sent but {} monitored",
                    report.events_sent, report.events_monitored
                );
            }
            if let Some(path) = json_path {
                if let Err(e) = append_row(&path, &json_row(&cfg, &report)) {
                    eprintln!("tempo-loadgen: could not append to {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tempo-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}
