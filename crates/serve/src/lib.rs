//! `tempo-serve`: a networked high-throughput ingest front end over
//! the lock-free monitor pool.
//!
//! The crate turns the in-process [`tempo_monitor::MonitorPool`] into a
//! service: clients speak a length-prefixed binary protocol over TCP
//! ([`wire`]), event batches decode zero-copy straight out of the
//! socket buffer into the pool's SPSC rings, and finished streams'
//! [`StreamReport`](tempo_monitor::StreamReport)s flow back as JSON
//! egress frames — or, when the client requests
//! [`wire::cap::BINARY_EGRESS`] on `OPEN`, as allocation-free binary
//! `REPORT2` records with per-connection name interning.
//! Stream→worker placement uses a consistent-hash ring
//! ([`placement`]) so draining a worker moves only that worker's
//! streams. A `RELOAD` control frame carries `.tspec` source and maps
//! onto [`MonitorPool::reload_spec`](tempo_monitor::MonitorPool::reload_spec)
//! — live spec swaps with zero event drop.
//!
//! Threading (no async runtime, hand-rolled non-blocking I/O):
//!
//! ```text
//!              ┌──────────┐ round-robin ┌───────────┐ ring push ┌────────────┐
//!  TCP conns → │ acceptor │ ──────────→ │ io threads│ ────────→ │ pool       │
//!              └──────────┘             │ (own conns│           │ workers    │
//!                                       │  outright)│           └─────┬──────┘
//!                                       └─────▲─────┘  StreamReport   │
//!                                             │outbox ┌───────────┐   │
//!                                             └────── │  egress   │ ←─┘
//!                                                     └───────────┘
//! ```
//!
//! Sockets are single-writer: only the io thread that owns a
//! connection writes to it; the egress thread hands frames over via a
//! per-connection outbox. See `DESIGN.md` ("Serving over the network")
//! for the full protocol spec and EXPERIMENTS.md §E18 for measured
//! throughput/latency.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod loadgen;
pub mod placement;
pub mod server;
pub mod wire;

pub use client::{Client, ServerFrame};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use placement::HashRing;
pub use server::{ReloadSummary, ServeConfig, ServeError, Server};
