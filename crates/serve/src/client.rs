//! A small blocking client for the wire protocol — the loadgen's
//! transport and the loopback tests' harness.
//!
//! Ingest calls ([`open`](Client::open), [`send_batch`](Client::send_batch),
//! [`finish_stream`](Client::finish_stream), …) buffer frames locally;
//! [`flush`](Client::flush) pushes them down the socket in one write.
//! [`recv`](Client::recv) flushes, then blocks for the next egress
//! frame. Legacy connections decode JSON payloads through the `serde`
//! report encodings; connections opened with
//! [`open_binary`](Client::open_binary) additionally decode the v2
//! `REPORT2`/`METRICS_SNAP2` frames, maintaining the connection's name
//! table from `NAMES` frames as they arrive. Both transports surface
//! the same [`ServerFrame`] values, so callers are egress-mode
//! agnostic.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use tempo_monitor::{MetricsSnapshot, StreamReport};

use crate::server::ReloadSummary;
use crate::wire::{
    apply_names, cap, decode_metrics_snap2, decode_report2, encode_batch, encode_finish,
    encode_metrics_sub, encode_open, encode_open_caps, encode_reload, BatchBuilder, ErrorCode,
    Frame, RecvBuf, WireEvent,
};

/// A typed egress frame as the client surfaces it.
#[derive(Clone, Debug)]
pub enum ServerFrame {
    /// A finished stream's report. `stream` is the *client's* id; the
    /// report's own `stream` field is rewritten to match, so the pool's
    /// internal ids never leak into client code.
    Report {
        /// Client-chosen stream id.
        stream: u64,
        /// The decoded report.
        report: StreamReport,
    },
    /// A metrics snapshot (subscription response).
    Metrics(Box<MetricsSnapshot>),
    /// A reload was applied.
    Reloaded(ReloadSummary),
    /// An error response.
    Error {
        /// Stable error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A blocking protocol client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    tcp: TcpStream,
    recv: RecvBuf,
    out: Vec<u8>,
    scratch: Vec<u8>,
    /// Interned names received via `NAMES` frames (binary egress).
    names: Vec<Arc<str>>,
}

impl Client {
    /// Connects (blocking, `TCP_NODELAY`).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let tcp = TcpStream::connect(addr)?;
        tcp.set_nodelay(true)?;
        Ok(Client {
            tcp,
            recv: RecvBuf::new(64 << 20),
            out: Vec::new(),
            scratch: vec![0u8; 64 * 1024],
            names: Vec::new(),
        })
    }

    /// Sets (or clears) the blocking-read timeout used by
    /// [`recv`](Client::recv).
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> io::Result<()> {
        self.tcp.set_read_timeout(t)
    }

    /// Buffers an open frame (legacy 12-byte body, no capabilities).
    pub fn open(&mut self, stream: u64, start: u32) {
        encode_open(&mut self.out, stream, start);
    }

    /// Buffers an open frame requesting capability bits ([`cap`]).
    pub fn open_with(&mut self, stream: u64, start: u32, caps: u32) {
        encode_open_caps(&mut self.out, stream, start, caps);
    }

    /// Buffers an open frame requesting binary egress
    /// ([`cap::BINARY_EGRESS`]); subsequent reports and metrics
    /// snapshots on this connection arrive as v2 binary frames.
    pub fn open_binary(&mut self, stream: u64, start: u32) {
        self.open_with(stream, start, cap::BINARY_EGRESS);
    }

    /// Buffers a batch frame.
    pub fn send_batch(&mut self, stream: u64, events: &[WireEvent]) {
        encode_batch(&mut self.out, stream, events);
    }

    /// Starts an incrementally built batch frame (the allocation-free
    /// path — no intermediate event slice).
    pub fn batch(&mut self, stream: u64) -> BatchBuilder<'_> {
        BatchBuilder::begin(&mut self.out, stream)
    }

    /// Buffers a finish frame.
    pub fn finish_stream(&mut self, stream: u64) {
        encode_finish(&mut self.out, stream);
    }

    /// Buffers a reload frame carrying `.tspec` source.
    pub fn reload(&mut self, src: &str) {
        encode_reload(&mut self.out, src);
    }

    /// Buffers a metrics subscription (`0` unsubscribes).
    pub fn subscribe_metrics(&mut self, interval_ms: u32) {
        encode_metrics_sub(&mut self.out, interval_ms);
    }

    /// Bytes currently buffered for the next flush.
    pub fn buffered(&self) -> usize {
        self.out.len()
    }

    /// Writes every buffered frame to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        if self.out.is_empty() {
            return Ok(());
        }
        self.tcp.write_all(&self.out)?;
        self.out.clear();
        Ok(())
    }

    /// Flushes, then blocks until one egress frame arrives (or the read
    /// timeout elapses, surfacing as `WouldBlock`/`TimedOut`).
    pub fn recv(&mut self) -> io::Result<ServerFrame> {
        self.flush()?;
        loop {
            // Split the borrow: the decoded frame borrows `recv`'s
            // buffer while `names` is read (and grown by `NAMES`).
            let Client { recv, names, .. } = self;
            match recv.next_frame() {
                Ok(Some(frame)) => match decode_egress(&frame, names) {
                    Decoded::Frame(sf) => return Ok(sf),
                    Decoded::Skip => continue,
                    Decoded::NotEgress => {
                        return Err(io::Error::new(
                            ErrorKind::InvalidData,
                            "ingest frame on the egress path",
                        ))
                    }
                },
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(ErrorKind::InvalidData, e.to_string())),
            }
            let n = self.tcp.read(&mut self.scratch)?;
            if n == 0 {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            self.recv.ingest(&self.scratch[..n]);
        }
    }
}

/// What one egress frame decoded to.
enum Decoded {
    /// A frame to surface to the caller.
    Frame(ServerFrame),
    /// Consumed internally (a `NAMES` table extension).
    Skip,
    /// An ingest frame, which a server never sends.
    NotEgress,
}

/// Decodes an egress frame into its typed form, maintaining the
/// connection's name table as `NAMES` frames stream past.
fn decode_egress(frame: &Frame<'_>, names: &mut Vec<Arc<str>>) -> Decoded {
    match frame {
        Frame::Report { stream, json } => {
            let mut report: StreamReport = match serde_json::from_str(json) {
                Ok(r) => r,
                Err(_) => return Decoded::Frame(bad_payload("report")),
            };
            report.stream = *stream;
            Decoded::Frame(ServerFrame::Report {
                stream: *stream,
                report,
            })
        }
        Frame::MetricsSnap { json } => match serde_json::from_str(json) {
            Ok(m) => Decoded::Frame(ServerFrame::Metrics(Box::new(m))),
            Err(_) => Decoded::Frame(bad_payload("metrics")),
        },
        Frame::Report2 { stream, body } => match decode_report2(*stream, body, names) {
            Ok(report) => Decoded::Frame(ServerFrame::Report {
                stream: *stream,
                report,
            }),
            Err(_) => Decoded::Frame(bad_payload("report")),
        },
        Frame::MetricsSnap2 { body } => match decode_metrics_snap2(body) {
            Ok(m) => Decoded::Frame(ServerFrame::Metrics(Box::new(m))),
            Err(_) => Decoded::Frame(bad_payload("metrics")),
        },
        Frame::Names(nf) => match apply_names(names, nf) {
            Ok(()) => Decoded::Skip,
            Err(_) => Decoded::Frame(bad_payload("name table")),
        },
        Frame::Reloaded { json } => match serde_json::from_str(json) {
            Ok(r) => Decoded::Frame(ServerFrame::Reloaded(r)),
            Err(_) => Decoded::Frame(bad_payload("reload summary")),
        },
        Frame::Error { code, message } => Decoded::Frame(ServerFrame::Error {
            code: *code,
            message: (*message).to_string(),
        }),
        _ => Decoded::NotEgress,
    }
}

fn bad_payload(what: &str) -> ServerFrame {
    ServerFrame::Error {
        code: ErrorCode::Malformed,
        message: format!("undecodable {what} payload"),
    }
}
