//! Lowering a parsed [`Spec`] onto the engine's declarative
//! [`TimingCondition`] builders.
//!
//! Action names resolve to host actions and `when` predicates to host
//! state predicates through a [`Binder`]; everything expressible as
//! pure action sets lowers declaratively (and so compiles into
//! [`CompiledConditionSet`]'s per-action dispatch tables), while
//! `when`-guarded clauses lower to the exact opaque closures a
//! hand-written condition would use — pointwise equal behaviour either
//! way.

use std::hash::Hash;
use std::sync::Arc;

use tempo_core::engine::CompiledConditionSet;
use tempo_core::{ActionSet, TimingCondition};
use tempo_math::{Interval, TimeVal};

use crate::ast::{BoundLit, CondDecl, DisableClause, Ident, PredRef, Spec, WhenState};
use crate::span::Diagnostic;

/// A shared, thread-safe state predicate, as the engine stores them.
pub type StatePred<S> = Arc<dyn Fn(&S) -> bool + Send + Sync>;

/// A boxed name → action resolver, as [`MapBinder`] stores it.
type ActionFn<A> = Box<dyn Fn(&str) -> Option<A> + Send + Sync>;

/// Resolves a spec's names to a host system's actions and state
/// predicates.
///
/// `.tspec` files are host-agnostic text; the binder is the one piece
/// of Rust the host supplies at lowering time. [`MapBinder`] covers the
/// common case (a name → action function plus a table of named
/// predicates).
pub trait Binder<S, A> {
    /// The host action named `name`, or `None` if unknown (lowering
    /// reports an `unknown-action` error at the literal's span).
    fn action(&self, name: &str) -> Option<A>;

    /// The host state predicate named `name`, or `None` if unknown
    /// (lowering reports an `unknown-pred` error at the reference's
    /// span). The default binder knows no predicates.
    fn state_pred(&self, name: &str) -> Option<StatePred<S>> {
        let _ = name;
        None
    }
}

/// The workhorse [`Binder`]: a name → action function plus a list of
/// named state predicates.
///
/// ```
/// use tempo_spec::MapBinder;
///
/// // String-actioned systems bind names to themselves.
/// let binder: MapBinder<u32, String> = MapBinder::new(|name| Some(name.to_string()))
///     .pred("past_ten", |s: &u32| *s > 10);
/// ```
pub struct MapBinder<S, A> {
    action: ActionFn<A>,
    preds: Vec<(String, StatePred<S>)>,
}

impl<S, A> MapBinder<S, A> {
    /// A binder resolving actions through `action` and (so far) no
    /// predicates.
    pub fn new(action: impl Fn(&str) -> Option<A> + Send + Sync + 'static) -> MapBinder<S, A> {
        MapBinder {
            action: Box::new(action),
            preds: Vec::new(),
        }
    }

    /// Adds a named state predicate.
    pub fn pred(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> MapBinder<S, A> {
        self.preds.push((name.into(), Arc::new(f)));
        self
    }
}

impl<S, A> Binder<S, A> for MapBinder<S, A> {
    fn action(&self, name: &str) -> Option<A> {
        (self.action)(name)
    }

    fn state_pred(&self, name: &str) -> Option<StatePred<S>> {
        self.preds
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| Arc::clone(p))
    }
}

/// Lowers every condition of `spec` onto [`TimingCondition`]s, in
/// declaration order, resolving names through `binder`.
///
/// Errors are collected across *all* conditions (`unknown-action`,
/// `unknown-pred`, `bad-bounds`), each at its source span, so one pass
/// reports everything wrong rather than the first problem only.
pub fn lower<S, A, B>(
    spec: &Spec,
    binder: &B,
) -> Result<Vec<TimingCondition<S, A>>, Vec<Diagnostic>>
where
    S: 'static,
    A: Clone + PartialEq + Send + Sync + 'static,
    B: Binder<S, A>,
{
    let mut conds = Vec::new();
    let mut errs = Vec::new();
    for decl in &spec.conds {
        match lower_cond(decl, binder, &mut errs) {
            Some(c) => conds.push(c),
            None => debug_assert!(!errs.is_empty()),
        }
    }
    if errs.is_empty() {
        Ok(conds)
    } else {
        Err(errs)
    }
}

/// [`lower`] followed by [`CompiledConditionSet::new`] — the one-call
/// path from a parsed spec to a running engine.
pub fn compile<S, A, B>(
    spec: &Spec,
    binder: &B,
) -> Result<CompiledConditionSet<S, A>, Vec<Diagnostic>>
where
    S: 'static,
    A: Clone + Eq + Hash + Send + Sync + std::fmt::Debug + 'static,
    B: Binder<S, A>,
{
    Ok(CompiledConditionSet::new(&lower(spec, binder)?))
}

fn lower_cond<S, A, B>(
    decl: &CondDecl,
    binder: &B,
    errs: &mut Vec<Diagnostic>,
) -> Option<TimingCondition<S, A>>
where
    S: 'static,
    A: Clone + PartialEq + Send + Sync + 'static,
    B: Binder<S, A>,
{
    let before = errs.len();

    let bounds = match decl.bounds.hi {
        BoundLit::Inf(_) => Some(Interval::unbounded_above(decl.bounds.lo.value)),
        BoundLit::Finite(hi) => {
            match Interval::new(decl.bounds.lo.value, TimeVal::from(hi.value)) {
                Ok(iv) => Some(iv),
                Err(e) => {
                    errs.push(Diagnostic::error(
                        "bad-bounds",
                        decl.bounds.span,
                        format!("bounds do not form a valid interval: {e}"),
                    ));
                    None
                }
            }
        }
    };

    let resolve = |id: &Ident| {
        binder.action(&id.text).ok_or_else(|| {
            Diagnostic::error(
                "unknown-action",
                id.span,
                format!("the binder knows no action named `{}`", id.text),
            )
        })
    };
    let eval =
        |expr: &crate::ast::SetExpr, errs: &mut Vec<Diagnostic>| match expr.eval_with(&resolve) {
            Ok(set) => Some(set),
            Err(d) => {
                errs.push(d);
                None
            }
        };

    let step = match &decl.step {
        None => None,
        Some(t) => {
            let set = eval(&t.expr, errs);
            let when = match &t.when {
                None => None,
                Some(w) => pred_of(binder, &w.pred, errs).map(|p| (w.at, p)),
            };
            Some((set, when))
        }
    };
    let pi = decl.pi.as_ref().and_then(|e| eval(e, errs));
    let disable = match &decl.disable {
        None => None,
        Some(DisableClause::On(expr, _)) => eval(expr, errs).map(DisableLowered::Actions),
        Some(DisableClause::When(p, _)) => pred_of(binder, p, errs).map(DisableLowered::State),
    };
    let start = match &decl.start {
        None => None,
        Some(st) => match &st.when {
            None => Some(None),
            Some(p) => pred_of(binder, p, errs).map(Some),
        },
    };

    if errs.len() > before {
        return None;
    }

    let mut cond: TimingCondition<S, A> = TimingCondition::new(&decl.name.text, bounds?);
    match start {
        None => {}
        Some(None) => cond = cond.triggered_at_start(|_| true),
        Some(Some(p)) => cond = cond.triggered_at_start(move |s| p(s)),
    }
    match step {
        None => {}
        Some((set, None)) => cond = cond.triggered_by_actions(set?),
        Some((set, Some((at, p)))) => {
            // A state-guarded trigger is inherently a step predicate;
            // it takes the engine's closure-fallback path, exactly as
            // the equivalent hand-written condition would.
            let probe = set?;
            cond = match at {
                WhenState::Pre => {
                    cond.triggered_by_step(move |pre, a, _| probe.contains(a) && p(pre))
                }
                WhenState::Post => {
                    cond.triggered_by_step(move |_, a, post| probe.contains(a) && p(post))
                }
            };
        }
    }
    if let Some(set) = pi {
        cond = cond.on_action_set(set);
    }
    match disable {
        None => {}
        Some(DisableLowered::Actions(set)) => cond = cond.disabled_by_actions(set),
        Some(DisableLowered::State(p)) => cond = cond.disabled_in(move |s| p(s)),
    }
    Some(cond)
}

enum DisableLowered<S, A> {
    Actions(ActionSet<A>),
    State(StatePred<S>),
}

/// Resolves a (possibly negated) predicate reference to a closure.
fn pred_of<S: 'static, A, B: Binder<S, A>>(
    binder: &B,
    p: &PredRef,
    errs: &mut Vec<Diagnostic>,
) -> Option<StatePred<S>> {
    match binder.state_pred(&p.name.text) {
        Some(f) => {
            if p.negated {
                Some(Arc::new(move |s: &S| !f(s)))
            } else {
                Some(f)
            }
        }
        None => {
            errs.push(Diagnostic::error(
                "unknown-pred",
                p.name.span,
                format!(
                    "the binder knows no state predicate named `{}`",
                    p.name.text
                ),
            ));
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use tempo_math::Rat;

    fn string_binder() -> MapBinder<u32, String> {
        MapBinder::new(|n: &str| Some(n.to_string())).pred("big", |s: &u32| *s >= 100)
    }

    #[test]
    fn declarative_clauses_lower_to_action_sets() {
        let spec = parse(
            "spec s; cond C { trigger on GO | RETRY; pi not TICK; \
             disable on FREEZE; bounds [1, 4]; }",
        )
        .unwrap();
        let conds = lower::<u32, String, _>(&spec, &string_binder()).unwrap();
        let c = &conds[0];
        assert_eq!(c.name(), "C");
        assert_eq!(c.lower(), Rat::ONE);
        assert_eq!(
            c.trigger_set(),
            Some(&ActionSet::of(["GO".to_string(), "RETRY".to_string()]))
        );
        assert_eq!(
            c.pi_set(),
            Some(&ActionSet::all_except(["TICK".to_string()]))
        );
        assert_eq!(
            c.disabling_set(),
            Some(&ActionSet::only("FREEZE".to_string()))
        );
        // The compiled set needs no closure fallback for it.
        let set = CompiledConditionSet::new(&conds);
        let st = set.dispatch_stats();
        assert_eq!(
            (st.opaque_trigger, st.opaque_pi, st.opaque_disabling),
            (0, 0, 0)
        );
    }

    #[test]
    fn guarded_clauses_lower_to_exact_closures() {
        let spec = parse(
            "spec s; cond C { trigger on GO when post not big; pi DONE; \
             disable when big; bounds [0, 9]; }",
        )
        .unwrap();
        let conds = lower::<u32, String, _>(&spec, &string_binder()).unwrap();
        let c = &conds[0];
        assert!(c.trigger_set().is_none(), "guarded trigger is opaque");
        // go while post < 100 triggers; go into a big state does not.
        assert!(c.in_t_step(&0, &"GO".to_string(), &5));
        assert!(!c.in_t_step(&0, &"GO".to_string(), &100));
        assert!(!c.in_t_step(&0, &"DONE".to_string(), &5));
        assert!(c.in_disabling(&200) && !c.in_disabling(&5));
    }

    #[test]
    fn start_trigger_with_and_without_guard() {
        let spec = parse("spec s; cond C { trigger at start; pi DONE; bounds [0, 9]; }").unwrap();
        let conds = lower::<u32, String, _>(&spec, &string_binder()).unwrap();
        assert!(conds[0].in_t_start(&0) && conds[0].in_t_start(&100));

        let spec =
            parse("spec s; cond C { trigger at start when big; pi DONE; bounds [0, 9]; }").unwrap();
        let conds = lower::<u32, String, _>(&spec, &string_binder()).unwrap();
        assert!(!conds[0].in_t_start(&0) && conds[0].in_t_start(&100));
    }

    #[test]
    fn unknown_names_error_at_their_spans() {
        let src = "spec s; cond C { trigger on GO when pre tiny; pi DONE; bounds [0, 9]; }";
        let spec = parse(src).unwrap();
        let errs = lower::<u32, String, _>(&spec, &string_binder()).unwrap_err();
        assert_eq!(errs[0].code, "unknown-pred");
        assert_eq!(errs[0].span.slice(src), "tiny");

        let binder: MapBinder<u32, u8> =
            MapBinder::new(|n: &str| if n == "GO" { Some(1u8) } else { None });
        let src = "spec s; cond C { trigger on GO; pi DONE; bounds [0, 9]; }";
        let spec = parse(src).unwrap();
        let errs = lower::<u32, u8, _>(&spec, &binder).unwrap_err();
        assert_eq!(errs[0].code, "unknown-action");
        assert_eq!(errs[0].span.slice(src), "DONE");
    }

    #[test]
    fn invalid_bounds_fail_lowering() {
        for src in [
            "spec s; cond C { trigger on GO; pi D; bounds [5, 2]; }",
            "spec s; cond C { trigger on GO; pi D; bounds [0, 0]; }",
        ] {
            let spec = parse(src).unwrap();
            let errs = lower::<u32, String, _>(&spec, &string_binder()).unwrap_err();
            assert_eq!(errs[0].code, "bad-bounds", "{src}");
        }
        // Unbounded above always lowers.
        let spec = parse("spec s; cond C { trigger on GO; pi D; bounds [7, inf]; }").unwrap();
        let conds = lower::<u32, String, _>(&spec, &string_binder()).unwrap();
        assert_eq!(conds[0].upper(), TimeVal::INFINITY);
    }

    #[test]
    fn errors_are_collected_across_conditions() {
        let src = "spec s; \
            cond A { trigger on GO when pre nope1; pi D; bounds [0, 9]; } \
            cond B { disable when nope2; pi D; bounds [0, 9]; }";
        let spec = parse(src).unwrap();
        let errs = lower::<u32, String, _>(&spec, &string_binder()).unwrap_err();
        assert_eq!(errs.len(), 2);
        assert_eq!(errs[0].span.slice(src), "nope1");
        assert_eq!(errs[1].span.slice(src), "nope2");
    }
}
