//! The canonical `.tspec` pretty-printer.
//!
//! [`pretty`] emits the normal form of a [`Spec`]: fixed clause order
//! (`trigger at start`, `trigger on`, `pi`, `disable`, `bounds`),
//! four-space indentation, one blank line between items. Re-parsing the
//! output yields a structurally identical AST (`parse(pretty(s)) == s`
//! — the round-trip property test), so the printer doubles as a
//! formatter for hand-written specs.

use std::fmt::Write;

use crate::ast::{BoundLit, DisableClause, PredRef, SetExpr, Spec, WhenState};

/// Renders `spec` in canonical form.
pub fn pretty(spec: &Spec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "spec {};", spec.name.text);
    for m in &spec.meta {
        let _ = writeln!(out, "meta {} \"{}\";", m.key.text, escape(&m.value));
    }
    if let Some(decl) = &spec.actions {
        let names: Vec<&str> = decl.names.iter().map(|n| n.text.as_str()).collect();
        let _ = writeln!(out, "actions {};", names.join(", "));
    }
    for c in &spec.conds {
        let _ = writeln!(out, "\ncond {} {{", c.name.text);
        if let Some(st) = &c.start {
            match &st.when {
                None => out.push_str("    trigger at start;\n"),
                Some(p) => {
                    let _ = writeln!(out, "    trigger at start when {};", pred(p));
                }
            }
        }
        if let Some(t) = &c.step {
            let _ = write!(out, "    trigger on {}", set(&t.expr));
            if let Some(w) = &t.when {
                let at = match w.at {
                    WhenState::Pre => "pre",
                    WhenState::Post => "post",
                };
                let _ = write!(out, " when {at} {}", pred(&w.pred));
            }
            out.push_str(";\n");
        }
        if let Some(e) = &c.pi {
            let _ = writeln!(out, "    pi {};", set(e));
        }
        match &c.disable {
            None => {}
            Some(DisableClause::On(e, _)) => {
                let _ = writeln!(out, "    disable on {};", set(e));
            }
            Some(DisableClause::When(p, _)) => {
                let _ = writeln!(out, "    disable when {};", pred(p));
            }
        }
        let hi = match &c.bounds.hi {
            BoundLit::Finite(r) => r.value.to_string(),
            BoundLit::Inf(_) => "inf".to_string(),
        };
        let _ = writeln!(out, "    bounds [{}, {}];", c.bounds.lo.value, hi);
        out.push_str("}\n");
    }
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn pred(p: &PredRef) -> String {
    if p.negated {
        format!("not {}", p.name.text)
    } else {
        p.name.text.clone()
    }
}

/// Prints a set expression, parenthesizing exactly where the grammar
/// demands it: a union under `not` or on the right of `|` (the parser
/// is left-associative).
fn set(e: &SetExpr) -> String {
    match e {
        SetExpr::Action(id) => id.text.clone(),
        SetExpr::Any(_) => "any".to_string(),
        SetExpr::None(_) => "none".to_string(),
        SetExpr::Not(_, inner) => format!("not {}", atom(inner)),
        SetExpr::Union(l, r) => format!("{} | {}", set(l), atom(r)),
    }
}

/// Like [`set`], but wraps unions in parentheses (atom position).
fn atom(e: &SetExpr) -> String {
    match e {
        SetExpr::Union(_, _) => format!("({})", set(e)),
        _ => set(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn round_trips_a_representative_spec() {
        let src = r#"
spec relay; # comment noise
meta paper "section 6";
actions UP, DOWN, PULSE;
cond EDGE {
    trigger on UP | (DOWN | PULSE) when pre not latched;
    pi not (UP | DOWN);
    disable when latched;
    bounds [1/2, 9];
}
cond BOOT { trigger at start; pi PULSE; bounds [0, inf]; }
"#;
        let ast = parse(src).unwrap();
        let printed = pretty(&ast);
        let reparsed = parse(&printed).unwrap();
        assert_eq!(ast, reparsed, "printed form:\n{printed}");
        // Printing is idempotent: the canonical form prints to itself.
        assert_eq!(printed, pretty(&reparsed));
    }

    #[test]
    fn escapes_meta_strings() {
        let src = "spec s; meta note \"a \\\"quoted\\\" \\\\ thing\";";
        let ast = parse(src).unwrap();
        let reparsed = parse(&pretty(&ast)).unwrap();
        assert_eq!(ast, reparsed);
        assert_eq!(reparsed.meta[0].value, "a \"quoted\" \\ thing");
    }

    #[test]
    fn parenthesizes_right_nested_unions() {
        let src = "spec s; cond C { pi A | (B | C); trigger on GO; bounds [0, 1]; }";
        let ast = parse(src).unwrap();
        let printed = pretty(&ast);
        assert!(printed.contains("pi A | (B | C);"), "{printed}");
        assert_eq!(parse(&printed).unwrap(), ast);
    }
}
