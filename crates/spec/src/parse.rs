//! The hand-written recursive-descent `.tspec` parser.
//!
//! Grammar (comments run `#` to end of line; `not` binds tighter than
//! `|`):
//!
//! ```text
//! spec      := "spec" IDENT ";" item*
//! item      := meta | actions | cond
//! meta      := "meta" IDENT STRING ";"
//! actions   := "actions" IDENT ("," IDENT)* ";"
//! cond      := "cond" IDENT "{" clause* "}"
//! clause    := trigger | pi | disable | bounds
//! trigger   := "trigger" "at" "start" ("when" pred)? ";"
//!            | "trigger" "on" setexpr ("when" ("pre"|"post") pred)? ";"
//! pi        := "pi" setexpr ";"
//! disable   := "disable" ("on" setexpr | "when" pred) ";"
//! bounds    := "bounds" "[" rat "," (rat | "inf") "]" ";"
//! pred      := "not"? IDENT
//! setexpr   := atom ("|" atom)*
//! atom      := IDENT | "any" | "none" | "not" atom | "(" setexpr ")"
//! rat       := INT ("/" INT)?
//! ```
//!
//! Errors are collected with spans and recovery (skip to the next `;`
//! or `}`), so one malformed clause yields one diagnostic and parsing
//! continues into the rest of the file.

use tempo_math::Rat;

use crate::ast::*;
use crate::lex::{lex, Tok, TokKind};
use crate::span::{Diagnostic, Span};

/// Words with grammatical meaning, refused as action or predicate
/// names.
pub const RESERVED: &[&str] = &[
    "spec", "meta", "actions", "cond", "trigger", "at", "start", "on", "when", "pre", "post",
    "not", "pi", "disable", "bounds", "inf", "any", "none",
];

/// Parses one `.tspec` source file.
///
/// Returns the AST, or *every* diagnostic found (never an empty error
/// list). A successful parse is structurally complete — every condition
/// has a bounds clause — but not yet linted: run
/// [`check`](crate::check) for the static diagnostics pass.
pub fn parse(src: &str) -> Result<Spec, Vec<Diagnostic>> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        diags: Vec::new(),
    };
    let spec = p.spec();
    match spec {
        Some(spec) if p.diags.is_empty() => Ok(spec),
        _ => {
            debug_assert!(!p.diags.is_empty());
            Err(p.diags)
        }
    }
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    diags: Vec<Diagnostic>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.toks[self.pos].kind != TokKind::Eof {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: &str) -> bool {
        let t = self.peek();
        t.kind == TokKind::Ident && t.text == kw
    }

    fn error(&mut self, code: &'static str, span: Span, msg: impl Into<String>) {
        self.diags.push(Diagnostic::error(code, span, msg));
    }

    /// Consumes the next token if it has the given kind; errors
    /// otherwise (without consuming).
    fn expect(&mut self, kind: TokKind, what: &str) -> Option<Tok> {
        if self.peek().kind == kind {
            Some(self.bump())
        } else {
            let t = self.peek().clone();
            self.error(
                "parse",
                t.span,
                format!("expected {what}, found {}", describe(&t)),
            );
            None
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Option<Span> {
        if self.at_kw(kw) {
            Some(self.bump().span)
        } else {
            let t = self.peek().clone();
            self.error(
                "parse",
                t.span,
                format!("expected `{kw}`, found {}", describe(&t)),
            );
            None
        }
    }

    /// An identifier usable as a *name* (action, predicate, condition):
    /// any identifier that is not a reserved word.
    fn name(&mut self, what: &str) -> Option<Ident> {
        let t = self.peek().clone();
        if t.kind != TokKind::Ident {
            self.error(
                "parse",
                t.span,
                format!("expected {what}, found {}", describe(&t)),
            );
            return None;
        }
        if RESERVED.contains(&t.text.as_str()) {
            self.error(
                "reserved-word",
                t.span,
                format!("`{}` is a reserved word and cannot name {what}", t.text),
            );
            return None;
        }
        self.bump();
        Some(Ident {
            text: t.text,
            span: t.span,
        })
    }

    /// Skips to just past the next `;`, or to a `}`/Eof — the clause-
    /// level recovery point.
    fn recover_clause(&mut self) {
        loop {
            match self.peek().kind {
                TokKind::Semi => {
                    self.bump();
                    return;
                }
                TokKind::RBrace | TokKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// Skips to the next top-level item keyword (or Eof) — the
    /// item-level recovery point.
    fn recover_item(&mut self) {
        loop {
            let t = self.peek();
            if t.kind == TokKind::Eof {
                return;
            }
            if t.kind == TokKind::Ident && matches!(t.text.as_str(), "meta" | "actions" | "cond") {
                return;
            }
            self.bump();
        }
    }

    fn spec(&mut self) -> Option<Spec> {
        self.expect_kw("spec")?;
        let name = self.name("the spec name")?;
        self.expect(TokKind::Semi, "`;`")?;
        let mut spec = Spec {
            name,
            meta: Vec::new(),
            actions: None,
            conds: Vec::new(),
        };
        while self.peek().kind != TokKind::Eof {
            if self.at_kw("meta") {
                if let Some(m) = self.meta() {
                    spec.meta.push(m);
                } else {
                    self.recover_clause();
                }
            } else if self.at_kw("actions") {
                match self.actions() {
                    Some(decl) => {
                        if spec.actions.is_some() {
                            self.error(
                                "duplicate-clause",
                                decl.span,
                                "a spec has at most one `actions` declaration",
                            );
                        } else {
                            spec.actions = Some(decl);
                        }
                    }
                    None => self.recover_clause(),
                }
            } else if self.at_kw("cond") {
                if let Some(c) = self.cond() {
                    spec.conds.push(c);
                }
            } else {
                let t = self.peek().clone();
                self.error(
                    "parse",
                    t.span,
                    format!(
                        "expected `meta`, `actions` or `cond`, found {}",
                        describe(&t)
                    ),
                );
                self.bump();
                self.recover_item();
            }
        }
        Some(spec)
    }

    fn meta(&mut self) -> Option<Meta> {
        let kw = self.bump().span; // `meta`
        let key = self.name("a metadata key")?;
        let value = self.expect(TokKind::Str, "a quoted string")?;
        let semi = self.expect(TokKind::Semi, "`;`")?;
        Some(Meta {
            key,
            value: value.text,
            span: kw.to(semi.span),
        })
    }

    fn actions(&mut self) -> Option<ActionsDecl> {
        let kw = self.bump().span; // `actions`
        let mut names = vec![self.name("an action name")?];
        while self.peek().kind == TokKind::Comma {
            self.bump();
            names.push(self.name("an action name")?);
        }
        let semi = self.expect(TokKind::Semi, "`;`")?;
        Some(ActionsDecl {
            names,
            span: kw.to(semi.span),
        })
    }

    fn cond(&mut self) -> Option<CondDecl> {
        let kw = self.bump().span; // `cond`
        let name = match self.name("the condition name") {
            Some(n) => n,
            None => {
                self.recover_item();
                return None;
            }
        };
        if self.expect(TokKind::LBrace, "`{`").is_none() {
            self.recover_item();
            return None;
        }
        let mut start: Option<StartTrigger> = None;
        let mut step: Option<StepTrigger> = None;
        let mut pi: Option<SetExpr> = None;
        let mut disable: Option<DisableClause> = None;
        let mut bounds: Option<BoundsClause> = None;
        loop {
            match self.peek().kind {
                TokKind::RBrace | TokKind::Eof => break,
                _ => {}
            }
            if self.at_kw("trigger") {
                match self.trigger() {
                    Some(TriggerClause::Start(t)) => {
                        if start.replace(t).is_some() {
                            self.duplicate("trigger at start", name.span);
                        }
                    }
                    Some(TriggerClause::Step(t)) => {
                        if step.replace(t).is_some() {
                            self.duplicate("trigger on", name.span);
                        }
                    }
                    None => self.recover_clause(),
                }
            } else if self.at_kw("pi") {
                let kw = self.bump().span;
                match self.clause_setexpr() {
                    Some(expr) => {
                        if pi.replace(expr).is_some() {
                            self.duplicate("pi", kw);
                        }
                    }
                    None => self.recover_clause(),
                }
            } else if self.at_kw("disable") {
                match self.disable() {
                    Some(d) => {
                        if disable.replace(d).is_some() {
                            self.duplicate("disable", name.span);
                        }
                    }
                    None => self.recover_clause(),
                }
            } else if self.at_kw("bounds") {
                match self.bounds() {
                    Some(b) => {
                        if bounds.replace(b).is_some() {
                            self.duplicate("bounds", name.span);
                        }
                    }
                    None => self.recover_clause(),
                }
            } else {
                let t = self.peek().clone();
                self.error(
                    "parse",
                    t.span,
                    format!(
                        "expected `trigger`, `pi`, `disable`, `bounds` or `}}`, found {}",
                        describe(&t)
                    ),
                );
                self.recover_clause();
            }
        }
        let close = self.expect(TokKind::RBrace, "`}`")?;
        let bounds = match bounds {
            Some(b) => b,
            None => {
                self.error(
                    "missing-bounds",
                    name.span,
                    format!("condition `{}` has no `bounds` clause", name.text),
                );
                return None;
            }
        };
        Some(CondDecl {
            name,
            start,
            step,
            pi,
            disable,
            bounds,
            span: kw.to(close.span),
        })
    }

    fn duplicate(&mut self, what: &str, span: Span) {
        self.error(
            "duplicate-clause",
            span,
            format!("duplicate `{what}` clause"),
        );
    }

    fn trigger(&mut self) -> Option<TriggerClause> {
        let kw = self.bump().span; // `trigger`
        if self.at_kw("at") {
            self.bump();
            self.expect_kw("start")?;
            let when = if self.at_kw("when") {
                self.bump();
                Some(self.pred()?)
            } else {
                None
            };
            let semi = self.expect(TokKind::Semi, "`;`")?;
            Some(TriggerClause::Start(StartTrigger {
                when,
                span: kw.to(semi.span),
            }))
        } else if self.at_kw("on") {
            self.bump();
            let expr = self.setexpr()?;
            let when = if self.at_kw("when") {
                self.bump();
                let at = if self.at_kw("pre") {
                    self.bump();
                    WhenState::Pre
                } else if self.at_kw("post") {
                    self.bump();
                    WhenState::Post
                } else {
                    let t = self.peek().clone();
                    self.error(
                        "parse",
                        t.span,
                        format!("expected `pre` or `post`, found {}", describe(&t)),
                    );
                    return None;
                };
                Some(StepWhen {
                    at,
                    pred: self.pred()?,
                })
            } else {
                None
            };
            let semi = self.expect(TokKind::Semi, "`;`")?;
            Some(TriggerClause::Step(StepTrigger {
                expr,
                when,
                span: kw.to(semi.span),
            }))
        } else {
            let t = self.peek().clone();
            self.error(
                "parse",
                t.span,
                format!("expected `at start` or `on`, found {}", describe(&t)),
            );
            None
        }
    }

    fn disable(&mut self) -> Option<DisableClause> {
        let kw = self.bump().span; // `disable`
        if self.at_kw("on") {
            self.bump();
            let expr = self.setexpr()?;
            let semi = self.expect(TokKind::Semi, "`;`")?;
            Some(DisableClause::On(expr, kw.to(semi.span)))
        } else if self.at_kw("when") {
            self.bump();
            let pred = self.pred()?;
            let semi = self.expect(TokKind::Semi, "`;`")?;
            Some(DisableClause::When(pred, kw.to(semi.span)))
        } else {
            let t = self.peek().clone();
            self.error(
                "parse",
                t.span,
                format!("expected `on` or `when`, found {}", describe(&t)),
            );
            None
        }
    }

    fn bounds(&mut self) -> Option<BoundsClause> {
        let kw = self.bump().span; // `bounds`
        self.expect(TokKind::LBrack, "`[`")?;
        let lo = self.rat()?;
        self.expect(TokKind::Comma, "`,`")?;
        let hi = if self.at_kw("inf") {
            BoundLit::Inf(self.bump().span)
        } else {
            BoundLit::Finite(self.rat()?)
        };
        self.expect(TokKind::RBrack, "`]`")?;
        let semi = self.expect(TokKind::Semi, "`;`")?;
        Some(BoundsClause {
            lo,
            hi,
            span: kw.to(semi.span),
        })
    }

    fn int(&mut self) -> Option<(i64, Span)> {
        let t = self.expect(TokKind::Int, "an integer")?;
        match t.text.parse::<i64>() {
            Ok(n) => Some((n, t.span)),
            Err(_) => {
                self.error(
                    "bad-rational",
                    t.span,
                    format!("integer `{}` does not fit in 64 bits", t.text),
                );
                None
            }
        }
    }

    fn rat(&mut self) -> Option<RatLit> {
        let (num, span) = self.int()?;
        if self.peek().kind == TokKind::Slash {
            self.bump();
            let (den, den_span) = self.int()?;
            if den == 0 {
                self.error("bad-rational", span.to(den_span), "denominator is zero");
                return None;
            }
            Some(RatLit {
                value: Rat::new(num.into(), den.into()),
                span: span.to(den_span),
            })
        } else {
            Some(RatLit {
                value: Rat::from(num),
                span,
            })
        }
    }

    fn pred(&mut self) -> Option<PredRef> {
        let negated = if self.at_kw("not") {
            self.bump();
            true
        } else {
            false
        };
        let name = self.name("a predicate name")?;
        Some(PredRef { negated, name })
    }

    /// A set expression followed by `;` (the `pi` clause body).
    fn clause_setexpr(&mut self) -> Option<SetExpr> {
        let expr = self.setexpr()?;
        self.expect(TokKind::Semi, "`;`")?;
        Some(expr)
    }

    fn setexpr(&mut self) -> Option<SetExpr> {
        let mut expr = self.atom()?;
        while self.peek().kind == TokKind::Pipe {
            self.bump();
            let rhs = self.atom()?;
            expr = SetExpr::Union(Box::new(expr), Box::new(rhs));
        }
        Some(expr)
    }

    fn atom(&mut self) -> Option<SetExpr> {
        if self.at_kw("any") {
            return Some(SetExpr::Any(self.bump().span));
        }
        if self.at_kw("none") {
            return Some(SetExpr::None(self.bump().span));
        }
        if self.at_kw("not") {
            let sp = self.bump().span;
            let inner = self.atom()?;
            return Some(SetExpr::Not(sp, Box::new(inner)));
        }
        if self.peek().kind == TokKind::LParen {
            self.bump();
            let expr = self.setexpr()?;
            self.expect(TokKind::RParen, "`)`")?;
            return Some(expr);
        }
        self.name("an action").map(SetExpr::Action)
    }
}

enum TriggerClause {
    Start(StartTrigger),
    Step(StepTrigger),
}

fn describe(t: &Tok) -> String {
    match t.kind {
        TokKind::Ident => format!("`{}`", t.text),
        TokKind::Int => format!("`{}`", t.text),
        TokKind::Str => "a string".to_string(),
        TokKind::LBrace => "`{`".to_string(),
        TokKind::RBrace => "`}`".to_string(),
        TokKind::LBrack => "`[`".to_string(),
        TokKind::RBrack => "`]`".to_string(),
        TokKind::LParen => "`(`".to_string(),
        TokKind::RParen => "`)`".to_string(),
        TokKind::Comma => "`,`".to_string(),
        TokKind::Semi => "`;`".to_string(),
        TokKind::Pipe => "`|`".to_string(),
        TokKind::Slash => "`/`".to_string(),
        TokKind::Eof => "end of input".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_spec() {
        let src = r#"
# A response-time requirement.
spec demo;
meta system "request manager";
actions REQUEST, GRANT, TICK;

cond RESPONSE {
    trigger on REQUEST;
    pi GRANT;
    bounds [4, 10];
}

cond LIVE {
    trigger at start;
    pi not TICK;
    disable on TICK | REQUEST;
    bounds [0, inf];
}
"#;
        let spec = parse(src).unwrap();
        assert_eq!(spec.name.text, "demo");
        assert_eq!(spec.meta.len(), 1);
        assert_eq!(spec.meta[0].value, "request manager");
        assert_eq!(spec.actions.as_ref().unwrap().names.len(), 3);
        assert_eq!(spec.conds.len(), 2);
        let r = &spec.conds[0];
        assert!(r.start.is_none() && r.step.is_some());
        assert_eq!(r.bounds.lo.value, Rat::from(4));
        let l = &spec.conds[1];
        assert!(l.start.is_some() && l.step.is_none());
        assert!(matches!(l.bounds.hi, BoundLit::Inf(_)));
        assert!(matches!(l.disable, Some(DisableClause::On(_, _))));
    }

    #[test]
    fn parses_when_guards_and_rationals() {
        let src = "spec s; cond C { \
            trigger on REQUEST when post not hardened; \
            pi SERVE; disable when hardened; bounds [1/2, 15/2]; }";
        let spec = parse(src).unwrap();
        let c = &spec.conds[0];
        let step = c.step.as_ref().unwrap();
        let w = step.when.as_ref().unwrap();
        assert_eq!(w.at, WhenState::Post);
        assert!(w.pred.negated);
        assert_eq!(w.pred.name.text, "hardened");
        assert!(matches!(c.disable, Some(DisableClause::When(ref p, _)) if !p.negated));
        assert_eq!(c.bounds.lo.value, Rat::new(1, 2));
    }

    #[test]
    fn missing_bounds_is_an_error_with_the_cond_span() {
        let src = "spec s;\ncond NOPE { pi A; }";
        let errs = parse(src).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].code, "missing-bounds");
        assert_eq!(errs[0].span.slice(src), "NOPE");
    }

    #[test]
    fn reserved_words_cannot_name_things() {
        let errs = parse("spec s; cond C { pi cond; bounds [0, 1]; }").unwrap_err();
        assert_eq!(errs[0].code, "reserved-word");
        let errs = parse("spec pi;").unwrap_err();
        assert_eq!(errs[0].code, "reserved-word");
    }

    #[test]
    fn recovery_reports_multiple_errors() {
        let src = "spec s;\n\
            cond A { trigger on ; pi X; bounds [0, 1]; }\n\
            cond B { bounds [2, ]; pi Y; bounds [0, 1]; }";
        let errs = parse(src).unwrap_err();
        // One per malformed clause, plus the duplicate bounds in B.
        assert!(errs.len() >= 2, "{errs:?}");
        assert!(errs.iter().all(|e| e.is_error()));
    }

    #[test]
    fn zero_denominator_is_rejected() {
        let src = "spec s; cond C { bounds [1/0, 2]; }";
        let errs = parse(src).unwrap_err();
        assert_eq!(errs[0].code, "bad-rational");
        assert_eq!(errs[0].span.slice(src), "1/0");
    }

    #[test]
    fn duplicate_clauses_are_rejected() {
        let src = "spec s; cond C { pi A; pi B; bounds [0, 1]; }";
        let errs = parse(src).unwrap_err();
        assert_eq!(errs[0].code, "duplicate-clause");
    }

    #[test]
    fn parens_and_precedence() {
        let spec = parse("spec s; cond C { pi not (A | B) | C; bounds [0, 1]; }").unwrap();
        let pi = spec.conds[0].pi.as_ref().unwrap();
        // (not (A|B)) | C
        match pi {
            SetExpr::Union(l, r) => {
                assert!(matches!(**l, SetExpr::Not(_, _)));
                assert!(matches!(**r, SetExpr::Action(_)));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }
}
