//! A compiled spec revision — the unit of hot reload.
//!
//! [`SpecRevision::compile`] runs the full front-to-back pipeline
//! (parse → [`check`](crate::check) → [`lower`](crate::lower) →
//! [`CompiledConditionSet::new`]) and keeps the parsed AST, the
//! warnings, and the shared compiled set together. A monitor pool
//! swaps between revisions; obligations carry across a swap for
//! conditions whose *name* appears in both revisions, which is why the
//! revision also knows how to compute that name-preserving index map.

use std::hash::Hash;

use std::sync::Arc;

use tempo_core::engine::CompiledConditionSet;

use crate::ast::Spec;
use crate::check::check;
use crate::lower::{compile, Binder};
use crate::parse::parse;
use crate::span::Diagnostic;

/// One compiled revision of a `.tspec` source: AST + warnings + shared
/// [`CompiledConditionSet`].
pub struct SpecRevision<S, A> {
    spec: Spec,
    warnings: Vec<Diagnostic>,
    set: Arc<CompiledConditionSet<S, A>>,
}

impl<S, A> std::fmt::Debug for SpecRevision<S, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecRevision")
            .field("name", &self.spec.name.text)
            .field("conditions", &self.set.len())
            .field("warnings", &self.warnings)
            .finish()
    }
}

impl<S, A> SpecRevision<S, A>
where
    S: 'static,
    A: Clone + Eq + Hash + Send + Sync + std::fmt::Debug + 'static,
{
    /// Compiles `src` against `binder`.
    ///
    /// Fails with every diagnostic of error severity found anywhere in
    /// the pipeline — lexing, parsing, the [`check`] pass, or lowering.
    /// Warning-severity findings do not block compilation; they ride
    /// along on the revision as [`warnings`](Self::warnings).
    pub fn compile<B: Binder<S, A>>(
        src: &str,
        binder: &B,
    ) -> Result<SpecRevision<S, A>, Vec<Diagnostic>> {
        let spec = parse(src)?;
        let findings = check(&spec);
        if findings.iter().any(Diagnostic::is_error) {
            return Err(findings);
        }
        let set = compile(&spec, binder)?;
        Ok(SpecRevision {
            spec,
            warnings: findings,
            set: Arc::new(set),
        })
    }
}

impl<S, A> SpecRevision<S, A> {
    /// The parsed AST this revision was compiled from.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// The spec's declared name.
    pub fn name(&self) -> &str {
        &self.spec.name.text
    }

    /// Warning-severity findings from the [`check`] pass.
    pub fn warnings(&self) -> &[Diagnostic] {
        &self.warnings
    }

    /// The compiled condition set, shareable across monitors.
    pub fn compiled(&self) -> &Arc<CompiledConditionSet<S, A>> {
        &self.set
    }

    /// How many conditions the revision compiles to.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the revision compiles to no conditions at all.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// For each condition of `from`, the index of the same-named
    /// condition in this revision, or `None` if the name was dropped.
    ///
    /// This is the map hot reload feeds to
    /// [`EngineState::remap`](tempo_core::engine::EngineState::remap):
    /// obligations of preserved conditions carry forward (their
    /// absolute deadlines unchanged — revising a spec does not revise
    /// history), the rest are closed and reported.
    pub fn carry_map(&self, from: &CompiledConditionSet<S, A>) -> Vec<Option<usize>> {
        (0..from.len())
            .map(|ci| self.set.index_of(from.name(ci)))
            .collect()
    }
}

/// Lints `src` without a binder: lex/parse errors if it does not parse,
/// the [`check`] findings (errors *and* warnings) if it does.
///
/// This is the CI gate for shipped `.tspec` files — a fixture passes
/// only if `lint` returns nothing at all.
pub fn lint(src: &str) -> Vec<Diagnostic> {
    match parse(src) {
        Ok(spec) => check(&spec),
        Err(errs) => errs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::MapBinder;

    fn binder() -> MapBinder<u32, String> {
        MapBinder::new(|n: &str| Some(n.to_string()))
    }

    const SRC: &str = "spec s; actions GO, DONE;\n\
        cond C { trigger on GO; pi DONE; bounds [1, 5]; }\n\
        cond D { trigger at start; pi GO; bounds [0, inf]; }";

    #[test]
    fn compiles_a_clean_spec_without_warnings() {
        let rev: SpecRevision<u32, String> = SpecRevision::compile(SRC, &binder()).unwrap();
        assert_eq!(rev.name(), "s");
        assert!(rev.warnings().is_empty());
        assert_eq!(rev.len(), 2);
        assert!(!rev.is_empty());
        assert_eq!(rev.compiled().name(0), "C");
    }

    #[test]
    fn warnings_ride_along_but_errors_block() {
        let warn = "spec s; cond C { trigger on GO; pi DONE; bounds [1, inf]; } \
            cond V { trigger on none; pi DONE; bounds [0, 1]; }";
        let rev: SpecRevision<u32, String> = SpecRevision::compile(warn, &binder()).unwrap();
        assert_eq!(rev.warnings()[0].code, "vacuous-trigger");
        assert_eq!(rev.len(), 2);

        let err = "spec s; actions GO; cond C { trigger on OOPS; pi GO; bounds [0, 1]; }";
        let errs = SpecRevision::<u32, String>::compile(err, &binder()).unwrap_err();
        assert!(errs.iter().any(|d| d.code == "undeclared-action"));

        let bad = "spec s; cond C { trigger on GO; pi DONE; bounds [0, ]; }";
        assert!(SpecRevision::<u32, String>::compile(bad, &binder()).is_err());
    }

    #[test]
    fn carry_map_matches_by_name() {
        let old: SpecRevision<u32, String> = SpecRevision::compile(SRC, &binder()).unwrap();
        // New revision drops D, keeps C (reordered), adds E.
        let new_src = "spec s2; \
            cond E { trigger on GO; pi DONE; bounds [0, 2]; } \
            cond C { trigger on GO; pi DONE; bounds [1, 3]; }";
        let new: SpecRevision<u32, String> = SpecRevision::compile(new_src, &binder()).unwrap();
        assert_eq!(new.carry_map(old.compiled()), vec![Some(1), None]);
    }

    #[test]
    fn lint_reports_parse_errors_and_check_findings() {
        assert!(lint(SRC).is_empty());
        assert!(lint("spec s; cond C {").iter().any(|d| d.is_error()));
        let codes: Vec<_> = lint("spec s; cond C { trigger on A; pi B; bounds [5, 1]; }")
            .iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec!["contradictory-bounds"]);
    }
}
