//! The static diagnostics pass over a parsed [`Spec`].
//!
//! Runs after [`parse`](crate::parse) and before
//! [`lower`](crate::lower)ing; everything here is decidable from the
//! AST alone (no [`Binder`](crate::Binder) needed), so a spec can be
//! linted by tooling that knows nothing about the host system.
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `undeclared-action` | error | a set expression mentions an action outside the `actions` declaration |
//! | `contradictory-bounds` | warning | `b_l > b_u`: no event can ever satisfy the bound (lowering also fails) |
//! | `zero-upper` | warning | `b_u = 0`: the deadline coincides with the trigger (lowering also fails) |
//! | `vacuous-trigger` | warning | no trigger clause, or a statically empty trigger set: the condition never opens |
//! | `vacuous-pi` | warning | no `pi` clause, or a statically empty `Π` set: no event can serve the bound |
//! | `duplicate-name` | warning | two conditions (or two declared actions) share a name |
//! | `unused-action` | warning | a declared action appears in no condition |
//! | `exact-engine` | warning | the bounds share no u64 tick grid: monitors fall back to the exact-rational engine |

use std::collections::HashSet;

use tempo_math::{Rat, TimeScale};

use crate::ast::{BoundLit, Spec};
use crate::span::{Diagnostic, Span};

/// Lints `spec`, returning every finding ordered by source position.
///
/// Errors (currently only `undeclared-action`) make the spec
/// uncompilable by policy; warnings flag conditions that compile but
/// cannot mean what their author intended. The two bounds warnings are
/// special: [`lower`](crate::lower) *also* fails on them, because the
/// engine's [`Interval`](tempo_math::Interval) cannot represent an
/// empty or zero-width-at-zero bound.
pub fn check(spec: &Spec) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Duplicate condition names: the engine tolerates them (conditions
    // are indexed), but hot reload carries obligations across revisions
    // *by name*, so a duplicate makes the carry ambiguous.
    let mut cond_names: Vec<&str> = Vec::new();
    for c in &spec.conds {
        if cond_names.contains(&c.name.text.as_str()) {
            out.push(Diagnostic::warning(
                "duplicate-name",
                c.name.span,
                format!("condition `{}` is declared more than once", c.name.text),
            ));
        }
        cond_names.push(&c.name.text);
    }

    let declared: Option<Vec<&str>> = spec
        .actions
        .as_ref()
        .map(|d| d.names.iter().map(|n| n.text.as_str()).collect());
    if let Some(decl) = &spec.actions {
        for (i, n) in decl.names.iter().enumerate() {
            if decl.names[..i].iter().any(|m| m.text == n.text) {
                out.push(Diagnostic::warning(
                    "duplicate-name",
                    n.span,
                    format!("action `{}` is declared more than once", n.text),
                ));
            }
        }
    }

    let mut used: HashSet<&str> = HashSet::new();
    for c in &spec.conds {
        let exprs = [
            c.step.as_ref().map(|t| &t.expr),
            c.pi.as_ref(),
            match &c.disable {
                Some(crate::ast::DisableClause::On(e, _)) => Some(e),
                _ => None,
            },
        ];
        for expr in exprs.into_iter().flatten() {
            for lit in expr.literals() {
                used.insert(lit.text.as_str());
                if let Some(decl) = &declared {
                    if !decl.contains(&lit.text.as_str()) {
                        out.push(Diagnostic::error(
                            "undeclared-action",
                            lit.span,
                            format!(
                                "action `{}` is not in the spec's `actions` declaration",
                                lit.text
                            ),
                        ));
                    }
                }
            }
        }

        if let BoundLit::Finite(hi) = c.bounds.hi {
            if c.bounds.lo.value > hi.value {
                out.push(Diagnostic::warning(
                    "contradictory-bounds",
                    c.bounds.span,
                    format!(
                        "lower bound {} exceeds upper bound {}: the condition can never be satisfied",
                        c.bounds.lo.value, hi.value
                    ),
                ));
            } else if hi.value == Rat::ZERO {
                out.push(Diagnostic::warning(
                    "zero-upper",
                    hi.span,
                    "upper bound 0 leaves no time to serve the deadline".to_string(),
                ));
            }
        }

        let triggers_at_start = c.start.is_some();
        let triggers_on_step = c
            .step
            .as_ref()
            .is_some_and(|t| !t.expr.is_statically_empty());
        if !triggers_at_start && !triggers_on_step {
            out.push(Diagnostic::warning(
                "vacuous-trigger",
                c.name.span,
                format!(
                    "condition `{}` has an empty trigger set and can never open",
                    c.name.text
                ),
            ));
        }

        let pi_can_fire = c.pi.as_ref().is_some_and(|e| !e.is_statically_empty());
        if !pi_can_fire {
            let span = c.pi.as_ref().map_or(c.name.span, |e| e.span());
            out.push(Diagnostic::warning(
                "vacuous-pi",
                span,
                format!(
                    "condition `{}` has an empty Π set: no event can serve its bound",
                    c.name.text
                ),
            ));
        }
    }

    // Whether the bounds admit a common u64 tick grid decides which
    // engine backend `Auto` picks at compile time (see tempo-core's
    // `BackendChoice`): every shipped spec is expected to take the
    // integer fast path, so losing it — usually to one outsized bound
    // whose scaled value overflows u64 — is worth a lint even though
    // the spec still compiles and runs on the exact-rational engine.
    let bound_vals: Vec<(Rat, Span)> = spec
        .conds
        .iter()
        .flat_map(|c| {
            let lo = Some((c.bounds.lo.value, c.bounds.lo.span));
            let hi = match &c.bounds.hi {
                BoundLit::Finite(h) => Some((h.value, h.span)),
                BoundLit::Inf(_) => None,
            };
            [lo, hi].into_iter().flatten()
        })
        .collect();
    if TimeScale::for_values(bound_vals.iter().map(|(v, _)| *v)).is_none() {
        // Point at the first bound whose addition breaks the grid (the
        // shortest failing prefix), not at the whole spec.
        let mut at = bound_vals.len() - 1;
        for i in 1..=bound_vals.len() {
            if TimeScale::for_values(bound_vals[..i].iter().map(|(v, _)| *v)).is_none() {
                at = i - 1;
                break;
            }
        }
        let (v, span) = bound_vals[at];
        out.push(Diagnostic::warning(
            "exact-engine",
            span,
            format!(
                "bound {v} does not fit the shared u64 tick grid; \
                 monitors will run this spec on the exact-rational engine"
            ),
        ));
    }

    if let Some(decl) = &spec.actions {
        for n in &decl.names {
            if !used.contains(n.text.as_str()) {
                out.push(Diagnostic::warning(
                    "unused-action",
                    n.span,
                    format!("declared action `{}` is used by no condition", n.text),
                ));
            }
        }
    }

    out.sort_by_key(|d| (d.span.start, d.span.end));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn codes(src: &str) -> Vec<&'static str> {
        check(&parse(src).unwrap()).iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_spec_has_no_findings() {
        let src = "spec s; actions GO, DONE; \
            cond C { trigger on GO; pi DONE; bounds [1, 5]; }";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn contradictory_and_zero_bounds_warn() {
        assert_eq!(
            codes("spec s; cond C { trigger on A; pi B; bounds [5, 1]; }"),
            vec!["contradictory-bounds"]
        );
        assert_eq!(
            codes("spec s; cond C { trigger on A; pi B; bounds [0, 0]; }"),
            vec!["zero-upper"]
        );
        // inf can contradict nothing.
        assert!(codes("spec s; cond C { trigger on A; pi B; bounds [99, inf]; }").is_empty());
    }

    #[test]
    fn vacuous_conditions_warn() {
        let src = "spec s; cond C { pi A; bounds [0, 5]; }";
        assert_eq!(codes(src), vec!["vacuous-trigger"]);
        let src = "spec s; cond C { trigger on none; pi A; bounds [0, 5]; }";
        assert_eq!(codes(src), vec!["vacuous-trigger"]);
        let src = "spec s; cond C { trigger on A; bounds [0, 5]; }";
        assert_eq!(codes(src), vec!["vacuous-pi"]);
        let src = "spec s; cond C { trigger on A; pi not any; bounds [0, 5]; }";
        assert_eq!(codes(src), vec!["vacuous-pi"]);
        // A start trigger suffices.
        let src = "spec s; cond C { trigger at start; pi A; bounds [0, 5]; }";
        assert!(codes(src).is_empty());
    }

    #[test]
    fn duplicate_names_warn_on_the_second_occurrence() {
        let src = "spec s;\n\
            cond C { trigger on A; pi B; bounds [0, 5]; }\n\
            cond C { trigger on A; pi B; bounds [0, 5]; }";
        let spec = parse(src).unwrap();
        let d = &check(&spec)[0];
        assert_eq!(d.code, "duplicate-name");
        assert_eq!(d.span, spec.conds[1].name.span);
    }

    #[test]
    fn action_declarations_are_enforced() {
        let src = "spec s; actions GO, DONE, SPARE; \
            cond C { trigger on GO; pi DONE | OOPS; bounds [0, 5]; }";
        let spec = parse(src).unwrap();
        let findings = check(&spec);
        let codes: Vec<_> = findings.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["unused-action", "undeclared-action"]);
        assert!(findings[1].is_error());
        assert_eq!(findings[1].span.slice(src), "OOPS");
        assert_eq!(findings[0].span.slice(src), "SPARE");
        // Without a declaration, nothing is undeclared.
        let src = "spec s; cond C { trigger on GO; pi OOPS; bounds [0, 5]; }";
        assert!(codes_of(src).is_empty());
    }

    fn codes_of(src: &str) -> Vec<&'static str> {
        codes(src)
    }

    #[test]
    fn unscalable_bounds_warn_exact_engine() {
        // Alone, each bound fits a u64 tick grid; the shared grid
        // (denominator 6) pushes the upper bound past u64::MAX, so the
        // warning points at the bound whose addition breaks the grid.
        let src = "spec s; cond C { trigger on A; pi B; \
            bounds [1/3, 9223372036854775807/2]; }";
        let spec = parse(src).unwrap();
        let findings = check(&spec);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].code, "exact-engine");
        assert_eq!(findings[0].span.slice(src), "9223372036854775807/2");
        // Grid-friendly rationals stay clean.
        assert!(codes("spec s; cond C { trigger on A; pi B; bounds [1/2, 3/4]; }").is_empty());
    }
}
