//! The hand-written `.tspec` lexer.
//!
//! Tokens carry their [`Span`]; keywords are not distinguished here —
//! the parser matches identifier text, so the token stream stays small.

use crate::span::{Diagnostic, Span};

/// The kinds of `.tspec` token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`spec`, `cond`, `REQUEST`, ...).
    Ident,
    /// An unsigned decimal integer.
    Int,
    /// A double-quoted string (the stored text is unescaped).
    Str,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `|`
    Pipe,
    /// `/`
    Slash,
    /// End of input (always the last token).
    Eof,
}

/// One lexed token: kind, source span, and (for identifiers, integers
/// and strings) its text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's text: identifier/integer spelling, unescaped string
    /// contents; empty for punctuation.
    pub text: String,
    /// Where the token sits in the source.
    pub span: Span,
}

/// Lexes `src` into tokens (always ending with [`TokKind::Eof`]).
///
/// `#` starts a comment running to end of line. Errors (stray
/// characters, unterminated strings) are collected with their spans;
/// lexing continues past them so one bad character yields one
/// diagnostic, not a cascade.
pub fn lex(src: &str) -> Result<Vec<Tok>, Vec<Diagnostic>> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut errs = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                // Identifiers may continue with `-` (but not start with
                // it): system action names like `T-SETFLAG_0` and
                // condition names like `SERVE-WHILE-WORKABLE` are
                // single tokens. No minus operator exists to collide
                // with — bounds are nonnegative rationals.
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
                {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    span: Span::new(start, i),
                });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Int,
                    text: src[start..i].to_string(),
                    span: Span::new(start, i),
                });
            }
            b'"' => {
                let start = i;
                i += 1;
                let mut text = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            closed = true;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            // Only the two escapes the pretty-printer
                            // emits: \" and \\.
                            text.push(bytes[i + 1] as char);
                            i += 2;
                        }
                        b'\n' => break,
                        c => {
                            text.push(c as char);
                            i += 1;
                        }
                    }
                }
                if closed {
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text,
                        span: Span::new(start, i),
                    });
                } else {
                    errs.push(Diagnostic::error(
                        "unterminated-string",
                        Span::new(start, i),
                        "unterminated string literal",
                    ));
                }
            }
            _ => {
                let kind = match b {
                    b'{' => Some(TokKind::LBrace),
                    b'}' => Some(TokKind::RBrace),
                    b'[' => Some(TokKind::LBrack),
                    b']' => Some(TokKind::RBrack),
                    b'(' => Some(TokKind::LParen),
                    b')' => Some(TokKind::RParen),
                    b',' => Some(TokKind::Comma),
                    b';' => Some(TokKind::Semi),
                    b'|' => Some(TokKind::Pipe),
                    b'/' => Some(TokKind::Slash),
                    _ => None,
                };
                match kind {
                    Some(kind) => toks.push(Tok {
                        kind,
                        text: String::new(),
                        span: Span::new(i, i + 1),
                    }),
                    None => errs.push(Diagnostic::error(
                        "stray-char",
                        Span::new(i, i + 1),
                        format!("unexpected character `{}`", b as char),
                    )),
                }
                i += 1;
            }
        }
    }
    toks.push(Tok {
        kind: TokKind::Eof,
        text: String::new(),
        span: Span::new(src.len(), src.len()),
    });
    if errs.is_empty() {
        Ok(toks)
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_grammar_tokens() {
        use TokKind::*;
        assert_eq!(
            kinds("cond C { bounds [1/2, 7]; } # tail"),
            vec![
                Ident, Ident, LBrace, Ident, LBrack, Int, Slash, Int, Comma, Int, RBrack, Semi,
                RBrace, Eof
            ]
        );
        let toks = lex("meta k \"a \\\"b\\\\\";").unwrap();
        assert_eq!(toks[2].kind, TokKind::Str);
        assert_eq!(toks[2].text, "a \"b\\");
    }

    #[test]
    fn hyphens_join_identifiers_but_cannot_start_them() {
        let toks = lex("SERVE-WHILE-WORKABLE T-SETFLAG_0").unwrap();
        assert_eq!(toks[0].text, "SERVE-WHILE-WORKABLE");
        assert_eq!(toks[1].text, "T-SETFLAG_0");
        assert_eq!(toks[2].kind, TokKind::Eof);
        let errs = lex("-LEADING").unwrap_err();
        assert_eq!(errs[0].code, "stray-char");
    }

    #[test]
    fn spans_are_exact() {
        let toks = lex("spec S;").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 4));
        assert_eq!(toks[1].span, Span::new(5, 6));
        assert_eq!(toks[2].span, Span::new(6, 7));
        assert_eq!(toks[3].span, Span::new(7, 7)); // Eof
    }

    #[test]
    fn errors_carry_spans_and_do_not_cascade() {
        let errs = lex("spec @ S; %").unwrap_err();
        assert_eq!(errs.len(), 2);
        assert_eq!(errs[0].code, "stray-char");
        assert_eq!(errs[0].span, Span::new(5, 6));
        assert_eq!(errs[1].span, Span::new(10, 11));
        let errs = lex("meta k \"open").unwrap_err();
        assert_eq!(errs[0].code, "unterminated-string");
    }
}
