//! The `.tspec` abstract syntax tree.
//!
//! Every node carries the [`Span`]s needed for diagnostics, but
//! **structural equality ignores them**: `PartialEq` is hand-written to
//! compare shape and names only, so the round-trip property
//! `parse(pretty(spec)) == spec` holds even though pretty-printing
//! moves every token.

use tempo_core::ActionSet;
use tempo_math::Rat;

use crate::span::{Diagnostic, Span};

/// An identifier with its source location. Equality is on the text.
#[derive(Clone, Debug, Eq)]
pub struct Ident {
    /// The identifier's spelling.
    pub text: String,
    /// Where it appeared.
    pub span: Span,
}

impl PartialEq for Ident {
    fn eq(&self, other: &Ident) -> bool {
        self.text == other.text
    }
}

/// A whole `.tspec` file: `spec NAME;` followed by metadata, an
/// optional action declaration, and the named conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spec {
    /// The spec's name (`spec NAME;`).
    pub name: Ident,
    /// `meta KEY "VALUE";` entries, in source order.
    pub meta: Vec<Meta>,
    /// The optional `actions A, B, C;` declaration.
    pub actions: Option<ActionsDecl>,
    /// The named timing conditions, in source order.
    pub conds: Vec<CondDecl>,
}

/// One `meta KEY "VALUE";` entry.
#[derive(Clone, Debug, Eq)]
pub struct Meta {
    /// The metadata key.
    pub key: Ident,
    /// The (unescaped) metadata value.
    pub value: String,
    /// The whole entry.
    pub span: Span,
}

impl PartialEq for Meta {
    fn eq(&self, other: &Meta) -> bool {
        self.key == other.key && self.value == other.value
    }
}

/// An `actions A, B, C;` declaration: the spec's action vocabulary.
/// When present, the [`check`](crate::check) pass rejects set
/// expressions mentioning undeclared actions and warns about declared
/// actions no condition uses.
#[derive(Clone, Debug, Eq)]
pub struct ActionsDecl {
    /// The declared action names.
    pub names: Vec<Ident>,
    /// The whole declaration.
    pub span: Span,
}

impl PartialEq for ActionsDecl {
    fn eq(&self, other: &ActionsDecl) -> bool {
        self.names == other.names
    }
}

/// One `cond NAME { ... }` declaration — the textual form of a
/// [`TimingCondition`](tempo_core::TimingCondition).
#[derive(Clone, Debug, Eq)]
pub struct CondDecl {
    /// The condition's name.
    pub name: Ident,
    /// `trigger at start [when ...];` — the `T_start` component.
    pub start: Option<StartTrigger>,
    /// `trigger on EXPR [when ...];` — the `T_step` component.
    pub step: Option<StepTrigger>,
    /// `pi EXPR;` — the bounded action set `Π` (empty if absent).
    pub pi: Option<SetExpr>,
    /// `disable on EXPR;` / `disable when PRED;` — the disabling set.
    pub disable: Option<DisableClause>,
    /// `bounds [b_l, b_u];` — mandatory.
    pub bounds: BoundsClause,
    /// The whole declaration.
    pub span: Span,
}

impl PartialEq for CondDecl {
    fn eq(&self, other: &CondDecl) -> bool {
        self.name == other.name
            && self.start == other.start
            && self.step == other.step
            && self.pi == other.pi
            && self.disable == other.disable
            && self.bounds == other.bounds
    }
}

/// `trigger at start;`, optionally restricted to start states
/// satisfying a bound predicate: `trigger at start when [not] P;`.
#[derive(Clone, Debug, Eq)]
pub struct StartTrigger {
    /// The optional state-predicate restriction.
    pub when: Option<PredRef>,
    /// The whole clause.
    pub span: Span,
}

impl PartialEq for StartTrigger {
    fn eq(&self, other: &StartTrigger) -> bool {
        self.when == other.when
    }
}

/// `trigger on EXPR;`, optionally guarded by a state predicate on the
/// step's pre- or post-state: `trigger on EXPR when pre [not] P;`.
///
/// Without a guard the trigger is a pure action set and lowers to the
/// engine's declarative dispatch tables; with one it lowers to the
/// exact step closure `set.contains(a) && pred(state)`.
#[derive(Clone, Debug, Eq)]
pub struct StepTrigger {
    /// The triggering action set.
    pub expr: SetExpr,
    /// The optional pre/post state guard.
    pub when: Option<StepWhen>,
    /// The whole clause.
    pub span: Span,
}

impl PartialEq for StepTrigger {
    fn eq(&self, other: &StepTrigger) -> bool {
        self.expr == other.expr && self.when == other.when
    }
}

/// The state guard of a [`StepTrigger`]: which end of the step it
/// reads, and the (possibly negated) named predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepWhen {
    /// Whether the guard reads the step's pre- or post-state.
    pub at: WhenState,
    /// The named predicate.
    pub pred: PredRef,
}

/// Which end of a step a [`StepWhen`] guard reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WhenState {
    /// The state before the action.
    Pre,
    /// The state after the action.
    Post,
}

/// A (possibly negated) reference to a named state predicate, resolved
/// at lowering time through the host's [`Binder`](crate::Binder).
#[derive(Clone, Debug, Eq)]
pub struct PredRef {
    /// `true` for `not P`.
    pub negated: bool,
    /// The predicate's name.
    pub name: Ident,
}

impl PartialEq for PredRef {
    fn eq(&self, other: &PredRef) -> bool {
        self.negated == other.negated && self.name == other.name
    }
}

/// The disabling clause of a condition.
#[derive(Clone, Debug, Eq)]
pub enum DisableClause {
    /// `disable on EXPR;` — suspension by *action* membership.
    On(SetExpr, Span),
    /// `disable when [not] P;` — suspension by a state predicate on the
    /// post-state.
    When(PredRef, Span),
}

impl DisableClause {
    /// The whole clause's span.
    pub fn span(&self) -> Span {
        match self {
            DisableClause::On(_, sp) | DisableClause::When(_, sp) => *sp,
        }
    }
}

impl PartialEq for DisableClause {
    fn eq(&self, other: &DisableClause) -> bool {
        match (self, other) {
            (DisableClause::On(a, _), DisableClause::On(b, _)) => a == b,
            (DisableClause::When(a, _), DisableClause::When(b, _)) => a == b,
            _ => false,
        }
    }
}

/// `bounds [b_l, b_u];` — a rational lower bound and a rational or
/// infinite upper bound.
#[derive(Clone, Debug, Eq)]
pub struct BoundsClause {
    /// The lower bound `b_l`.
    pub lo: RatLit,
    /// The upper bound `b_u` (possibly `inf`).
    pub hi: BoundLit,
    /// The whole clause.
    pub span: Span,
}

impl PartialEq for BoundsClause {
    fn eq(&self, other: &BoundsClause) -> bool {
        self.lo == other.lo && self.hi == other.hi
    }
}

/// A nonnegative rational literal, `a` or `a/b`.
#[derive(Clone, Copy, Debug, Eq)]
pub struct RatLit {
    /// The parsed value.
    pub value: Rat,
    /// Where the literal appeared.
    pub span: Span,
}

impl PartialEq for RatLit {
    fn eq(&self, other: &RatLit) -> bool {
        self.value == other.value
    }
}

/// An upper bound: a finite rational or `inf`.
#[derive(Clone, Copy, Debug, Eq)]
pub enum BoundLit {
    /// A finite upper bound.
    Finite(RatLit),
    /// No upper bound (`inf`).
    Inf(Span),
}

impl PartialEq for BoundLit {
    fn eq(&self, other: &BoundLit) -> bool {
        match (self, other) {
            (BoundLit::Finite(a), BoundLit::Finite(b)) => a == b,
            (BoundLit::Inf(_), BoundLit::Inf(_)) => true,
            _ => false,
        }
    }
}

/// An action-set expression: literals, `any`, `none`, unions and
/// complements. Closed under evaluation to the engine's two-shape
/// [`ActionSet`] (a list, or the complement of one).
#[derive(Clone, Debug, Eq)]
pub enum SetExpr {
    /// A single action literal.
    Action(Ident),
    /// Every action.
    Any(Span),
    /// No action.
    None(Span),
    /// Complement: `not EXPR`.
    Not(Span, Box<SetExpr>),
    /// Union: `EXPR | EXPR`.
    Union(Box<SetExpr>, Box<SetExpr>),
}

impl PartialEq for SetExpr {
    fn eq(&self, other: &SetExpr) -> bool {
        match (self, other) {
            (SetExpr::Action(a), SetExpr::Action(b)) => a == b,
            (SetExpr::Any(_), SetExpr::Any(_)) | (SetExpr::None(_), SetExpr::None(_)) => true,
            (SetExpr::Not(_, a), SetExpr::Not(_, b)) => a == b,
            (SetExpr::Union(a1, a2), SetExpr::Union(b1, b2)) => a1 == b1 && a2 == b2,
            _ => false,
        }
    }
}

impl SetExpr {
    /// The expression's full source span.
    pub fn span(&self) -> Span {
        match self {
            SetExpr::Action(id) => id.span,
            SetExpr::Any(sp) | SetExpr::None(sp) => *sp,
            SetExpr::Not(sp, e) => sp.to(e.span()),
            SetExpr::Union(a, b) => a.span().to(b.span()),
        }
    }

    /// Every action literal in the expression, in source order.
    pub fn literals(&self) -> Vec<&Ident> {
        let mut out = Vec::new();
        self.collect_literals(&mut out);
        out
    }

    fn collect_literals<'e>(&'e self, out: &mut Vec<&'e Ident>) {
        match self {
            SetExpr::Action(id) => out.push(id),
            SetExpr::Any(_) | SetExpr::None(_) => {}
            SetExpr::Not(_, e) => e.collect_literals(out),
            SetExpr::Union(a, b) => {
                a.collect_literals(out);
                b.collect_literals(out);
            }
        }
    }

    /// Evaluates the expression to a concrete [`ActionSet`], resolving
    /// each literal through `resolve`. The set algebra is closed over
    /// the two representations:
    ///
    /// * `¬Of(v) = AllExcept(v)`, `¬AllExcept(v) = Of(v)`;
    /// * `Of(a) ∪ Of(b) = Of(a ∪ b)`;
    /// * `Of(a) ∪ AllExcept(b) = AllExcept(b ∖ a)`;
    /// * `AllExcept(a) ∪ AllExcept(b) = AllExcept(a ∩ b)`.
    pub fn eval_with<A, F>(&self, resolve: &F) -> Result<ActionSet<A>, Diagnostic>
    where
        A: Clone + PartialEq,
        F: Fn(&Ident) -> Result<A, Diagnostic>,
    {
        match self {
            SetExpr::Action(id) => Ok(ActionSet::only(resolve(id)?)),
            SetExpr::Any(_) => Ok(ActionSet::all()),
            SetExpr::None(_) => Ok(ActionSet::empty()),
            SetExpr::Not(_, e) => Ok(match e.eval_with(resolve)? {
                ActionSet::Of(v) => ActionSet::AllExcept(v),
                ActionSet::AllExcept(v) => ActionSet::Of(v),
            }),
            SetExpr::Union(l, r) => {
                let (l, r) = (l.eval_with(resolve)?, r.eval_with(resolve)?);
                Ok(match (l, r) {
                    (ActionSet::Of(mut a), ActionSet::Of(b)) => {
                        for x in b {
                            if !a.contains(&x) {
                                a.push(x);
                            }
                        }
                        ActionSet::Of(a)
                    }
                    (ActionSet::Of(a), ActionSet::AllExcept(mut b))
                    | (ActionSet::AllExcept(mut b), ActionSet::Of(a)) => {
                        b.retain(|x| !a.contains(x));
                        ActionSet::AllExcept(b)
                    }
                    (ActionSet::AllExcept(mut a), ActionSet::AllExcept(b)) => {
                        a.retain(|x| b.contains(x));
                        ActionSet::AllExcept(a)
                    }
                })
            }
        }
    }

    /// The expression's *abstract* value over action names — the
    /// binder-free evaluation the [`check`](crate::check) pass uses for
    /// static emptiness and membership questions.
    pub fn abstract_set(&self) -> ActionSet<String> {
        self.eval_with(&|id: &Ident| Ok::<_, Diagnostic>(id.text.clone()))
            .expect("name resolution is infallible")
    }

    /// `true` when the expression denotes the empty set for every
    /// possible binding (an `Of` shape with no members; complements are
    /// conservatively nonempty).
    pub fn is_statically_empty(&self) -> bool {
        matches!(self.abstract_set(), ActionSet::Of(v) if v.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(text: &str) -> Ident {
        Ident {
            text: text.to_string(),
            span: Span::default(),
        }
    }

    fn act(text: &str) -> SetExpr {
        SetExpr::Action(id(text))
    }

    #[test]
    fn equality_ignores_spans() {
        let a = SetExpr::Action(Ident {
            text: "GO".into(),
            span: Span::new(3, 5),
        });
        let b = SetExpr::Action(Ident {
            text: "GO".into(),
            span: Span::new(40, 42),
        });
        assert_eq!(a, b);
        assert_ne!(a, act("STOP"));
        assert_eq!(
            BoundLit::Inf(Span::new(1, 2)),
            BoundLit::Inf(Span::new(9, 9))
        );
    }

    #[test]
    fn set_algebra_is_closed() {
        let u = SetExpr::Union(Box::new(act("A")), Box::new(act("B")));
        assert_eq!(u.abstract_set(), ActionSet::of(["A".into(), "B".into()]));

        // ¬(A | B) = AllExcept[A, B]
        let n = SetExpr::Not(Span::default(), Box::new(u.clone()));
        assert_eq!(
            n.abstract_set(),
            ActionSet::all_except(["A".into(), "B".into()])
        );

        // ¬(A|B) ∪ A = AllExcept[B]
        let mixed = SetExpr::Union(Box::new(n.clone()), Box::new(act("A")));
        assert_eq!(mixed.abstract_set(), ActionSet::all_except(["B".into()]));

        // ¬(A|B) ∪ ¬(B|C) = AllExcept[B]
        let u2 = SetExpr::Union(Box::new(act("B")), Box::new(act("C")));
        let n2 = SetExpr::Not(Span::default(), Box::new(u2));
        let inter = SetExpr::Union(Box::new(n), Box::new(n2));
        assert_eq!(inter.abstract_set(), ActionSet::all_except(["B".into()]));

        // Membership sanity against the expression semantics.
        assert!(!inter.abstract_set().contains(&"B".to_string()));
        assert!(inter.abstract_set().contains(&"A".to_string()));
        assert!(inter.abstract_set().contains(&"Z".to_string()));
    }

    #[test]
    fn emptiness_and_literals() {
        assert!(SetExpr::None(Span::default()).is_statically_empty());
        assert!(!SetExpr::Any(Span::default()).is_statically_empty());
        let dup = SetExpr::Union(Box::new(act("A")), Box::new(act("A")));
        assert_eq!(dup.abstract_set(), ActionSet::of(["A".into()]));
        assert_eq!(dup.literals().len(), 2);
        // not any = none
        let none = SetExpr::Not(Span::default(), Box::new(SetExpr::Any(Span::default())));
        assert!(none.is_statically_empty());
    }
}
