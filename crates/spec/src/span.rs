//! Source locations and span-carrying diagnostics.

use std::fmt;

/// A half-open byte range `start..end` into the spec source.
///
/// Spans are *locations only*: the AST's structural equality
/// ([`PartialEq`] on [`Spec`](crate::Spec) and friends) deliberately
/// ignores them, so a parse → pretty-print → re-parse round trip
/// compares equal even though every token moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// The span `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The spanned slice of `src` (empty if out of range).
    pub fn slice<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// 1-based `(line, column)` of the span start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src[..self.start.min(src.len())];
        let line = upto.matches('\n').count() + 1;
        let col = upto
            .rfind('\n')
            .map_or(self.start + 1, |nl| self.start - nl);
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// How bad a [`Diagnostic`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// The spec cannot be compiled.
    Error,
    /// The spec compiles but is suspicious (vacuous condition,
    /// contradictory bounds, unused declaration, ...).
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One message from the parser, the [`check`](crate::check) lint pass,
/// or [`lower`](crate::lower)ing — always anchored to a source [`Span`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// A short, stable, kebab-case code (e.g. `"vacuous-trigger"`);
    /// tests and tools match on this, never on the message text.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Where in the source the problem sits.
    pub span: Span,
}

impl Diagnostic {
    /// An error diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            code,
            message: message.into(),
            span,
        }
    }

    /// A warning diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            code,
            message: message.into(),
            span,
        }
    }

    /// `true` for [`Severity::Error`].
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Renders the diagnostic against its source, rustc-style: the
    /// message line, a `line:col` locus, and the offending source line
    /// with a caret run under the span.
    ///
    /// ```
    /// use tempo_spec::parse;
    ///
    /// let src = "spec S;\ncond C { trigger on GO; pi OK; bounds [2, 1]; }\n";
    /// let spec = parse(src).unwrap();
    /// let lint = &tempo_spec::check(&spec)[0];
    /// let text = lint.render(src);
    /// assert!(text.contains("warning[contradictory-bounds]"));
    /// assert!(text.contains("--> 2:"));
    /// ```
    pub fn render(&self, src: &str) -> String {
        let (line, col) = self.span.line_col(src);
        let line_start = src[..self.span.start.min(src.len())]
            .rfind('\n')
            .map_or(0, |nl| nl + 1);
        let line_text = src[line_start..].lines().next().unwrap_or("");
        let width = self
            .span
            .end
            .saturating_sub(self.span.start)
            .clamp(1, line_text.len().saturating_sub(col - 1).max(1));
        format!(
            "{}[{}]: {}\n --> {}:{}\n  |\n{:>2} | {}\n  | {}{}",
            self.severity,
            self.code,
            self.message,
            line,
            col,
            line,
            line_text,
            " ".repeat(col - 1),
            "^".repeat(width),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_and_slice() {
        let src = "abc\ndef\n";
        let sp = Span::new(5, 7);
        assert_eq!(sp.line_col(src), (2, 2));
        assert_eq!(sp.slice(src), "ef");
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(sp.to(Span::new(0, 1)), Span::new(0, 7));
        assert_eq!(sp.to_string(), "5..7");
    }

    #[test]
    fn render_points_at_the_span() {
        let src = "spec S;\ncond C {}\n";
        let d = Diagnostic::error("parse", Span::new(13, 14), "boom");
        let r = d.render(src);
        assert!(r.contains("error[parse]: boom"), "{r}");
        assert!(r.contains("--> 2:6"), "{r}");
        assert!(r.contains("cond C {}"), "{r}");
        assert!(r.lines().last().unwrap().trim_end().ends_with('^'), "{r}");
    }
}
