//! `tempo-spec` — the `.tspec` timing-condition language.
//!
//! The engine crates build timing conditions `(T, b) ~> (Π, S)` in
//! Rust. This crate adds a small textual surface for the same objects:
//! a hand-written lexer and recursive-descent parser for `.tspec`
//! files, a span-carrying diagnostics pass, a lowering onto the
//! declarative [`TimingCondition`](tempo_core::TimingCondition)
//! builders, and [`SpecRevision`] — the compiled unit a monitor pool
//! hot-swaps at runtime.
//!
//! # Quickstart
//!
//! ```
//! use tempo_spec::{MapBinder, SpecRevision};
//!
//! let src = r#"
//! spec request_manager;
//! meta paper "Lynch & Attiya, section 4";
//! actions REQUEST, GRANT;
//!
//! cond RESPONSE {
//!     trigger on REQUEST;   # opening events
//!     pi GRANT;             # events that serve the bound
//!     bounds [1, 10];       # b_l = 1, b_u = 10
//! }
//! "#;
//!
//! // The binder maps spec names onto host actions (and, for guarded
//! // clauses, host state predicates). Here actions are plain strings.
//! let binder: MapBinder<(), String> = MapBinder::new(|name| Some(name.to_string()));
//! let rev = SpecRevision::compile(src, &binder).expect("spec compiles");
//! assert_eq!(rev.name(), "request_manager");
//! assert_eq!(rev.compiled().name(0), "RESPONSE");
//! ```
//!
//! # Pipeline
//!
//! [`parse`] → [`check`] → [`lower`] → compiled set, with
//! [`SpecRevision::compile`] running all four. Every stage reports
//! [`Diagnostic`]s carrying byte [`Span`]s into the source; `check`
//! warnings (contradictory bounds, vacuous conditions, duplicate
//! names, unused actions) ride along on the revision, while
//! error-severity findings at any stage abort compilation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ast;
mod check;
mod lex;
mod lower;
mod parse;
mod pretty;
mod revision;
mod span;

pub use ast::Spec;
pub use check::check;
pub use lex::{lex, Tok, TokKind};
pub use lower::{compile, lower, Binder, MapBinder, StatePred};
pub use parse::{parse, RESERVED};
pub use pretty::pretty;
pub use revision::{lint, SpecRevision};
pub use span::{Diagnostic, Severity, Span};
