//! Anchor crate: hosts the repository-level `examples/` and `tests/`
//! directories (Cargo targets must belong to a package). The library
//! itself re-exports the full `tempo` stack for convenience in those
//! targets.

#![forbid(unsafe_code)]

pub use tempo_core as core;
pub use tempo_ioa as ioa;
pub use tempo_math as math;
pub use tempo_sim as sim;
pub use tempo_systems as systems;
pub use tempo_zones as zones;
