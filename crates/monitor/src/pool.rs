//! Sharding many event streams across worker threads.
//!
//! A [`MonitorPool`] owns a fixed set of worker threads; every opened
//! stream is pinned to one worker (round robin), so a stream's events
//! are processed in order by a single [`Monitor`]. Producers hand events
//! to [`StreamHandle::send`], which applies the configured
//! [`OverloadPolicy`] when the stream's queue is full: block the
//! producer, drop the oldest queued event, or fail the stream.
//!
//! # Ingestion pipeline
//!
//! The transport is lock-free: each (stream, worker) pair owns a bounded
//! SPSC ring buffer ([`crate::ring`]) carrying only [`Event`]s. The
//! handle keeps the producer half, the worker keeps the consumer half,
//! and stream lifecycle travels out of band — opening a stream registers
//! the ring with the worker through a small injector list, finishing it
//! flips a per-stream atomic flag. Publish and drain are batched (one
//! release store per [`send_batch`](StreamHandle::send_batch), one
//! claim per worker drain of up to [`PoolConfig::drain_batch`] events),
//! and both sides block by spin-then-park
//! ([`std::thread::park`]/[`unpark`](std::thread::Thread::unpark))
//! instead of condvars: an idle worker spins briefly, advertises itself
//! sleeping, re-checks its rings under a `SeqCst` fence, and parks;
//! every producer wake goes through the mirror-image fence, so wakeups
//! cannot be lost. A producer blocked on a full ring parks the same way
//! inside [`crate::ring`], woken by the worker's draining pop.
//!
//! All workers report into one [`MonitorMetrics`]; the hot per-event
//! counters are sharded per worker and merged at snapshot time, so a
//! snapshot still sees the whole pool: total events, obligation churn,
//! the deepest queue observed, and per-stream lag.

use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{fence, AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle, Thread};
use std::time::Duration;

use tempo_core::{SatisfactionMode, TimingCondition, Violation};
use tempo_math::Rat;

use tempo_core::engine::{BackendChoice, CompiledConditionSet, Obligation};
use tempo_spec::SpecRevision;

use crate::event::Event;
use crate::metrics::{MetricsShard, MetricsSnapshot, MonitorMetrics, StreamLag};
use crate::monitor::Monitor;
use crate::predict::{Forced, Warning};
use crate::ring::{self, Consumer, Producer};

/// What [`StreamHandle::send`] does when the stream's queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the producer until the worker catches up (lossless,
    /// backpressure).
    Block,
    /// Drop the oldest queued event of *this stream* to make room
    /// (lossy, bounded latency).
    DropOldest,
    /// Refuse the event and mark the stream failed; subsequent sends on
    /// the stream error immediately.
    FailStream,
}

/// Pool sizing and overload behaviour.
///
/// Sizing fields are *normalized* rather than rejected: see
/// [`PoolConfig::validated`] for the exact clamping contract.
/// [`MonitorPool::new`] applies it, so a zero in any sizing field is
/// safe and means "the minimum".
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of worker threads (streams are pinned round robin).
    /// Clamped to at least 1 by [`validated`](PoolConfig::validated).
    pub workers: usize,
    /// Per-stream queue capacity, in events. Normalized by
    /// [`validated`](PoolConfig::validated) to at least 1 and up to the
    /// next power of two (the ring transport indexes by bitmask).
    pub queue_capacity: usize,
    /// What to do when a stream's queue is full.
    pub policy: OverloadPolicy,
    /// How stream ends are judged (Definition 3.1 prefix semantics by
    /// default: open deadlines at the end of a stream are excused).
    pub mode: SatisfactionMode,
    /// Prediction horizon: `Some(h)` arms every stream's engine with
    /// slack horizon `h` (see
    /// [`Monitor::with_predictor`](crate::Monitor::with_predictor)), so
    /// stream reports also carry [`Warning`]s and [`Forced`] windows.
    /// `None` (the default) monitors without prediction.
    pub horizon: Option<Rat>,
    /// How many queued events a worker drains from one stream per ring
    /// claim (default 1024). This is the worker-side latency/throughput
    /// knob: a large batch amortizes the atomic claim and producer
    /// wake-ups over many events (highest throughput, pairs with
    /// [`StreamHandle::send_batch`]), while a small batch bounds how
    /// many events a worker takes from one stream before visiting the
    /// next and before producers blocked on a full ring are woken,
    /// trimming tail latency under backpressure. Clamped to at least 1
    /// by [`validated`](PoolConfig::validated).
    pub drain_batch: usize,
    /// Which engine backend every stream's monitor runs
    /// ([`BackendChoice::Auto`] by default: the integer-tick engine
    /// when the compiled set's bounds fit a common tick grid, the
    /// exact-rational engine otherwise). Set
    /// [`BackendChoice::Exact`] to pin the exact engine, e.g. as the
    /// differential oracle when benchmarking the integer backend.
    pub backend: BackendChoice,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 4,
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
            mode: SatisfactionMode::Prefix,
            horizon: None,
            drain_batch: 1024,
            backend: BackendChoice::Auto,
        }
    }
}

impl PoolConfig {
    /// Normalizes the sizing fields to the values the pool actually
    /// runs with — the stated contract behind "zero means minimum":
    ///
    /// * `workers` is clamped to at least 1 (a pool always has a
    ///   worker);
    /// * `queue_capacity` is clamped to at least 1 and rounded **up**
    ///   to the next power of two, because the SPSC ring transport
    ///   ([`crate::ring`]) masks sequence numbers into its slot array;
    /// * `drain_batch` is clamped to at least 1 (a worker drain must
    ///   make progress).
    ///
    /// [`MonitorPool::new`] calls this itself; call it directly to see
    /// the effective configuration before building a pool.
    ///
    /// ```
    /// use tempo_monitor::PoolConfig;
    ///
    /// let cfg = PoolConfig {
    ///     workers: 0,
    ///     queue_capacity: 100,
    ///     drain_batch: 0,
    ///     ..PoolConfig::default()
    /// }
    /// .validated();
    /// assert_eq!(cfg.workers, 1);
    /// assert_eq!(cfg.queue_capacity, 128);
    /// assert_eq!(cfg.drain_batch, 1);
    /// ```
    pub fn validated(self) -> PoolConfig {
        PoolConfig {
            workers: self.workers.max(1),
            queue_capacity: self.queue_capacity.max(1).next_power_of_two(),
            drain_batch: self.drain_batch.max(1),
            ..self
        }
    }
}

/// An event was refused because the stream's bounded queue was full, or
/// the stream had already failed.
///
/// Which sends return it depends on the [`OverloadPolicy`]:
///
/// * [`FailStream`](OverloadPolicy::FailStream) — [`StreamHandle::send`]
///   returns it when the stream's queue is full (the event is refused
///   and the stream is marked failed); [`StreamHandle::send_batch`]
///   returns it when the batch does not fit entirely (the fitting
///   prefix is still delivered). Once failed, *every* later send or
///   send_batch on the handle returns it immediately.
/// * [`Block`](OverloadPolicy::Block) — returned only when the pool is
///   shutting down underneath the handle
///   ([`MonitorPool::begin_shutdown`] racing an in-flight send on a
///   full queue): the producer would otherwise wait on a worker that
///   will never drain again. Absent a shutdown, the producer waits for
///   room and `send` never errors.
/// * [`DropOldest`](OverloadPolicy::DropOldest) — never returned: the
///   oldest queued event is discarded to make room instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamOverflow {
    /// The failed stream's id.
    pub stream: u64,
}

impl fmt::Display for StreamOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream {} overflowed its monitor queue", self.stream)
    }
}

impl std::error::Error for StreamOverflow {}

/// Spins an idle worker makes over its rings before parking.
const WORKER_SPIN: u32 = 64;

/// Backstop timeout for worker parking. The fenced sleeping-flag
/// protocol makes lost wakeups impossible; the timeout only bounds the
/// damage of bugs and gives a dropped-without-wake producer thread no
/// way to wedge the pool.
const WORKER_PARK: Duration = Duration::from_millis(1);

/// Per-stream lifecycle flags, shared between the handle (writer) and
/// the worker (reader) — the out-of-band replacement for the old
/// `Finish` control message.
#[derive(Default)]
struct ConnCtl {
    /// Set (release) by the handle after its last publish; once the
    /// worker acquires it, every event of the stream is visible.
    finished: AtomicBool,
    /// Whether the fail-stream policy cut the stream short. Written
    /// before `finished`, read after it.
    failed: AtomicBool,
}

/// A freshly opened stream, waiting in the worker's injector: the
/// consumer half of its ring plus everything the worker needs to build
/// its monitor — the out-of-band replacement for the old `Open` control
/// message.
struct NewConn<S, A> {
    stream: u64,
    start: S,
    rx: Consumer<Event<S, A>>,
    ctl: Arc<ConnCtl>,
    lag: Arc<StreamLag>,
}

/// One worker's shared face: how producers hand it new streams and wake
/// it from its park.
struct WorkerShared<S, A> {
    /// Streams opened but not yet adopted by the worker loop.
    injector: Mutex<Vec<NewConn<S, A>>>,
    /// Set after pushing into the injector; cleared by the worker's
    /// adopting swap.
    dirty: AtomicBool,
    /// A pending hot-reload command from [`MonitorPool::reload`], taken
    /// by the worker loop.
    reload: Mutex<Option<ReloadCmd<S, A>>>,
    /// Set after depositing a reload command; cleared by the worker's
    /// taking swap.
    reload_pending: AtomicBool,
    /// Set once by [`MonitorPool::begin_shutdown`].
    shutdown: AtomicBool,
    /// Advertised (with a `SeqCst` fence) by the worker before parking.
    sleeping: AtomicBool,
    /// The worker's thread handle, set once at loop start.
    thread: OnceLock<Thread>,
    /// Reports of streams this worker has finished, awaiting collection
    /// by [`MonitorPool::drain_finished`] or the final
    /// [`MonitorPool::shutdown`].
    outbox: Mutex<Vec<StreamReport>>,
}

impl<S, A> Default for WorkerShared<S, A> {
    fn default() -> WorkerShared<S, A> {
        WorkerShared {
            injector: Mutex::new(Vec::new()),
            dirty: AtomicBool::new(false),
            reload: Mutex::new(None),
            reload_pending: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            sleeping: AtomicBool::new(false),
            thread: OnceLock::new(),
            outbox: Mutex::new(Vec::new()),
        }
    }
}

/// A hot-reload command in flight to one worker: the new compiled set
/// plus the rendezvous the reloading thread blocks on.
struct ReloadCmd<S, A> {
    set: Arc<CompiledConditionSet<S, A>>,
    gather: Arc<ReloadGather>,
}

/// The rendezvous for one [`MonitorPool::reload`] call: every worker
/// folds its swap outcomes in and decrements `pending`; the reloading
/// thread waits for zero.
struct ReloadGather {
    state: Mutex<ReloadGatherState>,
    cv: Condvar,
}

struct ReloadGatherState {
    pending: usize,
    streams: usize,
    carried: usize,
    dropped: Vec<(u64, String, Obligation)>,
}

/// What [`MonitorPool::reload`] did, aggregated across workers.
#[derive(Clone, Debug)]
pub struct ReloadReport {
    /// Worker threads that acknowledged the swap.
    pub workers: usize,
    /// Live streams whose monitor was swapped onto the new set.
    pub streams: usize,
    /// Open obligations carried forward (summed over streams).
    pub carried: usize,
    /// Obligations closed administratively because their condition does
    /// not exist in the new revision: `(stream id, old condition name,
    /// obligation)`.
    pub dropped: Vec<(u64, String, Obligation)>,
}

impl<S, A> WorkerShared<S, A> {
    /// Unparks the worker if it advertised itself sleeping. The `SeqCst`
    /// fence pairs with the worker's advertise-fence-recheck sequence:
    /// either the worker's recheck sees what this thread just published
    /// (a ring publish, an injector entry, a lifecycle flag), or this
    /// load sees the sleeping flag and unparks it.
    fn wake(&self) {
        fence(Ordering::SeqCst);
        if self.sleeping.load(Ordering::Relaxed) {
            if let Some(th) = self.thread.get() {
                th.unpark();
            }
        }
    }
}

/// The monitoring outcome of one stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamReport {
    /// Stream id (in [`MonitorPool::open_stream`] order).
    pub stream: u64,
    /// Events the stream's monitor consumed.
    pub events: usize,
    /// All violations witnessed, in event order.
    pub violations: Vec<Violation>,
    /// Early warnings emitted by the stream's predictive engine, in
    /// event order; empty unless [`PoolConfig::horizon`] was set.
    pub warnings: Vec<Warning>,
    /// Forced windows reported by the stream's predictive engine (the
    /// `Ft(U)` side), in event order; empty unless
    /// [`PoolConfig::horizon`] was set.
    pub forced: Vec<Forced>,
    /// Whether the fail-stream policy cut the stream short (its verdicts
    /// then cover only a prefix).
    pub failed: bool,
}

/// The pool's aggregate outcome: one report per stream plus a final
/// metrics snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolReport {
    /// Per-stream outcomes, ordered by stream id.
    pub streams: Vec<StreamReport>,
    /// Final counter values.
    pub metrics: MetricsSnapshot,
}

impl PoolReport {
    /// `true` when no stream was failed and no violation was witnessed.
    pub fn passed(&self) -> bool {
        self.streams
            .iter()
            .all(|s| !s.failed && s.violations.is_empty())
    }

    /// All violations with their stream ids.
    pub fn violations(&self) -> Vec<(u64, &Violation)> {
        self.streams
            .iter()
            .flat_map(|s| s.violations.iter().map(move |v| (s.stream, v)))
            .collect()
    }

    /// All early warnings with their stream ids.
    pub fn warnings(&self) -> Vec<(u64, &Warning)> {
        self.streams
            .iter()
            .flat_map(|s| s.warnings.iter().map(move |w| (s.stream, w)))
            .collect()
    }

    /// All forced windows with their stream ids.
    pub fn forced(&self) -> Vec<(u64, &Forced)> {
        self.streams
            .iter()
            .flat_map(|s| s.forced.iter().map(move |fw| (s.stream, fw)))
            .collect()
    }
}

/// A handle for feeding one stream — the producer half of the stream's
/// SPSC ring. Dropping the handle finishes the stream implicitly.
pub struct StreamHandle<S, A> {
    stream: u64,
    tx: Producer<Event<S, A>>,
    ctl: Arc<ConnCtl>,
    worker: Arc<WorkerShared<S, A>>,
    lag: Arc<StreamLag>,
    metrics: Arc<MonitorMetrics>,
    policy: OverloadPolicy,
    /// Local cache of the deepest depth this handle has reported, so the
    /// shared `max_queue_depth` atomic is touched O(capacity) times per
    /// stream instead of once per event.
    max_depth_seen: u64,
    failed: bool,
    finished: bool,
}

impl<S, A> StreamHandle<S, A> {
    /// This stream's id, as it will appear in the [`PoolReport`].
    pub fn id(&self) -> u64 {
        self.stream
    }

    /// Folds a post-push queue depth into the pool-wide maximum, through
    /// the handle-local cache.
    fn record_depth(&mut self, depth: usize) {
        let depth = depth as u64;
        if depth > self.max_depth_seen {
            self.max_depth_seen = depth;
            self.metrics.record_queue_depth(depth);
        }
    }

    /// Discards the oldest queued event to make room (the `DropOldest`
    /// policy), keeping the lag and drop accounting exact. Spins when
    /// nothing is evictable (every queued event already claimed by an
    /// in-flight worker drain — room is imminent).
    fn shed_oldest(&mut self) {
        match self.tx.evict_oldest() {
            Some(_victim) => {
                // The evicted event left the queue unprocessed; it still
                // counts against its stream's lag.
                self.lag.record_drained();
                self.metrics.record_dropped();
            }
            None => {
                self.worker.wake();
                std::hint::spin_loop();
            }
        }
    }

    /// Hands one event to the stream's worker, applying the overload
    /// policy if the stream's queue is full.
    ///
    /// # Errors
    ///
    /// Under [`OverloadPolicy::FailStream`], returns [`StreamOverflow`]
    /// when the queue is full — and on every later send, the stream
    /// having failed. The other policies only error when the pool is
    /// shutting down underneath the handle (see [`StreamOverflow`] for
    /// the full per-policy contract).
    pub fn send(&mut self, action: A, time: Rat, state: S) -> Result<(), StreamOverflow> {
        if self.failed {
            return Err(StreamOverflow {
                stream: self.stream,
            });
        }
        let mut event = Event::new(action, time, state);
        let depth = match self.policy {
            OverloadPolicy::Block => loop {
                match self.tx.try_push(event) {
                    Ok(depth) => break depth,
                    Err(e) => {
                        event = e;
                        // The worker may be parked with the ring full:
                        // wake it before parking ourselves, then let its
                        // draining pop unpark us. A shutdown racing this
                        // send means the worker will never drain again —
                        // bail out instead of blocking forever.
                        self.worker.wake();
                        if !self.tx.wait_space_or(&self.worker.shutdown) {
                            self.failed = true;
                            return Err(StreamOverflow {
                                stream: self.stream,
                            });
                        }
                    }
                }
            },
            OverloadPolicy::DropOldest => loop {
                match self.tx.try_push(event) {
                    Ok(depth) => break depth,
                    Err(e) => {
                        event = e;
                        self.shed_oldest();
                    }
                }
            },
            OverloadPolicy::FailStream => match self.tx.try_push(event) {
                Ok(depth) => depth,
                Err(_) => {
                    self.failed = true;
                    self.metrics.record_failed_stream();
                    return Err(StreamOverflow {
                        stream: self.stream,
                    });
                }
            },
        };
        self.lag.record_enqueued();
        self.record_depth(depth);
        self.worker.wake();
        Ok(())
    }

    /// Hands a whole batch of events to the stream's worker, published
    /// with a *single* release store per run of free slots — amortizing
    /// even the atomic traffic of [`send`](StreamHandle::send) (the win
    /// behind the `e11_predictor` and `e13_ingest` batching figures).
    ///
    /// The overload policy applies per event within the batch: `Block`
    /// waits for room as it goes, `DropOldest` evicts per excess event,
    /// and `FailStream` accepts the prefix that fits and fails the
    /// stream if anything is left over.
    ///
    /// # Errors
    ///
    /// Under [`OverloadPolicy::FailStream`], returns [`StreamOverflow`]
    /// when the batch did not fit entirely (the fitting prefix is still
    /// delivered), and on every later send. The other policies only
    /// error when the pool is shutting down underneath the handle (see
    /// [`StreamOverflow`] for the full per-policy contract).
    pub fn send_batch<I>(&mut self, events: I) -> Result<(), StreamOverflow>
    where
        I: IntoIterator<Item = (A, Rat, S)>,
    {
        let events: Vec<Event<S, A>> = events
            .into_iter()
            .map(|(action, time, state)| Event::new(action, time, state))
            .collect();
        self.send_batch_exact(events.into_iter())
    }

    /// [`send_batch`](StreamHandle::send_batch) without the intermediate
    /// `Vec`: events are published into the ring *straight out of the
    /// iterator*, so a caller that already knows the batch length — a
    /// wire decoder walking a received frame, a slice iterator — pays no
    /// allocation on the hot path. This is the entry point
    /// `tempo-serve` feeds decoded `BATCH` frames through.
    ///
    /// # Errors
    ///
    /// Exactly [`send_batch`](StreamHandle::send_batch)'s contract.
    pub fn send_batch_exact<I>(&mut self, events: I) -> Result<(), StreamOverflow>
    where
        I: ExactSizeIterator<Item = Event<S, A>>,
    {
        if self.failed {
            return Err(StreamOverflow {
                stream: self.stream,
            });
        }
        let n = events.len() as u64;
        if n == 0 {
            return Ok(());
        }
        let mut items = events;
        let mut max_depth = 0usize;
        loop {
            let (depth, accepted) = self.tx.try_push_many(&mut items);
            if accepted > 0 {
                max_depth = max_depth.max(depth);
                self.worker.wake();
            }
            if items.len() == 0 {
                break;
            }
            match self.policy {
                OverloadPolicy::Block => {
                    self.worker.wake();
                    if !self.tx.wait_space_or(&self.worker.shutdown) {
                        let accepted_total = n - items.len() as u64;
                        self.lag.record_enqueued_many(accepted_total);
                        self.record_depth(max_depth);
                        self.metrics.record_batch(accepted_total);
                        self.failed = true;
                        return Err(StreamOverflow {
                            stream: self.stream,
                        });
                    }
                }
                OverloadPolicy::DropOldest => self.shed_oldest(),
                OverloadPolicy::FailStream => {
                    let accepted_total = n - items.len() as u64;
                    self.lag.record_enqueued_many(accepted_total);
                    self.record_depth(max_depth);
                    self.metrics.record_batch(accepted_total);
                    self.failed = true;
                    self.metrics.record_failed_stream();
                    return Err(StreamOverflow {
                        stream: self.stream,
                    });
                }
            }
        }
        self.lag.record_enqueued_many(n);
        self.record_depth(max_depth);
        self.metrics.record_batch(n);
        Ok(())
    }

    /// Ends the stream: the worker drains what remains, finalizes its
    /// monitor and files the stream's report.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        // `failed` first, then the release store of `finished`: a worker
        // that acquires `finished` sees the fail flag and every event
        // published before this point.
        self.ctl.failed.store(self.failed, Ordering::Relaxed);
        self.ctl.finished.store(true, Ordering::Release);
        self.worker.wake();
    }
}

impl<S, A> Drop for StreamHandle<S, A> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// A pool of monitor workers sharding independent event streams.
///
/// # Example
///
/// ```
/// use tempo_core::TimingCondition;
/// use tempo_math::{Interval, Rat};
/// use tempo_monitor::{MonitorPool, PoolConfig};
///
/// let cond: TimingCondition<u32, &str> =
///     TimingCondition::new("G", Interval::closed(Rat::from(1), Rat::from(5)).unwrap())
///         .triggered_at_start(|_| true)
///         .on_actions(|a| *a == "GRANT");
/// let mut pool = MonitorPool::new(&[cond], PoolConfig::default());
/// let mut stream = pool.open_stream(0);
/// stream.send("GRANT", Rat::from(2), 1).unwrap();
/// stream.finish();
/// let report = pool.shutdown();
/// assert!(report.passed());
/// ```
pub struct MonitorPool<S, A> {
    shared: Vec<Arc<WorkerShared<S, A>>>,
    workers: Vec<JoinHandle<()>>,
    metrics: Arc<MonitorMetrics>,
    policy: OverloadPolicy,
    queue_capacity: usize,
    next_stream: u64,
}

impl<S, A> MonitorPool<S, A>
where
    S: Clone + Send + 'static,
    A: Clone + Eq + Hash + Send + Sync + 'static,
{
    /// Spawns `config.workers` worker threads (after
    /// [`PoolConfig::validated`] normalization). The conditions are
    /// compiled into one shared
    /// [`CompiledConditionSet`](tempo_core::engine::CompiledConditionSet)
    /// for the whole pool — every stream's monitor steps the same
    /// compiled engine, paying the compilation exactly once.
    pub fn new(conds: &[TimingCondition<S, A>], config: PoolConfig) -> MonitorPool<S, A>
    where
        A: fmt::Debug,
    {
        MonitorPool::from_compiled(Arc::new(CompiledConditionSet::new(conds)), config)
    }

    /// [`new`](MonitorPool::new) with an already-compiled (possibly
    /// shared) set — e.g. a [`SpecRevision`]'s, so a pool can start on
    /// the same compiled revision it later hot-swaps with
    /// [`reload_spec`](MonitorPool::reload_spec).
    pub fn from_compiled(
        set: Arc<CompiledConditionSet<S, A>>,
        config: PoolConfig,
    ) -> MonitorPool<S, A> {
        let config = config.validated();
        let metrics = Arc::new(MonitorMetrics::new());
        let mut shared = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..config.workers {
            let ws: Arc<WorkerShared<S, A>> = Arc::new(WorkerShared::default());
            let shard = metrics.register_shard();
            let worker_ws = Arc::clone(&ws);
            let set = Arc::clone(&set);
            let mode = config.mode;
            let horizon = config.horizon;
            let drain_batch = config.drain_batch;
            let backend = config.backend;
            workers.push(thread::spawn(move || {
                worker_loop(
                    &worker_ws,
                    &set,
                    &shard,
                    mode,
                    horizon,
                    drain_batch,
                    backend,
                )
            }));
            shared.push(ws);
        }
        MonitorPool {
            shared,
            workers,
            metrics,
            policy: config.policy,
            queue_capacity: config.queue_capacity,
            next_stream: 0,
        }
    }

    /// Opens a new stream starting in `start`, pinned to a worker round
    /// robin: builds the stream's SPSC ring, hands its consumer half to
    /// the worker through the injector, and returns the producer half
    /// wrapped in a [`StreamHandle`].
    pub fn open_stream(&mut self, start: S) -> StreamHandle<S, A> {
        let worker = (self.next_stream as usize) % self.shared.len();
        self.open_stream_on(worker, start)
    }

    /// [`open_stream`](MonitorPool::open_stream) pinned to a *specific*
    /// worker (`worker` taken modulo the worker count): the hook for
    /// callers that own stream placement — `tempo-serve` routes streams
    /// through a consistent-hash ring over the workers instead of the
    /// pool's round robin, so placement survives worker drain/restore
    /// with minimal movement.
    pub fn open_stream_on(&mut self, worker: usize, start: S) -> StreamHandle<S, A> {
        let stream = self.next_stream;
        self.next_stream += 1;
        let worker = Arc::clone(&self.shared[worker % self.shared.len()]);
        let lag = self.metrics.register_stream(stream);
        let (tx, rx) = ring::ring(self.queue_capacity);
        let ctl = Arc::new(ConnCtl::default());
        worker
            .injector
            .lock()
            .expect("pool injector mutex poisoned")
            .push(NewConn {
                stream,
                start,
                rx,
                ctl: Arc::clone(&ctl),
                lag: Arc::clone(&lag),
            });
        worker.dirty.store(true, Ordering::Release);
        worker.wake();
        StreamHandle {
            stream,
            tx,
            ctl,
            worker,
            lag,
            metrics: Arc::clone(&self.metrics),
            policy: self.policy,
            max_depth_seen: 0,
            failed: false,
            finished: false,
        }
    }

    /// The pool's shared counters (snapshot any time for live lag).
    pub fn metrics(&self) -> Arc<MonitorMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Number of worker threads (after
    /// [`PoolConfig::validated`] normalization) — the shard space
    /// [`open_stream_on`](MonitorPool::open_stream_on) indexes into.
    pub fn workers(&self) -> usize {
        self.shared.len()
    }

    /// Collects the reports of every stream finished since the last
    /// drain, across all workers, sorted by stream id. Reports drained
    /// here do **not** reappear in the final
    /// [`shutdown`](MonitorPool::shutdown) report — this is the live
    /// egress path: `tempo-serve` polls it to stream verdicts back to
    /// clients while the pool keeps running.
    pub fn drain_finished(&self) -> Vec<StreamReport> {
        let mut out: Vec<StreamReport> = Vec::new();
        for ws in &self.shared {
            out.append(&mut ws.outbox.lock().expect("pool outbox mutex poisoned"));
        }
        out.sort_by_key(|r| r.stream);
        out
    }

    /// Signals every worker to stop (after draining its rings) without
    /// waiting for them. Idempotent: any number of calls, from any
    /// thread holding the pool, collapse into one shutdown; in-flight
    /// [`StreamHandle::send`]/[`send_batch`](StreamHandle::send_batch)
    /// calls racing the signal either deliver normally or return
    /// [`StreamOverflow`] — they never block forever on a worker that
    /// will not drain again. [`shutdown`](MonitorPool::shutdown) calls
    /// this itself.
    pub fn begin_shutdown(&self) {
        for ws in &self.shared {
            ws.shutdown.store(true, Ordering::SeqCst);
            ws.wake();
        }
    }

    /// Hot-swaps every live stream (and all future streams) onto a new
    /// condition set, without dropping an event.
    ///
    /// Each worker, at its next loop iteration, swaps each of its
    /// stream monitors via [`Monitor::swap_compiled`]: conditions are
    /// matched across revisions **by name**, open obligations of
    /// preserved conditions carry forward with their absolute deadlines
    /// unchanged (the new bounds govern triggers that fire after the
    /// swap), and obligations of dropped conditions are closed and
    /// returned in the [`ReloadReport`]. Queued events are untouched —
    /// they sit in the stream rings and are processed under the new set
    /// once the swap lands, so nothing is lost; the reload pause per
    /// worker is bounded by the drain batch it was already processing.
    ///
    /// Blocks until every worker has acknowledged, so a stream opened
    /// after `reload` returns is monitored under the new set.
    pub fn reload(&mut self, conds: &[TimingCondition<S, A>]) -> ReloadReport
    where
        A: fmt::Debug,
    {
        self.reload_compiled(Arc::new(CompiledConditionSet::new(conds)))
    }

    /// [`reload`](MonitorPool::reload) with an already-compiled
    /// (possibly shared) set.
    pub fn reload_compiled(&mut self, set: Arc<CompiledConditionSet<S, A>>) -> ReloadReport {
        let gather = Arc::new(ReloadGather {
            state: Mutex::new(ReloadGatherState {
                pending: self.shared.len(),
                streams: 0,
                carried: 0,
                dropped: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        for ws in &self.shared {
            // `reload` takes `&mut self` and blocks until every worker
            // acknowledges, so the slot is always empty here: a command
            // can never overwrite an unprocessed one.
            *ws.reload.lock().expect("pool reload mutex poisoned") = Some(ReloadCmd {
                set: Arc::clone(&set),
                gather: Arc::clone(&gather),
            });
            ws.reload_pending.store(true, Ordering::Release);
            ws.wake();
        }
        let mut st = gather
            .state
            .lock()
            .expect("pool reload gather mutex poisoned");
        while st.pending > 0 {
            st = gather
                .cv
                .wait(st)
                .expect("pool reload gather mutex poisoned");
        }
        ReloadReport {
            workers: self.shared.len(),
            streams: st.streams,
            carried: st.carried,
            dropped: std::mem::take(&mut st.dropped),
        }
    }

    /// [`reload`](MonitorPool::reload) from a compiled `.tspec`
    /// revision (see [`SpecRevision`]): the spec hot-reload entry
    /// point. The revision's set is shared, not recompiled.
    pub fn reload_spec(&mut self, rev: &SpecRevision<S, A>) -> ReloadReport {
        self.reload_compiled(Arc::clone(rev.compiled()))
    }

    /// Stops the workers (after they drain their rings) and collects
    /// every stream's report. Streams never explicitly finished are
    /// finalized here. Streams whose reports were already taken by
    /// [`drain_finished`](MonitorPool::drain_finished) are not repeated.
    pub fn shutdown(self) -> PoolReport {
        self.begin_shutdown();
        for worker in self.workers {
            worker.join().expect("monitor worker panicked");
        }
        let mut streams: Vec<StreamReport> = Vec::new();
        for ws in &self.shared {
            streams.append(&mut ws.outbox.lock().expect("pool outbox mutex poisoned"));
        }
        streams.sort_by_key(|r| r.stream);
        PoolReport {
            streams,
            metrics: self.metrics.snapshot(),
        }
    }
}

/// One adopted stream inside a worker: the consumer half of its ring and
/// its monitor.
struct Conn<S, A> {
    stream: u64,
    rx: Consumer<Event<S, A>>,
    ctl: Arc<ConnCtl>,
    lag: Arc<StreamLag>,
    mon: Monitor<S, A>,
}

/// `true` while the worker has visible work: new streams to adopt, a
/// shutdown to honour, a non-empty ring, or a finished stream to file.
/// This is the recheck an idle worker runs between advertising itself
/// sleeping and parking.
fn has_pending<S, A>(shared: &WorkerShared<S, A>, conns: &[Conn<S, A>]) -> bool {
    shared.dirty.load(Ordering::Acquire)
        || shared.reload_pending.load(Ordering::Acquire)
        || shared.shutdown.load(Ordering::Acquire)
        || conns
            .iter()
            .any(|c| !c.rx.is_empty() || c.ctl.finished.load(Ordering::Acquire))
}

fn worker_loop<S: Clone, A: Clone + Eq + Hash>(
    shared: &WorkerShared<S, A>,
    set: &Arc<CompiledConditionSet<S, A>>,
    shard: &Arc<MetricsShard>,
    mode: SatisfactionMode,
    horizon: Option<Rat>,
    drain_batch: usize,
    backend: BackendChoice,
) {
    shared
        .thread
        .set(thread::current())
        .expect("worker thread registered twice");
    // The worker's current condition set: starts as the pool's, replaced
    // in place by hot reload.
    let mut set = Arc::clone(set);
    let mut conns: Vec<Conn<S, A>> = Vec::new();
    let mut scratch: Vec<Event<S, A>> = Vec::with_capacity(drain_batch);
    // Filed reports go straight to the shared outbox, so a live pool
    // can hand them out (`drain_finished`) without waiting for shutdown.
    let file = |conn: Conn<S, A>, failed: bool| {
        let events = conn.mon.events_seen();
        let (violations, warnings, forced) = conn.mon.finish_full(mode);
        shared
            .outbox
            .lock()
            .expect("pool outbox mutex poisoned")
            .push(StreamReport {
                stream: conn.stream,
                events,
                violations,
                warnings,
                forced,
                failed,
            });
    };
    let adopt = |set: &Arc<CompiledConditionSet<S, A>>, conns: &mut Vec<Conn<S, A>>| -> bool {
        if !shared.dirty.swap(false, Ordering::Acquire) {
            return false;
        }
        let adopted: Vec<NewConn<S, A>> = shared
            .injector
            .lock()
            .expect("pool injector mutex poisoned")
            .drain(..)
            .collect();
        let mut any = false;
        for nc in adopted {
            let mut mon = Monitor::from_compiled_with(Arc::clone(set), &nc.start, backend)
                .with_metrics_shard(Arc::clone(shard));
            if let Some(h) = horizon {
                mon = mon.with_predictor(h);
            }
            conns.push(Conn {
                stream: nc.stream,
                rx: nc.rx,
                ctl: nc.ctl,
                lag: nc.lag,
                mon,
            });
            any = true;
        }
        any
    };
    let mut spins = 0u32;
    loop {
        let mut did_work = false;
        // Adopt freshly opened streams.
        did_work |= adopt(&set, &mut conns);
        // Apply a pending hot reload. Ring contents are untouched —
        // queued events are simply processed under the new set from
        // here on; streams adopted on later iterations are built from
        // the new set directly.
        if shared.reload_pending.swap(false, Ordering::Acquire) {
            // Streams injected before the reload command must be
            // swapped (and counted) with everything else, but this
            // iteration's adoption pass may have read `dirty` before
            // the injector push became visible — the acquire above
            // makes it visible, so adopt once more before swapping.
            adopt(&set, &mut conns);
            let cmd = shared
                .reload
                .lock()
                .expect("pool reload mutex poisoned")
                .take()
                .expect("reload flag set without a command");
            // Conditions are matched across revisions by name; all of
            // this worker's monitors share one old set, so the map is
            // computed once.
            let map: Vec<Option<usize>> = (0..set.len())
                .map(|ci| cmd.set.index_of(set.name(ci)))
                .collect();
            let mut streams = 0usize;
            let mut carried = 0usize;
            let mut dropped = Vec::new();
            for conn in &mut conns {
                let rep = conn.mon.swap_compiled(Arc::clone(&cmd.set), &map);
                streams += 1;
                carried += rep.carried;
                dropped.extend(
                    rep.dropped
                        .into_iter()
                        .map(|(name, ob)| (conn.stream, name, ob)),
                );
            }
            set = cmd.set;
            let mut st = cmd
                .gather
                .state
                .lock()
                .expect("pool reload gather mutex poisoned");
            st.streams += streams;
            st.carried += carried;
            st.dropped.extend(dropped);
            st.pending -= 1;
            cmd.gather.cv.notify_all();
            did_work = true;
        }
        let shutting_down = shared.shutdown.load(Ordering::Acquire);
        // Round-robin over the adopted streams: one batched drain each,
        // so no stream starves another. A finished (or shutting-down)
        // stream is drained to empty and filed — the acquire on
        // `finished` guarantees every published event is visible, so
        // "empty after the flag" means complete.
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            let finished = conn.ctl.finished.load(Ordering::Acquire);
            loop {
                scratch.clear();
                let n = conn.rx.pop_many(drain_batch, &mut scratch);
                if n == 0 {
                    break;
                }
                did_work = true;
                for ev in scratch.drain(..) {
                    conn.mon.observe(&ev.action, ev.time, &ev.state);
                }
                conn.lag.record_drained_many(n as u64);
                if !finished && !shutting_down {
                    break;
                }
            }
            if (finished || shutting_down) && conn.rx.is_empty() {
                let conn = conns.swap_remove(i);
                let failed = finished && conn.ctl.failed.load(Ordering::Relaxed);
                file(conn, failed);
                did_work = true;
                continue; // the swapped-in conn now sits at `i`
            }
            i += 1;
        }
        if shutting_down && conns.is_empty() && !shared.dirty.load(Ordering::Acquire) {
            return;
        }
        if did_work {
            spins = 0;
            continue;
        }
        // Idle: spin briefly, then advertise, fence, re-check, park.
        spins += 1;
        if spins < WORKER_SPIN {
            std::hint::spin_loop();
            continue;
        }
        shared.sleeping.store(true, Ordering::Release);
        fence(Ordering::SeqCst);
        if has_pending(shared, &conns) {
            shared.sleeping.store(false, Ordering::Relaxed);
            spins = 0;
            continue;
        }
        thread::park_timeout(WORKER_PARK);
        shared.sleeping.store(false, Ordering::Relaxed);
        spins = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_math::Interval;

    fn cond() -> TimingCondition<u8, &'static str> {
        TimingCondition::new("C", Interval::closed(Rat::from(2), Rat::from(10)).unwrap())
            .triggered_at_start(|s| *s == 0)
            .on_actions(|a| *a == "fire")
    }

    #[test]
    fn pool_monitors_many_streams() {
        let mut pool = MonitorPool::new(&[cond()], PoolConfig::default());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let mut h = pool.open_stream(0u8);
            // Odd streams violate the lower bound (fire at t=1 < 2).
            let t = if i % 2 == 1 { 1 } else { 3 };
            h.send("fire", Rat::from(t), 1).unwrap();
            handles.push(h);
        }
        drop(handles); // implicit finish
        let report = pool.shutdown();
        assert_eq!(report.streams.len(), 8);
        assert!(!report.passed());
        let bad: Vec<u64> = report.violations().iter().map(|(s, _)| *s).collect();
        assert_eq!(bad, vec![1, 3, 5, 7]);
        assert_eq!(report.metrics.events, 8);
    }

    #[test]
    fn drop_oldest_policy_sheds_events() {
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 2,
            policy: OverloadPolicy::DropOldest,
            mode: SatisfactionMode::Prefix,
            ..PoolConfig::default()
        };
        // A condition that never triggers: the worker just drains.
        let never: TimingCondition<u8, &'static str> =
            TimingCondition::new("N", Interval::closed(Rat::ZERO, Rat::from(1)).unwrap());
        let mut pool = MonitorPool::new(&[never], config);
        let mut h = pool.open_stream(0u8);
        for t in 0..64 {
            h.send("x", Rat::from(t), 0).unwrap();
        }
        h.finish();
        let report = pool.shutdown();
        assert!(report.passed());
        // Lag accounting is exact even when events were shed.
        assert_eq!(report.metrics.streams[0].enqueued, 64);
        assert_eq!(report.metrics.streams[0].lag, 0);
    }

    #[test]
    fn fail_stream_policy_errors_and_reports() {
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::FailStream,
            mode: SatisfactionMode::Prefix,
            ..PoolConfig::default()
        };
        let never: TimingCondition<u8, &'static str> =
            TimingCondition::new("N", Interval::closed(Rat::ZERO, Rat::from(1)).unwrap());
        let mut pool = MonitorPool::new(&[never], config);
        let mut h = pool.open_stream(0u8);
        // Keep pushing until the bounded queue refuses one.
        let mut failed = false;
        for t in 0..100_000 {
            if h.send("x", Rat::from(t), 0).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "a capacity-1 queue must eventually refuse");
        // Once failed, every send errors.
        assert!(h.send("x", Rat::from(100_000), 0).is_err());
        h.finish();
        let report = pool.shutdown();
        assert!(report.streams[0].failed);
        assert!(!report.passed());
        assert_eq!(report.metrics.failed_streams, 1);
    }

    #[test]
    fn max_queue_depth_is_observed() {
        let mut pool = MonitorPool::new(&[cond()], PoolConfig::default());
        let mut h = pool.open_stream(0u8);
        for t in 0..32 {
            h.send("noise", Rat::from(t), 1).unwrap();
        }
        h.finish();
        let report = pool.shutdown();
        assert!(report.metrics.max_queue_depth >= 1);
        assert_eq!(report.streams[0].events, 32);
    }

    #[test]
    fn pool_horizon_attaches_predictors_per_stream() {
        let config = PoolConfig {
            horizon: Some(Rat::from(3)),
            ..PoolConfig::default()
        };
        // A step-triggered condition with a wide lower-bound window, so
        // a trigger also opens a forced window (the `Ft(U)` side).
        let guarded: TimingCondition<u8, &'static str> =
            TimingCondition::new("G", Interval::closed(Rat::from(10), Rat::from(30)).unwrap())
                .triggered_by_step(|_, a, _| *a == "go")
                .on_actions(|a| *a == "serve");
        let mut pool = MonitorPool::new(&[cond(), guarded], config);
        // Stream 0 serves its deadline inside the warning window (near
        // miss), then triggers G, opening a forced window; stream 1
        // lets its deadline lapse (warning, then violation).
        let mut near = pool.open_stream(0u8);
        near.send("fire", Rat::from(9), 1).unwrap();
        near.send("go", Rat::from(15), 1).unwrap();
        near.finish();
        let mut late = pool.open_stream(0u8);
        late.send("noise", Rat::from(20), 1).unwrap();
        late.finish();
        let report = pool.shutdown();
        assert_eq!(report.streams[0].warnings.len(), 1);
        assert!(report.streams[0].violations.is_empty());
        assert_eq!(report.streams[0].forced.len(), 1);
        assert_eq!(report.streams[0].forced[0].earliest, Rat::from(25));
        assert_eq!(report.streams[1].warnings.len(), 1);
        assert_eq!(report.streams[1].violations.len(), 1);
        assert!(report.streams[1].forced.is_empty());
        assert_eq!(report.warnings().len(), 2);
        assert_eq!(report.forced().len(), 1);
        assert_eq!(report.metrics.warnings, 2);
        assert_eq!(report.metrics.forced, 1);
        // Warnings and forced windows do not fail a stream, but the
        // violation does.
        assert!(!report.passed());
    }

    #[test]
    fn send_batch_delivers_in_order_and_counts_batches() {
        let config = PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        };
        let mut pool = MonitorPool::new(&[cond()], config);
        let metrics = pool.metrics();
        let mut h = pool.open_stream(0u8);
        h.send_batch((0..6).map(|t| ("noise", Rat::from(t), 1u8)))
            .unwrap();
        h.send_batch(std::iter::empty()).unwrap();
        h.send("fire", Rat::from(7), 1).unwrap();
        h.finish();
        let report = pool.shutdown();
        assert!(report.passed());
        assert_eq!(report.streams[0].events, 7);
        let s = metrics.snapshot();
        assert_eq!(s.batches, 1); // the empty batch is not counted
        assert_eq!(s.batched_events, 6);
        assert_eq!(s.max_batch, 6);
        assert_eq!(s.streams[0].enqueued, 7);
    }

    #[test]
    fn send_batch_respects_drop_oldest_and_fail_stream() {
        // DropOldest: a batch larger than the queue sheds events but
        // keeps exact lag accounting.
        let never: TimingCondition<u8, &'static str> =
            TimingCondition::new("N", Interval::closed(Rat::ZERO, Rat::from(1)).unwrap());
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 2,
            policy: OverloadPolicy::DropOldest,
            mode: SatisfactionMode::Prefix,
            ..PoolConfig::default()
        };
        let mut pool = MonitorPool::new(std::slice::from_ref(&never), config);
        let mut h = pool.open_stream(0u8);
        h.send_batch((0..64).map(|t| ("x", Rat::from(t), 0u8)))
            .unwrap();
        h.finish();
        let report = pool.shutdown();
        assert!(report.passed());
        assert_eq!(report.metrics.streams[0].enqueued, 64);
        assert_eq!(report.metrics.streams[0].lag, 0);

        // FailStream: an oversized batch delivers its fitting prefix,
        // then fails the stream.
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::FailStream,
            mode: SatisfactionMode::Prefix,
            ..PoolConfig::default()
        };
        let mut pool = MonitorPool::new(&[never], config);
        let mut h = pool.open_stream(0u8);
        let mut failed = false;
        for round in 0..100_000i64 {
            let base = round * 8;
            if h.send_batch((base..base + 8).map(|t| ("x", Rat::from(t), 0u8)))
                .is_err()
            {
                failed = true;
                break;
            }
        }
        assert!(failed, "a capacity-1 queue must eventually refuse a batch");
        assert!(h.send("x", Rat::from(1_000_000), 0).is_err());
        h.finish();
        let report = pool.shutdown();
        assert!(report.streams[0].failed);
        assert_eq!(report.metrics.failed_streams, 1);
    }

    #[test]
    fn reload_swaps_live_streams_and_carries_obligations() {
        let config = PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        };
        // `cond()` opens a deadline at t=0 (start trigger in state 0).
        let mut pool = MonitorPool::new(&[cond()], config);
        let mut h0 = pool.open_stream(0u8);
        let mut h1 = pool.open_stream(0u8);
        h0.send("noise", Rat::from(1), 1).unwrap();
        h1.send("noise", Rat::from(1), 1).unwrap();

        // The new revision keeps C (so its open deadline at 10 carries,
        // absolute) and drops nothing; it also adds a condition D that
        // triggers on "late" with a tight bound.
        let d: TimingCondition<u8, &'static str> =
            TimingCondition::new("D", Interval::closed(Rat::ZERO, Rat::ONE).unwrap())
                .triggered_by_step(|_, a, _| *a == "late")
                .on_actions(|a| *a == "serve");
        let report = pool.reload(&[cond(), d]);
        assert_eq!(report.workers, 2);
        assert_eq!(report.streams, 2);
        // One Upper obligation per stream carried (lower window at 2 is
        // also still open at t=1, so two obligations per stream).
        assert_eq!(report.carried, 4);
        assert!(report.dropped.is_empty());

        // Stream 0 serves the carried deadline in time; stream 1 lets
        // it lapse — under the *old* absolute deadline of 10.
        h0.send("fire", Rat::from(9), 1).unwrap();
        h1.send("noise", Rat::from(11), 1).unwrap();
        // The new condition D is live post-swap on both streams.
        h0.send("late", Rat::from(12), 1).unwrap();
        h0.send("noise", Rat::from(20), 1).unwrap();
        drop(h0);
        drop(h1);
        let report = pool.shutdown();
        let s0 = &report.streams[0];
        let s1 = &report.streams[1];
        assert_eq!(s0.events, 4, "no event was dropped across the swap");
        assert_eq!(s1.events, 2);
        let v0: Vec<&str> = s0.violations.iter().map(|v| v.condition.as_str()).collect();
        assert_eq!(v0, vec!["D"], "the added condition is enforced");
        let v1: Vec<&str> = s1.violations.iter().map(|v| v.condition.as_str()).collect();
        assert_eq!(v1, vec!["C"], "the carried deadline still fires");
    }

    #[test]
    fn reload_drops_removed_conditions_and_reports_them() {
        let config = PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        };
        let mut pool = MonitorPool::new(&[cond()], config);
        let mut h = pool.open_stream(0u8);
        h.send("noise", Rat::from(1), 1).unwrap();
        // Give the worker a moment to drain so the obligations exist
        // worker-side before the swap (reload itself synchronizes).
        let replacement: TimingCondition<u8, &'static str> =
            TimingCondition::new("Z", Interval::closed(Rat::ZERO, Rat::from(99)).unwrap())
                .triggered_by_step(|_, a, _| *a == "go")
                .on_actions(|a| *a == "serve");
        let report = pool.reload(&[replacement]);
        assert_eq!(report.streams, 1);
        assert_eq!(report.carried, 0);
        assert_eq!(report.dropped.len(), 2, "lower window + deadline of C");
        assert!(report
            .dropped
            .iter()
            .all(|(s, name, _)| *s == 0 && name == "C"));
        // C is gone: sailing past its old deadline violates nothing.
        h.send("noise", Rat::from(50), 1).unwrap();
        h.finish();
        assert!(pool.shutdown().passed());
    }

    #[test]
    fn pool_config_validated_states_the_clamping_contract() {
        let cfg = PoolConfig {
            workers: 0,
            queue_capacity: 0,
            drain_batch: 0,
            ..PoolConfig::default()
        }
        .validated();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.queue_capacity, 1);
        assert_eq!(cfg.drain_batch, 1);
        // Capacities round up to the ring's power-of-two slot count.
        let cfg = PoolConfig {
            queue_capacity: 100,
            ..PoolConfig::default()
        }
        .validated();
        assert_eq!(cfg.queue_capacity, 128);
        // Already-normalized configs pass through unchanged.
        let cfg = PoolConfig::default().validated();
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.queue_capacity, 1024);
        assert_eq!(cfg.drain_batch, 1024);
        // A zero-sized pool still works end to end.
        let mut pool = MonitorPool::new(
            &[cond()],
            PoolConfig {
                workers: 0,
                queue_capacity: 0,
                drain_batch: 0,
                ..PoolConfig::default()
            },
        );
        let mut h = pool.open_stream(0u8);
        h.send("fire", Rat::from(3), 1).unwrap();
        h.finish();
        assert!(pool.shutdown().passed());
    }
}
