//! Sharding many event streams across worker threads.
//!
//! A [`MonitorPool`] owns a fixed set of worker threads, each with a
//! bounded queue; every opened stream is pinned to one worker (round
//! robin), so a stream's events are processed in order by a single
//! [`Monitor`]. Producers hand events to [`StreamHandle::send`], which
//! applies the configured [`OverloadPolicy`] when the worker's queue is
//! full: block the producer, drop the oldest queued event, or fail the
//! stream.
//!
//! All workers share one [`MonitorMetrics`], so a snapshot sees the whole
//! pool: total events, obligation churn, the deepest queue observed, and
//! per-stream lag.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tempo_core::{SatisfactionMode, TimingCondition, Violation};
use tempo_math::Rat;

use crate::event::Event;
use crate::metrics::{MetricsSnapshot, MonitorMetrics, StreamLag};
use crate::monitor::Monitor;

/// What [`StreamHandle::send`] does when the worker's queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the producer until the worker catches up (lossless,
    /// backpressure).
    Block,
    /// Drop the oldest queued *event* to make room (lossy, bounded
    /// latency; control messages are never dropped).
    DropOldest,
    /// Refuse the event and mark the stream failed; subsequent sends on
    /// the stream error immediately.
    FailStream,
}

/// Pool sizing and overload behaviour.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of worker threads (streams are pinned round robin).
    pub workers: usize,
    /// Per-worker queue capacity, in messages.
    pub queue_capacity: usize,
    /// What to do when a queue is full.
    pub policy: OverloadPolicy,
    /// How stream ends are judged (Definition 3.1 prefix semantics by
    /// default: open deadlines at the end of a stream are excused).
    pub mode: SatisfactionMode,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 4,
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
            mode: SatisfactionMode::Prefix,
        }
    }
}

/// An event was refused because the stream is failed (fail-stream
/// policy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamOverflow {
    /// The failed stream's id.
    pub stream: u64,
}

impl fmt::Display for StreamOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream {} overflowed its monitor queue", self.stream)
    }
}

impl std::error::Error for StreamOverflow {}

enum Msg<S, A> {
    Open {
        stream: u64,
        start: S,
    },
    Event {
        stream: u64,
        lag: Arc<StreamLag>,
        event: Event<S, A>,
    },
    Finish {
        stream: u64,
        failed: bool,
    },
    Shutdown,
}

/// A bounded MPSC queue with the three overload behaviours.
struct Queue<T> {
    inner: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> Queue<T> {
    fn new(cap: usize) -> Queue<T> {
        Queue {
            inner: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Pushes, waiting for room. Returns the depth after the push.
    fn push_blocking(&self, item: T) -> usize {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        while q.len() >= self.cap {
            q = self.not_full.wait(q).expect("queue mutex poisoned");
        }
        q.push_back(item);
        let depth = q.len();
        drop(q);
        self.not_empty.notify_one();
        depth
    }

    /// Pushes, evicting the oldest `droppable` entry when full. Returns
    /// the depth and the evicted entry, if any. Falls back to blocking
    /// when the queue is full of non-droppable entries.
    fn push_drop_oldest(&self, item: T, droppable: impl Fn(&T) -> bool) -> (usize, Option<T>) {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        let mut dropped = None;
        if q.len() >= self.cap {
            if let Some(pos) = q.iter().position(&droppable) {
                dropped = q.remove(pos);
            } else {
                while q.len() >= self.cap {
                    q = self.not_full.wait(q).expect("queue mutex poisoned");
                }
            }
        }
        q.push_back(item);
        let depth = q.len();
        drop(q);
        self.not_empty.notify_one();
        (depth, dropped)
    }

    /// Pushes only if there is room. Returns the depth, or the rejected
    /// item.
    fn try_push(&self, item: T) -> Result<usize, T> {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        if q.len() >= self.cap {
            return Err(item);
        }
        q.push_back(item);
        let depth = q.len();
        drop(q);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Pops, waiting for an entry.
    fn pop(&self) -> T {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(item) = q.pop_front() {
                drop(q);
                self.not_full.notify_one();
                return item;
            }
            q = self.not_empty.wait(q).expect("queue mutex poisoned");
        }
    }
}

/// The monitoring outcome of one stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamReport {
    /// Stream id (in [`MonitorPool::open_stream`] order).
    pub stream: u64,
    /// Events the stream's monitor consumed.
    pub events: usize,
    /// All violations witnessed, in event order.
    pub violations: Vec<Violation>,
    /// Whether the fail-stream policy cut the stream short (its verdicts
    /// then cover only a prefix).
    pub failed: bool,
}

/// The pool's aggregate outcome: one report per stream plus a final
/// metrics snapshot.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Per-stream outcomes, ordered by stream id.
    pub streams: Vec<StreamReport>,
    /// Final counter values.
    pub metrics: MetricsSnapshot,
}

impl PoolReport {
    /// `true` when no stream was failed and no violation was witnessed.
    pub fn passed(&self) -> bool {
        self.streams
            .iter()
            .all(|s| !s.failed && s.violations.is_empty())
    }

    /// All violations with their stream ids.
    pub fn violations(&self) -> Vec<(u64, &Violation)> {
        self.streams
            .iter()
            .flat_map(|s| s.violations.iter().map(move |v| (s.stream, v)))
            .collect()
    }
}

/// A handle for feeding one stream. Dropping the handle finishes the
/// stream implicitly.
pub struct StreamHandle<S, A> {
    stream: u64,
    queue: Arc<Queue<Msg<S, A>>>,
    lag: Arc<StreamLag>,
    metrics: Arc<MonitorMetrics>,
    policy: OverloadPolicy,
    failed: bool,
    finished: bool,
}

impl<S, A> StreamHandle<S, A> {
    /// This stream's id, as it will appear in the [`PoolReport`].
    pub fn id(&self) -> u64 {
        self.stream
    }

    /// Hands one event to the stream's worker, applying the overload
    /// policy if the queue is full.
    ///
    /// # Errors
    ///
    /// Under [`OverloadPolicy::FailStream`], returns [`StreamOverflow`]
    /// when the queue is full — and on every later send, the stream
    /// having failed. The other policies never error.
    pub fn send(&mut self, action: A, time: Rat, state: S) -> Result<(), StreamOverflow> {
        if self.failed {
            return Err(StreamOverflow {
                stream: self.stream,
            });
        }
        let msg = Msg::Event {
            stream: self.stream,
            lag: Arc::clone(&self.lag),
            event: Event::new(action, time, state),
        };
        let depth = match self.policy {
            OverloadPolicy::Block => self.queue.push_blocking(msg),
            OverloadPolicy::DropOldest => {
                let (depth, dropped) = self
                    .queue
                    .push_drop_oldest(msg, |m| matches!(m, Msg::Event { .. }));
                if let Some(Msg::Event { lag, .. }) = dropped {
                    // The evicted event left the queue unprocessed; it
                    // still counts against its stream's lag.
                    lag.record_drained();
                    self.metrics.record_dropped();
                }
                depth
            }
            OverloadPolicy::FailStream => match self.queue.try_push(msg) {
                Ok(depth) => depth,
                Err(_) => {
                    self.failed = true;
                    self.metrics.record_failed_stream();
                    return Err(StreamOverflow {
                        stream: self.stream,
                    });
                }
            },
        };
        self.lag.record_enqueued();
        self.metrics.record_queue_depth(depth as u64);
        Ok(())
    }

    /// Ends the stream: the worker finalizes its monitor and files the
    /// stream's report.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.queue.push_blocking(Msg::Finish {
            stream: self.stream,
            failed: self.failed,
        });
    }
}

impl<S, A> Drop for StreamHandle<S, A> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// A pool of monitor workers sharding independent event streams.
///
/// # Example
///
/// ```
/// use tempo_core::TimingCondition;
/// use tempo_math::{Interval, Rat};
/// use tempo_monitor::{MonitorPool, PoolConfig};
///
/// let cond: TimingCondition<u32, &str> =
///     TimingCondition::new("G", Interval::closed(Rat::from(1), Rat::from(5)).unwrap())
///         .triggered_at_start(|_| true)
///         .on_actions(|a| *a == "GRANT");
/// let mut pool = MonitorPool::new(&[cond], PoolConfig::default());
/// let mut stream = pool.open_stream(0);
/// stream.send("GRANT", Rat::from(2), 1).unwrap();
/// stream.finish();
/// let report = pool.shutdown();
/// assert!(report.passed());
/// ```
pub struct MonitorPool<S, A> {
    queues: Vec<Arc<Queue<Msg<S, A>>>>,
    workers: Vec<JoinHandle<Vec<StreamReport>>>,
    metrics: Arc<MonitorMetrics>,
    policy: OverloadPolicy,
    next_stream: u64,
}

impl<S, A> MonitorPool<S, A>
where
    S: Clone + Send + 'static,
    A: Send + 'static,
{
    /// Spawns `config.workers` worker threads, each monitoring its
    /// streams against (clones of) `conds`.
    pub fn new(conds: &[TimingCondition<S, A>], config: PoolConfig) -> MonitorPool<S, A> {
        let metrics = Arc::new(MonitorMetrics::new());
        let mut queues = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..config.workers.max(1) {
            let queue = Arc::new(Queue::new(config.queue_capacity));
            let conds: Vec<TimingCondition<S, A>> = conds.to_vec();
            let metrics = Arc::clone(&metrics);
            let worker_queue = Arc::clone(&queue);
            let mode = config.mode;
            workers.push(std::thread::spawn(move || {
                worker_loop(&worker_queue, &conds, &metrics, mode)
            }));
            queues.push(queue);
        }
        MonitorPool {
            queues,
            workers,
            metrics,
            policy: config.policy,
            next_stream: 0,
        }
    }

    /// Opens a new stream starting in `start`, pinned to a worker round
    /// robin. The returned handle feeds the stream.
    pub fn open_stream(&mut self, start: S) -> StreamHandle<S, A> {
        let stream = self.next_stream;
        self.next_stream += 1;
        let queue = Arc::clone(&self.queues[(stream as usize) % self.queues.len()]);
        let lag = self.metrics.register_stream(stream);
        queue.push_blocking(Msg::Open { stream, start });
        StreamHandle {
            stream,
            queue,
            lag,
            metrics: Arc::clone(&self.metrics),
            policy: self.policy,
            failed: false,
            finished: false,
        }
    }

    /// The pool's shared counters (snapshot any time for live lag).
    pub fn metrics(&self) -> Arc<MonitorMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops the workers (after they drain their queues) and collects
    /// every stream's report. Streams never explicitly finished are
    /// finalized here.
    pub fn shutdown(self) -> PoolReport {
        for queue in &self.queues {
            queue.push_blocking(Msg::Shutdown);
        }
        let mut streams: Vec<StreamReport> = Vec::new();
        for worker in self.workers {
            streams.extend(worker.join().expect("monitor worker panicked"));
        }
        streams.sort_by_key(|r| r.stream);
        PoolReport {
            streams,
            metrics: self.metrics.snapshot(),
        }
    }
}

fn worker_loop<S: Clone, A>(
    queue: &Queue<Msg<S, A>>,
    conds: &[TimingCondition<S, A>],
    metrics: &Arc<MonitorMetrics>,
    mode: SatisfactionMode,
) -> Vec<StreamReport> {
    let mut monitors: HashMap<u64, Monitor<S, A>> = HashMap::new();
    let mut reports = Vec::new();
    loop {
        match queue.pop() {
            Msg::Open { stream, start } => {
                let mon = Monitor::new(conds, &start).with_metrics(Arc::clone(metrics));
                monitors.insert(stream, mon);
            }
            Msg::Event { stream, lag, event } => {
                if let Some(mon) = monitors.get_mut(&stream) {
                    mon.observe(&event.action, event.time, &event.state);
                }
                lag.record_drained();
            }
            Msg::Finish { stream, failed } => {
                if let Some(mon) = monitors.remove(&stream) {
                    reports.push(StreamReport {
                        stream,
                        events: mon.events_seen(),
                        violations: mon.finish(mode),
                        failed,
                    });
                }
            }
            Msg::Shutdown => {
                for (stream, mon) in monitors.drain() {
                    reports.push(StreamReport {
                        stream,
                        events: mon.events_seen(),
                        violations: mon.finish(mode),
                        failed: false,
                    });
                }
                return reports;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_math::Interval;

    fn cond() -> TimingCondition<u8, &'static str> {
        TimingCondition::new("C", Interval::closed(Rat::from(2), Rat::from(10)).unwrap())
            .triggered_at_start(|s| *s == 0)
            .on_actions(|a| *a == "fire")
    }

    #[test]
    fn pool_monitors_many_streams() {
        let mut pool = MonitorPool::new(&[cond()], PoolConfig::default());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let mut h = pool.open_stream(0u8);
            // Odd streams violate the lower bound (fire at t=1 < 2).
            let t = if i % 2 == 1 { 1 } else { 3 };
            h.send("fire", Rat::from(t), 1).unwrap();
            handles.push(h);
        }
        drop(handles); // implicit finish
        let report = pool.shutdown();
        assert_eq!(report.streams.len(), 8);
        assert!(!report.passed());
        let bad: Vec<u64> = report.violations().iter().map(|(s, _)| *s).collect();
        assert_eq!(bad, vec![1, 3, 5, 7]);
        assert_eq!(report.metrics.events, 8);
    }

    #[test]
    fn drop_oldest_policy_sheds_events() {
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 2,
            policy: OverloadPolicy::DropOldest,
            mode: SatisfactionMode::Prefix,
        };
        // A condition that never triggers: the worker just drains.
        let never: TimingCondition<u8, &'static str> =
            TimingCondition::new("N", Interval::closed(Rat::ZERO, Rat::from(1)).unwrap());
        let mut pool = MonitorPool::new(&[never], config);
        let mut h = pool.open_stream(0u8);
        for t in 0..64 {
            h.send("x", Rat::from(t), 0).unwrap();
        }
        h.finish();
        let report = pool.shutdown();
        assert!(report.passed());
        // Lag accounting is exact even when events were shed.
        assert_eq!(report.metrics.streams[0].enqueued, 64);
        assert_eq!(report.metrics.streams[0].lag, 0);
    }

    #[test]
    fn fail_stream_policy_errors_and_reports() {
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::FailStream,
            mode: SatisfactionMode::Prefix,
        };
        let never: TimingCondition<u8, &'static str> =
            TimingCondition::new("N", Interval::closed(Rat::ZERO, Rat::from(1)).unwrap());
        let mut pool = MonitorPool::new(&[never], config);
        let mut h = pool.open_stream(0u8);
        // Keep pushing until the bounded queue refuses one.
        let mut failed = false;
        for t in 0..100_000 {
            if h.send("x", Rat::from(t), 0).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "a capacity-1 queue must eventually refuse");
        // Once failed, every send errors.
        assert!(h.send("x", Rat::from(100_000), 0).is_err());
        h.finish();
        let report = pool.shutdown();
        assert!(report.streams[0].failed);
        assert!(!report.passed());
        assert_eq!(report.metrics.failed_streams, 1);
    }

    #[test]
    fn max_queue_depth_is_observed() {
        let mut pool = MonitorPool::new(&[cond()], PoolConfig::default());
        let mut h = pool.open_stream(0u8);
        for t in 0..32 {
            h.send("noise", Rat::from(t), 1).unwrap();
        }
        h.finish();
        let report = pool.shutdown();
        assert!(report.metrics.max_queue_depth >= 1);
        assert_eq!(report.streams[0].events, 32);
    }
}
