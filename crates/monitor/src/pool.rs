//! Sharding many event streams across worker threads.
//!
//! A [`MonitorPool`] owns a fixed set of worker threads, each with a
//! bounded queue; every opened stream is pinned to one worker (round
//! robin), so a stream's events are processed in order by a single
//! [`Monitor`]. Producers hand events to [`StreamHandle::send`], which
//! applies the configured [`OverloadPolicy`] when the worker's queue is
//! full: block the producer, drop the oldest queued event, or fail the
//! stream.
//!
//! All workers share one [`MonitorMetrics`], so a snapshot sees the whole
//! pool: total events, obligation churn, the deepest queue observed, and
//! per-stream lag.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tempo_core::{SatisfactionMode, TimingCondition, Violation};
use tempo_math::Rat;

use tempo_core::engine::CompiledConditionSet;

use crate::event::Event;
use crate::metrics::{MetricsSnapshot, MonitorMetrics, StreamLag};
use crate::monitor::Monitor;
use crate::predict::Warning;

/// What [`StreamHandle::send`] does when the worker's queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the producer until the worker catches up (lossless,
    /// backpressure).
    Block,
    /// Drop the oldest queued *event* to make room (lossy, bounded
    /// latency; control messages are never dropped).
    DropOldest,
    /// Refuse the event and mark the stream failed; subsequent sends on
    /// the stream error immediately.
    FailStream,
}

/// Pool sizing and overload behaviour.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Number of worker threads (streams are pinned round robin).
    pub workers: usize,
    /// Per-worker queue capacity, in messages.
    pub queue_capacity: usize,
    /// What to do when a queue is full.
    pub policy: OverloadPolicy,
    /// How stream ends are judged (Definition 3.1 prefix semantics by
    /// default: open deadlines at the end of a stream are excused).
    pub mode: SatisfactionMode,
    /// Early-warning horizon: `Some(h)` attaches a
    /// [`Predictor`](crate::Predictor) with horizon `h` to every
    /// stream's monitor, so stream reports also carry [`Warning`]s.
    /// `None` (the default) monitors without prediction.
    pub horizon: Option<Rat>,
    /// How many queued messages a worker drains per lock acquisition
    /// (default 1024). This is the worker-side latency/throughput knob:
    /// a large batch amortizes the queue mutex and wake-ups over many
    /// events (highest throughput, pairs with
    /// [`StreamHandle::send_batch`]), while a small batch bounds how
    /// many events a worker holds before producers blocked on a full
    /// queue are woken, trimming tail latency under backpressure at the
    /// cost of more lock round-trips. Values are clamped to at least 1.
    pub drain_batch: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 4,
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
            mode: SatisfactionMode::Prefix,
            horizon: None,
            drain_batch: 1024,
        }
    }
}

/// An event was refused because the stream is failed (fail-stream
/// policy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamOverflow {
    /// The failed stream's id.
    pub stream: u64,
}

impl fmt::Display for StreamOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream {} overflowed its monitor queue", self.stream)
    }
}

impl std::error::Error for StreamOverflow {}

enum Msg<S, A> {
    Open {
        stream: u64,
        start: S,
    },
    Event {
        stream: u64,
        lag: Arc<StreamLag>,
        event: Event<S, A>,
    },
    Finish {
        stream: u64,
        failed: bool,
    },
    Shutdown,
}

/// A bounded MPSC queue with the three overload behaviours.
struct Queue<T> {
    inner: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> Queue<T> {
    fn new(cap: usize) -> Queue<T> {
        Queue {
            inner: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Pushes, waiting for room. Returns the depth after the push.
    fn push_blocking(&self, item: T) -> usize {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        while q.len() >= self.cap {
            q = self.not_full.wait(q).expect("queue mutex poisoned");
        }
        q.push_back(item);
        let depth = q.len();
        drop(q);
        self.not_empty.notify_one();
        depth
    }

    /// Pushes, evicting the oldest `droppable` entry when full. Returns
    /// the depth and the evicted entry, if any. Falls back to blocking
    /// when the queue is full of non-droppable entries.
    fn push_drop_oldest(&self, item: T, droppable: impl Fn(&T) -> bool) -> (usize, Option<T>) {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        let mut dropped = None;
        if q.len() >= self.cap {
            if let Some(pos) = q.iter().position(&droppable) {
                dropped = q.remove(pos);
            } else {
                while q.len() >= self.cap {
                    q = self.not_full.wait(q).expect("queue mutex poisoned");
                }
            }
        }
        q.push_back(item);
        let depth = q.len();
        drop(q);
        self.not_empty.notify_one();
        (depth, dropped)
    }

    /// Pushes a whole batch under a single lock acquisition, waiting for
    /// room as needed. Returns the deepest depth observed.
    fn push_blocking_many(&self, items: Vec<T>) -> usize {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        let mut max_depth = q.len();
        for item in items {
            while q.len() >= self.cap {
                q = self.not_full.wait(q).expect("queue mutex poisoned");
            }
            q.push_back(item);
            max_depth = max_depth.max(q.len());
            self.not_empty.notify_one();
        }
        max_depth
    }

    /// Pushes a whole batch under a single lock acquisition, evicting
    /// the oldest `droppable` entries as needed. Returns the deepest
    /// depth observed and every evicted entry.
    fn push_drop_oldest_many(
        &self,
        items: Vec<T>,
        droppable: impl Fn(&T) -> bool,
    ) -> (usize, Vec<T>) {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        let mut dropped = Vec::new();
        let mut max_depth = q.len();
        for item in items {
            if q.len() >= self.cap {
                if let Some(pos) = q.iter().position(&droppable) {
                    dropped.extend(q.remove(pos));
                } else {
                    while q.len() >= self.cap {
                        q = self.not_full.wait(q).expect("queue mutex poisoned");
                    }
                }
            }
            q.push_back(item);
            max_depth = max_depth.max(q.len());
            self.not_empty.notify_one();
        }
        (max_depth, dropped)
    }

    /// Pushes batch items while room lasts, under a single lock
    /// acquisition; excess items are discarded. Returns the depth after
    /// the pushes and the number of items accepted.
    fn try_push_many(&self, items: Vec<T>) -> (usize, usize) {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        let mut accepted = 0;
        for item in items {
            if q.len() >= self.cap {
                break;
            }
            q.push_back(item);
            accepted += 1;
        }
        let depth = q.len();
        drop(q);
        if accepted > 0 {
            self.not_empty.notify_all();
        }
        (depth, accepted)
    }

    /// Pushes only if there is room. Returns the depth, or the rejected
    /// item.
    fn try_push(&self, item: T) -> Result<usize, T> {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        if q.len() >= self.cap {
            return Err(item);
        }
        q.push_back(item);
        let depth = q.len();
        drop(q);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Drains up to `max` entries into `out` under one lock acquisition,
    /// waiting until at least one is available — the consumer-side twin
    /// of the batched push operations. Workers draining in batches pay
    /// one lock/notify round-trip per batch instead of per message,
    /// which is what lets [`StreamHandle::send_batch`]'s producer-side
    /// amortization show up as end-to-end throughput.
    fn pop_many(&self, max: usize, out: &mut Vec<T>) {
        let mut q = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if !q.is_empty() {
                let n = q.len().min(max);
                out.extend(q.drain(..n));
                drop(q);
                // Many slots may have opened at once: wake every
                // blocked producer, not just one.
                self.not_full.notify_all();
                return;
            }
            q = self.not_empty.wait(q).expect("queue mutex poisoned");
        }
    }
}

/// The monitoring outcome of one stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamReport {
    /// Stream id (in [`MonitorPool::open_stream`] order).
    pub stream: u64,
    /// Events the stream's monitor consumed.
    pub events: usize,
    /// All violations witnessed, in event order.
    pub violations: Vec<Violation>,
    /// Early warnings emitted by the stream's predictor, in event order;
    /// empty unless [`PoolConfig::horizon`] was set.
    pub warnings: Vec<Warning>,
    /// Whether the fail-stream policy cut the stream short (its verdicts
    /// then cover only a prefix).
    pub failed: bool,
}

/// The pool's aggregate outcome: one report per stream plus a final
/// metrics snapshot.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// Per-stream outcomes, ordered by stream id.
    pub streams: Vec<StreamReport>,
    /// Final counter values.
    pub metrics: MetricsSnapshot,
}

impl PoolReport {
    /// `true` when no stream was failed and no violation was witnessed.
    pub fn passed(&self) -> bool {
        self.streams
            .iter()
            .all(|s| !s.failed && s.violations.is_empty())
    }

    /// All violations with their stream ids.
    pub fn violations(&self) -> Vec<(u64, &Violation)> {
        self.streams
            .iter()
            .flat_map(|s| s.violations.iter().map(move |v| (s.stream, v)))
            .collect()
    }

    /// All early warnings with their stream ids.
    pub fn warnings(&self) -> Vec<(u64, &Warning)> {
        self.streams
            .iter()
            .flat_map(|s| s.warnings.iter().map(move |w| (s.stream, w)))
            .collect()
    }
}

/// A handle for feeding one stream. Dropping the handle finishes the
/// stream implicitly.
pub struct StreamHandle<S, A> {
    stream: u64,
    queue: Arc<Queue<Msg<S, A>>>,
    lag: Arc<StreamLag>,
    metrics: Arc<MonitorMetrics>,
    policy: OverloadPolicy,
    failed: bool,
    finished: bool,
}

impl<S, A> StreamHandle<S, A> {
    /// This stream's id, as it will appear in the [`PoolReport`].
    pub fn id(&self) -> u64 {
        self.stream
    }

    /// Hands one event to the stream's worker, applying the overload
    /// policy if the queue is full.
    ///
    /// # Errors
    ///
    /// Under [`OverloadPolicy::FailStream`], returns [`StreamOverflow`]
    /// when the queue is full — and on every later send, the stream
    /// having failed. The other policies never error.
    pub fn send(&mut self, action: A, time: Rat, state: S) -> Result<(), StreamOverflow> {
        if self.failed {
            return Err(StreamOverflow {
                stream: self.stream,
            });
        }
        let msg = Msg::Event {
            stream: self.stream,
            lag: Arc::clone(&self.lag),
            event: Event::new(action, time, state),
        };
        let depth = match self.policy {
            OverloadPolicy::Block => self.queue.push_blocking(msg),
            OverloadPolicy::DropOldest => {
                let (depth, dropped) = self
                    .queue
                    .push_drop_oldest(msg, |m| matches!(m, Msg::Event { .. }));
                if let Some(Msg::Event { lag, .. }) = dropped {
                    // The evicted event left the queue unprocessed; it
                    // still counts against its stream's lag.
                    lag.record_drained();
                    self.metrics.record_dropped();
                }
                depth
            }
            OverloadPolicy::FailStream => match self.queue.try_push(msg) {
                Ok(depth) => depth,
                Err(_) => {
                    self.failed = true;
                    self.metrics.record_failed_stream();
                    return Err(StreamOverflow {
                        stream: self.stream,
                    });
                }
            },
        };
        self.lag.record_enqueued();
        self.metrics.record_queue_depth(depth as u64);
        Ok(())
    }

    /// Hands a whole batch of events to the stream's worker under a
    /// *single* queue synchronization, amortizing the per-event lock and
    /// wake-up cost of [`send`](StreamHandle::send) — the win behind the
    /// `e11_predictor` benchmark's batching figures.
    ///
    /// The overload policy applies per event within the batch: `Block`
    /// waits for room as it goes, `DropOldest` evicts per excess event,
    /// and `FailStream` accepts the prefix that fits and fails the
    /// stream if anything is left over.
    ///
    /// # Errors
    ///
    /// Under [`OverloadPolicy::FailStream`], returns [`StreamOverflow`]
    /// when the batch did not fit entirely (the fitting prefix is still
    /// delivered), and on every later send. The other policies never
    /// error.
    pub fn send_batch<I>(&mut self, events: I) -> Result<(), StreamOverflow>
    where
        I: IntoIterator<Item = (A, Rat, S)>,
    {
        if self.failed {
            return Err(StreamOverflow {
                stream: self.stream,
            });
        }
        let msgs: Vec<Msg<S, A>> = events
            .into_iter()
            .map(|(action, time, state)| Msg::Event {
                stream: self.stream,
                lag: Arc::clone(&self.lag),
                event: Event::new(action, time, state),
            })
            .collect();
        let n = msgs.len() as u64;
        if n == 0 {
            return Ok(());
        }
        let depth = match self.policy {
            OverloadPolicy::Block => self.queue.push_blocking_many(msgs),
            OverloadPolicy::DropOldest => {
                let (depth, dropped) = self
                    .queue
                    .push_drop_oldest_many(msgs, |m| matches!(m, Msg::Event { .. }));
                for d in dropped {
                    if let Msg::Event { lag, .. } = d {
                        lag.record_drained();
                        self.metrics.record_dropped();
                    }
                }
                depth
            }
            OverloadPolicy::FailStream => {
                let (depth, accepted) = self.queue.try_push_many(msgs);
                self.lag.record_enqueued_many(accepted as u64);
                self.metrics.record_queue_depth(depth as u64);
                self.metrics.record_batch(accepted as u64);
                if (accepted as u64) < n {
                    self.failed = true;
                    self.metrics.record_failed_stream();
                    return Err(StreamOverflow {
                        stream: self.stream,
                    });
                }
                return Ok(());
            }
        };
        self.lag.record_enqueued_many(n);
        self.metrics.record_queue_depth(depth as u64);
        self.metrics.record_batch(n);
        Ok(())
    }

    /// Ends the stream: the worker finalizes its monitor and files the
    /// stream's report.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.queue.push_blocking(Msg::Finish {
            stream: self.stream,
            failed: self.failed,
        });
    }
}

impl<S, A> Drop for StreamHandle<S, A> {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

/// A pool of monitor workers sharding independent event streams.
///
/// # Example
///
/// ```
/// use tempo_core::TimingCondition;
/// use tempo_math::{Interval, Rat};
/// use tempo_monitor::{MonitorPool, PoolConfig};
///
/// let cond: TimingCondition<u32, &str> =
///     TimingCondition::new("G", Interval::closed(Rat::from(1), Rat::from(5)).unwrap())
///         .triggered_at_start(|_| true)
///         .on_actions(|a| *a == "GRANT");
/// let mut pool = MonitorPool::new(&[cond], PoolConfig::default());
/// let mut stream = pool.open_stream(0);
/// stream.send("GRANT", Rat::from(2), 1).unwrap();
/// stream.finish();
/// let report = pool.shutdown();
/// assert!(report.passed());
/// ```
pub struct MonitorPool<S, A> {
    queues: Vec<Arc<Queue<Msg<S, A>>>>,
    workers: Vec<JoinHandle<Vec<StreamReport>>>,
    metrics: Arc<MonitorMetrics>,
    policy: OverloadPolicy,
    next_stream: u64,
}

impl<S, A> MonitorPool<S, A>
where
    S: Clone + Send + 'static,
    A: Send + 'static,
{
    /// Spawns `config.workers` worker threads. The conditions are
    /// compiled into one shared
    /// [`CompiledConditionSet`](tempo_core::engine::CompiledConditionSet)
    /// for the whole pool — every stream's monitor steps the same
    /// compiled engine, paying the compilation exactly once.
    pub fn new(conds: &[TimingCondition<S, A>], config: PoolConfig) -> MonitorPool<S, A> {
        let metrics = Arc::new(MonitorMetrics::new());
        let set = Arc::new(CompiledConditionSet::new(conds));
        let mut queues = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..config.workers.max(1) {
            let queue = Arc::new(Queue::new(config.queue_capacity));
            let set = Arc::clone(&set);
            let metrics = Arc::clone(&metrics);
            let worker_queue = Arc::clone(&queue);
            let mode = config.mode;
            let horizon = config.horizon;
            let drain_batch = config.drain_batch.max(1);
            workers.push(std::thread::spawn(move || {
                worker_loop(&worker_queue, &set, &metrics, mode, horizon, drain_batch)
            }));
            queues.push(queue);
        }
        MonitorPool {
            queues,
            workers,
            metrics,
            policy: config.policy,
            next_stream: 0,
        }
    }

    /// Opens a new stream starting in `start`, pinned to a worker round
    /// robin. The returned handle feeds the stream.
    pub fn open_stream(&mut self, start: S) -> StreamHandle<S, A> {
        let stream = self.next_stream;
        self.next_stream += 1;
        let queue = Arc::clone(&self.queues[(stream as usize) % self.queues.len()]);
        let lag = self.metrics.register_stream(stream);
        queue.push_blocking(Msg::Open { stream, start });
        StreamHandle {
            stream,
            queue,
            lag,
            metrics: Arc::clone(&self.metrics),
            policy: self.policy,
            failed: false,
            finished: false,
        }
    }

    /// The pool's shared counters (snapshot any time for live lag).
    pub fn metrics(&self) -> Arc<MonitorMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops the workers (after they drain their queues) and collects
    /// every stream's report. Streams never explicitly finished are
    /// finalized here.
    pub fn shutdown(self) -> PoolReport {
        for queue in &self.queues {
            queue.push_blocking(Msg::Shutdown);
        }
        let mut streams: Vec<StreamReport> = Vec::new();
        for worker in self.workers {
            streams.extend(worker.join().expect("monitor worker panicked"));
        }
        streams.sort_by_key(|r| r.stream);
        PoolReport {
            streams,
            metrics: self.metrics.snapshot(),
        }
    }
}

fn worker_loop<S: Clone, A>(
    queue: &Queue<Msg<S, A>>,
    set: &Arc<CompiledConditionSet<S, A>>,
    metrics: &Arc<MonitorMetrics>,
    mode: SatisfactionMode,
    horizon: Option<Rat>,
    drain_batch: usize,
) -> Vec<StreamReport> {
    let mut monitors: HashMap<u64, Monitor<S, A>> = HashMap::new();
    let mut reports = Vec::new();
    let file = |reports: &mut Vec<StreamReport>, stream, mon: Monitor<S, A>, failed| {
        let events = mon.events_seen();
        let (violations, warnings) = mon.finish_with_warnings(mode);
        reports.push(StreamReport {
            stream,
            events,
            violations,
            warnings,
            failed,
        });
    };
    // Drain the queue in batches: one lock round-trip covers up to
    // `drain_batch` messages ([`PoolConfig::drain_batch`]), so a
    // producer feeding via `send_batch` and this loop together touch
    // the mutex O(events / batch) times.
    let mut batch = Vec::new();
    loop {
        batch.clear();
        queue.pop_many(drain_batch, &mut batch);
        for msg in batch.drain(..) {
            match msg {
                Msg::Open { stream, start } => {
                    let mut mon = Monitor::from_compiled(Arc::clone(set), &start)
                        .with_metrics(Arc::clone(metrics));
                    if let Some(h) = horizon {
                        mon = mon.with_predictor(h);
                    }
                    monitors.insert(stream, mon);
                }
                Msg::Event { stream, lag, event } => {
                    if let Some(mon) = monitors.get_mut(&stream) {
                        mon.observe(&event.action, event.time, &event.state);
                    }
                    lag.record_drained();
                }
                Msg::Finish { stream, failed } => {
                    if let Some(mon) = monitors.remove(&stream) {
                        file(&mut reports, stream, mon, failed);
                    }
                }
                Msg::Shutdown => {
                    for (stream, mon) in monitors.drain() {
                        file(&mut reports, stream, mon, false);
                    }
                    return reports;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_math::Interval;

    fn cond() -> TimingCondition<u8, &'static str> {
        TimingCondition::new("C", Interval::closed(Rat::from(2), Rat::from(10)).unwrap())
            .triggered_at_start(|s| *s == 0)
            .on_actions(|a| *a == "fire")
    }

    #[test]
    fn pool_monitors_many_streams() {
        let mut pool = MonitorPool::new(&[cond()], PoolConfig::default());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let mut h = pool.open_stream(0u8);
            // Odd streams violate the lower bound (fire at t=1 < 2).
            let t = if i % 2 == 1 { 1 } else { 3 };
            h.send("fire", Rat::from(t), 1).unwrap();
            handles.push(h);
        }
        drop(handles); // implicit finish
        let report = pool.shutdown();
        assert_eq!(report.streams.len(), 8);
        assert!(!report.passed());
        let bad: Vec<u64> = report.violations().iter().map(|(s, _)| *s).collect();
        assert_eq!(bad, vec![1, 3, 5, 7]);
        assert_eq!(report.metrics.events, 8);
    }

    #[test]
    fn drop_oldest_policy_sheds_events() {
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 2,
            policy: OverloadPolicy::DropOldest,
            mode: SatisfactionMode::Prefix,
            ..PoolConfig::default()
        };
        // A condition that never triggers: the worker just drains.
        let never: TimingCondition<u8, &'static str> =
            TimingCondition::new("N", Interval::closed(Rat::ZERO, Rat::from(1)).unwrap());
        let mut pool = MonitorPool::new(&[never], config);
        let mut h = pool.open_stream(0u8);
        for t in 0..64 {
            h.send("x", Rat::from(t), 0).unwrap();
        }
        h.finish();
        let report = pool.shutdown();
        assert!(report.passed());
        // Lag accounting is exact even when events were shed.
        assert_eq!(report.metrics.streams[0].enqueued, 64);
        assert_eq!(report.metrics.streams[0].lag, 0);
    }

    #[test]
    fn fail_stream_policy_errors_and_reports() {
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::FailStream,
            mode: SatisfactionMode::Prefix,
            ..PoolConfig::default()
        };
        let never: TimingCondition<u8, &'static str> =
            TimingCondition::new("N", Interval::closed(Rat::ZERO, Rat::from(1)).unwrap());
        let mut pool = MonitorPool::new(&[never], config);
        let mut h = pool.open_stream(0u8);
        // Keep pushing until the bounded queue refuses one.
        let mut failed = false;
        for t in 0..100_000 {
            if h.send("x", Rat::from(t), 0).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "a capacity-1 queue must eventually refuse");
        // Once failed, every send errors.
        assert!(h.send("x", Rat::from(100_000), 0).is_err());
        h.finish();
        let report = pool.shutdown();
        assert!(report.streams[0].failed);
        assert!(!report.passed());
        assert_eq!(report.metrics.failed_streams, 1);
    }

    #[test]
    fn max_queue_depth_is_observed() {
        let mut pool = MonitorPool::new(&[cond()], PoolConfig::default());
        let mut h = pool.open_stream(0u8);
        for t in 0..32 {
            h.send("noise", Rat::from(t), 1).unwrap();
        }
        h.finish();
        let report = pool.shutdown();
        assert!(report.metrics.max_queue_depth >= 1);
        assert_eq!(report.streams[0].events, 32);
    }

    #[test]
    fn pool_horizon_attaches_predictors_per_stream() {
        let config = PoolConfig {
            horizon: Some(Rat::from(3)),
            ..PoolConfig::default()
        };
        let mut pool = MonitorPool::new(&[cond()], config);
        // Stream 0 serves its deadline inside the warning window (near
        // miss); stream 1 lets it lapse (warning, then violation).
        let mut near = pool.open_stream(0u8);
        near.send("fire", Rat::from(9), 1).unwrap();
        near.finish();
        let mut late = pool.open_stream(0u8);
        late.send("noise", Rat::from(20), 1).unwrap();
        late.finish();
        let report = pool.shutdown();
        assert_eq!(report.streams[0].warnings.len(), 1);
        assert!(report.streams[0].violations.is_empty());
        assert_eq!(report.streams[1].warnings.len(), 1);
        assert_eq!(report.streams[1].violations.len(), 1);
        assert_eq!(report.warnings().len(), 2);
        assert_eq!(report.metrics.warnings, 2);
        // Warnings do not fail a stream, but the violation does.
        assert!(!report.passed());
    }

    #[test]
    fn send_batch_delivers_in_order_and_counts_batches() {
        let config = PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        };
        let mut pool = MonitorPool::new(&[cond()], config);
        let metrics = pool.metrics();
        let mut h = pool.open_stream(0u8);
        h.send_batch((0..6).map(|t| ("noise", Rat::from(t), 1u8)))
            .unwrap();
        h.send_batch(std::iter::empty()).unwrap();
        h.send("fire", Rat::from(7), 1).unwrap();
        h.finish();
        let report = pool.shutdown();
        assert!(report.passed());
        assert_eq!(report.streams[0].events, 7);
        let s = metrics.snapshot();
        assert_eq!(s.batches, 1); // the empty batch is not counted
        assert_eq!(s.batched_events, 6);
        assert_eq!(s.max_batch, 6);
        assert_eq!(s.streams[0].enqueued, 7);
    }

    #[test]
    fn send_batch_respects_drop_oldest_and_fail_stream() {
        // DropOldest: a batch larger than the queue sheds events but
        // keeps exact lag accounting.
        let never: TimingCondition<u8, &'static str> =
            TimingCondition::new("N", Interval::closed(Rat::ZERO, Rat::from(1)).unwrap());
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 2,
            policy: OverloadPolicy::DropOldest,
            mode: SatisfactionMode::Prefix,
            ..PoolConfig::default()
        };
        let mut pool = MonitorPool::new(std::slice::from_ref(&never), config);
        let mut h = pool.open_stream(0u8);
        h.send_batch((0..64).map(|t| ("x", Rat::from(t), 0u8)))
            .unwrap();
        h.finish();
        let report = pool.shutdown();
        assert!(report.passed());
        assert_eq!(report.metrics.streams[0].enqueued, 64);
        assert_eq!(report.metrics.streams[0].lag, 0);

        // FailStream: an oversized batch delivers its fitting prefix,
        // then fails the stream.
        let config = PoolConfig {
            workers: 1,
            queue_capacity: 1,
            policy: OverloadPolicy::FailStream,
            mode: SatisfactionMode::Prefix,
            ..PoolConfig::default()
        };
        let mut pool = MonitorPool::new(&[never], config);
        let mut h = pool.open_stream(0u8);
        let mut failed = false;
        for round in 0..100_000i64 {
            let base = round * 8;
            if h.send_batch((base..base + 8).map(|t| ("x", Rat::from(t), 0u8)))
                .is_err()
            {
                failed = true;
                break;
            }
        }
        assert!(failed, "a capacity-1 queue must eventually refuse a batch");
        assert!(h.send("x", Rat::from(1_000_000), 0).is_err());
        h.finish();
        let report = pool.shutdown();
        assert!(report.streams[0].failed);
        assert_eq!(report.metrics.failed_streams, 1);
    }
}
