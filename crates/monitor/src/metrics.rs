//! Shared monitor counters and a plain-text snapshot renderer.
//!
//! A [`MonitorMetrics`] is a bag of atomics that any number of monitors,
//! pool workers and producer threads bump concurrently; [`snapshot`]
//! freezes the counters into a [`MetricsSnapshot`] whose `Display`
//! renders an aligned table in the style of `tempo-core`'s `render`
//! module.
//!
//! [`snapshot`]: MonitorMetrics::snapshot

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Lag accounting for one stream: events enqueued by the producer vs
/// events drained (processed or dropped) by the worker.
#[derive(Debug, Default)]
pub struct StreamLag {
    enqueued: AtomicU64,
    drained: AtomicU64,
}

impl StreamLag {
    /// Records one event handed to the stream's queue.
    pub fn record_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one event leaving the queue (processed or dropped).
    pub fn record_drained(&self) {
        self.drained.fetch_add(1, Ordering::Relaxed);
    }

    /// Events currently in flight for this stream.
    pub fn lag(&self) -> u64 {
        self.enqueued
            .load(Ordering::Relaxed)
            .saturating_sub(self.drained.load(Ordering::Relaxed))
    }

    /// Total events enqueued so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }
}

/// Atomic counters shared by monitors and pool workers.
#[derive(Debug, Default)]
pub struct MonitorMetrics {
    events: AtomicU64,
    obligations_opened: AtomicU64,
    obligations_discharged: AtomicU64,
    obligations_violated: AtomicU64,
    max_queue_depth: AtomicU64,
    dropped_events: AtomicU64,
    failed_streams: AtomicU64,
    streams: Mutex<Vec<(u64, Arc<StreamLag>)>>,
}

impl MonitorMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> MonitorMetrics {
        MonitorMetrics::default()
    }

    /// Records one event consumed by a monitor.
    pub fn record_event(&self) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` obligations opened by a trigger.
    pub fn record_opened(&self, n: u64) {
        self.obligations_opened.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one obligation discharged without violation.
    pub fn record_discharged(&self) {
        self.obligations_discharged.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one obligation resolved as a violation.
    pub fn record_violated(&self) {
        self.obligations_violated.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds an observed queue depth into the running maximum.
    pub fn record_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one event discarded by the drop-oldest overload policy.
    pub fn record_dropped(&self) {
        self.dropped_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one stream refused under the fail-stream overload policy.
    pub fn record_failed_stream(&self) {
        self.failed_streams.fetch_add(1, Ordering::Relaxed);
    }

    /// Registers a stream for per-stream lag reporting.
    pub fn register_stream(&self, id: u64) -> Arc<StreamLag> {
        let lag = Arc::new(StreamLag::default());
        self.streams
            .lock()
            .expect("metrics mutex poisoned")
            .push((id, Arc::clone(&lag)));
        lag
    }

    /// Freezes the counters into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let streams = self
            .streams
            .lock()
            .expect("metrics mutex poisoned")
            .iter()
            .map(|(id, lag)| StreamLagSnapshot {
                stream: *id,
                enqueued: lag.enqueued(),
                lag: lag.lag(),
            })
            .collect();
        MetricsSnapshot {
            events: self.events.load(Ordering::Relaxed),
            obligations_opened: self.obligations_opened.load(Ordering::Relaxed),
            obligations_discharged: self.obligations_discharged.load(Ordering::Relaxed),
            obligations_violated: self.obligations_violated.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            dropped_events: self.dropped_events.load(Ordering::Relaxed),
            failed_streams: self.failed_streams.load(Ordering::Relaxed),
            streams,
        }
    }
}

/// Per-stream lag at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamLagSnapshot {
    /// Stream id.
    pub stream: u64,
    /// Total events the producer has enqueued.
    pub enqueued: u64,
    /// Events enqueued but not yet drained.
    pub lag: u64,
}

/// A frozen copy of every counter, render-able as an aligned table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Events consumed by monitors.
    pub events: u64,
    /// Obligations opened by triggers.
    pub obligations_opened: u64,
    /// Obligations discharged without violation.
    pub obligations_discharged: u64,
    /// Obligations resolved as violations.
    pub obligations_violated: u64,
    /// Deepest queue observed by any worker.
    pub max_queue_depth: u64,
    /// Events discarded by the drop-oldest policy.
    pub dropped_events: u64,
    /// Streams refused by the fail-stream policy.
    pub failed_streams: u64,
    /// Per-stream lag, in registration order.
    pub streams: Vec<StreamLagSnapshot>,
}

impl MetricsSnapshot {
    /// Obligations still open (opened minus resolved either way).
    pub fn obligations_open(&self) -> u64 {
        self.obligations_opened
            .saturating_sub(self.obligations_discharged + self.obligations_violated)
    }

    /// Renders the snapshot as an aligned two-column table:
    ///
    /// ```text
    ///   events                 10000
    ///   obligations opened       312
    ///   ...
    ///   stream 0 lag               3   (of 5000 enqueued)
    /// ```
    pub fn render(&self) -> String {
        let mut rows: Vec<(String, String, String)> = vec![
            row("events", self.events),
            row("obligations opened", self.obligations_opened),
            row("obligations discharged", self.obligations_discharged),
            row("obligations violated", self.obligations_violated),
            row("obligations open", self.obligations_open()),
            row("max queue depth", self.max_queue_depth),
            row("dropped events", self.dropped_events),
            row("failed streams", self.failed_streams),
        ];
        for s in &self.streams {
            rows.push((
                format!("stream {} lag", s.stream),
                s.lag.to_string(),
                format!("(of {} enqueued)", s.enqueued),
            ));
        }
        render_rows(&rows)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

fn row(label: &str, value: u64) -> (String, String, String) {
    (label.to_string(), value.to_string(), String::new())
}

/// Aligned three-column rendering, after `tempo-core`'s `render` module:
/// left-padded label column, right-aligned value column, trailing note.
fn render_rows(rows: &[(String, String, String)]) -> String {
    let w0 = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let w1 = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value, note) in rows {
        out.push_str(&format!("  {label:<w0$}  {value:>w1$}"));
        if !note.is_empty() {
            out.push_str(&format!("  {note}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MonitorMetrics::new();
        m.record_event();
        m.record_event();
        m.record_opened(3);
        m.record_discharged();
        m.record_violated();
        m.record_queue_depth(5);
        m.record_queue_depth(2);
        let s = m.snapshot();
        assert_eq!(s.events, 2);
        assert_eq!(s.obligations_opened, 3);
        assert_eq!(s.obligations_open(), 1);
        assert_eq!(s.max_queue_depth, 5);
    }

    #[test]
    fn stream_lag_tracks_in_flight() {
        let m = MonitorMetrics::new();
        let lag = m.register_stream(7);
        lag.record_enqueued();
        lag.record_enqueued();
        lag.record_drained();
        let s = m.snapshot();
        assert_eq!(
            s.streams,
            vec![StreamLagSnapshot {
                stream: 7,
                enqueued: 2,
                lag: 1
            }]
        );
    }

    #[test]
    fn render_is_aligned() {
        let m = MonitorMetrics::new();
        m.record_event();
        let text = m.snapshot().render();
        assert!(text.contains("events"));
        assert!(text.contains("max queue depth"));
        // Every line is indented like render.rs output.
        assert!(text.lines().all(|l| l.starts_with("  ")));
    }
}
