//! Shared monitor counters and a plain-text snapshot renderer.
//!
//! A [`MonitorMetrics`] is a bag of atomics that any number of monitors,
//! pool workers and producer threads bump concurrently; [`snapshot`]
//! freezes the counters into a [`MetricsSnapshot`] whose `Display`
//! renders an aligned table in the style of `tempo-core`'s `render`
//! module.
//!
//! Internally the hot, worker-side counters (events, obligation churn,
//! warnings, slack) are *sharded*: each pool worker records into its own
//! cache-line-aligned [`MetricsShard`], and [`snapshot`] merges the
//! shards with the base counters. Producer-side counters (queue depth,
//! drops, batches, per-stream lag) stay on the base struct — they are
//! either amortized by batching or per-stream to begin with. The public
//! snapshot API is unchanged by the sharding.
//!
//! [`snapshot`]: MonitorMetrics::snapshot

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tempo_math::Rat;

use crate::ring::CachePadded;

/// Number of buckets in the warning-slack histogram: quartiles of the
/// `slack / horizon` ratio plus a final bucket for full-horizon warnings.
pub const SLACK_BUCKETS: usize = 5;

/// Buckets a warning's slack into the `slack / horizon` histogram. A
/// clamped warning (`slack < horizon`) lands in the quartile of its
/// ratio; a full-horizon warning — and every warning at horizon `0` —
/// lands in the last bucket.
fn slack_bucket(slack: Rat, horizon: Rat) -> usize {
    if horizon.is_zero() || slack >= horizon {
        SLACK_BUCKETS - 1
    } else {
        // slack/horizon ∈ [0, 1): quartile index without division.
        let s4 = slack * Rat::from(4);
        if s4 < horizon {
            0
        } else if s4 < horizon * Rat::from(2) {
            1
        } else if s4 < horizon * Rat::from(3) {
            2
        } else {
            3
        }
    }
}

/// Buckets a forced window's margin into the `margin / horizon`
/// histogram. Forced windows are only reported when `margin ≥ horizon`,
/// so the ratio is at least one: the buckets are doubling intervals
/// `[1,2) [2,4) [4,8) [8,16) [16,∞)`. A zero horizon never reports a
/// forced window, but is defensively sent to the last bucket.
fn margin_bucket(margin: Rat, horizon: Rat) -> usize {
    if horizon.is_zero() {
        return SLACK_BUCKETS - 1;
    }
    // margin/horizon ∈ [1, ∞): doubling index without division.
    let mut bound = horizon * Rat::from(2);
    for bucket in 0..SLACK_BUCKETS - 1 {
        if margin < bound {
            return bucket;
        }
        bound *= Rat::from(2);
    }
    SLACK_BUCKETS - 1
}

/// Lag accounting for one stream: events enqueued by the producer vs
/// events drained (processed or dropped) by the worker.
///
/// The two counters live on separate cache lines: the producer bumps
/// `enqueued` and the worker bumps `drained` at full ingestion rate, so
/// sharing a line would make every send invalidate the worker's cache
/// and vice versa.
#[derive(Debug, Default)]
pub struct StreamLag {
    enqueued: CachePadded<AtomicU64>,
    drained: CachePadded<AtomicU64>,
}

impl StreamLag {
    /// Records one event handed to the stream's queue.
    pub fn record_enqueued(&self) {
        self.enqueued.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` events handed to the stream's queue in one batch.
    pub fn record_enqueued_many(&self, n: u64) {
        self.enqueued.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one event leaving the queue (processed or dropped).
    pub fn record_drained(&self) {
        self.drained.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` events leaving the queue in one drained batch.
    pub fn record_drained_many(&self, n: u64) {
        self.drained.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Events currently in flight for this stream.
    pub fn lag(&self) -> u64 {
        self.enqueued
            .value
            .load(Ordering::Relaxed)
            .saturating_sub(self.drained.value.load(Ordering::Relaxed))
    }

    /// Total events enqueued so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued.value.load(Ordering::Relaxed)
    }
}

/// One worker's private slice of the hot counters. Cache-line-aligned so
/// shards never false-share; all fields are bumped by exactly one worker
/// thread and only read across threads at snapshot time.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct MetricsShard {
    events: AtomicU64,
    obligations_opened: AtomicU64,
    obligations_discharged: AtomicU64,
    obligations_violated: AtomicU64,
    warnings: AtomicU64,
    warning_slack_hist: [AtomicU64; SLACK_BUCKETS],
    forced: AtomicU64,
    forced_margin_hist: [AtomicU64; SLACK_BUCKETS],
    min_slack: Mutex<Option<Rat>>,
}

impl MetricsShard {
    pub(crate) fn record_event(&self) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_opened(&self, n: u64) {
        self.obligations_opened.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn record_discharged(&self) {
        self.obligations_discharged.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_violated(&self) {
        self.obligations_violated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_warning(&self, slack: Rat, horizon: Rat) {
        self.warnings.fetch_add(1, Ordering::Relaxed);
        self.warning_slack_hist[slack_bucket(slack, horizon)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_forced(&self, margin: Rat, horizon: Rat) {
        self.forced.fetch_add(1, Ordering::Relaxed);
        self.forced_margin_hist[margin_bucket(margin, horizon)].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_min_slack(&self, slack: Rat) {
        let mut guard = self.min_slack.lock().expect("metrics mutex poisoned");
        match *guard {
            Some(m) if m <= slack => {}
            _ => *guard = Some(slack),
        }
    }
}

/// A monitor's destination for hot-path counters: either the shared base
/// [`MonitorMetrics`] (standalone monitors) or one worker's private
/// [`MetricsShard`] (pool monitors, merged at snapshot time).
#[derive(Debug, Clone)]
pub(crate) enum MetricsRef {
    Base(Arc<MonitorMetrics>),
    Shard(Arc<MetricsShard>),
}

impl MetricsRef {
    pub(crate) fn record_event(&self) {
        match self {
            MetricsRef::Base(m) => m.record_event(),
            MetricsRef::Shard(s) => s.record_event(),
        }
    }

    pub(crate) fn record_opened(&self, n: u64) {
        match self {
            MetricsRef::Base(m) => m.record_opened(n),
            MetricsRef::Shard(s) => s.record_opened(n),
        }
    }

    pub(crate) fn record_discharged(&self) {
        match self {
            MetricsRef::Base(m) => m.record_discharged(),
            MetricsRef::Shard(s) => s.record_discharged(),
        }
    }

    pub(crate) fn record_violated(&self) {
        match self {
            MetricsRef::Base(m) => m.record_violated(),
            MetricsRef::Shard(s) => s.record_violated(),
        }
    }

    pub(crate) fn record_warning(&self, slack: Rat, horizon: Rat) {
        match self {
            MetricsRef::Base(m) => m.record_warning(slack, horizon),
            MetricsRef::Shard(s) => s.record_warning(slack, horizon),
        }
    }

    pub(crate) fn record_forced(&self, margin: Rat, horizon: Rat) {
        match self {
            MetricsRef::Base(m) => m.record_forced(margin, horizon),
            MetricsRef::Shard(s) => s.record_forced(margin, horizon),
        }
    }

    pub(crate) fn record_min_slack(&self, slack: Rat) {
        match self {
            MetricsRef::Base(m) => m.record_min_slack(slack),
            MetricsRef::Shard(s) => s.record_min_slack(slack),
        }
    }
}

/// Atomic counters shared by monitors and pool workers.
#[derive(Debug, Default)]
pub struct MonitorMetrics {
    events: AtomicU64,
    obligations_opened: AtomicU64,
    obligations_discharged: AtomicU64,
    obligations_violated: AtomicU64,
    max_queue_depth: AtomicU64,
    dropped_events: AtomicU64,
    failed_streams: AtomicU64,
    warnings: AtomicU64,
    warning_slack_hist: [AtomicU64; SLACK_BUCKETS],
    forced: AtomicU64,
    forced_margin_hist: [AtomicU64; SLACK_BUCKETS],
    min_slack: Mutex<Option<Rat>>,
    batches: AtomicU64,
    batched_events: AtomicU64,
    max_batch: AtomicU64,
    streams: Mutex<Vec<(u64, Arc<StreamLag>)>>,
    shards: Mutex<Vec<Arc<MetricsShard>>>,
}

impl MonitorMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> MonitorMetrics {
        MonitorMetrics::default()
    }

    /// Records one event consumed by a monitor.
    pub fn record_event(&self) {
        self.events.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` obligations opened by a trigger.
    pub fn record_opened(&self, n: u64) {
        self.obligations_opened.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one obligation discharged without violation.
    pub fn record_discharged(&self) {
        self.obligations_discharged.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one obligation resolved as a violation.
    pub fn record_violated(&self) {
        self.obligations_violated.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds an observed queue depth into the running maximum.
    pub fn record_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one event discarded by the drop-oldest overload policy.
    pub fn record_dropped(&self) {
        self.dropped_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one stream refused under the fail-stream overload policy.
    pub fn record_failed_stream(&self) {
        self.failed_streams.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one early warning and buckets its slack into the
    /// `slack / horizon` histogram. A clamped warning (`b_u < horizon`,
    /// so `slack < horizon`) lands in the quartile of its ratio; a
    /// full-horizon warning — and every warning at horizon `0` — lands
    /// in the last bucket.
    pub fn record_warning(&self, slack: Rat, horizon: Rat) {
        self.warnings.fetch_add(1, Ordering::Relaxed);
        self.warning_slack_hist[slack_bucket(slack, horizon)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one forced window and buckets its margin into the
    /// `margin / horizon` histogram. Forced windows only exist with
    /// `margin ≥ horizon`, so the buckets are the doubling intervals
    /// `[1,2) [2,4) [4,8) [8,16) [16,∞)` of the ratio.
    pub fn record_forced(&self, margin: Rat, horizon: Rat) {
        self.forced.fetch_add(1, Ordering::Relaxed);
        self.forced_margin_hist[margin_bucket(margin, horizon)].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds an observed minimum remaining slack into the running
    /// all-time low-water mark.
    pub fn record_min_slack(&self, slack: Rat) {
        let mut guard = self.min_slack.lock().expect("metrics mutex poisoned");
        match *guard {
            Some(m) if m <= slack => {}
            _ => *guard = Some(slack),
        }
    }

    /// Records one batch of `n` events pushed through a pool handle.
    pub fn record_batch(&self, n: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_events.fetch_add(n, Ordering::Relaxed);
        self.max_batch.fetch_max(n, Ordering::Relaxed);
    }

    /// Registers a stream for per-stream lag reporting.
    pub fn register_stream(&self, id: u64) -> Arc<StreamLag> {
        let lag = Arc::new(StreamLag::default());
        self.streams
            .lock()
            .expect("metrics mutex poisoned")
            .push((id, Arc::clone(&lag)));
        lag
    }

    /// Registers a new private shard of the hot counters (one per pool
    /// worker). The shard's counts are folded into every subsequent
    /// [`snapshot`](MonitorMetrics::snapshot).
    pub(crate) fn register_shard(&self) -> Arc<MetricsShard> {
        let shard = Arc::new(MetricsShard::default());
        self.shards
            .lock()
            .expect("metrics mutex poisoned")
            .push(Arc::clone(&shard));
        shard
    }

    /// Freezes the counters into an immutable snapshot, merging every
    /// worker shard with the base counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        self.snapshot_into(&mut out);
        out
    }

    /// [`snapshot`](MonitorMetrics::snapshot) into a caller-provided
    /// snapshot, reusing its `streams` buffer instead of allocating a
    /// fresh one per call. A caller polling the counters on a timer —
    /// `tempo-serve`'s metrics egress does, once per subscribed client
    /// interval — holds one `MetricsSnapshot` and refreshes it here,
    /// making the steady-state poll allocation-free.
    pub fn snapshot_into(&self, out: &mut MetricsSnapshot) {
        out.streams.clear();
        {
            let streams = self.streams.lock().expect("metrics mutex poisoned");
            out.streams.reserve(streams.len());
            out.streams
                .extend(streams.iter().map(|(id, lag)| StreamLagSnapshot {
                    stream: *id,
                    enqueued: lag.enqueued(),
                    lag: lag.lag(),
                }));
        }
        let mut events = self.events.load(Ordering::Relaxed);
        let mut opened = self.obligations_opened.load(Ordering::Relaxed);
        let mut discharged = self.obligations_discharged.load(Ordering::Relaxed);
        let mut violated = self.obligations_violated.load(Ordering::Relaxed);
        let mut warnings = self.warnings.load(Ordering::Relaxed);
        let mut hist: [u64; SLACK_BUCKETS] =
            std::array::from_fn(|i| self.warning_slack_hist[i].load(Ordering::Relaxed));
        let mut forced = self.forced.load(Ordering::Relaxed);
        let mut margin_hist: [u64; SLACK_BUCKETS] =
            std::array::from_fn(|i| self.forced_margin_hist[i].load(Ordering::Relaxed));
        let mut min_slack = *self.min_slack.lock().expect("metrics mutex poisoned");
        for shard in self.shards.lock().expect("metrics mutex poisoned").iter() {
            events += shard.events.load(Ordering::Relaxed);
            opened += shard.obligations_opened.load(Ordering::Relaxed);
            discharged += shard.obligations_discharged.load(Ordering::Relaxed);
            violated += shard.obligations_violated.load(Ordering::Relaxed);
            warnings += shard.warnings.load(Ordering::Relaxed);
            for (i, bucket) in shard.warning_slack_hist.iter().enumerate() {
                hist[i] += bucket.load(Ordering::Relaxed);
            }
            forced += shard.forced.load(Ordering::Relaxed);
            for (i, bucket) in shard.forced_margin_hist.iter().enumerate() {
                margin_hist[i] += bucket.load(Ordering::Relaxed);
            }
            let shard_min = *shard.min_slack.lock().expect("metrics mutex poisoned");
            min_slack = match (min_slack, shard_min) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        out.events = events;
        out.obligations_opened = opened;
        out.obligations_discharged = discharged;
        out.obligations_violated = violated;
        out.max_queue_depth = self.max_queue_depth.load(Ordering::Relaxed);
        out.dropped_events = self.dropped_events.load(Ordering::Relaxed);
        out.failed_streams = self.failed_streams.load(Ordering::Relaxed);
        out.warnings = warnings;
        out.warning_slack_hist = hist;
        out.forced = forced;
        out.forced_margin_hist = margin_hist;
        out.min_slack = min_slack;
        out.batches = self.batches.load(Ordering::Relaxed);
        out.batched_events = self.batched_events.load(Ordering::Relaxed);
        out.max_batch = self.max_batch.load(Ordering::Relaxed);
    }
}

/// Per-stream lag at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamLagSnapshot {
    /// Stream id.
    pub stream: u64,
    /// Total events the producer has enqueued.
    pub enqueued: u64,
    /// Events enqueued but not yet drained.
    pub lag: u64,
}

/// A frozen copy of every counter, render-able as an aligned table.
///
/// `Default` is the all-zero snapshot — the starting buffer for
/// [`MonitorMetrics::snapshot_into`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Events consumed by monitors.
    pub events: u64,
    /// Obligations opened by triggers.
    pub obligations_opened: u64,
    /// Obligations discharged without violation.
    pub obligations_discharged: u64,
    /// Obligations resolved as violations.
    pub obligations_violated: u64,
    /// Deepest queue observed by any worker.
    pub max_queue_depth: u64,
    /// Events discarded by the drop-oldest policy.
    pub dropped_events: u64,
    /// Streams refused by the fail-stream policy.
    pub failed_streams: u64,
    /// Early warnings emitted by predictors.
    pub warnings: u64,
    /// Warning counts bucketed by `slack / horizon` quartile; the last
    /// bucket holds full-horizon warnings (see
    /// [`record_warning`](MonitorMetrics::record_warning)).
    pub warning_slack_hist: [u64; SLACK_BUCKETS],
    /// Forced windows reported by predictive monitors.
    pub forced: u64,
    /// Forced-window counts bucketed by `margin / horizon` doubling
    /// intervals `[1,2) … [16,∞)` (see
    /// [`record_forced`](MonitorMetrics::record_forced)).
    pub forced_margin_hist: [u64; SLACK_BUCKETS],
    /// All-time minimum remaining slack observed across every open
    /// deadline; `None` until a predictor has reported one.
    pub min_slack: Option<Rat>,
    /// Batches pushed through pool handles.
    pub batches: u64,
    /// Events contained in those batches.
    pub batched_events: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Per-stream lag, in registration order.
    pub streams: Vec<StreamLagSnapshot>,
}

impl MetricsSnapshot {
    /// Obligations still open (opened minus resolved either way).
    pub fn obligations_open(&self) -> u64 {
        self.obligations_opened
            .saturating_sub(self.obligations_discharged + self.obligations_violated)
    }

    /// Renders the snapshot as an aligned two-column table:
    ///
    /// ```text
    ///   events                 10000
    ///   obligations opened       312
    ///   ...
    ///   stream 0 lag               3   (of 5000 enqueued)
    /// ```
    pub fn render(&self) -> String {
        let mut rows: Vec<(String, String, String)> = vec![
            row("events", self.events),
            row("obligations opened", self.obligations_opened),
            row("obligations discharged", self.obligations_discharged),
            row("obligations violated", self.obligations_violated),
            row("obligations open", self.obligations_open()),
            row("max queue depth", self.max_queue_depth),
            row("dropped events", self.dropped_events),
            row("failed streams", self.failed_streams),
            row("warnings", self.warnings),
        ];
        if self.warnings > 0 {
            rows.push((
                "warning slack histogram".to_string(),
                self.warning_slack_hist
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("/"),
                "(slack/horizon quartiles, full-horizon last)".to_string(),
            ));
        }
        rows.push(row("forced windows", self.forced));
        if self.forced > 0 {
            rows.push((
                "forced margin histogram".to_string(),
                self.forced_margin_hist
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("/"),
                "(margin/horizon doublings from 1x)".to_string(),
            ));
        }
        if let Some(s) = self.min_slack {
            rows.push(("min slack seen".to_string(), s.to_string(), String::new()));
        }
        if self.batches > 0 {
            rows.push(row("batches", self.batches));
            rows.push(row("batched events", self.batched_events));
            rows.push(row("max batch", self.max_batch));
        }
        for s in &self.streams {
            rows.push((
                format!("stream {} lag", s.stream),
                s.lag.to_string(),
                format!("(of {} enqueued)", s.enqueued),
            ));
        }
        render_rows(&rows)
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

fn row(label: &str, value: u64) -> (String, String, String) {
    (label.to_string(), value.to_string(), String::new())
}

/// Aligned three-column rendering, after `tempo-core`'s `render` module:
/// left-padded label column, right-aligned value column, trailing note.
fn render_rows(rows: &[(String, String, String)]) -> String {
    let w0 = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    let w1 = rows.iter().map(|r| r.1.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, value, note) in rows {
        out.push_str(&format!("  {label:<w0$}  {value:>w1$}"));
        if !note.is_empty() {
            out.push_str(&format!("  {note}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MonitorMetrics::new();
        m.record_event();
        m.record_event();
        m.record_opened(3);
        m.record_discharged();
        m.record_violated();
        m.record_queue_depth(5);
        m.record_queue_depth(2);
        let s = m.snapshot();
        assert_eq!(s.events, 2);
        assert_eq!(s.obligations_opened, 3);
        assert_eq!(s.obligations_open(), 1);
        assert_eq!(s.max_queue_depth, 5);
    }

    #[test]
    fn stream_lag_tracks_in_flight() {
        let m = MonitorMetrics::new();
        let lag = m.register_stream(7);
        lag.record_enqueued();
        lag.record_enqueued();
        lag.record_drained();
        let s = m.snapshot();
        assert_eq!(
            s.streams,
            vec![StreamLagSnapshot {
                stream: 7,
                enqueued: 2,
                lag: 1
            }]
        );
    }

    #[test]
    fn warning_histogram_buckets_by_slack_ratio() {
        let m = MonitorMetrics::new();
        let h = Rat::from(8);
        m.record_warning(Rat::from(1), h); // 1/8 → bucket 0
        m.record_warning(Rat::from(3), h); // 3/8 → bucket 1
        m.record_warning(Rat::from(4), h); // 4/8 → bucket 2
        m.record_warning(Rat::from(7), h); // 7/8 → bucket 3
        m.record_warning(h, h); // full horizon → bucket 4
        m.record_warning(Rat::ZERO, Rat::ZERO); // horizon 0 → bucket 4
        let s = m.snapshot();
        assert_eq!(s.warnings, 6);
        assert_eq!(s.warning_slack_hist, [1, 1, 1, 1, 2]);
        assert!(s.render().contains("1/1/1/1/2"));
    }

    #[test]
    fn forced_histogram_buckets_by_margin_ratio() {
        let m = MonitorMetrics::new();
        let h = Rat::from(2);
        m.record_forced(Rat::from(2), h); // 1x → bucket 0
        m.record_forced(Rat::from(5), h); // 2.5x → bucket 1
        m.record_forced(Rat::from(9), h); // 4.5x → bucket 2
        m.record_forced(Rat::from(17), h); // 8.5x → bucket 3
        m.record_forced(Rat::from(64), h); // 32x → bucket 4
        m.record_forced(Rat::ZERO, Rat::ZERO); // defensive: horizon 0 → bucket 4
        let s = m.snapshot();
        assert_eq!(s.forced, 6);
        assert_eq!(s.forced_margin_hist, [1, 1, 1, 1, 2]);
        assert!(s.render().contains("forced windows"));
        assert!(s.render().contains("1/1/1/1/2"));
    }

    #[test]
    fn forced_counts_merge_from_shards() {
        let m = MonitorMetrics::new();
        m.record_forced(Rat::from(3), Rat::from(3)); // base, bucket 0
        let a = m.register_shard();
        a.record_forced(Rat::from(10), Rat::from(3)); // shard, bucket 1
        let s = m.snapshot();
        assert_eq!(s.forced, 2);
        assert_eq!(s.forced_margin_hist, [1, 1, 0, 0, 0]);
    }

    #[test]
    fn min_slack_keeps_the_low_water_mark() {
        let m = MonitorMetrics::new();
        assert_eq!(m.snapshot().min_slack, None);
        m.record_min_slack(Rat::from(5));
        m.record_min_slack(Rat::from(9));
        m.record_min_slack(Rat::from(2));
        assert_eq!(m.snapshot().min_slack, Some(Rat::from(2)));
        assert!(m.snapshot().render().contains("min slack seen"));
    }

    #[test]
    fn batches_accumulate_and_track_max() {
        let m = MonitorMetrics::new();
        m.record_batch(3);
        m.record_batch(10);
        m.record_batch(1);
        let s = m.snapshot();
        assert_eq!(s.batches, 3);
        assert_eq!(s.batched_events, 14);
        assert_eq!(s.max_batch, 10);
        let lag = m.register_stream(0);
        lag.record_enqueued_many(4);
        assert_eq!(lag.enqueued(), 4);
        assert_eq!(lag.lag(), 4);
        lag.record_drained_many(3);
        assert_eq!(lag.lag(), 1);
    }

    #[test]
    fn shards_merge_into_the_snapshot() {
        let m = MonitorMetrics::new();
        m.record_event();
        m.record_warning(Rat::from(2), Rat::from(2)); // base, bucket 4
        m.record_min_slack(Rat::from(5));
        let a = m.register_shard();
        let b = m.register_shard();
        a.record_event();
        a.record_opened(2);
        a.record_discharged();
        a.record_warning(Rat::from(1), Rat::from(8)); // bucket 0
        a.record_min_slack(Rat::from(3));
        b.record_event();
        b.record_violated();
        b.record_min_slack(Rat::from(7));
        let s = m.snapshot();
        assert_eq!(s.events, 3);
        assert_eq!(s.obligations_opened, 2);
        assert_eq!(s.obligations_discharged, 1);
        assert_eq!(s.obligations_violated, 1);
        assert_eq!(s.obligations_open(), 0);
        assert_eq!(s.warnings, 2);
        assert_eq!(s.warning_slack_hist, [1, 0, 0, 0, 1]);
        // Minimum slack is the minimum across base and every shard.
        assert_eq!(s.min_slack, Some(Rat::from(3)));
    }

    #[test]
    fn snapshot_into_refreshes_a_reused_buffer() {
        let m = MonitorMetrics::new();
        let shard = m.register_shard();
        let lag = m.register_stream(3);
        lag.record_enqueued_many(5);
        shard.record_event();
        let mut buf = MetricsSnapshot::default();
        m.snapshot_into(&mut buf);
        assert_eq!(buf.events, 1);
        assert_eq!(buf.streams.len(), 1);
        assert_eq!(buf.streams[0].lag, 5);
        // Stale contents are fully overwritten on the next refresh, and
        // the stream buffer does not grow duplicates.
        shard.record_event();
        lag.record_drained_many(5);
        m.snapshot_into(&mut buf);
        assert_eq!(buf.events, 2);
        assert_eq!(buf.streams.len(), 1);
        assert_eq!(buf.streams[0].lag, 0);
        assert_eq!(buf, m.snapshot());
    }

    #[test]
    fn render_is_aligned() {
        let m = MonitorMetrics::new();
        m.record_event();
        let text = m.snapshot().render();
        assert!(text.contains("events"));
        assert!(text.contains("max queue depth"));
        // Every line is indented like render.rs output.
        assert!(text.lines().all(|l| l.starts_with("  ")));
    }
}
