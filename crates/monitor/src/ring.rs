//! Bounded single-producer/single-consumer ring buffers — the pool's
//! lock-free ingestion transport.
//!
//! [`MonitorPool`](crate::MonitorPool) used to hand events to its
//! workers through a shared `Mutex<VecDeque>` guarded by two condvars;
//! at monitor speeds (≈ 40 ns/event) that handoff dominated the end to
//! end cost. This module replaces it with one bounded ring per
//! (stream, worker) pair:
//!
//! * **Power-of-two capacity**, indexed by monotonically increasing
//!   sequence numbers masked into the slot array, so wrap-around is a
//!   bitwise `&`.
//! * **Cache-line-padded atomic cursors** ([`CachePadded`]): `tail`
//!   (next sequence the producer publishes) and `head` (next sequence
//!   claimed for removal). The producer is the only writer of `tail`;
//!   `head` moves by compare-and-swap so the consumer's batched claim
//!   and the producer's [`evict_oldest`](Producer::evict_oldest) (the
//!   drop-oldest overload policy) can race safely. A claimed slot is
//!   vacated by the claimer moving the value out; the producer reuses a
//!   slot only once it observes the vacancy *in the slot itself*, so
//!   claims may complete out of order (eviction racing a batched drain)
//!   without any reuse hazard.
//! * **Batched publish and drain**: [`Producer::try_push_many`] fills a
//!   whole run of slots and publishes them with a *single* release
//!   store of `tail`; [`Consumer::pop_many`] claims a whole run with a
//!   single compare-and-swap. Producer and consumer touch each other's
//!   cache lines `O(events / batch)` times instead of per event.
//! * **Spin-then-park blocking**: a producer that needs room
//!   ([`Producer::wait_space`]) spins briefly, then publishes its
//!   [`Thread`] handle and parks; the consumer unparks it after every
//!   drain that frees slots. Parking uses a timeout as a backstop, but
//!   the wakeup protocol does not rely on it: flag stores and cursor
//!   loads are ordered by `SeqCst` fences on both sides, so either the
//!   producer observes the freed space or the consumer observes the
//!   waiting flag.
//!
//! The coordination protocol never blocks on a lock. Each slot is a
//! `Mutex<Option<T>>` that doubles as the vacancy marker: the producer
//! probes a candidate slot with `try_lock` and backs off if the
//! previous occupant's removal is still in flight, and a claimer's lock
//! is contended only by such a momentary probe. The cursor arithmetic
//! guarantees claimed sequence ranges never overlap, so the mutexes are
//! uncontended in steady state and exist to keep the crate
//! `#![forbid(unsafe_code)]`-clean.
//!
//! # Example
//!
//! ```
//! use tempo_monitor::ring;
//!
//! let (mut tx, mut rx) = ring::ring::<u32>(8);
//! assert_eq!(tx.try_push(1), Ok(1));
//! assert_eq!(tx.try_push(2), Ok(2));
//! let mut out = Vec::new();
//! assert_eq!(rx.pop_many(64, &mut out), 2);
//! assert_eq!(out, vec![1, 2]);
//! ```

use std::sync::atomic::{fence, AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};
use std::time::Duration;

/// Aligns (and thereby pads) a value to a 64-byte cache line, so two
/// `CachePadded` values never share a line and atomic traffic on one
/// does not invalidate the other — used for the ring cursors and the
/// per-stream lag counters.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T> {
    /// The padded value.
    pub value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }
}

/// Spins this many times re-checking for space before a producer parks.
const SPIN_LIMIT: u32 = 64;

/// Backstop timeout for producer parking. The `SeqCst`-fenced
/// flag/cursor protocol makes lost wakeups impossible; the timeout only
/// bounds the damage of a consumer that disappears entirely (e.g. a
/// worker that already shut down).
const PARK_TIMEOUT: Duration = Duration::from_millis(1);

struct Core<T> {
    /// `capacity - 1`; capacity is a power of two, so `seq & mask` is
    /// the slot index of sequence number `seq`.
    mask: usize,
    /// One mutex per slot, doubling as the vacancy marker (see the
    /// module docs): `Some` while a published value waits, `None` once
    /// its claimer moved it out.
    slots: Box<[Mutex<Option<T>>]>,
    /// Next sequence the producer publishes. Written only by the
    /// producer (release store after the slot writes); read by the
    /// consumer.
    tail: CachePadded<AtomicUsize>,
    /// Next sequence claimed for removal — advanced by the consumer's
    /// batched claim and by the producer's evict-oldest, both via CAS.
    head: CachePadded<AtomicUsize>,
    /// Set (with a `SeqCst` fence) by a producer about to park.
    producer_waiting: AtomicBool,
    /// The parked producer's thread handle, for the consumer to unpark.
    producer_thread: Mutex<Option<Thread>>,
}

impl<T> Core<T> {
    /// Moves the value out of claimed sequence `seq`'s slot and vacates
    /// it. The lock is contended only by a producer's momentary
    /// `try_lock` probe (which backs off), never held across blocking
    /// work, so this acquires in O(1).
    fn take_slot(&self, seq: usize) -> T {
        self.slots[seq & self.mask]
            .lock()
            .expect("ring slot mutex poisoned")
            .take()
            .expect("claimed ring slot holds no value")
    }

    /// Tries to move `value` into sequence `seq`'s slot. Backs off
    /// (returning the value) while the slot's previous occupant is
    /// still being moved out — the claim is published, the physical
    /// removal not yet complete.
    fn try_put_slot(&self, seq: usize, value: T) -> Result<(), T> {
        match self.slots[seq & self.mask].try_lock() {
            Ok(mut guard) if guard.is_none() => {
                *guard = Some(value);
                Ok(())
            }
            _ => Err(value),
        }
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

/// Creates a bounded SPSC ring of at least `capacity` slots (rounded up
/// to the next power of two, minimum 1) and returns its two endpoints.
///
/// The producer and consumer halves are each single-owner: they are
/// `Send` (movable to another thread) but deliberately not `Clone` —
/// one thread pushes, one thread pops, which is what makes the
/// wait-free cursor arithmetic sound.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(1).next_power_of_two();
    let core = Arc::new(Core {
        mask: cap - 1,
        slots: (0..cap).map(|_| Mutex::new(None)).collect(),
        tail: CachePadded::new(AtomicUsize::new(0)),
        head: CachePadded::new(AtomicUsize::new(0)),
        producer_waiting: AtomicBool::new(false),
        producer_thread: Mutex::new(None),
    });
    (
        Producer {
            core: Arc::clone(&core),
        },
        Consumer { core },
    )
}

/// The push side of a [`ring`]. Owned by exactly one thread at a time.
pub struct Producer<T> {
    core: Arc<Core<T>>,
}

impl<T> Producer<T> {
    /// The ring's slot count (the `capacity` passed to [`ring`], rounded
    /// up to a power of two).
    pub fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// Published entries not yet claimed by a pop or an eviction.
    pub fn len(&self) -> usize {
        self.core
            .tail
            .value
            .load(Ordering::Relaxed)
            .wrapping_sub(self.core.head.value.load(Ordering::Acquire))
    }

    /// `true` when every published entry has been claimed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unclaimed-entry slots still free right now.
    fn free(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Pushes one value if a slot is free. Returns the occupied depth
    /// after the push, or the rejected value — on a full ring, or
    /// (transiently) while the candidate slot's previous occupant is
    /// still being moved out by an in-flight claim.
    pub fn try_push(&mut self, value: T) -> Result<usize, T> {
        let head = self.core.head.value.load(Ordering::Acquire);
        let tail = self.core.tail.value.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) == self.capacity() {
            return Err(value);
        }
        let value = match self.core.try_put_slot(tail, value) {
            Ok(()) => {
                self.core
                    .tail
                    .value
                    .store(tail.wrapping_add(1), Ordering::Release);
                return Ok(tail.wrapping_add(1).wrapping_sub(head));
            }
            Err(v) => v,
        };
        Err(value)
    }

    /// Fills as many free slots from `items` as possible, then
    /// publishes them all with a single release store of `tail` — the
    /// batched-publish half of the transport. Values that do not fit
    /// stay in the iterator. Returns the occupied depth after the
    /// publish and the number of values accepted.
    ///
    /// Generic over the iterator, so callers can publish straight out
    /// of a decoder (e.g. `tempo-serve`'s wire frames) without
    /// collecting into an intermediate `Vec` first.
    pub fn try_push_many<I: Iterator<Item = T>>(&mut self, items: &mut I) -> (usize, usize) {
        let head = self.core.head.value.load(Ordering::Acquire);
        let tail = self.core.tail.value.load(Ordering::Relaxed);
        let room = self.capacity() - tail.wrapping_sub(head);
        let mut accepted = 0;
        while accepted < room {
            // Probe the slot *before* consuming an item, so a back-off
            // (previous occupant's removal still in flight) leaves the
            // iterator untouched.
            let Ok(mut guard) =
                self.core.slots[tail.wrapping_add(accepted) & self.core.mask].try_lock()
            else {
                break;
            };
            if guard.is_some() {
                break;
            }
            match items.next() {
                Some(v) => {
                    *guard = Some(v);
                    accepted += 1;
                }
                None => break,
            }
        }
        if accepted > 0 {
            self.core
                .tail
                .value
                .store(tail.wrapping_add(accepted), Ordering::Release);
        }
        (tail.wrapping_add(accepted).wrapping_sub(head), accepted)
    }

    /// Pushes one value, spinning then parking until a slot is free (the
    /// `Block` overload policy). Returns the occupied depth after the
    /// push.
    ///
    /// Blocks indefinitely if the consumer never drains.
    pub fn push_blocking(&mut self, mut value: T) -> usize {
        loop {
            match self.try_push(value) {
                Ok(depth) => return depth,
                Err(v) => {
                    value = v;
                    self.wait_space();
                }
            }
        }
    }

    /// Spins, then parks, until at least one slot is free. The consumer
    /// unparks the producer after every draining pop; a `SeqCst` fence
    /// on each side of the flag/cursor exchange rules out lost wakeups
    /// (see the module docs).
    pub fn wait_space(&mut self) {
        self.wait_space_inner(None);
    }

    /// [`wait_space`](Producer::wait_space), abandoned when `stop`
    /// becomes `true`. Returns `true` when a slot is free, `false` when
    /// the wait was called off with the ring still full — the escape
    /// hatch a pool producer needs when its worker is shutting down and
    /// will never drain again.
    pub fn wait_space_or(&mut self, stop: &AtomicBool) -> bool {
        self.wait_space_inner(Some(stop))
    }

    fn wait_space_inner(&mut self, stop: Option<&AtomicBool>) -> bool {
        let mut spins = 0u32;
        loop {
            if self.free() > 0 {
                return true;
            }
            if let Some(stop) = stop {
                // `SeqCst`-fenced like the park protocol below: pairs
                // with the store-then-wake in `MonitorPool::shutdown`,
                // so either this load sees the stop flag or the stopper
                // sees the waiting flag and unparks us into a re-check.
                if stop.load(Ordering::SeqCst) {
                    return false;
                }
            }
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
                continue;
            }
            // Slow path: advertise, fence, re-check, park.
            *self
                .core
                .producer_thread
                .lock()
                .expect("ring parker mutex poisoned") = Some(thread::current());
            self.core.producer_waiting.store(true, Ordering::Release);
            fence(Ordering::SeqCst);
            if self.free() > 0 {
                self.core.producer_waiting.store(false, Ordering::Relaxed);
                return true;
            }
            thread::park_timeout(PARK_TIMEOUT);
            self.core.producer_waiting.store(false, Ordering::Relaxed);
            spins = 0;
        }
    }

    /// Claims and removes the oldest unclaimed entry — the producer half
    /// of the `DropOldest` overload policy. Returns `None` when there is
    /// nothing evictable: the ring is empty, or every published entry is
    /// already claimed by an in-flight consumer pop (a bounded window;
    /// retry after a spin).
    pub fn evict_oldest(&mut self) -> Option<T> {
        loop {
            let head = self.core.head.value.load(Ordering::Relaxed);
            let tail = self.core.tail.value.load(Ordering::Relaxed);
            if tail == head {
                return None;
            }
            if self
                .core
                .head
                .value
                .compare_exchange(
                    head,
                    head.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                return Some(self.core.take_slot(head));
            }
            // Lost the claim race to the consumer; retry on fresh cursors.
        }
    }
}

/// The pop side of a [`ring`]. Owned by exactly one thread at a time.
pub struct Consumer<T> {
    core: Arc<Core<T>>,
}

impl<T> Consumer<T> {
    /// The ring's slot count.
    pub fn capacity(&self) -> usize {
        self.core.capacity()
    }

    /// Published entries not yet claimed.
    pub fn len(&self) -> usize {
        self.core
            .tail
            .value
            .load(Ordering::Acquire)
            .wrapping_sub(self.core.head.value.load(Ordering::Relaxed))
    }

    /// `true` when every published entry has been claimed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Claims up to `max` published entries with one compare-and-swap
    /// and moves them into `out` in FIFO order — the batched-drain half
    /// of the transport. Returns the number of entries moved (0 when
    /// the ring is empty); never blocks on a full ring. Unparks a
    /// producer waiting for space.
    pub fn pop_many(&mut self, max: usize, out: &mut Vec<T>) -> usize {
        loop {
            // Load `head` before `tail`: an evicting producer advances
            // `head` concurrently, and a stale `tail` snapshot taken
            // *before* the head load could otherwise sit behind it,
            // underflowing `avail` into claims of unpublished slots.
            // In this order `tail ≥ head-at-load` always holds, and the
            // CAS below rejects the claim if `head` moved meanwhile.
            let head = self.core.head.value.load(Ordering::Relaxed);
            let tail = self.core.tail.value.load(Ordering::Acquire);
            let avail = tail.wrapping_sub(head);
            if avail == 0 {
                return 0;
            }
            let n = avail.min(max);
            if self
                .core
                .head
                .value
                .compare_exchange(
                    head,
                    head.wrapping_add(n),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                out.reserve(n);
                for k in 0..n {
                    out.push(self.core.take_slot(head.wrapping_add(k)));
                }
                self.wake_producer();
                return n;
            }
            // Lost the claim race to an evicting producer; retry.
        }
    }

    /// Unparks the producer if it advertised itself as waiting for
    /// space. Fenced so the producer either sees the freed slots or we
    /// see its waiting flag.
    fn wake_producer(&self) {
        fence(Ordering::SeqCst);
        if self.core.producer_waiting.load(Ordering::Relaxed) {
            if let Some(th) = self
                .core
                .producer_thread
                .lock()
                .expect("ring parker mutex poisoned")
                .take()
            {
                th.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(rx: &mut Consumer<u64>, max: usize) -> Vec<u64> {
        let mut out = Vec::new();
        rx.pop_many(max, &mut out);
        out
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u64>(0);
        assert_eq!(tx.capacity(), 1);
        let (tx, _rx) = ring::<u64>(3);
        assert_eq!(tx.capacity(), 4);
        let (tx, _rx) = ring::<u64>(1024);
        assert_eq!(tx.capacity(), 1024);
    }

    #[test]
    fn fifo_across_wrap_around() {
        // Capacity 4: the slot indices wrap every 4 sequence numbers;
        // order must survive many wraps.
        let (mut tx, mut rx) = ring::<u64>(4);
        let mut next = 0u64;
        let mut expect = 0u64;
        for round in 0..100u64 {
            let n = (round % 4) + 1;
            for _ in 0..n {
                tx.try_push(next).unwrap();
                next += 1;
            }
            let got = drain(&mut rx, usize::MAX);
            assert_eq!(got.len() as u64, n);
            for v in got {
                assert_eq!(v, expect, "FIFO order across wraps");
                expect += 1;
            }
        }
        assert_eq!(expect, next);
    }

    #[test]
    fn try_push_rejects_at_capacity_boundary() {
        let (mut tx, mut rx) = ring::<u64>(2);
        assert_eq!(tx.try_push(1), Ok(1));
        assert_eq!(tx.try_push(2), Ok(2));
        assert_eq!(tx.try_push(3), Err(3));
        assert_eq!(drain(&mut rx, 1), vec![1]);
        // One slot vacated: exactly one more fits.
        assert_eq!(tx.try_push(3), Ok(2));
        assert_eq!(tx.try_push(4), Err(4));
        assert_eq!(drain(&mut rx, usize::MAX), vec![2, 3]);
    }

    #[test]
    fn batched_publish_accepts_exactly_the_room() {
        let (mut tx, mut rx) = ring::<u64>(4);
        tx.try_push(0).unwrap();
        let mut items = vec![1, 2, 3, 4, 5].into_iter();
        let (depth, accepted) = tx.try_push_many(&mut items);
        assert_eq!((depth, accepted), (4, 3));
        // The two rejects stay in the iterator for the caller's policy.
        assert_eq!(items.len(), 2);
        assert_eq!(drain(&mut rx, usize::MAX), vec![0, 1, 2, 3]);
    }

    #[test]
    fn evict_oldest_steals_in_fifo_order() {
        let (mut tx, mut rx) = ring::<u64>(4);
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        // Full: evict makes room for exactly one new push, oldest first.
        assert_eq!(tx.evict_oldest(), Some(0));
        assert_eq!(tx.try_push(4), Ok(4));
        assert_eq!(tx.evict_oldest(), Some(1));
        assert_eq!(tx.try_push(5), Ok(4));
        assert_eq!(drain(&mut rx, usize::MAX), vec![2, 3, 4, 5]);
        assert!(rx.is_empty());
        assert_eq!(tx.evict_oldest(), None);
    }

    #[test]
    fn len_views_agree() {
        let (mut tx, mut rx) = ring::<u64>(8);
        assert!(tx.is_empty() && rx.is_empty());
        for v in 0..5 {
            tx.try_push(v).unwrap();
        }
        assert_eq!(tx.len(), 5);
        assert_eq!(rx.len(), 5);
        drain(&mut rx, 2);
        assert_eq!(rx.len(), 3);
        assert_eq!(tx.len(), 3);
    }

    #[test]
    fn blocking_push_parks_until_the_consumer_drains() {
        let (mut tx, mut rx) = ring::<u64>(2);
        tx.try_push(0).unwrap();
        tx.try_push(1).unwrap();
        let consumer = thread::spawn(move || {
            // Let the producer reach the parked state, then drain.
            thread::sleep(Duration::from_millis(20));
            let mut out = Vec::new();
            while out.len() < 4 {
                rx.pop_many(usize::MAX, &mut out);
            }
            out
        });
        // Full ring: these park until the consumer frees slots.
        tx.push_blocking(2);
        tx.push_blocking(3);
        assert_eq!(consumer.join().unwrap(), vec![0, 1, 2, 3]);
    }
}
