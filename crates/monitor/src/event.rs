//! Owned stream events, as carried across pool queues.

use tempo_math::Rat;

/// One owned event of a timed stream: the action, its absolute time, and
/// the state reached. The owned counterpart of the borrowed triple taken
/// by [`Monitor::observe`](crate::Monitor::observe), suitable for
/// sending over channels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event<S, A> {
    /// The action performed.
    pub action: A,
    /// Absolute time of the event (nondecreasing along a stream).
    pub time: Rat,
    /// The post-state reached by the action.
    pub state: S,
}

impl<S, A> Event<S, A> {
    /// Bundles an event.
    pub fn new(action: A, time: Rat, state: S) -> Event<S, A> {
        Event {
            action,
            time,
            state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundles_fields() {
        let e = Event::new("fire", Rat::from(3), 7u8);
        assert_eq!(e.action, "fire");
        assert_eq!(e.time, Rat::from(3));
        assert_eq!(e.state, 7);
    }
}
