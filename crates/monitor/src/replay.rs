//! Replaying recorded [`TimedSequence`]s through the online monitor.
//!
//! The bridge between the repository's offline world (simulation
//! ensembles, counterexample traces) and the streaming monitor: any
//! recorded sequence can be fed event-by-event through a [`Monitor`],
//! which reports exactly the violations the offline checker finds —
//! both sides step the same compiled condition engine
//! ([`tempo_core::engine`], Definition 3.1), so the agreement holds by
//! construction and is additionally exercised by the repository's
//! property tests.

use tempo_core::{SatisfactionMode, TimedSequence, TimingCondition, Violation};
use tempo_math::Rat;

use crate::monitor::Monitor;
use crate::predict::{Forced, Warning};
use crate::verdict::Verdict;

/// Feeds every event of `seq` through a fresh monitor for `conds` and
/// returns all violations, closing the stream in `mode`.
///
/// Agrees with collecting [`tempo_core::violations`] over each
/// condition: both fold the same engine, reporting violations in event
/// (discovery) order.
pub fn replay<S, A>(
    seq: &TimedSequence<S, A>,
    conds: &[TimingCondition<S, A>],
    mode: SatisfactionMode,
) -> Vec<Violation>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut mon = Monitor::new(conds, seq.first_state());
    for (_, a, t, post) in seq.step_triples() {
        mon.observe(a, t, post);
    }
    mon.finish(mode)
}

/// Replays `seq` through a monitor with an early-warning predictor at
/// the given `horizon` and returns both the violations and the warnings
/// that preceded them (see [`Monitor::with_predictor`]).
///
/// The violation list is identical to [`replay`]'s — prediction never
/// changes verdicts, it only adds warnings.
pub fn replay_predictive<S, A>(
    seq: &TimedSequence<S, A>,
    conds: &[TimingCondition<S, A>],
    mode: SatisfactionMode,
    horizon: Rat,
) -> (Vec<Violation>, Vec<Warning>)
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut mon = Monitor::new(conds, seq.first_state()).with_predictor(horizon);
    for (_, a, t, post) in seq.step_triples() {
        mon.observe(a, t, post);
    }
    mon.finish_with_warnings(mode)
}

/// Like [`replay_predictive`], but also returns the forced windows —
/// the `Ft(U)` side of prediction: one [`Forced`] per trigger that
/// opened a lower-bound window at least `horizon` wide (see
/// [`Monitor::with_predictor`]).
pub fn replay_predictive_full<S, A>(
    seq: &TimedSequence<S, A>,
    conds: &[TimingCondition<S, A>],
    mode: SatisfactionMode,
    horizon: Rat,
) -> (Vec<Violation>, Vec<Warning>, Vec<Forced>)
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut mon = Monitor::new(conds, seq.first_state()).with_predictor(horizon);
    for (_, a, t, post) in seq.step_triples() {
        mon.observe(a, t, post);
    }
    mon.finish_full(mode)
}

/// Replays `seq` and returns the per-event verdicts (one per event, plus
/// one final verdict for the finish), for callers that care *when* a
/// violation was detected rather than just whether.
pub fn replay_verdicts<S, A>(
    seq: &TimedSequence<S, A>,
    conds: &[TimingCondition<S, A>],
    mode: SatisfactionMode,
) -> Vec<Verdict>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    let mut mon = Monitor::new(conds, seq.first_state());
    let mut out = Vec::with_capacity(seq.len() + 1);
    for (_, a, t, post) in seq.step_triples() {
        out.push(mon.observe(a, t, post));
    }
    let already = mon.violations().len();
    let vs = mon.finish(mode);
    out.push(
        vs.into_iter()
            .nth(already)
            .map_or(Verdict::Ok, Verdict::from_violation),
    );
    out
}

/// Replay form of [`tempo_core::semi_satisfies`]: `Ok` iff the stream
/// semi-satisfies every condition.
///
/// # Errors
///
/// Returns the first violation in event order, exactly as
/// [`tempo_core::semi_satisfies`] reports it.
pub fn replay_semi_satisfies<S, A>(
    seq: &TimedSequence<S, A>,
    conds: &[TimingCondition<S, A>],
) -> Result<(), Violation>
where
    S: Clone + std::fmt::Debug,
    A: Clone + Eq + std::hash::Hash + std::fmt::Debug,
{
    match replay(seq, conds, SatisfactionMode::Prefix)
        .into_iter()
        .next()
    {
        None => Ok(()),
        Some(v) => Err(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_math::{Interval, Rat};

    fn cond(lo: i64, hi: i64) -> TimingCondition<u8, &'static str> {
        TimingCondition::new("C", Interval::closed(Rat::from(lo), Rat::from(hi)).unwrap())
            .triggered_at_start(|s| *s == 0)
            .on_actions(|a| *a == "fire")
    }

    fn seq(events: &[(&'static str, i64, u8)]) -> TimedSequence<u8, &'static str> {
        let mut s = TimedSequence::new(0);
        for (a, t, post) in events {
            s.push(*a, Rat::from(*t), *post);
        }
        s
    }

    #[test]
    fn replay_matches_offline_on_ok_and_violating_traces() {
        let c = cond(2, 4);
        let ok = seq(&[("noise", 1, 1), ("fire", 3, 2)]);
        assert!(replay(&ok, std::slice::from_ref(&c), SatisfactionMode::Complete).is_empty());
        assert!(replay_semi_satisfies(&ok, std::slice::from_ref(&c)).is_ok());

        let early = seq(&[("fire", 1, 1)]);
        let online = replay(&early, std::slice::from_ref(&c), SatisfactionMode::Prefix);
        let offline = tempo_core::violations(&early, &c, SatisfactionMode::Prefix);
        assert_eq!(online, offline);
        assert!(replay_semi_satisfies(&early, &[c]).is_err());
    }

    #[test]
    fn predictive_replay_adds_warnings_without_changing_violations() {
        let c = cond(0, 4);
        let late = seq(&[("noise", 3, 1), ("noise", 6, 1)]);
        let plain = replay(&late, std::slice::from_ref(&c), SatisfactionMode::Prefix);
        let (violations, warnings) = replay_predictive(
            &late,
            std::slice::from_ref(&c),
            SatisfactionMode::Prefix,
            Rat::from(2),
        );
        assert_eq!(plain, violations);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].deadline, Rat::from(4));
        // Violation-free trace at horizon 0: silent.
        let ok = seq(&[("fire", 2, 1)]);
        let (violations, warnings) =
            replay_predictive(&ok, &[c], SatisfactionMode::Complete, Rat::ZERO);
        assert!(violations.is_empty());
        assert!(warnings.is_empty());
    }

    #[test]
    fn full_replay_reports_forced_windows() {
        let guarded: TimingCondition<u8, &'static str> =
            TimingCondition::new("G", Interval::closed(Rat::from(10), Rat::from(20)).unwrap())
                .triggered_by_step(|_, a, _| *a == "go")
                .on_actions(|a| *a == "fire");
        let trace = seq(&[("go", 2, 1), ("fire", 14, 1)]);
        let (violations, warnings, forced) = replay_predictive_full(
            &trace,
            std::slice::from_ref(&guarded),
            SatisfactionMode::Complete,
            Rat::from(3),
        );
        assert!(violations.is_empty());
        assert!(warnings.is_empty());
        assert_eq!(forced.len(), 1);
        assert_eq!(forced[0].earliest, Rat::from(12));
        assert_eq!(forced[0].margin, Rat::from(10));
        // Horizon 0 keeps the forced side silent too.
        let (_, _, forced) =
            replay_predictive_full(&trace, &[guarded], SatisfactionMode::Complete, Rat::ZERO);
        assert!(forced.is_empty());
    }

    #[test]
    fn verdicts_locate_the_violation() {
        let c = cond(0, 4);
        let late = seq(&[("noise", 3, 1), ("noise", 5, 1)]);
        let verdicts = replay_verdicts(&late, std::slice::from_ref(&c), SatisfactionMode::Prefix);
        assert_eq!(verdicts.len(), 3); // two events + finish
        assert!(verdicts[0].is_ok());
        assert!(matches!(verdicts[1], Verdict::UpperBoundViolation(_)));
        // In Complete mode an unserved pending deadline surfaces at finish.
        let pending = seq(&[("noise", 3, 1)]);
        let verdicts = replay_verdicts(&pending, &[c], SatisfactionMode::Complete);
        assert!(verdicts[0].is_ok());
        assert!(matches!(verdicts[1], Verdict::UpperBoundViolation(_)));
    }
}
