//! The incremental semi-satisfaction monitor.

use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

use tempo_core::engine::{
    BackendChoice, CompiledConditionSet, EngineBackend, EngineEvent, EngineImpl, EngineState,
    Obligation,
};
use tempo_core::{SatisfactionMode, TimingCondition, Violation};
use tempo_math::Rat;

use crate::metrics::{MetricsRef, MetricsShard, MonitorMetrics};
use crate::predict::{Forced, Warning};
use crate::verdict::Verdict;

/// An online monitor for a set of timing conditions over one event
/// stream — the incremental form of Definition 3.1 (semi-satisfaction).
///
/// The monitor is a thin wrapper around the compiled condition engine
/// ([`tempo_core::engine`]): it holds one
/// [`CompiledConditionSet`] (shareable across streams) and one
/// [`EngineState`], classifies each incoming event once, steps the
/// engine, and derives verdicts, metrics, and predictor warnings from
/// the engine's event log. The offline checker
/// ([`tempo_core::semi_satisfies`]) folds the *same* engine over a
/// recorded sequence, so online/offline agreement holds by construction.
///
/// Each event costs `O(conditions + open obligations)`, independent of
/// the stream length: after any finite prefix, the set of violations
/// reported so far (plus [`finish`] for [`SatisfactionMode::Complete`])
/// equals the set reported by [`tempo_core::violations`] on the
/// corresponding [`TimedSequence`].
///
/// # Example
///
/// ```
/// use tempo_core::TimingCondition;
/// use tempo_math::{Interval, Rat};
/// use tempo_monitor::{Monitor, Verdict};
///
/// let cond: TimingCondition<u32, &str> =
///     TimingCondition::new("G", Interval::closed(Rat::from(2), Rat::from(5)).unwrap())
///         .triggered_at_start(|_| true)
///         .on_actions(|a| *a == "GRANT");
/// let mut mon = Monitor::new(&[cond], &0);
/// assert_eq!(mon.observe(&"TICK", Rat::from(1), &1), Verdict::Ok);
/// assert_eq!(mon.observe(&"GRANT", Rat::from(3), &2), Verdict::Ok);
/// assert!(mon.is_ok());
/// ```
///
/// [`finish`]: Monitor::finish
/// [`TimedSequence`]: tempo_core::TimedSequence
pub struct Monitor<S, A> {
    /// The compiled conditions — shared, so a pool of monitors over the
    /// same condition set compiles it exactly once.
    set: Arc<CompiledConditionSet<S, A>>,
    /// The engine's obligation state for this stream, on whichever
    /// backend the compiled set selected (integer ticks when every
    /// bound fits the tick domain, exact `Rat`s otherwise).
    engine: EngineImpl,
    /// Post-state of the last event (initially the start state); the
    /// `pre` argument of `T_step` triggers.
    last_state: S,
    violations: Vec<Violation>,
    warnings: Vec<Warning>,
    forced: Vec<Forced>,
    /// The prediction horizon the engine was armed with (`None`: no
    /// prediction). The engine itself tracks the warning points; the
    /// monitor keeps the horizon to stamp it into report payloads.
    horizon: Option<Rat>,
    /// The backend choice this monitor was built with, re-applied when
    /// the engine state is re-adopted (predictor attach, hot swap).
    choice: BackendChoice,
    /// Hot-counter sink: the shared base metrics for standalone
    /// monitors, or one pool worker's private shard.
    metrics: Option<MetricsRef>,
}

/// What [`Monitor::swap_compiled`] did with the open obligations.
#[derive(Clone, Debug)]
pub struct SwapReport {
    /// Obligations carried forward onto preserved conditions.
    pub carried: usize,
    /// Obligations closed administratively because their condition does
    /// not exist in the new revision, tagged with the old condition's
    /// name.
    pub dropped: Vec<(String, Obligation)>,
}

impl<S, A> fmt::Debug for Monitor<S, A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Monitor")
            .field("conditions", &self.set.len())
            .field("events_seen", &self.engine.events_seen())
            .field("open_obligations", &self.engine.open_obligations())
            .field("violations", &self.violations.len())
            .field("warnings", &self.warnings.len())
            .field("forced", &self.forced.len())
            .finish()
    }
}

impl<S: Clone, A: Clone + Eq + Hash> Monitor<S, A> {
    /// Compiles `conds` into a monitor, opening the start-state
    /// obligations (trigger index 0 at time 0) for every condition whose
    /// `T_start` contains `start`.
    pub fn new(conds: &[TimingCondition<S, A>], start: &S) -> Monitor<S, A>
    where
        A: fmt::Debug,
    {
        Monitor::from_compiled(Arc::new(CompiledConditionSet::new(conds)), start)
    }

    /// A monitor over an already-compiled (and possibly shared) condition
    /// set: many concurrent streams can hold the same
    /// `Arc<CompiledConditionSet>` and pay the compilation exactly once —
    /// this is how [`MonitorPool`](crate::MonitorPool) workers build
    /// their per-stream monitors.
    pub fn from_compiled(set: Arc<CompiledConditionSet<S, A>>, start: &S) -> Monitor<S, A> {
        Monitor::from_compiled_with(set, start, BackendChoice::default())
    }

    /// [`from_compiled`](Monitor::from_compiled) with an explicit engine
    /// [`BackendChoice`]: [`BackendChoice::Auto`] (the default) runs the
    /// monomorphized integer-time backend whenever the compiled set's
    /// bounds fit its tick domain; [`BackendChoice::Exact`] pins exact
    /// `Rat` arithmetic — the differential-oracle configuration.
    /// Verdicts are identical either way.
    pub fn from_compiled_with(
        set: Arc<CompiledConditionSet<S, A>>,
        start: &S,
        backend: BackendChoice,
    ) -> Monitor<S, A> {
        let mut engine = set.start_engine_with(start, backend);
        // No metrics yet: nobody consumes obligation lifecycle events,
        // so keep them out of the per-event hot path. `with_metrics`
        // turns the log back on.
        engine.set_log_lifecycle(false);
        Monitor {
            set,
            engine,
            last_state: start.clone(),
            violations: Vec::new(),
            warnings: Vec::new(),
            forced: Vec::new(),
            horizon: None,
            choice: backend,
            metrics: None,
        }
    }

    /// Rebuilds a monitor from a previously snapshotted [`EngineState`]
    /// (see [`engine_state`](Monitor::engine_state)), continuing the
    /// stream exactly where the snapshot left off: the restored monitor
    /// emits the same verdicts on the remaining suffix as the original
    /// would have. With the `serde` feature enabled on `tempo-core`, the
    /// state itself can be serialized, persisted, and restored across
    /// process restarts (the ROADMAP's long-lived streams item).
    ///
    /// `last_state` must be the post-state of the last event the
    /// snapshotted monitor observed (the snapshot is pure obligation
    /// state and deliberately holds no monitored-state data). Pass
    /// `horizon` to re-arm prediction: the engine recomputes every open
    /// deadline's warning point from the snapshot, and obligations
    /// whose warning point had already passed at snapshot time are
    /// marked warned, so no warning is emitted twice across the
    /// snapshot boundary. (Forced windows are reported at the event
    /// that opens them, which the snapshot is strictly after — nothing
    /// is re-reported either.)
    ///
    /// The violation, warning, and forced lists start empty: they cover
    /// the suffix. ([`Monitor::resume_compiled`] is the shared-set
    /// variant.)
    ///
    /// # Panics
    ///
    /// Panics if `state` tracks a different number of conditions than
    /// `conds`, or if `horizon` is negative.
    pub fn resume(
        conds: &[TimingCondition<S, A>],
        state: EngineState,
        last_state: &S,
        horizon: Option<Rat>,
    ) -> Monitor<S, A>
    where
        A: fmt::Debug,
    {
        Monitor::resume_compiled(
            Arc::new(CompiledConditionSet::new(conds)),
            state,
            last_state,
            horizon,
        )
    }

    /// [`Monitor::resume`] over an already-compiled condition set.
    ///
    /// # Panics
    ///
    /// Panics if `state` tracks a different number of conditions than
    /// `set`.
    pub fn resume_compiled(
        set: Arc<CompiledConditionSet<S, A>>,
        state: EngineState,
        last_state: &S,
        horizon: Option<Rat>,
    ) -> Monitor<S, A> {
        assert_eq!(
            set.len(),
            state.conditions(),
            "snapshot was taken over a different condition set"
        );
        if let Some(h) = horizon {
            assert!(!h.is_negative(), "the warning horizon must be nonnegative");
        }
        // Adopt the snapshot onto the automatically selected backend:
        // integer ticks when the set is int-capable and every open
        // obligation (and the horizon) converts exactly, exact `Rat`s
        // otherwise — so a snapshot round-trips across backends. The
        // predictive adoption re-arms warning points from the compiled
        // bounds, silently marking already-passed ones warned.
        let mut engine = set.adopt_state_predictive(state, BackendChoice::default(), horizon);
        // As in `from_compiled`: only log obligation lifecycle events
        // while someone (metrics) consumes them — prediction is native
        // to the engine and needs no lifecycle log.
        engine.set_log_lifecycle(false);
        Monitor {
            set,
            engine,
            last_state: last_state.clone(),
            violations: Vec::new(),
            warnings: Vec::new(),
            forced: Vec::new(),
            horizon,
            choice: BackendChoice::default(),
            metrics: None,
        }
    }

    /// Hot-swaps this monitor onto a new compiled condition set without
    /// losing its place in the stream — the per-stream half of spec hot
    /// reload ([`MonitorPool::reload`](crate::MonitorPool::reload) is
    /// the pool-level driver).
    ///
    /// `map[ci]` names the index in `new` of the condition currently at
    /// index `ci` (hot reload matches conditions across revisions *by
    /// name*), or `None` if the condition was dropped. Open obligations
    /// of preserved conditions carry forward with their absolute
    /// deadlines unchanged — the new bounds govern triggers that fire
    /// after the swap, not history — while obligations of dropped
    /// conditions are closed administratively and returned in the
    /// [`SwapReport`] (and counted as discharged in the metrics, so
    /// `opened = discharged + violated + open` keeps holding). An armed
    /// prediction horizon survives the swap: warning points of carried
    /// obligations travel with them verbatim (they were fixed by the
    /// *old* bounds, like the deadlines themselves), so already-warned
    /// obligations are not re-warned. Recorded violations, warnings,
    /// and forced windows stay: they are stream history, not spec
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `map` does not have exactly one entry per current
    /// condition, or maps outside `new`.
    pub fn swap_compiled(
        &mut self,
        new: Arc<CompiledConditionSet<S, A>>,
        map: &[Option<usize>],
    ) -> SwapReport {
        assert_eq!(
            map.len(),
            self.set.len(),
            "swap map must cover every current condition"
        );
        // Remapping works in the exact domain (the snapshot form); the
        // remapped state is then adopted back onto whichever backend the
        // *new* set selects — both conversions are lossless. The remap
        // carries the horizon and each obligation's warning state
        // verbatim, so prediction continues seamlessly: no re-arm, no
        // re-warn.
        let (remapped, dropped) = std::mem::take(&mut self.engine)
            .into_exact()
            .remap(map, new.len());
        self.engine = new.adopt_state(remapped, self.choice);
        self.engine.set_log_lifecycle(self.metrics.is_some());
        if let Some(m) = &self.metrics {
            for _ in &dropped {
                m.record_discharged();
            }
        }
        let carried = self.engine.open_obligations();
        let dropped = dropped
            .into_iter()
            .map(|(ci, ob)| (self.set.name(ci).to_string(), ob))
            .collect();
        self.set = new;
        SwapReport { carried, dropped }
    }

    /// Attaches shared metrics counters; every subsequent event and
    /// obligation transition is recorded there. Obligations already
    /// opened by the start-state trigger are counted retroactively, so
    /// `opened = discharged + violated + open` holds at all times.
    pub fn with_metrics(self, metrics: Arc<MonitorMetrics>) -> Monitor<S, A> {
        self.with_metrics_ref(MetricsRef::Base(metrics))
    }

    /// [`with_metrics`](Monitor::with_metrics), but recording the hot
    /// counters into one pool worker's private [`MetricsShard`] instead
    /// of the shared base struct — the shard is merged back at snapshot
    /// time, so the observable totals are identical.
    pub(crate) fn with_metrics_shard(self, shard: Arc<MetricsShard>) -> Monitor<S, A> {
        self.with_metrics_ref(MetricsRef::Shard(shard))
    }

    fn with_metrics_ref(mut self, metrics: MetricsRef) -> Monitor<S, A> {
        metrics.record_opened(self.engine.open_obligations() as u64);
        self.metrics = Some(metrics);
        // The metrics counters consume obligation lifecycle events.
        self.engine.set_log_lifecycle(true);
        self
    }

    /// Arms engine-native prediction with the given horizon: from now
    /// on the engine tracks every open deadline's warning point
    /// (`Lt(U)` — a [`Verdict::Warning`] the first time the stream's
    /// clock passes strictly beyond `deadline − horizon` with the
    /// obligation unresolved) *and* every qualifying lower window
    /// (`Ft(U)` — a [`Verdict::Forced`] at the trigger whose window is
    /// at least `horizon` wide; see the paper's Section 3.1 for the
    /// symmetric `time(A, U)` construction both are read from). Both
    /// backends predict natively; quiescent events stay on the integer
    /// backend's watermark fast path.
    ///
    /// Deadline obligations already opened by the start-state trigger
    /// are armed retroactively. (Start-state lower windows predate the
    /// first observation, so they surface through
    /// [`earliest_legal`](Monitor::earliest_legal) rather than as a
    /// verdict.)
    ///
    /// # Panics
    ///
    /// Panics if events have already been observed (attach the predictor
    /// right after [`Monitor::new`]) or if `horizon` is negative.
    ///
    /// # Example
    ///
    /// ```
    /// use tempo_core::TimingCondition;
    /// use tempo_math::{Interval, Rat};
    /// use tempo_monitor::{Monitor, Verdict};
    ///
    /// // A deadline of 10 with a warning horizon of 3.
    /// let cond: TimingCondition<u32, &str> =
    ///     TimingCondition::new("G", Interval::closed(Rat::ZERO, Rat::from(10)).unwrap())
    ///         .triggered_at_start(|_| true)
    ///         .on_actions(|a| *a == "GRANT");
    /// let mut mon = Monitor::new(&[cond], &0).with_predictor(Rat::from(3));
    /// // t = 5: slack 5 > horizon, all quiet.
    /// assert_eq!(mon.observe(&"TICK", Rat::from(5), &1), Verdict::Ok);
    /// // t = 8 passes the warning point 10 − 3 = 7: early warning.
    /// let v = mon.observe(&"TICK", Rat::from(8), &1);
    /// let w = v.warning().expect("inside the horizon");
    /// assert_eq!(w.slack, Rat::from(3));
    /// assert!(v.is_ok(), "a warning is a prediction, not a violation");
    /// // The GRANT still makes it: no violation was ever witnessed.
    /// assert_eq!(mon.observe(&"GRANT", Rat::from(9), &0), Verdict::Ok);
    /// assert!(mon.is_ok());
    /// assert_eq!(mon.warnings().len(), 1);
    /// ```
    pub fn with_predictor(mut self, horizon: Rat) -> Monitor<S, A> {
        assert_eq!(
            self.engine.events_seen(),
            0,
            "attach the predictor before observing events"
        );
        assert!(
            !horizon.is_negative(),
            "the warning horizon must be nonnegative"
        );
        // Re-adopt the (still pristine) state predictively: the engine
        // computes warning points for the start-state deadlines and
        // carries the horizon from here on. Prediction is native — no
        // lifecycle logging needed; metrics alone decide that.
        let snapshot = self.engine.snapshot();
        self.engine = self
            .set
            .adopt_state_predictive(snapshot, self.choice, Some(horizon));
        self.engine.set_log_lifecycle(self.metrics.is_some());
        self.horizon = Some(horizon);
        self
    }

    /// Consumes one event: the action, its (nondecreasing) absolute time,
    /// and the post-state. Returns [`Verdict::Ok`] or the event's first
    /// violation; *all* violations are appended to [`violations`].
    ///
    /// One engine step: the event is classified against every condition
    /// once, weighed against the open obligations, and the engine's
    /// event log drives verdicts, metrics, and predictive reports. The
    /// engine sweeps due warnings *before* the event is weighed, so a
    /// warning always precedes the violation (or near-miss discharge)
    /// it predicts; forced windows are reported at the trigger that
    /// opens them.
    ///
    /// # Panics
    ///
    /// Panics if `time` decreases, mirroring
    /// [`TimedSequence::push`](tempo_core::TimedSequence::push).
    ///
    /// [`violations`]: Monitor::violations
    pub fn observe(&mut self, action: &A, time: Rat, state: &S) -> Verdict {
        let warnings_before = self.warnings.len();
        let forced_before = self.forced.len();
        let mut first: Option<Violation> = None;
        let Monitor {
            set,
            engine,
            last_state,
            violations,
            warnings,
            forced,
            horizon,
            metrics,
            ..
        } = self;
        let mut opened = 0u64;
        for ev in set.step_engine(engine, last_state, action, state, time) {
            match ev {
                EngineEvent::Opened { .. } => {
                    opened += 1;
                }
                EngineEvent::Discharged { .. } => {
                    if let Some(m) = metrics {
                        m.record_discharged();
                    }
                }
                EngineEvent::Warned {
                    ci,
                    trigger_index,
                    deadline,
                    warn_at,
                } => {
                    let w = Warning {
                        condition: Arc::clone(set.shared_name(*ci)),
                        condition_index: *ci,
                        trigger_index: *trigger_index,
                        deadline: *deadline,
                        at: *warn_at,
                        slack: *deadline - *warn_at,
                        horizon: horizon.expect("the engine only warns when armed"),
                    };
                    if let Some(m) = metrics {
                        m.record_warning(w.slack, w.horizon);
                    }
                    warnings.push(w);
                }
                EngineEvent::Forced {
                    ci,
                    trigger_index,
                    earliest,
                    t_i,
                    margin,
                } => {
                    let fw = Forced {
                        condition: Arc::clone(set.shared_name(*ci)),
                        condition_index: *ci,
                        action: Arc::clone(set.action_label(*ci)),
                        trigger_index: *trigger_index,
                        earliest: *earliest,
                        at: *t_i,
                        margin: *margin,
                        horizon: horizon.expect("the engine only forces when armed"),
                    };
                    if let Some(m) = metrics {
                        m.record_forced(fw.margin, fw.horizon);
                    }
                    forced.push(fw);
                }
                EngineEvent::Violated { ci, kind } => {
                    let v = Violation {
                        condition: set.name(*ci).to_string(),
                        kind: kind.clone(),
                    };
                    if first.is_none() {
                        first = Some(v.clone());
                    }
                    violations.push(v);
                    if let Some(m) = metrics {
                        m.record_violated();
                    }
                }
            }
        }
        if let Some(m) = metrics {
            if opened > 0 {
                m.record_opened(opened);
            }
            m.record_event();
            if horizon.is_some() {
                if let Some(d) = engine.min_deadline() {
                    m.record_min_slack(d - time);
                }
            }
        }
        *last_state = state.clone();
        if let Some(v) = first {
            Verdict::from_violation(v)
        } else if self.warnings.len() > warnings_before {
            Verdict::Warning(self.warnings[warnings_before].clone())
        } else if self.forced.len() > forced_before {
            Verdict::Forced(self.forced[forced_before].clone())
        } else {
            Verdict::Ok
        }
    }

    /// Ends the stream and returns the complete violation list.
    ///
    /// Under [`SatisfactionMode::Complete`] (Definition 2.2) every still
    /// open deadline becomes an upper-bound violation — no further event
    /// can serve it. Under [`SatisfactionMode::Prefix`] (Definition 3.1,
    /// semi-satisfaction) open deadlines are excused: an open deadline
    /// implies `t_end ≤ deadline`, so some extension could still meet it.
    pub fn finish(self, mode: SatisfactionMode) -> Vec<Violation> {
        self.finish_with_warnings(mode).0
    }

    /// Like [`finish`](Monitor::finish), but also returns the warnings
    /// collected over the stream's lifetime, including any owed for the
    /// end-of-stream violations of [`SatisfactionMode::Complete`] (each
    /// such warning precedes its violation in the returned lists, so the
    /// warning-before-violation guarantee survives stream end).
    ///
    /// Without a predictor the warning list is empty.
    pub fn finish_with_warnings(self, mode: SatisfactionMode) -> (Vec<Violation>, Vec<Warning>) {
        let (violations, warnings, _) = self.finish_full(mode);
        (violations, warnings)
    }

    /// Ends the stream and returns everything it produced: the
    /// violations, the warnings, and the forced windows — the full
    /// bidirectional report. [`finish`](Monitor::finish) and
    /// [`finish_with_warnings`](Monitor::finish_with_warnings) are
    /// projections of this.
    pub fn finish_full(
        mut self,
        mode: SatisfactionMode,
    ) -> (Vec<Violation>, Vec<Warning>, Vec<Forced>) {
        let Monitor {
            set,
            engine,
            violations,
            warnings,
            horizon,
            metrics,
            ..
        } = &mut self;
        for ev in set.finish_engine(engine, mode) {
            match ev {
                EngineEvent::Violated { ci, kind } => {
                    violations.push(Violation {
                        condition: set.name(*ci).to_string(),
                        kind: kind.clone(),
                    });
                    if let Some(m) = metrics {
                        m.record_violated();
                    }
                }
                EngineEvent::Warned {
                    ci,
                    trigger_index,
                    deadline,
                    warn_at,
                } => {
                    // End-of-stream violations still owe their pending
                    // warning; the engine emits it immediately before
                    // the violation it predicts.
                    let w = Warning {
                        condition: Arc::clone(set.shared_name(*ci)),
                        condition_index: *ci,
                        trigger_index: *trigger_index,
                        deadline: *deadline,
                        at: *warn_at,
                        slack: *deadline - *warn_at,
                        horizon: horizon.expect("the engine only warns when armed"),
                    };
                    if let Some(m) = metrics {
                        m.record_warning(w.slack, w.horizon);
                    }
                    warnings.push(w);
                }
                EngineEvent::Discharged { .. } => {
                    // Prefix-excused deadlines and open lower windows:
                    // no warning is owed (the stream may yet be extended
                    // to serve them).
                    if let Some(m) = metrics {
                        m.record_discharged();
                    }
                }
                EngineEvent::Opened { .. } | EngineEvent::Forced { .. } => {}
            }
        }
        (
            std::mem::take(&mut self.violations),
            std::mem::take(&mut self.warnings),
            std::mem::take(&mut self.forced),
        )
    }
}

impl<S, A> Monitor<S, A> {
    /// The violations witnessed so far (in discovery order).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The early warnings emitted so far (in discovery order); always
    /// empty without a predictor
    /// ([`with_predictor`](Monitor::with_predictor)).
    pub fn warnings(&self) -> &[Warning] {
        &self.warnings
    }

    /// The forced windows reported so far (in discovery order); always
    /// empty without a predictor or with a zero horizon.
    pub fn forced(&self) -> &[Forced] {
        &self.forced
    }

    /// The armed prediction horizon, if any.
    pub fn horizon(&self) -> Option<Rat> {
        self.horizon
    }

    /// The minimum remaining slack over every open deadline — the
    /// stream's distance to its nearest `Lt` expiry, read straight off
    /// the engine (O(1) on the integer backend). `None` without a
    /// predictor or when no deadline is open.
    pub fn min_slack(&self) -> Option<Rat> {
        self.horizon?;
        Some(self.engine.min_deadline()? - self.engine.last_time())
    }

    /// The `Ft` read-out: the earliest time at which `action` could
    /// next legally occur, given the open lower windows whose `Π`
    /// contains it — `None` when no open window constrains it. Works
    /// with or without a predictor (it is a query, not a report; see
    /// [`Verdict::Forced`] for the push form).
    pub fn earliest_legal(&self, action: &A) -> Option<Rat>
    where
        A: Eq + Hash,
    {
        self.set.earliest_legal(&self.engine, action)
    }

    /// `true` while no violation has been witnessed.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of currently open obligations, across all conditions.
    pub fn open_obligations(&self) -> usize {
        self.engine.open_obligations()
    }

    /// Number of events consumed.
    pub fn events_seen(&self) -> usize {
        self.engine.events_seen()
    }

    /// A snapshot of the engine's obligation state — the monitor's whole
    /// resumable position in the stream, always materialized as the
    /// exact [`EngineState`] regardless of the running backend (the
    /// integer backend's tick-to-rational conversion is lossless).
    /// Serialize it (with the `serde` feature of `tempo-core`) and hand
    /// it to [`Monitor::resume`]/[`Monitor::resume_compiled`] to
    /// continue the stream later, or in another process; resume
    /// re-selects the backend, so snapshots round-trip across backends.
    pub fn engine_state(&self) -> EngineState {
        self.engine.snapshot()
    }

    /// Which engine backend this stream is currently running on. A
    /// stream that started on [`EngineBackend::Int`] reports
    /// [`EngineBackend::Exact`] after an event time outside its tick
    /// domain spilled it to exact arithmetic (verdicts are unaffected).
    pub fn backend(&self) -> EngineBackend {
        self.engine.backend()
    }

    /// The compiled condition set this monitor steps — shareable with
    /// further monitors via [`Monitor::from_compiled`].
    pub fn compiled(&self) -> &Arc<CompiledConditionSet<S, A>> {
        &self.set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_core::ViolationKind;
    use tempo_math::Interval;

    fn cond(lo: i64, hi: i64) -> TimingCondition<u8, &'static str> {
        TimingCondition::new("C", Interval::closed(Rat::from(lo), Rat::from(hi)).unwrap())
            .triggered_at_start(|s| *s == 0)
            .on_actions(|a| *a == "fire")
    }

    #[test]
    fn upper_bound_served_in_window() {
        let mut mon = Monitor::new(&[cond(2, 4)], &0u8);
        assert_eq!(mon.observe(&"noise", Rat::from(1), &1), Verdict::Ok);
        assert_eq!(mon.observe(&"fire", Rat::from(3), &2), Verdict::Ok);
        assert_eq!(mon.open_obligations(), 0);
        assert!(mon.finish(SatisfactionMode::Complete).is_empty());
    }

    #[test]
    fn early_fire_is_lower_violation() {
        let mut mon = Monitor::new(&[cond(2, 10)], &0u8);
        let v = mon.observe(&"fire", Rat::from(1), &1);
        match v {
            Verdict::LowerBoundViolation(v) => assert_eq!(
                v.kind,
                ViolationKind::LowerBound {
                    trigger_index: 0,
                    event_index: 1,
                    earliest: Rat::from(2)
                }
            ),
            other => panic!("expected lower violation, got {other:?}"),
        }
    }

    #[test]
    fn deadline_passing_is_definite_immediately() {
        let mut mon = Monitor::new(&[cond(0, 4)], &0u8);
        assert_eq!(mon.observe(&"noise", Rat::from(3), &1), Verdict::Ok);
        // First event past the deadline makes the violation definite —
        // even though it is not itself a Π-event.
        let v = mon.observe(&"noise", Rat::from(5), &1);
        assert!(matches!(v, Verdict::UpperBoundViolation(_)));
    }

    #[test]
    fn finish_mode_distinguishes_prefix_and_complete() {
        let c = cond(0, 4);
        let mut mon = Monitor::new(std::slice::from_ref(&c), &0u8);
        mon.observe(&"noise", Rat::from(3), &1);
        // Prefix: deadline 4 not yet passed at t_end = 3 → excused.
        assert!(mon.finish(SatisfactionMode::Prefix).is_empty());
        let mut mon = Monitor::new(&[c], &0u8);
        mon.observe(&"noise", Rat::from(3), &1);
        // Complete: the pending deadline is a violation.
        let vs = mon.finish(SatisfactionMode::Complete);
        assert_eq!(vs.len(), 1);
        assert!(matches!(vs[0].kind, ViolationKind::UpperBound { .. }));
    }

    #[test]
    fn step_triggers_reset_the_bound() {
        let c: TimingCondition<u8, &str> =
            TimingCondition::new("C", Interval::closed(Rat::from(1), Rat::from(3)).unwrap())
                .triggered_by_step(|_, a, _| *a == "go")
                .on_actions(|a| *a == "fire");
        let mut mon = Monitor::new(&[c], &0u8);
        assert_eq!(mon.observe(&"go", Rat::from(5), &1), Verdict::Ok);
        assert_eq!(mon.open_obligations(), 2);
        assert_eq!(mon.observe(&"fire", Rat::from(7), &2), Verdict::Ok);
        assert_eq!(mon.open_obligations(), 0);
        // A go-step re-arms; a too-early fire then violates.
        assert_eq!(mon.observe(&"go", Rat::from(7), &1), Verdict::Ok);
        let v = mon.observe(&"fire", Rat::from(7), &2);
        assert!(matches!(v, Verdict::LowerBoundViolation(_)));
    }

    #[test]
    fn trigger_event_does_not_serve_its_own_deadline() {
        // `go` is both the trigger and a Π-action: the triggering
        // occurrence must not count as serving the freshly opened bound.
        let c: TimingCondition<u8, &str> =
            TimingCondition::new("C", Interval::closed(Rat::ZERO, Rat::from(3)).unwrap())
                .triggered_by_step(|_, a, _| *a == "go")
                .on_actions(|a| *a == "go");
        let mut mon = Monitor::new(&[c], &0u8);
        assert_eq!(mon.observe(&"go", Rat::from(1), &1), Verdict::Ok);
        assert_eq!(mon.open_obligations(), 1);
    }

    #[test]
    fn disabling_state_excuses_lower_and_serves_upper() {
        let c: TimingCondition<u8, &str> =
            TimingCondition::new("C", Interval::closed(Rat::from(3), Rat::from(5)).unwrap())
                .triggered_at_start(|s| *s == 0)
                .on_actions(|a| *a == "fire")
                .disabled_in(|s| *s == 9);
        // Passing through the disabling state excuses an early fire.
        let mut mon = Monitor::new(std::slice::from_ref(&c), &0u8);
        assert_eq!(mon.observe(&"noise", Rat::from(1), &9), Verdict::Ok);
        assert_eq!(mon.observe(&"fire", Rat::from(2), &1), Verdict::Ok);
        assert!(mon.is_ok());
        // The same early fire without the disabling state violates.
        let mut mon = Monitor::new(&[c], &0u8);
        assert_eq!(mon.observe(&"noise", Rat::from(1), &1), Verdict::Ok);
        assert!(!mon.observe(&"fire", Rat::from(2), &2).is_ok());
    }

    #[test]
    fn infinite_upper_bound_opens_no_deadline() {
        let c: TimingCondition<u8, &str> =
            TimingCondition::new("C", Interval::unbounded_above(Rat::from(1)))
                .triggered_at_start(|_| true)
                .on_actions(|a| *a == "fire");
        let mon = Monitor::new(&[c], &0u8);
        // Only the lower window is open; no deadline can ever fire.
        assert_eq!(mon.open_obligations(), 1);
        assert!(mon.finish(SatisfactionMode::Complete).is_empty());
    }

    #[test]
    fn zero_lower_bound_opens_no_window() {
        let mon = Monitor::new(&[cond(0, 4)], &0u8);
        assert_eq!(mon.open_obligations(), 1); // the deadline only
    }

    #[test]
    fn metrics_are_recorded() {
        let metrics = Arc::new(MonitorMetrics::new());
        let mut mon = Monitor::new(&[cond(2, 4)], &0u8).with_metrics(Arc::clone(&metrics));
        mon.observe(&"fire", Rat::from(1), &1); // lower violation
        mon.observe(&"fire", Rat::from(3), &1);
        let s = metrics.snapshot();
        assert_eq!(s.events, 2);
        assert_eq!(s.obligations_violated, 1);
        assert!(s.obligations_opened >= 2);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_time_panics() {
        let mut mon = Monitor::new(&[cond(1, 2)], &0u8);
        mon.observe(&"noise", Rat::from(3), &1);
        mon.observe(&"noise", Rat::from(2), &1);
    }

    #[test]
    fn predictor_warns_before_deadline_then_discharges() {
        let mut mon = Monitor::new(&[cond(0, 10)], &0u8).with_predictor(Rat::from(3));
        assert_eq!(mon.observe(&"noise", Rat::from(5), &1), Verdict::Ok);
        assert_eq!(mon.min_slack(), Some(Rat::from(5)));
        // Strictly past the warning point 10 − 3 = 7.
        let v = mon.observe(&"noise", Rat::from(8), &1);
        let w = v.warning().expect("inside horizon");
        assert_eq!(&*w.condition, "C");
        assert_eq!(w.condition_index, 0);
        assert_eq!(w.deadline, Rat::from(10));
        assert_eq!(w.at, Rat::from(7));
        assert_eq!(w.slack, Rat::from(3));
        // Warned once only; serving it keeps the stream violation-free.
        assert_eq!(mon.observe(&"fire", Rat::from(9), &1), Verdict::Ok);
        assert!(mon.is_ok());
        assert_eq!(mon.warnings().len(), 1);
        let (violations, warnings) = mon.finish_with_warnings(SatisfactionMode::Complete);
        assert!(violations.is_empty());
        assert_eq!(warnings.len(), 1);
    }

    #[test]
    fn warning_always_precedes_the_violation() {
        // Time jumps straight past the deadline: the violating event
        // still files the owed warning first.
        let mut mon = Monitor::new(&[cond(0, 4)], &0u8).with_predictor(Rat::from(1));
        let v = mon.observe(&"noise", Rat::from(50), &1);
        assert!(matches!(v, Verdict::UpperBoundViolation(_)));
        assert_eq!(mon.warnings().len(), 1);
        assert_eq!(mon.warnings()[0].at, Rat::from(3));
        assert_eq!(mon.warnings()[0].deadline, Rat::from(4));
    }

    #[test]
    fn horizon_zero_is_silent_on_violation_free_streams() {
        let mut mon = Monitor::new(&[cond(0, 4)], &0u8).with_predictor(Rat::ZERO);
        assert_eq!(mon.observe(&"noise", Rat::from(4), &1), Verdict::Ok);
        assert_eq!(mon.observe(&"fire", Rat::from(4), &1), Verdict::Ok);
        let (violations, warnings) = mon.finish_with_warnings(SatisfactionMode::Complete);
        assert!(violations.is_empty());
        assert!(warnings.is_empty());
    }

    #[test]
    fn complete_finish_files_warning_before_endstream_violation() {
        // The stream ends before the deadline: Complete mode violates the
        // open obligation and the predictor still owes its warning.
        let mut mon = Monitor::new(&[cond(0, 10)], &0u8).with_predictor(Rat::from(2));
        assert_eq!(mon.observe(&"noise", Rat::from(1), &1), Verdict::Ok);
        let (violations, warnings) = mon.finish_with_warnings(SatisfactionMode::Complete);
        assert_eq!(violations.len(), 1);
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].trigger_index, 0);
        // Prefix mode excuses the deadline — and owes no warning either.
        let mut mon = Monitor::new(&[cond(0, 10)], &0u8).with_predictor(Rat::from(2));
        mon.observe(&"noise", Rat::from(1), &1);
        let (violations, warnings) = mon.finish_with_warnings(SatisfactionMode::Prefix);
        assert!(violations.is_empty());
        assert!(warnings.is_empty());
    }

    #[test]
    fn predictor_does_not_change_verdicts() {
        // Same trace, with and without the predictor: identical
        // violations.
        let c = cond(2, 4);
        let trace: &[(&str, i64)] = &[("noise", 1), ("fire", 1), ("noise", 6)];
        let mut plain = Monitor::new(std::slice::from_ref(&c), &0u8);
        let mut predictive =
            Monitor::new(std::slice::from_ref(&c), &0u8).with_predictor(Rat::from(1));
        for (a, t) in trace {
            plain.observe(a, Rat::from(*t), &1);
            predictive.observe(a, Rat::from(*t), &1);
        }
        assert_eq!(plain.violations(), predictive.violations());
        assert_eq!(
            plain.finish(SatisfactionMode::Complete),
            predictive.finish(SatisfactionMode::Complete)
        );
    }

    #[test]
    fn predictor_tracks_step_triggers() {
        let c: TimingCondition<u8, &str> =
            TimingCondition::new("C", Interval::closed(Rat::ZERO, Rat::from(3)).unwrap())
                .triggered_by_step(|_, a, _| *a == "go")
                .on_actions(|a| *a == "fire");
        let mut mon = Monitor::new(&[c], &0u8).with_predictor(Rat::from(1));
        assert_eq!(mon.min_slack(), None);
        assert_eq!(mon.observe(&"go", Rat::from(5), &1), Verdict::Ok);
        // Deadline 8, warn point 7.
        assert_eq!(mon.min_slack(), Some(Rat::from(3)));
        let v = mon.observe(&"noise", Rat::from(7 + 1), &1);
        assert!(v.is_warning());
        assert_eq!(mon.observe(&"fire", Rat::from(8), &1), Verdict::Ok);
        assert!(mon.is_ok());
    }

    #[test]
    fn predictor_metrics_record_warnings_and_slack() {
        let metrics = Arc::new(MonitorMetrics::new());
        let mut mon = Monitor::new(&[cond(0, 10)], &0u8)
            .with_metrics(Arc::clone(&metrics))
            .with_predictor(Rat::from(4));
        mon.observe(&"noise", Rat::from(7), &1); // warn point 6 passed
        mon.observe(&"fire", Rat::from(8), &1);
        let s = metrics.snapshot();
        assert_eq!(s.warnings, 1);
        assert_eq!(s.min_slack, Some(Rat::from(3))); // 10 − 7 at the warned event
    }

    #[test]
    #[should_panic(expected = "before observing")]
    fn predictor_after_events_panics() {
        let mut mon = Monitor::new(&[cond(0, 4)], &0u8);
        mon.observe(&"noise", Rat::from(1), &1);
        let _ = mon.with_predictor(Rat::ZERO);
    }

    #[test]
    fn shared_compiled_set_serves_many_streams() {
        let set = Arc::new(CompiledConditionSet::new(&[cond(2, 4)]));
        let mut a = Monitor::from_compiled(Arc::clone(&set), &0u8);
        let mut b = Monitor::from_compiled(Arc::clone(&set), &0u8);
        assert!(!a.observe(&"fire", Rat::from(1), &1).is_ok()); // early
        assert!(b.observe(&"fire", Rat::from(3), &1).is_ok()); // in window
        assert!(!a.is_ok());
        assert!(b.is_ok());
    }

    #[test]
    fn resumed_monitor_continues_the_stream_exactly() {
        let c = cond(2, 10);
        // Original: trigger at start, snapshot after one quiet event.
        let mut original = Monitor::new(std::slice::from_ref(&c), &0u8);
        assert_eq!(original.observe(&"noise", Rat::from(1), &1), Verdict::Ok);
        let snapshot = original.engine_state().clone();

        let mut restored = Monitor::resume(std::slice::from_ref(&c), snapshot, &1u8, None);
        assert_eq!(restored.events_seen(), 1);
        assert_eq!(restored.open_obligations(), 2);
        // The restored monitor sees the same early fire the original
        // would have: a lower violation at event index 2.
        let (r1, r2) = (
            original.observe(&"fire", Rat::from(1), &1),
            restored.observe(&"fire", Rat::from(1), &1),
        );
        assert_eq!(r1, r2);
        assert!(matches!(r2, Verdict::LowerBoundViolation(_)));
    }

    #[test]
    fn resume_rearms_the_predictor_without_rewarning() {
        // Snapshot *after* the warning fired: the restored predictor
        // must not warn for the same obligation again.
        let mut original = Monitor::new(&[cond(0, 10)], &0u8).with_predictor(Rat::from(3));
        assert!(original.observe(&"noise", Rat::from(8), &1).is_warning());
        let snapshot = original.engine_state().clone();
        let mut restored = Monitor::resume(&[cond(0, 10)], snapshot, &1u8, Some(Rat::from(3)));
        assert_eq!(restored.observe(&"noise", Rat::from(9), &1), Verdict::Ok);
        assert!(restored.warnings().is_empty());
        // Snapshot *before* the warning point: the restored predictor
        // picks the warning up.
        let mut original = Monitor::new(&[cond(0, 10)], &0u8).with_predictor(Rat::from(3));
        assert_eq!(original.observe(&"noise", Rat::from(5), &1), Verdict::Ok);
        let snapshot = original.engine_state().clone();
        let mut restored = Monitor::resume(&[cond(0, 10)], snapshot, &1u8, Some(Rat::from(3)));
        let v = restored.observe(&"noise", Rat::from(8), &1);
        assert_eq!(v.warning().expect("restored warning").at, Rat::from(7));
        assert_eq!(restored.min_slack(), Some(Rat::from(2)));
    }

    fn guarded(lo: i64, hi: i64) -> TimingCondition<u8, &'static str> {
        TimingCondition::new("C", Interval::closed(Rat::from(lo), Rat::from(hi)).unwrap())
            .triggered_by_step(|_, a, _| *a == "go")
            .on_actions(|a| *a == "fire")
    }

    #[test]
    fn forced_window_reported_at_the_trigger() {
        let mut mon = Monitor::new(&[guarded(5, 20)], &0u8).with_predictor(Rat::from(3));
        let v = mon.observe(&"go", Rat::from(2), &1);
        let fw = v.forced().expect("margin 5 covers horizon 3");
        assert_eq!(&*fw.condition, "C");
        assert_eq!(fw.condition_index, 0);
        assert_eq!(fw.earliest, Rat::from(7));
        assert_eq!(fw.at, Rat::from(2));
        assert_eq!(fw.margin, Rat::from(5));
        assert_eq!(fw.horizon, Rat::from(3));
        assert!(
            v.is_ok(),
            "a forced window is a prediction, not a violation"
        );
        // The Ft query agrees while the window is open…
        assert_eq!(mon.earliest_legal(&"fire"), Some(Rat::from(7)));
        assert_eq!(mon.earliest_legal(&"go"), None);
        // …and clears once the window closes; the report stays history.
        assert_eq!(mon.observe(&"noise", Rat::from(7), &1), Verdict::Ok);
        assert_eq!(mon.earliest_legal(&"fire"), None);
        assert_eq!(mon.forced().len(), 1);
        assert_eq!(mon.observe(&"fire", Rat::from(8), &1), Verdict::Ok);
        let (violations, _, forced) = mon.finish_full(SatisfactionMode::Complete);
        assert!(violations.is_empty());
        assert_eq!(forced.len(), 1);
    }

    #[test]
    fn short_margins_and_zero_horizon_force_nothing() {
        // Margin 2 < horizon 3: below the reporting threshold.
        let mut mon = Monitor::new(&[guarded(2, 20)], &0u8).with_predictor(Rat::from(3));
        assert_eq!(mon.observe(&"go", Rat::from(2), &1), Verdict::Ok);
        assert!(mon.forced().is_empty());
        // The query still answers: Ft is state, not a report.
        assert_eq!(mon.earliest_legal(&"fire"), Some(Rat::from(4)));
        // Horizon 0: forced reporting is entirely off.
        let mut mon = Monitor::new(&[guarded(5, 20)], &0u8).with_predictor(Rat::ZERO);
        assert_eq!(mon.observe(&"go", Rat::from(2), &1), Verdict::Ok);
        assert!(mon.forced().is_empty());
    }

    #[test]
    fn warning_takes_verdict_precedence_over_forced() {
        // One event both warns (open deadline from a start trigger) and
        // opens a forced window (step trigger): the warning wins the
        // verdict, both payloads are recorded.
        let near = cond(0, 4); // start-trigger deadline 4, warn at 1
        let wide = guarded(10, 20);
        let mut mon = Monitor::new(&[near, wide], &0u8).with_predictor(Rat::from(3));
        let v = mon.observe(&"go", Rat::from(2), &0);
        assert!(v.is_warning());
        assert_eq!(mon.warnings().len(), 1);
        assert_eq!(mon.forced().len(), 1);
    }

    #[test]
    fn shared_names_do_not_allocate_per_warning() {
        let mut mon = Monitor::new(&[cond(0, 4)], &0u8).with_predictor(Rat::from(2));
        assert!(mon.observe(&"noise", Rat::from(3), &1).is_warning());
        let w = &mon.warnings()[0];
        // The warning shares the compiled set's interned name.
        assert!(Arc::ptr_eq(&w.condition, mon.compiled().shared_name(0)));
    }
}
