//! Predictive outcome payloads ([`Warning`], [`Forced`]) and the
//! zone-based [`Predictor`] adapter.
//!
//! The monitor alone reports a timing violation only *at* the event that
//! makes it definite; the paper's whole point (Section 3.1) is that the
//! predictive components `Ft(U)`/`Lt(U)` of `time(A, U)` let you reason
//! about deadlines *before* they expire. Since the engine refactor,
//! prediction itself lives inside `tempo_core::engine`: both backends
//! track warning points natively and emit `Warned`/`Forced` engine
//! events that [`Monitor`](crate::Monitor) surfaces as [`Warning`]s and
//! [`Forced`] windows (see
//! [`Monitor::with_predictor`](crate::Monitor::with_predictor)). This
//! module keeps the payload types — and the standalone [`Predictor`], a
//! zone-backed adapter for callers who want the *symbolic* view.
//!
//! The [`Predictor`] carries predictive state as a timed zone: one
//! [`Dbm`] clock per condition, where
//! clock `x_C` measures the time elapsed since condition `C`'s most
//! recent trigger. Between events the zone is advanced by *exactly* the
//! observed delay ([`Dbm::shift`] — no re-canonicalization), so at any
//! instant `L_t`-style residuals are readable straight off the zone: an
//! open deadline `d = t_i + b_u` has remaining slack `d − now`, and the
//! zone invariant `x_C ≤ b_u` holds exactly while the deadline can
//! still be met. The advance is *lazy*: elapsed time accumulates as a
//! pending delay that is flushed into the zone with a single exact
//! shift the next time the zone is consulted (a trigger arming a clock,
//! or a [`zone`](Predictor::zone) read), so a quiet stretch of stream —
//! or one with no open deadline at all — costs `O(1)` per event rather
//! than a rational-arithmetic zone update per event.
//!
//! When the stream's clock passes an obligation's *warning point*
//! `max(d − horizon, t_i)` with the obligation still unresolved, the
//! predictor emits a [`Warning`] — an early-warning signal at least
//! `horizon` time units before the deadline (or as early as the trigger
//! allows, when `b_u < horizon`). Every deadline violation is therefore
//! preceded by its warning, and with `horizon = 0` a violation-free
//! stream emits no warnings at all.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use tempo_math::Rat;
use tempo_zones::Dbm;

/// An early warning: an open deadline obligation entered its warning
/// window (its remaining slack dropped to at most the configured
/// horizon) before being served.
///
/// Warnings are *predictions*, not verdicts: a warned obligation may
/// still be discharged in time (a near miss) or may go on to become an
/// [`UpperBound`](tempo_core::ViolationKind::UpperBound) violation. The
/// predictor guarantees the warning is reported before the violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Warning {
    /// Name of the condition whose deadline is at risk — shared with
    /// the engine's interned name table, so constructing a warning
    /// never allocates a fresh string.
    pub condition: Arc<str>,
    /// Index of the condition in its compiled set — the stable interned
    /// id (names are for humans; indices key the engine tables).
    pub condition_index: usize,
    /// Index of the trigger that opened the obligation (0 = start-state
    /// trigger, `i ≥ 1` = step trigger at event `i`), matching
    /// [`ViolationKind`](tempo_core::ViolationKind) trigger indices.
    pub trigger_index: usize,
    /// The absolute deadline `t_i + b_u` at risk.
    pub deadline: Rat,
    /// The warning point `max(deadline − horizon, t_i)`: the stream time
    /// at which the obligation entered its warning window.
    pub at: Rat,
    /// Remaining slack at the warning point: `deadline − at`, i.e.
    /// `min(horizon, b_u)`.
    pub slack: Rat,
    /// The horizon the predictor was configured with.
    pub horizon: Rat,
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: deadline {} (trigger {}) within {} at t = {}",
            self.condition, self.deadline, self.trigger_index, self.slack, self.at
        )
    }
}

/// A forced window: the `Ft(U)` half of the paper's `time(A, U)`
/// construction. A trigger opened a lower-bound window wide enough to
/// clear the prediction horizon, so the monitor knows — the moment the
/// trigger fires — that the condition's `Π`-action *cannot legally
/// occur* before [`earliest`](Forced::earliest): the action is forced
/// to stay away at least [`margin`](Forced::margin) time units.
///
/// Like a [`Warning`], a forced window is a prediction about legal
/// futures, not a verdict: verdicts stay
/// [`is_ok`](crate::Verdict::is_ok). It is reported exactly once, at
/// the event that opens the window, and only when `margin ≥ horizon`
/// (with a zero horizon nothing is ever reported).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Forced {
    /// Name of the condition whose window is forced — shared with the
    /// engine's interned name table (no per-report allocation).
    pub condition: Arc<str>,
    /// Index of the condition in its compiled set.
    pub condition_index: usize,
    /// Human-readable label of the condition's `Π` action set — the
    /// action(s) that cannot legally occur inside the window.
    pub action: Arc<str>,
    /// Index of the trigger that opened the window (same convention as
    /// [`Warning::trigger_index`]).
    pub trigger_index: usize,
    /// The earliest legal occurrence `Ft = t_i + b_l`: a `Π`-event
    /// strictly before this time would be a lower-bound violation.
    pub earliest: Rat,
    /// The trigger time `t_i` at which the window was reported.
    pub at: Rat,
    /// The window width `b_l = earliest − at` — how long the action is
    /// forced to stay away, always `≥ horizon`.
    pub margin: Rat,
    /// The horizon the prediction was configured with.
    pub horizon: Rat,
}

impl fmt::Display for Forced {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} forced out until {} (trigger {}, margin {}) at t = {}",
            self.condition, self.action, self.earliest, self.trigger_index, self.margin, self.at
        )
    }
}

/// One deadline the predictor is tracking: the obligation's identity,
/// its absolute deadline, and its precomputed warning point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Tracked {
    trigger_index: usize,
    deadline: Rat,
    warn_at: Rat,
    warned: bool,
}

/// How the monitor tells the predictor an obligation was resolved, so
/// the predictor can decide whether a (near-miss or pre-violation)
/// warning is still owed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The obligation stays open after the current event.
    StillOpen,
    /// The obligation was discharged (served or disabled) by the event.
    Discharged,
    /// The obligation was violated by the event.
    Violated,
}

/// Online early-warning state for one stream: a per-condition prediction
/// zone plus the open deadlines with their warning points.
///
/// The predictor is deliberately independent of the monitored state and
/// action types: it speaks condition *indices* and absolute times, so it
/// can sit inside a [`Monitor`](crate::Monitor), a pool worker, or any
/// external event loop. Per event the work is `O(1)` for the (lazy)
/// time advance plus `O(open deadlines)` for the warning sweep; each
/// trigger additionally pays one `O(clocks)` zone catch-up — the same
/// asymptotics as the monitor itself.
///
/// # Example
///
/// Tracking one condition with bound `b_u = 10` and horizon `3`
/// (matching Section 3.1: the zone's clock is `now − t_i`, so the
/// residual `Lt − now` is `b_u − x`):
///
/// ```
/// use tempo_math::Rat;
/// use tempo_monitor::{Outcome, Predictor};
///
/// let mut p = Predictor::new(1, Rat::from(3));
/// // Trigger at t = 2: deadline 12, warning point 12 − 3 = 9.
/// p.advance_to(Rat::from(2));
/// p.arm(0, 1, Rat::from(2), Rat::from(12));
/// assert_eq!(p.slack(0), Some(Rat::from(10)));
///
/// // t = 7: still 5 of slack, no warning yet.
/// p.advance_to(Rat::from(7));
/// assert!(p.poll(0, 1, Outcome::StillOpen).is_none());
/// assert_eq!(p.elapsed(0), Some(Rat::from(5)));
///
/// // t = 10 > 9: the warning window is entered.
/// p.advance_to(Rat::from(10));
/// let w = p.poll(0, 1, Outcome::StillOpen).expect("inside the horizon");
/// assert_eq!(w.at, Rat::from(9));
/// assert_eq!(w.slack, Rat::from(3));
/// ```
#[derive(Clone)]
pub struct Predictor {
    horizon: Rat,
    /// One clock per condition: time since the condition's most recent
    /// trigger. A point zone, advanced exactly by [`Dbm::shift`].
    zone: Dbm,
    /// The stream time the zone was last shifted to. Delay between
    /// `zone_now` and `now` is pending: it is flushed into the zone by
    /// [`sync_zone`](Predictor::sync_zone) the next time the zone is
    /// consulted, so event processing itself never pays for a shift.
    zone_now: Rat,
    /// Conditions with at least one open deadline (their clocks are
    /// meaningful; the rest are dormant at their last value).
    active: Vec<bool>,
    /// Number of `true` entries in `active`: while zero, pending delay
    /// can be discarded without ever touching the zone.
    active_count: usize,
    /// Open deadlines per condition, oldest first (deadlines of one
    /// condition are opened in nondecreasing order, so the front is
    /// always the most urgent).
    tracked: Vec<VecDeque<Tracked>>,
    now: Rat,
    warnings_emitted: u64,
}

impl fmt::Debug for Predictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Predictor")
            .field("horizon", &self.horizon)
            .field("conditions", &self.tracked.len())
            .field("open_deadlines", &self.open_deadlines())
            .field("now", &self.now)
            .finish()
    }
}

impl Predictor {
    /// A predictor over `conditions` conditions with the given warning
    /// horizon. The horizon must be nonnegative; `0` means "warn only
    /// once a deadline has definitely passed" (i.e. only the warning
    /// that immediately precedes a violation).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is negative.
    pub fn new(conditions: usize, horizon: Rat) -> Predictor {
        assert!(
            !horizon.is_negative(),
            "the warning horizon must be nonnegative"
        );
        Predictor {
            horizon,
            zone: Dbm::zero(conditions),
            zone_now: Rat::ZERO,
            active: vec![false; conditions],
            active_count: 0,
            tracked: (0..conditions).map(|_| VecDeque::new()).collect(),
            now: Rat::ZERO,
            warnings_emitted: 0,
        }
    }

    /// Flushes the pending delay into the zone with one exact shift.
    /// While no clock is active the shift is skipped outright: dormant
    /// clocks carry no meaning, and the next [`arm`](Predictor::arm)
    /// resets its clock from the reference row anyway.
    #[inline]
    fn sync_zone(&mut self) {
        if self.zone_now == self.now {
            return;
        }
        if self.active_count > 0 {
            self.zone.shift(self.now - self.zone_now);
        }
        self.zone_now = self.now;
    }

    /// The configured warning horizon.
    pub fn horizon(&self) -> Rat {
        self.horizon
    }

    /// The stream time the predictor has been advanced to.
    pub fn now(&self) -> Rat {
        self.now
    }

    /// The prediction zone, synchronized to the current stream time: one
    /// clock per condition, clock `C` = time since condition `C`'s most
    /// recent trigger (clocks of conditions with no open deadline are
    /// dormant). Exposed for introspection and for composing with the
    /// symbolic machinery of `tempo-zones`. Takes `&mut self` because
    /// reading the zone flushes the lazily accumulated delay into it.
    pub fn zone(&mut self) -> &Dbm {
        self.sync_zone();
        &self.zone
    }

    /// Warnings emitted so far.
    pub fn warnings_emitted(&self) -> u64 {
        self.warnings_emitted
    }

    /// Number of deadlines currently tracked, across all conditions.
    pub fn open_deadlines(&self) -> usize {
        self.tracked.iter().map(|q| q.len()).sum()
    }

    /// Advances the predictor to absolute time `t`. `O(1)`: the delay is
    /// only *recorded* here; the zone itself catches up with a single
    /// exact shift when next consulted by a trigger or a
    /// [`zone`](Predictor::zone) read.
    ///
    /// # Panics
    ///
    /// Panics if `t` decreases, mirroring
    /// [`Monitor::observe`](crate::Monitor::observe).
    #[inline]
    pub fn advance_to(&mut self, t: Rat) {
        assert!(
            t >= self.now,
            "predictor time must be nondecreasing: {t} after {}",
            self.now
        );
        self.now = t;
    }

    /// Starts tracking a deadline obligation: condition `ci`'s trigger
    /// `trigger_index` fired at time `t_i` with absolute deadline
    /// `deadline = t_i + b_u`. Resets the condition's zone clock and
    /// precomputes the warning point `max(deadline − horizon, t_i)`.
    #[inline]
    pub fn arm(&mut self, ci: usize, trigger_index: usize, t_i: Rat, deadline: Rat) {
        self.sync_zone();
        self.zone.reset(ci + 1);
        if !self.active[ci] {
            self.active[ci] = true;
            self.active_count += 1;
        }
        let warn_at = (deadline - self.horizon).max(t_i);
        self.tracked[ci].push_back(Tracked {
            trigger_index,
            deadline,
            warn_at,
            warned: false,
        });
    }

    /// [`arm`](Predictor::arm) for an obligation restored from a
    /// snapshot (see `Monitor::resume`): if the warning point had
    /// already passed at the current time, the obligation is marked
    /// warned *silently* — the warning was emitted before the snapshot
    /// and must not be emitted twice across the snapshot boundary.
    pub fn arm_restored(&mut self, ci: usize, trigger_index: usize, t_i: Rat, deadline: Rat) {
        self.arm(ci, trigger_index, t_i, deadline);
        let e = self.tracked[ci]
            .back_mut()
            .expect("arm just pushed an entry");
        e.warned = self.now > e.warn_at;
    }

    /// Sweeps every tracked obligation whose warning point has been
    /// passed (strictly) without a warning yet, marking it warned and
    /// handing each fresh [`Warning`] — with its condition *index* — to
    /// `emit`. The monitor calls this once per event, right after
    /// [`advance_to`](Predictor::advance_to) and *before* stepping the
    /// engine, so a warning always precedes the violation or near-miss
    /// discharge it predicts. `O(open deadlines)`; `O(1)` when no
    /// deadline is open.
    pub fn sweep<F: FnMut(usize, Warning)>(&mut self, mut emit: F) {
        if self.active_count == 0 {
            return;
        }
        let now = self.now;
        let horizon = self.horizon;
        let mut emitted = 0;
        for (ci, queue) in self.tracked.iter_mut().enumerate() {
            for e in queue.iter_mut() {
                if !e.warned && now > e.warn_at {
                    e.warned = true;
                    emitted += 1;
                    emit(
                        ci,
                        Warning {
                            condition: "".into(), // caller fills the name in
                            condition_index: ci,
                            trigger_index: e.trigger_index,
                            deadline: e.deadline,
                            at: e.warn_at,
                            slack: e.deadline - e.warn_at,
                            horizon,
                        },
                    );
                }
            }
        }
        self.warnings_emitted += emitted;
    }

    /// Reports the state of a tracked obligation after the current event
    /// and returns the [`Warning`] now owed for it, if any.
    ///
    /// A warning is owed when the stream's clock has passed *strictly*
    /// beyond the warning point with the obligation unresolved at every
    /// instant up to the current event — which covers all three
    /// outcomes:
    ///
    /// * [`Outcome::StillOpen`] past the warning point — the canonical
    ///   early warning, emitted once;
    /// * [`Outcome::Discharged`] past the warning point — a *near miss*
    ///   (the obligation entered its warning window before being
    ///   served);
    /// * [`Outcome::Violated`] — a violation always implies the warning
    ///   point was passed first (`now > deadline ≥ warn_at`), so an
    ///   unwarned obligation is warned here, immediately *before* the
    ///   caller reports the violation.
    ///
    /// Strictness is what makes `horizon = 0` silent on violation-free
    /// streams: the warning point is then the deadline itself, and a
    /// served obligation never sees time strictly beyond it.
    ///
    /// The name of the condition is supplied by the caller (the
    /// predictor tracks indices only); `poll` with an unknown
    /// `(ci, trigger_index)` pair returns `None`.
    #[inline]
    pub fn poll(&mut self, ci: usize, trigger_index: usize, outcome: Outcome) -> Option<Warning> {
        let queue = &mut self.tracked[ci];
        let pos = queue
            .iter()
            .position(|t| t.trigger_index == trigger_index)?;
        let due = match outcome {
            Outcome::StillOpen => self.now > queue[pos].warn_at && !queue[pos].warned,
            Outcome::Discharged => self.now > queue[pos].warn_at && !queue[pos].warned,
            Outcome::Violated => !queue[pos].warned,
        };
        let entry = if matches!(outcome, Outcome::StillOpen) {
            let e = &mut queue[pos];
            e.warned = e.warned || due;
            *e
        } else {
            let e = queue.remove(pos).expect("position just found");
            if queue.is_empty() && self.active[ci] {
                self.active[ci] = false;
                self.active_count -= 1;
            }
            e
        };
        if !due {
            return None;
        }
        self.warnings_emitted += 1;
        Some(Warning {
            condition: "".into(), // caller fills the name in
            condition_index: ci,
            trigger_index: entry.trigger_index,
            deadline: entry.deadline,
            at: entry.warn_at,
            slack: entry.deadline - entry.warn_at,
            horizon: self.horizon,
        })
    }

    /// Time since condition `ci`'s most recent trigger, read off the
    /// prediction zone — the online analogue of `now − t_i`, i.e. the
    /// zone clock `x_C`. `None` while the condition has no open
    /// deadline.
    pub fn elapsed(&self, ci: usize) -> Option<Rat> {
        if !self.active[ci] {
            return None;
        }
        // The zone clock plus whatever delay has not been flushed into
        // the zone yet — exact, without forcing a sync.
        Some(self.zone.clock_min(ci + 1) + (self.now - self.zone_now))
    }

    /// The `Ft(U)` residual of condition `ci`'s most recent trigger,
    /// read off the prediction zone: with lower bound `b_l`, how much
    /// longer the condition's `Π`-action is forced to stay away (zero
    /// once the window has opened;
    /// [`Dbm::lower_residual`] does the zone read). `None` while the
    /// condition has no open obligation. Takes `&mut self` because the
    /// zone read flushes the lazily accumulated delay.
    pub fn forced_residual(&mut self, ci: usize, b_l: Rat) -> Option<Rat> {
        if !self.active[ci] {
            return None;
        }
        self.sync_zone();
        Some(self.zone.lower_residual(ci + 1, b_l))
    }

    /// Remaining slack of condition `ci`'s most urgent open deadline
    /// (`deadline − now`; negative once the deadline has passed).
    /// `None` while the condition has no open deadline.
    pub fn slack(&self, ci: usize) -> Option<Rat> {
        self.tracked[ci].front().map(|t| t.deadline - self.now)
    }

    /// The minimum remaining slack over every open deadline — the
    /// stream's distance to its nearest `Lt` expiry. `None` when no
    /// deadline is open.
    pub fn min_slack(&self) -> Option<Rat> {
        self.tracked
            .iter()
            .filter_map(|q| q.front())
            .map(|t| t.deadline - self.now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from(v)
    }

    #[test]
    fn warns_strictly_past_the_warning_point() {
        let mut p = Predictor::new(1, r(2));
        p.arm(0, 0, r(0), r(10)); // warn_at = 8
        p.advance_to(r(8));
        // At exactly the warning point: not yet (strictness).
        assert!(p.poll(0, 0, Outcome::StillOpen).is_none());
        p.advance_to(r(9));
        let w = p.poll(0, 0, Outcome::StillOpen).expect("past warn_at");
        assert_eq!(w.at, r(8));
        assert_eq!(w.slack, r(2));
        assert_eq!(w.deadline, r(10));
        // Only once per obligation.
        assert!(p.poll(0, 0, Outcome::StillOpen).is_none());
        assert_eq!(p.warnings_emitted(), 1);
    }

    #[test]
    fn violation_always_collects_the_pending_warning() {
        let mut p = Predictor::new(1, r(2));
        p.arm(0, 0, r(0), r(5));
        // Time jumps straight past the deadline: no event ever landed in
        // the warning window, but the violation still gets its warning.
        p.advance_to(r(50));
        let w = p.poll(0, 0, Outcome::Violated).expect("owed a warning");
        assert_eq!(w.at, r(3));
        assert_eq!(w.slack, r(2));
        assert_eq!(p.open_deadlines(), 0);
    }

    #[test]
    fn near_miss_warns_on_discharge() {
        let mut p = Predictor::new(1, r(3));
        p.arm(0, 0, r(0), r(10)); // warn_at = 7
        p.advance_to(r(9));
        // Served at t = 9, inside the window: a near miss.
        let w = p.poll(0, 0, Outcome::Discharged).expect("near miss");
        assert_eq!(w.at, r(7));
        // Served before the window: silent.
        p.arm(0, 1, r(9), r(20)); // warn_at = 17
        p.advance_to(r(12));
        assert!(p.poll(0, 1, Outcome::Discharged).is_none());
    }

    #[test]
    fn horizon_zero_warns_only_past_the_deadline() {
        let mut p = Predictor::new(1, r(0));
        p.arm(0, 0, r(0), r(5)); // warn_at = deadline = 5
        p.advance_to(r(5));
        // Exactly at the deadline, still open: no warning (strict).
        assert!(p.poll(0, 0, Outcome::StillOpen).is_none());
        // Served at the deadline: no warning either.
        assert!(p.poll(0, 0, Outcome::Discharged).is_none());
        // A violated sibling does warn.
        p.arm(0, 1, r(5), r(6));
        p.advance_to(r(7));
        assert!(p.poll(0, 1, Outcome::Violated).is_some());
    }

    #[test]
    fn short_bound_clamps_warning_point_to_trigger() {
        let mut p = Predictor::new(1, r(100));
        p.advance_to(r(4));
        p.arm(0, 2, r(4), r(6)); // b_u = 2 < horizon: warn_at = t_i = 4
        p.advance_to(r(5));
        let w = p.poll(0, 2, Outcome::StillOpen).expect("inside window");
        assert_eq!(w.at, r(4));
        assert_eq!(w.slack, r(2)); // min(horizon, b_u)
    }

    #[test]
    fn zone_tracks_elapsed_time_per_condition() {
        let mut p = Predictor::new(2, r(1));
        p.advance_to(r(3));
        p.arm(0, 1, r(3), r(13));
        p.advance_to(r(7));
        p.arm(1, 2, r(7), r(17));
        p.advance_to(r(9));
        assert_eq!(p.elapsed(0), Some(r(6)));
        assert_eq!(p.elapsed(1), Some(r(2)));
        assert_eq!(p.slack(0), Some(r(4)));
        assert_eq!(p.slack(1), Some(r(8)));
        assert_eq!(p.min_slack(), Some(r(4)));
        // The zone is a point: min and max coincide.
        assert_eq!(
            p.zone().clock_max(1),
            tempo_math::TimeVal::from(p.zone().clock_min(1))
        );
        // Resolving everything deactivates the clocks.
        assert!(p.poll(0, 1, Outcome::Discharged).is_none());
        assert!(p.poll(1, 2, Outcome::Discharged).is_none());
        assert_eq!(p.elapsed(0), None);
        assert_eq!(p.min_slack(), None);
    }

    #[test]
    fn forced_residual_reads_ft_off_the_zone() {
        let mut p = Predictor::new(1, r(1));
        p.advance_to(r(2));
        p.arm(0, 1, r(2), r(22)); // trigger at 2; say b_l = 5
                                  // Immediately after the trigger the full window remains.
        assert_eq!(p.forced_residual(0, r(5)), Some(r(5)));
        p.advance_to(r(4));
        assert_eq!(p.forced_residual(0, r(5)), Some(r(3)));
        // Once the window has opened the residual clamps to zero.
        p.advance_to(r(10));
        assert_eq!(p.forced_residual(0, r(5)), Some(r(0)));
        // No open obligation, no residual.
        assert!(p.poll(0, 1, Outcome::Discharged).is_none());
        assert_eq!(p.forced_residual(0, r(5)), None);
    }

    #[test]
    fn oldest_deadline_is_the_most_urgent() {
        let mut p = Predictor::new(1, r(1));
        p.arm(0, 0, r(0), r(10));
        p.advance_to(r(4));
        p.arm(0, 1, r(4), r(14));
        assert_eq!(p.slack(0), Some(r(6))); // deadline 10, not 14
        assert_eq!(p.open_deadlines(), 2);
        // Resolving the older keeps the newer tracked.
        assert!(p.poll(0, 0, Outcome::Discharged).is_none());
        assert_eq!(p.slack(0), Some(r(10)));
        assert_eq!(p.open_deadlines(), 1);
    }

    #[test]
    fn unknown_obligation_polls_none() {
        let mut p = Predictor::new(1, r(1));
        assert!(p.poll(0, 99, Outcome::Violated).is_none());
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_horizon_panics() {
        let _ = Predictor::new(1, r(-1));
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn decreasing_time_panics() {
        let mut p = Predictor::new(1, r(0));
        p.advance_to(r(5));
        p.advance_to(r(4));
    }
}
