//! Report/verdict serde encodings (feature `serde`): JSON-object-shaped
//! maps for [`Warning`], [`Forced`], [`Verdict`], [`StreamReport`],
//! [`PoolReport`], [`MetricsSnapshot`], and [`StreamLagSnapshot`].
//!
//! These are the payloads `tempo-serve` streams back to clients over its
//! egress protocol, so the encodings are stable, field-named maps (never
//! positional tuples): unknown fields are ignored on decode, letting old
//! clients read frames from newer servers. Rationals use `tempo-math`'s
//! exact `"num/den"` string form throughout — nothing round-trips
//! through floating point.

use std::sync::Arc;

use serde::de::{Error as DeError, Unexpected};
use serde::ser::Error as SerError;
use serde::{Deserialize, Deserializer, Serialize, Serializer, Value, ValueError};

use tempo_core::serde_util::{FieldMap, MapBuilder};
use tempo_math::Rat;

use crate::metrics::{MetricsSnapshot, StreamLagSnapshot, SLACK_BUCKETS};
use crate::pool::{PoolReport, StreamReport};
use crate::predict::{Forced, Warning};
use crate::verdict::Verdict;

fn hist_from_vec<E: DeError>(v: Vec<u64>, what: &str) -> Result<[u64; SLACK_BUCKETS], E> {
    let len = v.len();
    v.try_into().map_err(|_| {
        E::custom(format!(
            "{what} must have {SLACK_BUCKETS} buckets, got {len}"
        ))
    })
}

impl Serialize for Warning {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let encode = || -> Result<Value, ValueError> {
            let mut m = MapBuilder::new();
            m.put("condition", &*self.condition)?;
            m.put("condition_index", &self.condition_index)?;
            m.put("trigger_index", &self.trigger_index)?;
            m.put("deadline", &self.deadline)?;
            m.put("at", &self.at)?;
            m.put("slack", &self.slack)?;
            m.put("horizon", &self.horizon)?;
            Ok(m.finish())
        };
        serializer.serialize_value(encode().map_err(S::Error::custom)?)
    }
}

impl<'de> Deserialize<'de> for Warning {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Warning, D::Error> {
        let mut m = FieldMap::<D::Error>::new(deserializer.deserialize_value()?, "a warning")?;
        Ok(Warning {
            condition: Arc::from(m.take::<String>("condition")?),
            condition_index: m.take("condition_index")?,
            trigger_index: m.take("trigger_index")?,
            deadline: m.take("deadline")?,
            at: m.take("at")?,
            slack: m.take("slack")?,
            horizon: m.take("horizon")?,
        })
    }
}

impl Serialize for Forced {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let encode = || -> Result<Value, ValueError> {
            let mut m = MapBuilder::new();
            m.put("condition", &*self.condition)?;
            m.put("condition_index", &self.condition_index)?;
            m.put("action", &*self.action)?;
            m.put("trigger_index", &self.trigger_index)?;
            m.put("earliest", &self.earliest)?;
            m.put("at", &self.at)?;
            m.put("margin", &self.margin)?;
            m.put("horizon", &self.horizon)?;
            Ok(m.finish())
        };
        serializer.serialize_value(encode().map_err(S::Error::custom)?)
    }
}

impl<'de> Deserialize<'de> for Forced {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Forced, D::Error> {
        let mut m =
            FieldMap::<D::Error>::new(deserializer.deserialize_value()?, "a forced window")?;
        Ok(Forced {
            condition: Arc::from(m.take::<String>("condition")?),
            condition_index: m.take("condition_index")?,
            action: Arc::from(m.take::<String>("action")?),
            trigger_index: m.take("trigger_index")?,
            earliest: m.take("earliest")?,
            at: m.take("at")?,
            margin: m.take("margin")?,
            horizon: m.take("horizon")?,
        })
    }
}

impl Serialize for Verdict {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let encode = || -> Result<Value, ValueError> {
            let mut m = MapBuilder::new();
            match self {
                Verdict::Ok => m.put("type", "ok")?,
                Verdict::Warning(w) => {
                    m.put("type", "warning")?;
                    m.put("warning", w)?;
                }
                Verdict::Forced(fw) => {
                    m.put("type", "forced")?;
                    m.put("forced", fw)?;
                }
                Verdict::LowerBoundViolation(v) => {
                    m.put("type", "lower_bound_violation")?;
                    m.put("violation", v)?;
                }
                Verdict::UpperBoundViolation(v) => {
                    m.put("type", "upper_bound_violation")?;
                    m.put("violation", v)?;
                }
            }
            Ok(m.finish())
        };
        serializer.serialize_value(encode().map_err(S::Error::custom)?)
    }
}

impl<'de> Deserialize<'de> for Verdict {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Verdict, D::Error> {
        let mut m = FieldMap::<D::Error>::new(deserializer.deserialize_value()?, "a verdict")?;
        let tag: String = m.take("type")?;
        match tag.as_str() {
            "ok" => Ok(Verdict::Ok),
            "warning" => Ok(Verdict::Warning(m.take("warning")?)),
            "forced" => Ok(Verdict::Forced(m.take("forced")?)),
            "lower_bound_violation" => Ok(Verdict::LowerBoundViolation(m.take("violation")?)),
            "upper_bound_violation" => Ok(Verdict::UpperBoundViolation(m.take("violation")?)),
            other => Err(D::Error::invalid_value(
                Unexpected::Str(other),
                &"a verdict type tag",
            )),
        }
    }
}

impl Serialize for StreamLagSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let encode = || -> Result<Value, ValueError> {
            let mut m = MapBuilder::new();
            m.put("stream", &self.stream)?;
            m.put("enqueued", &self.enqueued)?;
            m.put("lag", &self.lag)?;
            Ok(m.finish())
        };
        serializer.serialize_value(encode().map_err(S::Error::custom)?)
    }
}

impl<'de> Deserialize<'de> for StreamLagSnapshot {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<StreamLagSnapshot, D::Error> {
        let mut m =
            FieldMap::<D::Error>::new(deserializer.deserialize_value()?, "a stream lag snapshot")?;
        Ok(StreamLagSnapshot {
            stream: m.take("stream")?,
            enqueued: m.take("enqueued")?,
            lag: m.take("lag")?,
        })
    }
}

impl Serialize for MetricsSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let encode = || -> Result<Value, ValueError> {
            let mut m = MapBuilder::new();
            m.put("events", &self.events)?;
            m.put("obligations_opened", &self.obligations_opened)?;
            m.put("obligations_discharged", &self.obligations_discharged)?;
            m.put("obligations_violated", &self.obligations_violated)?;
            m.put("max_queue_depth", &self.max_queue_depth)?;
            m.put("dropped_events", &self.dropped_events)?;
            m.put("failed_streams", &self.failed_streams)?;
            m.put("warnings", &self.warnings)?;
            m.put("warning_slack_hist", self.warning_slack_hist.as_slice())?;
            m.put("forced", &self.forced)?;
            m.put("forced_margin_hist", self.forced_margin_hist.as_slice())?;
            m.put("min_slack", &self.min_slack)?;
            m.put("batches", &self.batches)?;
            m.put("batched_events", &self.batched_events)?;
            m.put("max_batch", &self.max_batch)?;
            m.put("streams", &self.streams)?;
            Ok(m.finish())
        };
        serializer.serialize_value(encode().map_err(S::Error::custom)?)
    }
}

impl<'de> Deserialize<'de> for MetricsSnapshot {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<MetricsSnapshot, D::Error> {
        let mut m =
            FieldMap::<D::Error>::new(deserializer.deserialize_value()?, "a metrics snapshot")?;
        Ok(MetricsSnapshot {
            events: m.take("events")?,
            obligations_opened: m.take("obligations_opened")?,
            obligations_discharged: m.take("obligations_discharged")?,
            obligations_violated: m.take("obligations_violated")?,
            max_queue_depth: m.take("max_queue_depth")?,
            dropped_events: m.take("dropped_events")?,
            failed_streams: m.take("failed_streams")?,
            warnings: m.take("warnings")?,
            warning_slack_hist: hist_from_vec::<D::Error>(
                m.take("warning_slack_hist")?,
                "warning_slack_hist",
            )?,
            forced: m.take("forced")?,
            forced_margin_hist: hist_from_vec::<D::Error>(
                m.take("forced_margin_hist")?,
                "forced_margin_hist",
            )?,
            min_slack: m.take::<Option<Rat>>("min_slack")?,
            batches: m.take("batches")?,
            batched_events: m.take("batched_events")?,
            max_batch: m.take("max_batch")?,
            streams: m.take("streams")?,
        })
    }
}

impl Serialize for StreamReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let encode = || -> Result<Value, ValueError> {
            let mut m = MapBuilder::new();
            m.put("stream", &self.stream)?;
            m.put("events", &self.events)?;
            m.put("violations", &self.violations)?;
            m.put("warnings", &self.warnings)?;
            m.put("forced", &self.forced)?;
            m.put("failed", &self.failed)?;
            Ok(m.finish())
        };
        serializer.serialize_value(encode().map_err(S::Error::custom)?)
    }
}

impl<'de> Deserialize<'de> for StreamReport {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<StreamReport, D::Error> {
        let mut m =
            FieldMap::<D::Error>::new(deserializer.deserialize_value()?, "a stream report")?;
        Ok(StreamReport {
            stream: m.take("stream")?,
            events: m.take("events")?,
            violations: m.take("violations")?,
            warnings: m.take("warnings")?,
            forced: m.take("forced")?,
            failed: m.take("failed")?,
        })
    }
}

impl Serialize for PoolReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let encode = || -> Result<Value, ValueError> {
            let mut m = MapBuilder::new();
            m.put("streams", &self.streams)?;
            m.put("metrics", &self.metrics)?;
            Ok(m.finish())
        };
        serializer.serialize_value(encode().map_err(S::Error::custom)?)
    }
}

impl<'de> Deserialize<'de> for PoolReport {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<PoolReport, D::Error> {
        let mut m = FieldMap::<D::Error>::new(deserializer.deserialize_value()?, "a pool report")?;
        Ok(PoolReport {
            streams: m.take("streams")?,
            metrics: m.take("metrics")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_core::{Violation, ViolationKind};

    fn round_trip<T>(value: &T) -> T
    where
        T: Serialize + for<'de> Deserialize<'de>,
    {
        let json = serde_json::to_string(value).unwrap();
        serde_json::from_str(&json).unwrap()
    }

    fn sample_warning() -> Warning {
        Warning {
            condition: "C".into(),
            condition_index: 1,
            trigger_index: 3,
            deadline: Rat::from(10),
            at: Rat::new(17, 2),
            slack: Rat::new(3, 2),
            horizon: Rat::new(3, 2),
        }
    }

    fn sample_forced() -> Forced {
        Forced {
            condition: "D".into(),
            condition_index: 0,
            action: "grant".into(),
            trigger_index: 2,
            earliest: Rat::from(7),
            at: Rat::from(2),
            margin: Rat::from(5),
            horizon: Rat::from(3),
        }
    }

    fn sample_violation() -> Violation {
        Violation {
            condition: "C".into(),
            kind: ViolationKind::UpperBound {
                trigger_index: 4,
                deadline: Rat::new(9, 4),
            },
        }
    }

    #[test]
    fn predictions_round_trip() {
        let w = sample_warning();
        assert_eq!(round_trip(&w), w);
        let fw = sample_forced();
        assert_eq!(round_trip(&fw), fw);
    }

    #[test]
    fn verdicts_round_trip() {
        for v in [
            Verdict::Ok,
            Verdict::Warning(sample_warning()),
            Verdict::Forced(sample_forced()),
            Verdict::UpperBoundViolation(sample_violation()),
            Verdict::LowerBoundViolation(Violation {
                condition: "L".into(),
                kind: ViolationKind::LowerBound {
                    trigger_index: 0,
                    event_index: 2,
                    earliest: Rat::from(4),
                },
            }),
        ] {
            assert_eq!(round_trip(&v), v);
        }
        assert!(serde_json::from_str::<Verdict>("{\"type\":\"maybe\"}").is_err());
    }

    #[test]
    fn reports_round_trip() {
        let report = StreamReport {
            stream: 7,
            events: 100,
            violations: vec![sample_violation()],
            warnings: vec![sample_warning()],
            forced: vec![sample_forced()],
            failed: false,
        };
        assert_eq!(round_trip(&report), report);

        let mut metrics = MetricsSnapshot {
            events: 100,
            obligations_opened: 10,
            obligations_discharged: 8,
            obligations_violated: 1,
            max_queue_depth: 12,
            warnings: 2,
            min_slack: Some(Rat::new(1, 2)),
            streams: vec![StreamLagSnapshot {
                stream: 7,
                enqueued: 100,
                lag: 0,
            }],
            ..MetricsSnapshot::default()
        };
        metrics.warning_slack_hist[0] = 2;
        assert_eq!(round_trip(&metrics), metrics);

        // `min_slack: None` renders as null and comes back as None.
        metrics.min_slack = None;
        assert_eq!(round_trip(&metrics), metrics);

        let pool = PoolReport {
            streams: vec![report],
            metrics,
        };
        assert_eq!(round_trip(&pool), pool);
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let json = "{\"stream\":1,\"enqueued\":5,\"lag\":2,\"future_field\":true}";
        let lag: StreamLagSnapshot = serde_json::from_str(json).unwrap();
        assert_eq!(lag.stream, 1);
        assert_eq!(lag.lag, 2);
    }

    #[test]
    fn histogram_length_is_checked() {
        let mut metrics_json = serde_json::to_string(&MetricsSnapshot::default()).unwrap();
        metrics_json = metrics_json.replace(
            "\"warning_slack_hist\":[0,0,0,0,0]",
            "\"warning_slack_hist\":[0,0]",
        );
        assert!(serde_json::from_str::<MetricsSnapshot>(&metrics_json).is_err());
    }
}
