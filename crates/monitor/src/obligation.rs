//! Open obligations: the monitor's only per-condition state.
//!
//! Each trigger of a condition (Definition 3.1's `T_start`/`T_step`
//! occurrences) opens up to two obligations — a lower-bound window that
//! forbids early `Π`-events, and an upper-bound deadline that demands a
//! `Π`-event or disabling state in time. Obligations close (are
//! *discharged*) as soon as they can no longer produce a violation, so
//! the work per event is proportional to the number of still-open
//! obligations, not to the length of the history.

use tempo_math::Rat;

/// What an open obligation is waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObligationKind {
    /// No `Π`-event may occur strictly before `earliest` (unless a
    /// disabling state intervenes first).
    Lower {
        /// The earliest permitted absolute time `t_i + b_l`.
        earliest: Rat,
    },
    /// Some `Π`-event or disabling state must occur at time `≤ deadline`.
    Upper {
        /// The absolute deadline `t_i + b_u`.
        deadline: Rat,
    },
}

/// An open obligation: a trigger whose bound is still live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Obligation {
    /// Index of the trigger that opened it (0 = start-state trigger,
    /// `i ≥ 1` = step trigger at event `i`), matching the offline
    /// checker's `trigger_index`.
    pub trigger_index: usize,
    /// What the obligation waits for.
    pub kind: ObligationKind,
}

/// How an obligation was resolved by an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Resolution {
    /// Still open: the event neither discharged nor violated it.
    Open,
    /// Discharged: the obligation can no longer be violated.
    Discharged,
    /// Violated by this event.
    Violated,
}

impl Obligation {
    /// Resolves the obligation against one event at (nondecreasing) time
    /// `t`, where `in_pi` says whether the event's action is in `Π` and
    /// `in_disabling` whether its *post*-state is in the disabling set.
    ///
    /// Mirrors `check_trigger` in `tempo-core`'s `satisfaction` module
    /// exactly, including the ordering subtlety that a disabling
    /// post-state excuses only *later* events, never the `Π`-check of its
    /// own event.
    pub fn resolve(&self, t: Rat, in_pi: bool, in_disabling: bool) -> Resolution {
        match self.kind {
            ObligationKind::Lower { earliest } => {
                if t >= earliest {
                    // The forbidden window is over; nothing can violate it.
                    Resolution::Discharged
                } else if in_pi {
                    Resolution::Violated
                } else if in_disabling {
                    // An intervening disabling state suspends the bound
                    // for every later event, so the obligation is dead.
                    Resolution::Discharged
                } else {
                    Resolution::Open
                }
            }
            ObligationKind::Upper { deadline } => {
                if t > deadline {
                    // Times are nondecreasing: the deadline has definitely
                    // passed unserved.
                    Resolution::Violated
                } else if in_pi || in_disabling {
                    Resolution::Discharged
                } else {
                    Resolution::Open
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower(trigger: usize, earliest: i64) -> Obligation {
        Obligation {
            trigger_index: trigger,
            kind: ObligationKind::Lower {
                earliest: Rat::from(earliest),
            },
        }
    }

    fn upper(trigger: usize, deadline: i64) -> Obligation {
        Obligation {
            trigger_index: trigger,
            kind: ObligationKind::Upper {
                deadline: Rat::from(deadline),
            },
        }
    }

    #[test]
    fn lower_window_resolution() {
        let o = lower(0, 3);
        // Early non-Π event keeps it open.
        assert_eq!(o.resolve(Rat::from(1), false, false), Resolution::Open);
        // Early Π-event violates.
        assert_eq!(o.resolve(Rat::from(1), true, false), Resolution::Violated);
        // Π exactly at the bound is fine (window closed).
        assert_eq!(o.resolve(Rat::from(3), true, false), Resolution::Discharged);
        // Disabling post-state kills the window...
        assert_eq!(o.resolve(Rat::from(1), false, true), Resolution::Discharged);
        // ...but not for its own event's Π-check.
        assert_eq!(o.resolve(Rat::from(1), true, true), Resolution::Violated);
    }

    #[test]
    fn upper_deadline_resolution() {
        let o = upper(2, 5);
        assert_eq!(o.resolve(Rat::from(4), false, false), Resolution::Open);
        // Served by Π at the deadline exactly.
        assert_eq!(o.resolve(Rat::from(5), true, false), Resolution::Discharged);
        // Served by a disabling state.
        assert_eq!(o.resolve(Rat::from(4), false, true), Resolution::Discharged);
        // Past the deadline, even a Π-event is too late.
        assert_eq!(o.resolve(Rat::from(6), true, false), Resolution::Violated);
    }
}
