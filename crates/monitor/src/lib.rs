//! Streaming runtime verification of timing conditions.
//!
//! The offline checkers in `tempo-core` decide Definition 3.1
//! (semi-satisfaction) by folding the compiled condition engine
//! ([`tempo_core::engine`]) over a complete [`TimedSequence`]; this
//! crate steps the *same* engine incrementally, one event at a time, so
//! timing conditions can be enforced against live executions —
//! simulation runs as they are generated, or any external event source —
//! with online/offline agreement holding by construction.
//!
//! The pieces:
//!
//! * [`Monitor`] — compiles a set of [`TimingCondition`]s (or shares an
//!   already-compiled
//!   [`CompiledConditionSet`](tempo_core::engine::CompiledConditionSet))
//!   and consumes `(action, time, state)` events, holding one engine
//!   [`EngineState`](tempo_core::engine::EngineState) of open
//!   obligations (pending deadlines and un-elapsed lower-bound windows).
//!   Each event costs `O(conditions + open obligations)`, independent of
//!   the stream length; verdicts carry the same
//!   [`Violation`](tempo_core::Violation) payloads as the offline
//!   checker and agree with it exactly. Snapshot the engine state
//!   ([`Monitor::engine_state`]) and [`Monitor::resume`] it — with the
//!   `serde` feature, across process restarts.
//! * Prediction — a monitor built with [`Monitor::with_predictor`]
//!   arms the engine itself with a slack horizon: it emits a
//!   [`Verdict::Warning`] when an open deadline's remaining slack drops
//!   to the horizon (the online reading of the paper's `Lt(U)`,
//!   Section 3.1) and a [`Verdict::Forced`] when a trigger opens a
//!   lower-bound window at least the horizon wide (the `Ft(U)` side).
//!   Both backends of the compiled engine track warning points
//!   natively, so prediction costs no second pass over the obligations.
//!   [`Predictor`] remains as the standalone zone-based (DBM) reading
//!   of the same `Lt(U)` quantity for symbolic use.
//! * [`MonitorPool`] — shards many independent streams across worker
//!   threads and a configurable [`OverloadPolicy`] (block / drop-oldest
//!   / fail-stream). Ingestion is lock-free: each stream feeds its
//!   worker through a bounded SPSC ring buffer ([`mod@ring`]) with
//!   batched publish/drain and spin-then-park wakeups; batch submission
//!   ([`StreamHandle::send_batch`]) amortizes even the atomic traffic.
//! * [`mod@ring`] — the bounded single-producer/single-consumer ring
//!   buffer underneath the pool, usable on its own.
//! * [`MonitorMetrics`] — shared atomic counters (events, obligation
//!   churn, warnings, slack, queue depths, per-stream lag) with a
//!   plain-text [snapshot](MetricsSnapshot) renderer.
//! * [`mod@replay`] — adapters feeding recorded [`TimedSequence`]s through a
//!   monitor, bridging the offline and online worlds;
//!   [`replay_predictive`] replays with early warnings.
//!
//! # Quickstart
//!
//! ```
//! use tempo_core::TimingCondition;
//! use tempo_math::{Interval, Rat};
//! use tempo_monitor::{Monitor, Verdict};
//!
//! // "After a request, a grant within [1, 5]."
//! let cond: TimingCondition<u32, &str> =
//!     TimingCondition::new("RESP", Interval::closed(Rat::ONE, Rat::from(5)).unwrap())
//!         .triggered_by_step(|_, a, _| *a == "REQ")
//!         .on_actions(|a| *a == "GRANT");
//!
//! let mut mon = Monitor::new(&[cond], &0);
//! assert_eq!(mon.observe(&"REQ", Rat::from(2), &1), Verdict::Ok);
//! assert_eq!(mon.observe(&"GRANT", Rat::from(4), &0), Verdict::Ok);
//! assert!(mon.is_ok());
//! ```
//!
//! [`TimedSequence`]: tempo_core::TimedSequence
//! [`TimingCondition`]: tempo_core::TimingCondition

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod metrics;
mod monitor;
mod pool;
mod predict;
pub mod replay;
pub mod ring;
#[cfg(feature = "serde")]
mod serde_impls;
mod verdict;

pub use event::Event;
pub use metrics::{MetricsSnapshot, MonitorMetrics, StreamLag, StreamLagSnapshot, SLACK_BUCKETS};
pub use monitor::{Monitor, SwapReport};
// The obligation types moved into the shared condition engine
// (`tempo_core::engine`) — re-exported here so downstream code keeps
// its `tempo_monitor::{Obligation, ObligationKind, Resolution}` paths.
pub use pool::{
    MonitorPool, OverloadPolicy, PoolConfig, PoolReport, ReloadReport, StreamHandle,
    StreamOverflow, StreamReport,
};
pub use predict::{Forced, Outcome, Predictor, Warning};
pub use replay::{
    replay, replay_predictive, replay_predictive_full, replay_semi_satisfies, replay_verdicts,
};
pub use tempo_core::engine::{Obligation, ObligationKind, Resolution};
pub use verdict::Verdict;
