//! Per-event verdicts emitted by the monitor.

use tempo_core::{Violation, ViolationKind};

use crate::predict::{Forced, Warning};

/// The monitor's judgement after consuming one event (or finishing a
/// stream): everything is still consistent with the conditions, a
/// deadline has entered its early-warning window, or a definite
/// violation has been witnessed.
///
/// Violation payloads are exactly [`tempo_core::Violation`], so online
/// verdicts compare `==` against the offline checker's output. The
/// [`Warning`](Verdict::Warning) variant only appears when the monitor
/// was built with a predictor
/// ([`Monitor::with_predictor`](crate::Monitor::with_predictor)); it is
/// *not* a violation — [`is_ok`](Verdict::is_ok) stays `true` — but a
/// prediction that one may be imminent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The event is consistent with every open obligation.
    Ok,
    /// An open deadline's remaining slack dropped to the predictor's
    /// horizon (see [`Warning`] for the payload). Emitted at most once
    /// per obligation, and always before the obligation's
    /// [`UpperBoundViolation`](Verdict::UpperBoundViolation) if one
    /// follows.
    Warning(Warning),
    /// A trigger opened a lower-bound window at least the horizon wide:
    /// the condition's `Π`-action cannot legally occur before
    /// [`Forced::earliest`]. The `Ft(U)` counterpart of
    /// [`Warning`](Verdict::Warning) — also not a violation
    /// ([`is_ok`](Verdict::is_ok) stays `true`). When one event both
    /// warns and opens a forced window, the warning takes precedence in
    /// the verdict; both payloads remain readable off the monitor.
    Forced(Forced),
    /// A `Π`-event arrived strictly before its earliest permitted time.
    LowerBoundViolation(Violation),
    /// A deadline passed with no `Π`-event and no disabling state.
    UpperBoundViolation(Violation),
}

impl Verdict {
    /// Wraps a violation in the matching verdict variant.
    pub fn from_violation(v: Violation) -> Verdict {
        match v.kind {
            ViolationKind::LowerBound { .. } => Verdict::LowerBoundViolation(v),
            ViolationKind::UpperBound { .. } => Verdict::UpperBoundViolation(v),
        }
    }

    /// Returns `true` while no violation has been witnessed — i.e. for
    /// [`Verdict::Ok`], [`Verdict::Warning`], and [`Verdict::Forced`]
    /// (predictions anticipate trouble; they do not establish it).
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok | Verdict::Warning(_) | Verdict::Forced(_))
    }

    /// Returns `true` for [`Verdict::Warning`].
    pub fn is_warning(&self) -> bool {
        matches!(self, Verdict::Warning(_))
    }

    /// Returns `true` for [`Verdict::Forced`].
    pub fn is_forced(&self) -> bool {
        matches!(self, Verdict::Forced(_))
    }

    /// Returns `true` for either violation variant.
    pub fn is_violation(&self) -> bool {
        !self.is_ok()
    }

    /// The violation carried by a violating verdict.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::Ok | Verdict::Warning(_) | Verdict::Forced(_) => None,
            Verdict::LowerBoundViolation(v) | Verdict::UpperBoundViolation(v) => Some(v),
        }
    }

    /// The warning carried by a [`Verdict::Warning`].
    pub fn warning(&self) -> Option<&Warning> {
        match self {
            Verdict::Warning(w) => Some(w),
            _ => None,
        }
    }

    /// The forced window carried by a [`Verdict::Forced`].
    pub fn forced(&self) -> Option<&Forced> {
        match self {
            Verdict::Forced(fw) => Some(fw),
            _ => None,
        }
    }

    /// Unwraps into the violation, if any.
    pub fn into_violation(self) -> Option<Violation> {
        match self {
            Verdict::Ok | Verdict::Warning(_) | Verdict::Forced(_) => None,
            Verdict::LowerBoundViolation(v) | Verdict::UpperBoundViolation(v) => Some(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_math::Rat;

    #[test]
    fn wraps_by_kind() {
        let lower = Violation {
            condition: "C".into(),
            kind: ViolationKind::LowerBound {
                trigger_index: 0,
                event_index: 1,
                earliest: Rat::from(2),
            },
        };
        assert!(matches!(
            Verdict::from_violation(lower.clone()),
            Verdict::LowerBoundViolation(_)
        ));
        let upper = Violation {
            condition: "C".into(),
            kind: ViolationKind::UpperBound {
                trigger_index: 0,
                deadline: Rat::from(4),
            },
        };
        let v = Verdict::from_violation(upper.clone());
        assert!(matches!(v, Verdict::UpperBoundViolation(_)));
        assert!(!v.is_ok());
        assert!(v.is_violation());
        assert_eq!(v.violation(), Some(&upper));
        assert_eq!(v.into_violation(), Some(upper));
        assert!(Verdict::Ok.is_ok());
        assert_eq!(Verdict::Ok.violation(), None);
    }

    #[test]
    fn warnings_are_ok_but_flagged() {
        let w = Warning {
            condition: "C".into(),
            condition_index: 0,
            trigger_index: 3,
            deadline: Rat::from(10),
            at: Rat::from(8),
            slack: Rat::from(2),
            horizon: Rat::from(2),
        };
        let v = Verdict::Warning(w.clone());
        assert!(v.is_ok());
        assert!(v.is_warning());
        assert!(!v.is_violation());
        assert_eq!(v.warning(), Some(&w));
        assert_eq!(v.violation(), None);
        assert_eq!(v.clone().into_violation(), None);
        assert!(!Verdict::Ok.is_warning());
        assert!(w.to_string().contains("deadline 10"));
    }

    #[test]
    fn forced_windows_are_ok_but_flagged() {
        let fw = Forced {
            condition: "C".into(),
            condition_index: 0,
            action: "grant".into(),
            trigger_index: 2,
            earliest: Rat::from(7),
            at: Rat::from(2),
            margin: Rat::from(5),
            horizon: Rat::from(3),
        };
        let v = Verdict::Forced(fw.clone());
        assert!(v.is_ok());
        assert!(v.is_forced());
        assert!(!v.is_warning());
        assert!(!v.is_violation());
        assert_eq!(v.forced(), Some(&fw));
        assert_eq!(v.warning(), None);
        assert_eq!(v.violation(), None);
        assert_eq!(v.into_violation(), None);
        assert!(!Verdict::Ok.is_forced());
        assert!(fw.to_string().contains("until 7"));
    }
}
