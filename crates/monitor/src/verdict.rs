//! Per-event verdicts emitted by the monitor.

use tempo_core::{Violation, ViolationKind};

/// The monitor's judgement after consuming one event (or finishing a
/// stream): either everything is still consistent with the conditions, or
/// a definite violation has been witnessed.
///
/// Violation payloads are exactly [`tempo_core::Violation`], so online
/// verdicts compare `==` against the offline checker's output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The event is consistent with every open obligation.
    Ok,
    /// A `Π`-event arrived strictly before its earliest permitted time.
    LowerBoundViolation(Violation),
    /// A deadline passed with no `Π`-event and no disabling state.
    UpperBoundViolation(Violation),
}

impl Verdict {
    /// Wraps a violation in the matching verdict variant.
    pub fn from_violation(v: Violation) -> Verdict {
        match v.kind {
            ViolationKind::LowerBound { .. } => Verdict::LowerBoundViolation(v),
            ViolationKind::UpperBound { .. } => Verdict::UpperBoundViolation(v),
        }
    }

    /// Returns `true` for [`Verdict::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Verdict::Ok)
    }

    /// The violation carried by a non-`Ok` verdict.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            Verdict::Ok => None,
            Verdict::LowerBoundViolation(v) | Verdict::UpperBoundViolation(v) => Some(v),
        }
    }

    /// Unwraps into the violation, if any.
    pub fn into_violation(self) -> Option<Violation> {
        match self {
            Verdict::Ok => None,
            Verdict::LowerBoundViolation(v) | Verdict::UpperBoundViolation(v) => Some(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempo_math::Rat;

    #[test]
    fn wraps_by_kind() {
        let lower = Violation {
            condition: "C".into(),
            kind: ViolationKind::LowerBound {
                trigger_index: 0,
                event_index: 1,
                earliest: Rat::from(2),
            },
        };
        assert!(matches!(
            Verdict::from_violation(lower.clone()),
            Verdict::LowerBoundViolation(_)
        ));
        let upper = Violation {
            condition: "C".into(),
            kind: ViolationKind::UpperBound {
                trigger_index: 0,
                deadline: Rat::from(4),
            },
        };
        let v = Verdict::from_violation(upper.clone());
        assert!(matches!(v, Verdict::UpperBoundViolation(_)));
        assert!(!v.is_ok());
        assert_eq!(v.violation(), Some(&upper));
        assert_eq!(v.into_violation(), Some(upper));
        assert!(Verdict::Ok.is_ok());
        assert_eq!(Verdict::Ok.violation(), None);
    }
}
