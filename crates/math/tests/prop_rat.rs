//! Property tests: `Rat` satisfies the ordered-field axioms (within the
//! magnitudes exercised here) and `TimeVal`/`Interval` respect their laws.

use proptest::prelude::*;
use tempo_math::{Interval, Rat, TimeVal};

fn small_rat() -> impl Strategy<Value = Rat> {
    (-1000i128..1000, 1i128..100).prop_map(|(n, d)| Rat::new(n, d))
}

fn nonneg_rat() -> impl Strategy<Value = Rat> {
    (0i128..1000, 1i128..100).prop_map(|(n, d)| Rat::new(n, d))
}

proptest! {
    #[test]
    fn add_commutative(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in small_rat(), b in small_rat(), c in small_rat()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_distributes(a in small_rat(), b in small_rat(), c in small_rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in small_rat()) {
        prop_assert_eq!(a + (-a), Rat::ZERO);
        prop_assert_eq!(a - a, Rat::ZERO);
    }

    #[test]
    fn multiplicative_inverse(a in small_rat()) {
        if !a.is_zero() {
            prop_assert_eq!(a * a.recip(), Rat::ONE);
        }
    }

    #[test]
    fn ordering_total_and_compatible(a in small_rat(), b in small_rat(), c in small_rat()) {
        // Totality.
        prop_assert!(a <= b || b <= a);
        // Translation invariance.
        if a <= b {
            prop_assert!(a + c <= b + c);
        }
        // Positive scaling preserves order.
        if a <= b && c.is_positive() {
            prop_assert!(a * c <= b * c);
        }
    }

    #[test]
    fn normalization_canonical(a in small_rat(), k in 1i128..50) {
        // num/den scaled by k normalizes back to the same value.
        prop_assert_eq!(Rat::new(a.numer() * k, a.denom() * k), a);
        prop_assert!(a.denom() > 0);
    }

    #[test]
    fn display_parse_round_trip(a in small_rat()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rat>().unwrap(), a);
    }

    #[test]
    fn timeval_ordering_embeds_rat(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(
            TimeVal::from(a) <= TimeVal::from(b),
            a <= b
        );
        prop_assert!(TimeVal::from(a) < TimeVal::INFINITY);
    }

    #[test]
    fn timeval_addition_monotone(a in small_rat(), b in small_rat(), c in small_rat()) {
        if a <= b {
            prop_assert!(TimeVal::from(a) + c <= TimeVal::from(b) + c);
        }
        prop_assert_eq!(TimeVal::INFINITY + a, TimeVal::INFINITY);
    }

    #[test]
    fn interval_shift_preserves_membership(lo in nonneg_rat(), width in nonneg_rat(),
                                           frac in 0u8..=100, t in nonneg_rat()) {
        let hi = lo + width;
        if hi.is_zero() {
            return Ok(());
        }
        let iv = Interval::closed(lo, hi).unwrap();
        // A point a fraction of the way through the interval.
        let point = lo + width * Rat::new(frac as i128, 100);
        prop_assert!(iv.contains(point));
        prop_assert!(iv.shift(t).contains(point + t));
    }

    #[test]
    fn interval_sum_contains_pointwise_sums(l1 in nonneg_rat(), w1 in nonneg_rat(),
                                            l2 in nonneg_rat(), w2 in nonneg_rat()) {
        let (h1, h2) = (l1 + w1, l2 + w2);
        if h1.is_zero() || h2.is_zero() || (l1 + l2 + w1 + w2).is_zero() {
            return Ok(());
        }
        let a = Interval::closed(l1, h1).unwrap();
        let b = Interval::closed(l2, h2).unwrap();
        let s = a.sum(b);
        prop_assert!(s.contains(l1 + l2));
        prop_assert!(s.contains(h1 + h2));
        prop_assert!(s.contains(l1 + h2));
    }
}
