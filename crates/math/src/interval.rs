//! Closed time intervals used for boundmaps and timing conditions.

use std::fmt;

use crate::{Rat, TimeVal};

/// A closed interval `[lo, hi]` over the extended time domain.
///
/// Following Section 2.2 of the paper, a boundmap assigns to each partition
/// class a closed subinterval of `[0, ∞]` whose **lower bound is not `∞`**
/// and whose **upper bound is nonzero**; the same well-formedness rule is
/// imposed on timing-condition bounds (Section 2.3). [`Interval::new`]
/// enforces `lo ≤ hi` and `hi ≠ 0`; the type system already guarantees the
/// lower bound is finite (`lo: Rat`).
///
/// A *trivial* lower bound is `0` and a *trivial* upper bound is `∞`
/// (used to express one-sided conditions, cf. Section 2.3).
///
/// # Example
///
/// ```
/// use tempo_math::{Interval, Rat, TimeVal};
///
/// let b = Interval::new(Rat::ONE, TimeVal::from(Rat::from(3)))?;
/// assert!(b.contains(Rat::from(2)));
/// assert!(!b.contains(Rat::new(1, 2)));
/// assert_eq!(Interval::unbounded_above(Rat::ZERO).hi(), TimeVal::INFINITY);
/// # Ok::<(), tempo_math::IntervalError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: Rat,
    hi: TimeVal,
}

/// Error returned by [`Interval::new`] for ill-formed bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntervalError {
    /// The lower bound exceeds the upper bound.
    Empty {
        /// The offending lower bound.
        lo: Rat,
        /// The offending upper bound.
        hi: TimeVal,
    },
    /// The upper bound is zero, which the paper's boundmap rule forbids.
    ZeroUpper,
    /// The lower bound is negative; times are nonnegative.
    NegativeLower(Rat),
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::Empty { lo, hi } => {
                write!(
                    f,
                    "empty interval: lower bound {lo} exceeds upper bound {hi}"
                )
            }
            IntervalError::ZeroUpper => write!(f, "interval upper bound must be nonzero"),
            IntervalError::NegativeLower(lo) => {
                write!(f, "interval lower bound {lo} must be nonnegative")
            }
        }
    }
}

impl std::error::Error for IntervalError {}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `lo > hi`, if `hi == 0`, or if `lo < 0`.
    pub fn new(lo: Rat, hi: TimeVal) -> Result<Interval, IntervalError> {
        if lo.is_negative() {
            return Err(IntervalError::NegativeLower(lo));
        }
        if hi == TimeVal::ZERO {
            return Err(IntervalError::ZeroUpper);
        }
        if TimeVal::from(lo) > hi {
            return Err(IntervalError::Empty { lo, hi });
        }
        Ok(Interval { lo, hi })
    }

    /// Creates `[lo, hi]` from finite rational endpoints.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Interval::new`].
    pub fn closed(lo: Rat, hi: Rat) -> Result<Interval, IntervalError> {
        Interval::new(lo, TimeVal::from(hi))
    }

    /// Creates `[lo, ∞]`, a pure lower-bound condition.
    ///
    /// # Panics
    ///
    /// Panics if `lo` is negative.
    pub fn unbounded_above(lo: Rat) -> Interval {
        Interval::new(lo, TimeVal::INFINITY).expect("lower bound must be nonnegative")
    }

    /// Creates `[0, hi]`, a pure upper-bound condition.
    ///
    /// # Panics
    ///
    /// Panics if `hi == 0`.
    pub fn upper_bound(hi: TimeVal) -> Interval {
        Interval::new(Rat::ZERO, hi).expect("upper bound must be nonzero")
    }

    /// The trivial interval `[0, ∞]` imposing no constraint.
    pub fn trivial() -> Interval {
        Interval {
            lo: Rat::ZERO,
            hi: TimeVal::INFINITY,
        }
    }

    /// Returns the lower bound `b_l`.
    pub fn lo(self) -> Rat {
        self.lo
    }

    /// Returns the upper bound `b_u`.
    pub fn hi(self) -> TimeVal {
        self.hi
    }

    /// Returns `true` if `t ∈ [lo, hi]`.
    pub fn contains(self, t: Rat) -> bool {
        self.lo <= t && TimeVal::from(t) <= self.hi
    }

    /// Returns the interval shifted by `t`: `[lo + t, hi + t]`.
    ///
    /// Used to turn relative bounds into absolute first/last predictions
    /// (`Ft = t + b_l`, `Lt = t + b_u`).
    pub fn shift(self, t: Rat) -> Interval {
        Interval {
            lo: self.lo + t,
            hi: self.hi + t,
        }
    }

    /// Returns the pointwise sum `[lo + o.lo, hi + o.hi]`.
    ///
    /// This is the interval arithmetic behind hierarchical bounds like
    /// `[d1, d2] + [(n−k−1)·d1, (n−k−1)·d2] = [(n−k)·d1, (n−k)·d2]`.
    pub fn sum(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo + o.lo,
            hi: self.hi + o.hi,
        }
    }

    /// Scales both endpoints by a nonnegative integer `k`.
    ///
    /// # Panics
    ///
    /// Panics if the scaled interval would be ill-formed (only possible for
    /// `k == 0` when that would produce `[0, 0]`; `[0, 0·∞]` is kept as
    /// `[0, ∞]` — scaling a trivial bound stays trivial).
    pub fn scale(self, k: u32) -> Interval {
        let lo = self.lo.scale(k as i128);
        let hi = match self.hi {
            TimeVal::Infinity => TimeVal::Infinity,
            TimeVal::Finite(r) if k == 0 => {
                // 0·[l,u] degenerates; keep a well-formed point-ish bound.
                let _ = r;
                TimeVal::INFINITY
            }
            TimeVal::Finite(r) => TimeVal::Finite(r.scale(k as i128)),
        };
        Interval { lo, hi }
    }

    /// Returns `true` if this interval imposes no constraint (`[0, ∞]`).
    pub fn is_trivial(self) -> bool {
        self.lo.is_zero() && self.hi.is_infinite()
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_rules() {
        assert!(Interval::closed(Rat::ONE, Rat::from(2)).is_ok());
        assert_eq!(
            Interval::closed(Rat::from(3), Rat::from(2)),
            Err(IntervalError::Empty {
                lo: Rat::from(3),
                hi: TimeVal::from(Rat::from(2))
            })
        );
        assert_eq!(
            Interval::new(Rat::ZERO, TimeVal::ZERO),
            Err(IntervalError::ZeroUpper)
        );
        assert_eq!(
            Interval::closed(-Rat::ONE, Rat::ONE),
            Err(IntervalError::NegativeLower(-Rat::ONE))
        );
    }

    #[test]
    fn membership() {
        let iv = Interval::closed(Rat::ONE, Rat::from(2)).unwrap();
        assert!(iv.contains(Rat::ONE));
        assert!(iv.contains(Rat::from(2)));
        assert!(iv.contains(Rat::new(3, 2)));
        assert!(!iv.contains(Rat::new(1, 2)));
        assert!(!iv.contains(Rat::from(3)));
        assert!(Interval::trivial().contains(Rat::from(1_000_000)));
    }

    #[test]
    fn shift_and_sum() {
        let iv = Interval::closed(Rat::ONE, Rat::from(2)).unwrap();
        let shifted = iv.shift(Rat::from(10));
        assert_eq!(shifted.lo(), Rat::from(11));
        assert_eq!(shifted.hi(), TimeVal::from(Rat::from(12)));

        let s = iv.sum(iv);
        assert_eq!(s.lo(), Rat::from(2));
        assert_eq!(s.hi(), TimeVal::from(Rat::from(4)));
    }

    #[test]
    fn scaling() {
        let iv = Interval::closed(Rat::new(3, 2), Rat::from(2)).unwrap();
        let s = iv.scale(4);
        assert_eq!(s.lo(), Rat::from(6));
        assert_eq!(s.hi(), TimeVal::from(Rat::from(8)));
        let unb = Interval::unbounded_above(Rat::ONE).scale(3);
        assert_eq!(unb.hi(), TimeVal::INFINITY);
        assert!(iv.scale(0).is_trivial());
    }

    #[test]
    fn trivial() {
        assert!(Interval::trivial().is_trivial());
        assert!(!Interval::unbounded_above(Rat::ONE).is_trivial());
        assert!(Interval::upper_bound(TimeVal::INFINITY).is_trivial());
    }
}
